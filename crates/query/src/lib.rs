//! # ofw-query — query model and order-optimization input extraction
//!
//! The preparation phase of the paper (§5.2) starts from "the set of
//! interesting orders and the sets of functional dependencies for each
//! algebraic operator", both determined from the query. This crate owns
//! that step:
//!
//! * [`graph`] — a select-project-join query model: relations, equi-join
//!   edges, constant and filter predicates, `group by` / `order by`;
//! * [`builder`] — a fluent, catalog-aware way to construct queries;
//! * [`extract()`] — derivation of the [`InputSpec`](ofw_core::InputSpec)
//!   (produced/tested interesting orders) and of one
//!   [`FdSetId`](ofw_core::FdSetId) per operator, following the paper's
//!   recipe for TPC-R Query 8 (§6.2): join and grouping attributes become
//!   interesting orders; join predicates become equations; constant
//!   predicates become `∅ → a` dependencies.

pub mod builder;
pub mod extract;
pub mod graph;

pub use builder::QueryBuilder;
pub use extract::{extract, extract_traced, ExtractedQuery};
pub use graph::{AggCall, AggFunc, ConstPred, FilterPred, JoinEdge, JoinGraph, Query};
