//! Determining the order-optimization input from a query (paper §5.2 and
//! the Q8 walkthrough in §6.2), extended with interesting groupings.
//!
//! * every join attribute and every `group by`/`order by` prefix is an
//!   interesting order that a sort (or ordered index scan) can *produce*;
//! * each `group by` / `select distinct` attribute set is an interesting
//!   *grouping* that a hash-based aggregate can produce (the VLDB'04
//!   combined-framework extension) — next to the corresponding sort
//!   ordering, so sort-based and hash-based aggregation compete;
//! * each equi-join predicate contributes the FD set `{l = r}` — applied
//!   by the join operator that evaluates it;
//! * each constant predicate contributes `{∅ → attr}` — applied by the
//!   selection;
//! * optionally, selection attributes are added as *tested-only* orders
//!   ("a selection operator never sorts but might exploit ordering").

use crate::graph::Query;
use ofw_catalog::{AttrId, Catalog};
use ofw_common::{BitSet, FxHashSet};
use ofw_core::derive::minimize_grouping_key;
use ofw_core::fd::{Fd, FdSetId};
use ofw_core::ordering::Ordering;
use ofw_core::property::{Grouping, HeadTail};
use ofw_core::spec::InputSpec;
use ofw_obs::Trace;

/// Extraction tuning knobs.
#[derive(Clone, Debug)]
pub struct ExtractOptions {
    /// Register every equi-join attribute as a produced interesting
    /// order (what merge joins test for and sorts produce). On by
    /// default — §6.2's `O_P^I`. Off shrinks the interesting-order set
    /// to indexes/group-by/order-by, which keeps Pareto sets narrow on
    /// very wide queries (the 40–100-relation scaling sweeps) where
    /// per-join orders would otherwise multiply plans far past memory.
    pub join_orders: bool,
    /// Register index key prefixes as produced interesting orders.
    pub index_orders: bool,
    /// Add constant/filter attributes as tested-only interesting orders
    /// (the paper's optional `O_T^I = {(r_name), (o_orderdate)}`).
    pub tested_selection_orders: bool,
    /// Register `group by`/`distinct` attribute sets as produced
    /// interesting groupings (hash aggregation produces them). Off
    /// reproduces the pure ICDE'04 ordering extraction.
    pub grouping_properties: bool,
    /// For `GROUP BY … ORDER BY` queries, register the head/tail
    /// properties the partial-sort enforcer probes: every prefix
    /// attribute *set* of the `order by` as a tested grouping, and
    /// every (prefix set, continuation) decomposition as a tested
    /// head/tail pair. Only active when the query both groups and
    /// orders — everything else extracts byte-identically with the
    /// option on or off.
    pub head_tail_properties: bool,
    /// Make aggregation a plan-space dimension: register schema
    /// (key-constraint) FD sets from unique columns, and per-relation
    /// partial-aggregation key groupings, so the DP can place eager/lazy
    /// aggregates and group-joins below the plan root. Only does
    /// anything for queries that actually compute aggregate functions
    /// over a `group by` — everything else extracts byte-identically.
    pub aggregation_placement: bool,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions {
            join_orders: true,
            index_orders: true,
            tested_selection_orders: false,
            grouping_properties: true,
            head_tail_properties: true,
            aggregation_placement: true,
        }
    }
}

impl ExtractOptions {
    /// Extraction profile for the very wide scaling sweeps: no per-join
    /// or per-index interesting orders (only group-by/order-by
    /// requirements survive), so the DP's Pareto sets stay narrow while
    /// the join-FD sets — one per predicate, spilling past 64 — are
    /// kept in full.
    pub fn lean() -> Self {
        ExtractOptions {
            join_orders: false,
            index_orders: false,
            tested_selection_orders: false,
            grouping_properties: true,
            head_tail_properties: true,
            aggregation_placement: true,
        }
    }
}

/// The order-optimization input for one query, with the operator → FD-set
/// mapping the plan generator needs.
#[derive(Clone, Debug)]
pub struct ExtractedQuery {
    /// Interesting orders and FD sets (input to framework preparation).
    pub spec: InputSpec,
    /// FD-set handle per join edge (parallel to `Query::joins`).
    pub join_fd: Vec<FdSetId>,
    /// FD-set handle per constant predicate (parallel to
    /// `Query::constants`).
    pub const_fd: Vec<FdSetId>,
    /// Schema (key-constraint) FD set per query relation, applied by the
    /// scan like constant FDs: a unique column determines the relation's
    /// other query-relevant attributes. Populated only under aggregation
    /// placement; `None` for relations without unique columns.
    pub rel_fd: Vec<Option<FdSetId>>,
    /// Whether aggregation placement is active for this query (it has
    /// aggregate functions over a `group by` and the option is on).
    pub aggregation: bool,
    /// The raw schema FDs, tagged with their owning query relation —
    /// what [`subset_agg_key`](Self::subset_agg_key) replays.
    schema_fds: Vec<(usize, Fd)>,
}

impl ExtractedQuery {
    /// The canonical partial-aggregation key of a relation subset: the
    /// `group by` attributes inside the subset plus the join attributes
    /// crossing its boundary (everything a later join or the final
    /// aggregate still needs to distinguish), minimized under the
    /// dependencies that hold inside the subset — schema FDs, constant
    /// predicates, and internal join equations. Deterministic, so the
    /// leaf keys registered as interesting groupings at extraction time
    /// are exactly the keys the DP derives for single-relation subsets.
    pub fn subset_agg_key(&self, query: &Query, mask: &BitSet) -> Grouping {
        let mut attrs: Vec<AttrId> = query
            .effective_group_by()
            .iter()
            .copied()
            .filter(|&a| mask.contains(query.owner(a)))
            .collect();
        for j in &query.joins {
            let (lo, ro) = (query.owner(j.left), query.owner(j.right));
            if mask.contains(lo) && !mask.contains(ro) {
                attrs.push(j.left);
            }
            if mask.contains(ro) && !mask.contains(lo) {
                attrs.push(j.right);
            }
        }
        let mut fds: Vec<Fd> = self
            .schema_fds
            .iter()
            .filter(|(r, _)| mask.contains(*r))
            .map(|(_, f)| f.clone())
            .collect();
        for c in &query.constants {
            if mask.contains(query.owner(c.attr)) {
                fds.push(Fd::constant(c.attr));
            }
        }
        for j in &query.joins {
            let (lo, ro) = (query.owner(j.left), query.owner(j.right));
            if mask.contains(lo) && mask.contains(ro) {
                fds.push(Fd::equation(j.left, j.right));
            }
        }
        minimize_grouping_key(&Grouping::new(attrs), &fds)
    }
}

/// Runs the extraction.
pub fn extract(catalog: &Catalog, query: &Query, options: &ExtractOptions) -> ExtractedQuery {
    let mut spec = InputSpec::new();

    // Join attributes: single-attribute produced orders (what a merge
    // join tests for and a sort can produce) — §6.2's O_P^I.
    if options.join_orders {
        for j in &query.joins {
            spec.add_produced(Ordering::new(vec![j.left]));
            spec.add_produced(Ordering::new(vec![j.right]));
        }
    }
    // Grouping/ordering requirements are producible by a sort; the
    // group-by/distinct attribute *set* is additionally producible as a
    // grouping by a hash aggregate.
    if !query.group_by.is_empty() {
        spec.add_produced(Ordering::new(query.group_by.clone()));
    }
    if !query.distinct.is_empty() {
        spec.add_produced(Ordering::new(query.distinct.clone()));
    }
    if options.grouping_properties && !query.effective_group_by().is_empty() {
        spec.add_produced(Grouping::new(query.effective_group_by().to_vec()));
    }
    if !query.order_by.is_empty() {
        spec.add_produced(Ordering::new(query.order_by.clone()));
    }
    // Head/tail properties: for a query that both groups and orders,
    // the partial-sort enforcer wants to ask "is the stream already
    // grouped by a prefix set of the order by — and maybe sorted within
    // those groups by a piece of the continuation?". Register every
    // prefix set as a tested grouping and every (prefix set,
    // continuation) decomposition as a tested head/tail pair; hash
    // aggregates produce the former, partial sorts consume both.
    if options.head_tail_properties
        && options.grouping_properties
        && !query.effective_group_by().is_empty()
        && !query.order_by.is_empty()
    {
        for k in 1..=query.order_by.len() {
            spec.add_tested(Grouping::new(query.order_by[..k].to_vec()));
        }
        for pair in HeadTail::decompositions(&Ordering::new(query.order_by.clone())) {
            spec.add_tested(pair);
        }
    }
    // Index scan outputs.
    if options.index_orders {
        for &rel in &query.relations {
            for index in &catalog.relation(rel).indexes {
                spec.add_produced(Ordering::new(index.key.clone()));
            }
        }
    }
    // Selection attributes, tested only.
    if options.tested_selection_orders {
        for c in &query.constants {
            spec.add_tested(Ordering::new(vec![c.attr]));
        }
        for f in &query.filters {
            spec.add_tested(Ordering::new(vec![f.attr]));
        }
    }

    // One FD set per operator that changes logical orderings.
    let join_fd = query
        .joins
        .iter()
        .map(|j| spec.add_fd_set(vec![Fd::equation(j.left, j.right)]))
        .collect();
    let const_fd = query
        .constants
        .iter()
        .map(|c| spec.add_fd_set(vec![Fd::constant(c.attr)]))
        .collect();

    // Aggregation placement: schema FDs from unique columns and
    // per-relation partial-aggregation key groupings. Gated on the query
    // actually aggregating, so everything else extracts byte-identically
    // to the pure ordering + grouping pipeline.
    let aggregation = options.aggregation_placement
        && query.has_aggregates()
        && !query.effective_group_by().is_empty();
    let mut rel_fd: Vec<Option<FdSetId>> = vec![None; query.num_relations()];
    let mut schema_fds: Vec<(usize, Fd)> = Vec::new();
    if aggregation {
        // Attributes the query mentions anywhere — the only ones worth
        // deriving: a dependency onto an unmentioned attribute can never
        // reach an interesting property.
        let mut relevant: FxHashSet<AttrId> = FxHashSet::default();
        relevant.extend(query.joins.iter().flat_map(|j| [j.left, j.right]));
        relevant.extend(query.constants.iter().map(|c| c.attr));
        relevant.extend(query.filters.iter().map(|f| f.attr));
        relevant.extend(query.group_by.iter().copied());
        relevant.extend(query.distinct.iter().copied());
        relevant.extend(query.order_by.iter().copied());
        relevant.extend(query.agg_input_attrs());
        for (qrel, &rel) in query.relations.iter().enumerate() {
            let attrs = &catalog.relation(rel).attrs;
            let mut fds: Vec<Fd> = Vec::new();
            for &key in attrs.iter().filter(|&&a| relevant.contains(&a)) {
                if !catalog.is_unique(key) {
                    continue;
                }
                for &target in attrs.iter().filter(|&&a| relevant.contains(&a)) {
                    if target != key {
                        fds.push(Fd::functional(&[key], target));
                    }
                }
            }
            if !fds.is_empty() {
                schema_fds.extend(fds.iter().cloned().map(|f| (qrel, f)));
                rel_fd[qrel] = Some(spec.add_fd_set(fds));
            }
        }
    }

    let mut ex = ExtractedQuery {
        spec,
        join_fd,
        const_fd,
        rel_fd,
        aggregation,
        schema_fds,
    };
    if aggregation {
        // Leaf partial-aggregation keys: what an eager aggregate placed
        // directly above a scan groups by. Registered as *produced*
        // interesting groupings so hash partial aggregates can construct
        // their state (and the hash-group enforcer can target them).
        for qrel in 0..query.num_relations() {
            let key = ex.subset_agg_key(query, &query.relation_set(qrel));
            if !key.is_empty() {
                ex.spec.add_produced(key);
            }
        }
    }
    ex
}

/// Runs the extraction under a span sink: one `"extract"` span
/// recording the interesting-property and FD-set counts. Identical
/// output to [`extract`].
pub fn extract_traced(
    catalog: &Catalog,
    query: &Query,
    options: &ExtractOptions,
    trace: &Trace,
) -> ExtractedQuery {
    let mut sp = trace.span("extract");
    let ex = extract(catalog, query, options);
    sp.count("produced", ex.spec.produced().len() as u64);
    sp.count("tested", ex.spec.tested().len() as u64);
    sp.count("fd_sets", ex.spec.fd_sets().len() as u64);
    ex
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;

    fn simple() -> (Catalog, Query) {
        let mut c = Catalog::new();
        c.add_relation("persons", 10_000.0, &["id", "name", "jobid"]);
        c.add_relation("jobs", 100.0, &["id", "salary"]);
        let jobs = c.relation_id("jobs").unwrap();
        let jid = c.attr("jobs.id");
        c.add_index(jobs, vec![jid], true);
        let q = QueryBuilder::new(&c)
            .relation("persons")
            .relation("jobs")
            .join("persons.jobid", "jobs.id", 0.01)
            .filter("jobs.salary", 0.3)
            .order_by(&["jobs.id", "persons.name"])
            .build();
        (c, q)
    }

    #[test]
    fn section_6_1_interesting_orders() {
        // §6.1: Q_I^P = {(id), (jobid), (id,name)}, Q_I^T = {(salary)};
        // F = {jobid = id}. Our (id,name) comes from the order-by —
        // order by jobs.id, persons.name.
        let (c, q) = simple();
        let ex = extract(
            &c,
            &q,
            &ExtractOptions {
                tested_selection_orders: true,
                ..ExtractOptions::default()
            },
        );
        let produced: Vec<&Ordering> = ex
            .spec
            .produced()
            .iter()
            .filter_map(|p| p.as_ordering())
            .collect();
        let jid = c.attr("jobs.id");
        let pjobid = c.attr("persons.jobid");
        let pname = c.attr("persons.name");
        assert!(produced.contains(&&Ordering::new(vec![jid])));
        assert!(produced.contains(&&Ordering::new(vec![pjobid])));
        assert!(produced.contains(&&Ordering::new(vec![jid, pname])));
        assert_eq!(produced.len(), 3);
        assert_eq!(
            ex.spec.interesting_groupings().count(),
            0,
            "no group-by, no groupings"
        );
        // (salary) tested only.
        let sal = c.attr("jobs.salary");
        assert_eq!(ex.spec.tested(), &[Ordering::new(vec![sal]).into()]);
        // One FD set: the equation.
        assert_eq!(ex.spec.fd_sets().len(), 1);
        assert_eq!(ex.join_fd.len(), 1);
        assert!(ex.const_fd.is_empty());
    }

    #[test]
    fn duplicate_fd_sets_share_handles() {
        let mut c = Catalog::new();
        c.add_relation("a", 10.0, &["x"]);
        c.add_relation("b", 10.0, &["y"]);
        let mut q = QueryBuilder::new(&c)
            .relation("a")
            .relation("b")
            .join("a.x", "b.y", 0.5)
            .build();
        // The same predicate twice (e.g. listed redundantly).
        q.joins.push(q.joins[0].clone());
        let ex = extract(&c, &q, &ExtractOptions::default());
        assert_eq!(ex.join_fd[0], ex.join_fd[1]);
        assert_eq!(ex.spec.fd_sets().len(), 1);
    }

    #[test]
    fn group_by_becomes_produced_order_and_grouping() {
        let mut c = Catalog::new();
        c.add_relation("t", 10.0, &["g", "v"]);
        c.add_relation("u", 10.0, &["w"]);
        let q = QueryBuilder::new(&c)
            .relation("t")
            .relation("u")
            .join("t.v", "u.w", 0.1)
            .group_by(&["t.g"])
            .build();
        let ex = extract(&c, &q, &ExtractOptions::default());
        let g = c.attr("t.g");
        assert!(ex.spec.produced().contains(&Ordering::new(vec![g]).into()));
        assert!(ex.spec.produced().contains(&Grouping::new(vec![g]).into()));
        // With grouping extraction off, only the ordering remains.
        let ex = extract(
            &c,
            &q,
            &ExtractOptions {
                grouping_properties: false,
                ..ExtractOptions::default()
            },
        );
        assert_eq!(ex.spec.interesting_groupings().count(), 0);
    }

    #[test]
    fn group_by_order_by_registers_head_tail_properties() {
        use ofw_core::property::HeadTail;
        let mut c = Catalog::new();
        c.add_relation("t", 10.0, &["g", "h", "v"]);
        c.add_relation("u", 10.0, &["w"]);
        let q = QueryBuilder::new(&c)
            .relation("t")
            .relation("u")
            .join("t.v", "u.w", 0.1)
            .group_by(&["t.g", "t.h"])
            .order_by(&["t.g", "t.h"])
            .build();
        let ex = extract(&c, &q, &ExtractOptions::default());
        let g = c.attr("t.g");
        let h = c.attr("t.h");
        // Every order-by prefix set is a tested grouping ({g,h} is
        // already produced via the group-by), and every decomposition a
        // tested pair.
        assert!(ex.spec.has_head_tails());
        assert!(ex.spec.tested().contains(&Grouping::new(vec![g]).into()));
        let pair = HeadTail::new(Grouping::new(vec![g]), Ordering::new(vec![h]));
        assert!(ex.spec.tested().contains(&pair.into()));
        // The option gates it off; a query without an order-by never
        // registers pairs regardless of the option.
        let off = extract(
            &c,
            &q,
            &ExtractOptions {
                head_tail_properties: false,
                ..ExtractOptions::default()
            },
        );
        assert!(!off.spec.has_head_tails());
        let mut no_order = q.clone();
        no_order.order_by.clear();
        let plain = extract(&c, &no_order, &ExtractOptions::default());
        assert!(!plain.spec.has_head_tails());
    }

    #[test]
    fn distinct_becomes_produced_order_and_grouping() {
        let mut c = Catalog::new();
        c.add_relation("t", 10.0, &["g", "v"]);
        c.add_relation("u", 10.0, &["w"]);
        let q = QueryBuilder::new(&c)
            .relation("t")
            .relation("u")
            .join("t.v", "u.w", 0.1)
            .distinct(&["t.g", "t.v"])
            .build();
        let ex = extract(&c, &q, &ExtractOptions::default());
        let g = c.attr("t.g");
        let v = c.attr("t.v");
        assert!(ex
            .spec
            .produced()
            .contains(&Ordering::new(vec![g, v]).into()));
        assert!(ex
            .spec
            .produced()
            .contains(&Grouping::new(vec![g, v]).into()));
    }

    #[test]
    fn lean_extraction_keeps_fds_but_drops_join_and_index_orders() {
        let (c, q) = simple();
        let ex = extract(&c, &q, &ExtractOptions::lean());
        // All FD sets survive (the plan generator's inference needs
        // them), but the only produced order left is the order-by.
        assert_eq!(ex.spec.fd_sets().len(), 1);
        assert_eq!(ex.join_fd.len(), 1);
        let jid = c.attr("jobs.id");
        let pname = c.attr("persons.name");
        let produced: Vec<&Ordering> = ex
            .spec
            .produced()
            .iter()
            .filter_map(|p| p.as_ordering())
            .collect();
        assert_eq!(produced, vec![&Ordering::new(vec![jid, pname])]);
    }

    #[test]
    fn aggregation_extraction_registers_schema_fds_and_leaf_keys() {
        use crate::graph::AggFunc;
        // dim(pk unique, g selective) ⋈ fact(fk, v), group by dim.g,
        // sum(fact.v).
        let mut c = Catalog::new();
        c.add_relation("dim", 100.0, &["pk", "g"]);
        c.add_relation("fact", 100_000.0, &["fk", "v"]);
        c.set_distinct_values(c.attr("dim.pk"), 100.0);
        c.set_distinct_values(c.attr("dim.g"), 10.0);
        c.set_distinct_values(c.attr("fact.fk"), 100.0);
        let q = QueryBuilder::new(&c)
            .relation("dim")
            .relation("fact")
            .join("dim.pk", "fact.fk", 0.01)
            .group_by(&["dim.g"])
            .aggregate(AggFunc::Sum, "fact.v")
            .build();
        let ex = extract(&c, &q, &ExtractOptions::default());
        assert!(ex.aggregation);
        // dim has a unique relevant column (pk) → a schema FD set
        // {pk → g}; fact has none.
        assert!(ex.rel_fd[0].is_some());
        assert!(ex.rel_fd[1].is_none());
        // Leaf keys: dim's raw key {pk, g} minimizes to {pk} (pk → g);
        // fact's key is its crossing join attribute {fk}.
        let dim_key = ex.subset_agg_key(&q, &q.relation_set(0));
        assert_eq!(dim_key, Grouping::new(vec![c.attr("dim.pk")]));
        let fact_key = ex.subset_agg_key(&q, &q.relation_set(1));
        assert_eq!(fact_key, Grouping::new(vec![c.attr("fact.fk")]));
        // Both are registered as produced interesting groupings, next to
        // the group-by grouping itself.
        for g in [dim_key, fact_key, Grouping::new(vec![c.attr("dim.g")])] {
            assert!(
                ex.spec.produced().contains(&g.clone().into()),
                "{g:?} must be producible"
            );
        }
        // The full set has no crossing edges: its key is the group-by.
        let all = ex.subset_agg_key(&q, &q.all_relations_set());
        assert_eq!(all, Grouping::new(vec![c.attr("dim.g")]));

        // Placement off (or no aggregates): byte-identical to the plain
        // extraction.
        let off = extract(
            &c,
            &q,
            &ExtractOptions {
                aggregation_placement: false,
                ..ExtractOptions::default()
            },
        );
        assert!(!off.aggregation);
        assert!(off.rel_fd.iter().all(Option::is_none));
        let mut no_agg = q.clone();
        no_agg.aggregates.clear();
        let plain = extract(&c, &no_agg, &ExtractOptions::default());
        assert!(!plain.aggregation);
        assert_eq!(off.spec.produced(), plain.spec.produced());
        assert_eq!(off.spec.fd_sets().len(), plain.spec.fd_sets().len());
    }

    #[test]
    fn constants_become_fd_sets() {
        let mut c = Catalog::new();
        c.add_relation("t", 10.0, &["g", "v"]);
        c.add_relation("u", 10.0, &["w"]);
        let q = QueryBuilder::new(&c)
            .relation("t")
            .relation("u")
            .join("t.v", "u.w", 0.1)
            .constant("t.g", 0.05)
            .build();
        let ex = extract(&c, &q, &ExtractOptions::default());
        assert_eq!(ex.const_fd.len(), 1);
        assert_ne!(ex.const_fd[0], ex.join_fd[0]);
        assert_eq!(ex.spec.fd_sets().len(), 2);
    }
}
