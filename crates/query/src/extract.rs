//! Determining the order-optimization input from a query (paper §5.2 and
//! the Q8 walkthrough in §6.2), extended with interesting groupings.
//!
//! * every join attribute and every `group by`/`order by` prefix is an
//!   interesting order that a sort (or ordered index scan) can *produce*;
//! * each `group by` / `select distinct` attribute set is an interesting
//!   *grouping* that a hash-based aggregate can produce (the VLDB'04
//!   combined-framework extension) — next to the corresponding sort
//!   ordering, so sort-based and hash-based aggregation compete;
//! * each equi-join predicate contributes the FD set `{l = r}` — applied
//!   by the join operator that evaluates it;
//! * each constant predicate contributes `{∅ → attr}` — applied by the
//!   selection;
//! * optionally, selection attributes are added as *tested-only* orders
//!   ("a selection operator never sorts but might exploit ordering").

use crate::graph::Query;
use ofw_catalog::Catalog;
use ofw_core::fd::{Fd, FdSetId};
use ofw_core::ordering::Ordering;
use ofw_core::property::Grouping;
use ofw_core::spec::InputSpec;

/// Extraction tuning knobs.
#[derive(Clone, Debug)]
pub struct ExtractOptions {
    /// Register every equi-join attribute as a produced interesting
    /// order (what merge joins test for and sorts produce). On by
    /// default — §6.2's `O_P^I`. Off shrinks the interesting-order set
    /// to indexes/group-by/order-by, which keeps Pareto sets narrow on
    /// very wide queries (the 40–100-relation scaling sweeps) where
    /// per-join orders would otherwise multiply plans far past memory.
    pub join_orders: bool,
    /// Register index key prefixes as produced interesting orders.
    pub index_orders: bool,
    /// Add constant/filter attributes as tested-only interesting orders
    /// (the paper's optional `O_T^I = {(r_name), (o_orderdate)}`).
    pub tested_selection_orders: bool,
    /// Register `group by`/`distinct` attribute sets as produced
    /// interesting groupings (hash aggregation produces them). Off
    /// reproduces the pure ICDE'04 ordering extraction.
    pub grouping_properties: bool,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions {
            join_orders: true,
            index_orders: true,
            tested_selection_orders: false,
            grouping_properties: true,
        }
    }
}

impl ExtractOptions {
    /// Extraction profile for the very wide scaling sweeps: no per-join
    /// or per-index interesting orders (only group-by/order-by
    /// requirements survive), so the DP's Pareto sets stay narrow while
    /// the join-FD sets — one per predicate, spilling past 64 — are
    /// kept in full.
    pub fn lean() -> Self {
        ExtractOptions {
            join_orders: false,
            index_orders: false,
            tested_selection_orders: false,
            grouping_properties: true,
        }
    }
}

/// The order-optimization input for one query, with the operator → FD-set
/// mapping the plan generator needs.
#[derive(Clone, Debug)]
pub struct ExtractedQuery {
    /// Interesting orders and FD sets (input to framework preparation).
    pub spec: InputSpec,
    /// FD-set handle per join edge (parallel to `Query::joins`).
    pub join_fd: Vec<FdSetId>,
    /// FD-set handle per constant predicate (parallel to
    /// `Query::constants`).
    pub const_fd: Vec<FdSetId>,
}

/// Runs the extraction.
pub fn extract(catalog: &Catalog, query: &Query, options: &ExtractOptions) -> ExtractedQuery {
    let mut spec = InputSpec::new();

    // Join attributes: single-attribute produced orders (what a merge
    // join tests for and a sort can produce) — §6.2's O_P^I.
    if options.join_orders {
        for j in &query.joins {
            spec.add_produced(Ordering::new(vec![j.left]));
            spec.add_produced(Ordering::new(vec![j.right]));
        }
    }
    // Grouping/ordering requirements are producible by a sort; the
    // group-by/distinct attribute *set* is additionally producible as a
    // grouping by a hash aggregate.
    if !query.group_by.is_empty() {
        spec.add_produced(Ordering::new(query.group_by.clone()));
    }
    if !query.distinct.is_empty() {
        spec.add_produced(Ordering::new(query.distinct.clone()));
    }
    if options.grouping_properties && !query.effective_group_by().is_empty() {
        spec.add_produced(Grouping::new(query.effective_group_by().to_vec()));
    }
    if !query.order_by.is_empty() {
        spec.add_produced(Ordering::new(query.order_by.clone()));
    }
    // Index scan outputs.
    if options.index_orders {
        for &rel in &query.relations {
            for index in &catalog.relation(rel).indexes {
                spec.add_produced(Ordering::new(index.key.clone()));
            }
        }
    }
    // Selection attributes, tested only.
    if options.tested_selection_orders {
        for c in &query.constants {
            spec.add_tested(Ordering::new(vec![c.attr]));
        }
        for f in &query.filters {
            spec.add_tested(Ordering::new(vec![f.attr]));
        }
    }

    // One FD set per operator that changes logical orderings.
    let join_fd = query
        .joins
        .iter()
        .map(|j| spec.add_fd_set(vec![Fd::equation(j.left, j.right)]))
        .collect();
    let const_fd = query
        .constants
        .iter()
        .map(|c| spec.add_fd_set(vec![Fd::constant(c.attr)]))
        .collect();

    ExtractedQuery {
        spec,
        join_fd,
        const_fd,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;

    fn simple() -> (Catalog, Query) {
        let mut c = Catalog::new();
        c.add_relation("persons", 10_000.0, &["id", "name", "jobid"]);
        c.add_relation("jobs", 100.0, &["id", "salary"]);
        let jobs = c.relation_id("jobs").unwrap();
        let jid = c.attr("jobs.id");
        c.add_index(jobs, vec![jid], true);
        let q = QueryBuilder::new(&c)
            .relation("persons")
            .relation("jobs")
            .join("persons.jobid", "jobs.id", 0.01)
            .filter("jobs.salary", 0.3)
            .order_by(&["jobs.id", "persons.name"])
            .build();
        (c, q)
    }

    #[test]
    fn section_6_1_interesting_orders() {
        // §6.1: Q_I^P = {(id), (jobid), (id,name)}, Q_I^T = {(salary)};
        // F = {jobid = id}. Our (id,name) comes from the order-by —
        // order by jobs.id, persons.name.
        let (c, q) = simple();
        let ex = extract(
            &c,
            &q,
            &ExtractOptions {
                tested_selection_orders: true,
                ..ExtractOptions::default()
            },
        );
        let produced: Vec<&Ordering> = ex
            .spec
            .produced()
            .iter()
            .filter_map(|p| p.as_ordering())
            .collect();
        let jid = c.attr("jobs.id");
        let pjobid = c.attr("persons.jobid");
        let pname = c.attr("persons.name");
        assert!(produced.contains(&&Ordering::new(vec![jid])));
        assert!(produced.contains(&&Ordering::new(vec![pjobid])));
        assert!(produced.contains(&&Ordering::new(vec![jid, pname])));
        assert_eq!(produced.len(), 3);
        assert_eq!(
            ex.spec.interesting_groupings().count(),
            0,
            "no group-by, no groupings"
        );
        // (salary) tested only.
        let sal = c.attr("jobs.salary");
        assert_eq!(ex.spec.tested(), &[Ordering::new(vec![sal]).into()]);
        // One FD set: the equation.
        assert_eq!(ex.spec.fd_sets().len(), 1);
        assert_eq!(ex.join_fd.len(), 1);
        assert!(ex.const_fd.is_empty());
    }

    #[test]
    fn duplicate_fd_sets_share_handles() {
        let mut c = Catalog::new();
        c.add_relation("a", 10.0, &["x"]);
        c.add_relation("b", 10.0, &["y"]);
        let mut q = QueryBuilder::new(&c)
            .relation("a")
            .relation("b")
            .join("a.x", "b.y", 0.5)
            .build();
        // The same predicate twice (e.g. listed redundantly).
        q.joins.push(q.joins[0].clone());
        let ex = extract(&c, &q, &ExtractOptions::default());
        assert_eq!(ex.join_fd[0], ex.join_fd[1]);
        assert_eq!(ex.spec.fd_sets().len(), 1);
    }

    #[test]
    fn group_by_becomes_produced_order_and_grouping() {
        let mut c = Catalog::new();
        c.add_relation("t", 10.0, &["g", "v"]);
        c.add_relation("u", 10.0, &["w"]);
        let q = QueryBuilder::new(&c)
            .relation("t")
            .relation("u")
            .join("t.v", "u.w", 0.1)
            .group_by(&["t.g"])
            .build();
        let ex = extract(&c, &q, &ExtractOptions::default());
        let g = c.attr("t.g");
        assert!(ex.spec.produced().contains(&Ordering::new(vec![g]).into()));
        assert!(ex.spec.produced().contains(&Grouping::new(vec![g]).into()));
        // With grouping extraction off, only the ordering remains.
        let ex = extract(
            &c,
            &q,
            &ExtractOptions {
                grouping_properties: false,
                ..ExtractOptions::default()
            },
        );
        assert_eq!(ex.spec.interesting_groupings().count(), 0);
    }

    #[test]
    fn distinct_becomes_produced_order_and_grouping() {
        let mut c = Catalog::new();
        c.add_relation("t", 10.0, &["g", "v"]);
        c.add_relation("u", 10.0, &["w"]);
        let q = QueryBuilder::new(&c)
            .relation("t")
            .relation("u")
            .join("t.v", "u.w", 0.1)
            .distinct(&["t.g", "t.v"])
            .build();
        let ex = extract(&c, &q, &ExtractOptions::default());
        let g = c.attr("t.g");
        let v = c.attr("t.v");
        assert!(ex
            .spec
            .produced()
            .contains(&Ordering::new(vec![g, v]).into()));
        assert!(ex
            .spec
            .produced()
            .contains(&Grouping::new(vec![g, v]).into()));
    }

    #[test]
    fn lean_extraction_keeps_fds_but_drops_join_and_index_orders() {
        let (c, q) = simple();
        let ex = extract(&c, &q, &ExtractOptions::lean());
        // All FD sets survive (the plan generator's inference needs
        // them), but the only produced order left is the order-by.
        assert_eq!(ex.spec.fd_sets().len(), 1);
        assert_eq!(ex.join_fd.len(), 1);
        let jid = c.attr("jobs.id");
        let pname = c.attr("persons.name");
        let produced: Vec<&Ordering> = ex
            .spec
            .produced()
            .iter()
            .filter_map(|p| p.as_ordering())
            .collect();
        assert_eq!(produced, vec![&Ordering::new(vec![jid, pname])]);
    }

    #[test]
    fn constants_become_fd_sets() {
        let mut c = Catalog::new();
        c.add_relation("t", 10.0, &["g", "v"]);
        c.add_relation("u", 10.0, &["w"]);
        let q = QueryBuilder::new(&c)
            .relation("t")
            .relation("u")
            .join("t.v", "u.w", 0.1)
            .constant("t.g", 0.05)
            .build();
        let ex = extract(&c, &q, &ExtractOptions::default());
        assert_eq!(ex.const_fd.len(), 1);
        assert_ne!(ex.const_fd[0], ex.join_fd[0]);
        assert_eq!(ex.spec.fd_sets().len(), 2);
    }
}
