//! Fluent, catalog-aware query construction.

use crate::graph::{AggCall, AggFunc, ConstPred, FilterPred, JoinEdge, Query};
use ofw_catalog::Catalog;

/// Builds a [`Query`] against a [`Catalog`] using attribute names.
///
/// ```
/// use ofw_catalog::Catalog;
/// use ofw_query::QueryBuilder;
///
/// let mut c = Catalog::new();
/// c.add_relation("persons", 10_000.0, &["id", "name", "jobid"]);
/// c.add_relation("jobs", 100.0, &["id", "salary"]);
/// let q = QueryBuilder::new(&c)
///     .relation("persons")
///     .relation("jobs")
///     .join("persons.jobid", "jobs.id", 0.01)
///     .filter("jobs.salary", 0.3)
///     .order_by(&["jobs.id", "persons.name"])
///     .build();
/// assert!(q.is_fully_connected());
/// ```
pub struct QueryBuilder<'a> {
    catalog: &'a Catalog,
    query: Query,
}

impl<'a> QueryBuilder<'a> {
    /// Starts an empty query over `catalog`.
    pub fn new(catalog: &'a Catalog) -> Self {
        QueryBuilder {
            catalog,
            query: Query::new(),
        }
    }

    /// Adds a relation (by catalog name) to the `from` clause.
    pub fn relation(mut self, name: &str) -> Self {
        let rel = self
            .catalog
            .relation_id(name)
            .unwrap_or_else(|| panic!("unknown relation {name}"));
        self.query.add_relation(self.catalog, rel);
        self
    }

    /// Adds an equi-join predicate `left = right`.
    pub fn join(mut self, left: &str, right: &str, selectivity: f64) -> Self {
        assert!(selectivity > 0.0 && selectivity <= 1.0);
        self.query.joins.push(JoinEdge {
            left: self.catalog.attr(left),
            right: self.catalog.attr(right),
            selectivity,
        });
        self
    }

    /// Adds a constant predicate `attr = const`.
    pub fn constant(mut self, attr: &str, selectivity: f64) -> Self {
        assert!(selectivity > 0.0 && selectivity <= 1.0);
        self.query.constants.push(ConstPred {
            attr: self.catalog.attr(attr),
            selectivity,
        });
        self
    }

    /// Adds a non-equality filter (no functional dependency).
    pub fn filter(mut self, attr: &str, selectivity: f64) -> Self {
        assert!(selectivity > 0.0 && selectivity <= 1.0);
        self.query.filters.push(FilterPred {
            attr: self.catalog.attr(attr),
            selectivity,
        });
        self
    }

    /// Sets the `group by` attribute list.
    pub fn group_by(mut self, attrs: &[&str]) -> Self {
        self.query.group_by = attrs.iter().map(|a| self.catalog.attr(a)).collect();
        self
    }

    /// Sets the `select distinct` attribute list (duplicate elimination
    /// over these columns — a grouping-shaped requirement).
    pub fn distinct(mut self, attrs: &[&str]) -> Self {
        self.query.distinct = attrs.iter().map(|a| self.catalog.attr(a)).collect();
        self
    }

    /// Adds an aggregate call over an attribute, e.g.
    /// `.aggregate(AggFunc::Sum, "lineitem.l_extendedprice")`.
    pub fn aggregate(mut self, func: AggFunc, attr: &str) -> Self {
        self.query.aggregates.push(AggCall {
            func,
            input: Some(self.catalog.attr(attr)),
        });
        self
    }

    /// Adds a `count(*)` aggregate call.
    pub fn count_star(mut self) -> Self {
        self.query.aggregates.push(AggCall {
            func: AggFunc::Count,
            input: None,
        });
        self
    }

    /// Sets the `order by` attribute list.
    pub fn order_by(mut self, attrs: &[&str]) -> Self {
        self.query.order_by = attrs.iter().map(|a| self.catalog.attr(a)).collect();
        self
    }

    /// Finishes construction.
    pub fn build(self) -> Query {
        self.query
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation("persons", 10_000.0, &["id", "name", "jobid"]);
        c.add_relation("jobs", 100.0, &["id", "salary"]);
        c
    }

    #[test]
    fn builds_the_section_6_1_query() {
        // select * from persons, jobs
        // where persons.jobid = jobs.id and jobs.salary > 50000
        // order by jobs.id, persons.name
        let c = catalog();
        let q = QueryBuilder::new(&c)
            .relation("persons")
            .relation("jobs")
            .join("persons.jobid", "jobs.id", 0.01)
            .filter("jobs.salary", 0.3)
            .order_by(&["jobs.id", "persons.name"])
            .build();
        assert_eq!(q.num_relations(), 2);
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.filters.len(), 1);
        assert_eq!(q.order_by.len(), 2);
        assert_eq!(q.owner(c.attr("jobs.id")), 1);
    }

    #[test]
    fn aggregates_attach_to_the_query() {
        let c = catalog();
        let q = QueryBuilder::new(&c)
            .relation("persons")
            .relation("jobs")
            .join("persons.jobid", "jobs.id", 0.01)
            .group_by(&["persons.jobid"])
            .aggregate(AggFunc::Sum, "jobs.salary")
            .count_star()
            .build();
        assert!(q.has_aggregates());
        assert_eq!(q.aggregates.len(), 2);
        assert_eq!(q.aggregates[0].func, AggFunc::Sum);
        assert_eq!(q.aggregates[0].input, Some(c.attr("jobs.salary")));
        assert_eq!(q.aggregates[1].input, None);
    }

    #[test]
    #[should_panic(expected = "unknown relation")]
    fn unknown_relation_panics() {
        let c = catalog();
        let _ = QueryBuilder::new(&c).relation("nope");
    }

    #[test]
    #[should_panic]
    fn zero_selectivity_rejected() {
        let c = catalog();
        let _ = QueryBuilder::new(&c)
            .relation("persons")
            .relation("jobs")
            .join("persons.jobid", "jobs.id", 0.0);
    }
}
