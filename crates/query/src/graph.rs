//! The select-project-join query model.
//!
//! Relations participating in a query are numbered `0..n` ("query
//! relations"). Relation sets come in two flavors: the
//! [`BitSet`]-based API (`*_set` methods) the plan generator uses, which
//! scales to arbitrarily many relations, and a legacy `u64`-bitmask API
//! kept for small-query convenience (capped at 64 relations, far beyond
//! what exhaustive DP join enumeration can handle anyway — the paper
//! evaluates up to 10).

use ofw_catalog::{AttrId, Catalog, RelId};
use ofw_common::{BitSet, FxHashMap};

/// An equi-join predicate `left = right` between two query relations.
#[derive(Clone, Debug)]
pub struct JoinEdge {
    /// Attribute on one side.
    pub left: AttrId,
    /// Attribute on the other side.
    pub right: AttrId,
    /// Join selectivity estimate in `(0, 1]`.
    pub selectivity: f64,
}

/// An equality-with-constant predicate `attr = const`.
#[derive(Clone, Debug)]
pub struct ConstPred {
    /// The bound attribute.
    pub attr: AttrId,
    /// Selectivity estimate in `(0, 1]`.
    pub selectivity: f64,
}

/// A non-equality filter (e.g. `salary > 50000`): affects cardinality
/// but induces no functional dependency.
#[derive(Clone, Debug)]
pub struct FilterPred {
    /// The filtered attribute.
    pub attr: AttrId,
    /// Selectivity estimate in `(0, 1]`.
    pub selectivity: f64,
}

/// An aggregate function over `group by` groups.
///
/// The decomposability metadata drives aggregation *placement*: an
/// aggregate can be pushed below a join only when partial per-group
/// results computed early can be combined into the final result at the
/// root (Yan & Larson's eager/lazy transformations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    /// `count(*)` / `count(attr)`.
    Count,
    /// `sum(attr)`.
    Sum,
    /// `min(attr)`.
    Min,
    /// `max(attr)`.
    Max,
}

impl AggFunc {
    /// Whether partial aggregates can be combined into the final result
    /// (SUM of SUMs, COUNT of COUNTs summed, MIN of MINs, MAX of MAXes)
    /// — the precondition for *eager group-by* push-down on the side
    /// carrying the aggregated attribute.
    pub fn is_decomposable(&self) -> bool {
        // All four classic functions decompose; AVG would be modeled as
        // SUM + COUNT.
        true
    }

    /// Whether join-induced row duplication leaves the final result
    /// unchanged (MIN/MAX: seeing a value twice changes nothing). Such
    /// functions tolerate *eager count* push-down on the opposite side
    /// without any count column.
    pub fn duplicate_insensitive(&self) -> bool {
        matches!(self, AggFunc::Min | AggFunc::Max)
    }

    /// Whether duplicated partials can be repaired by multiplying with a
    /// join-partner group count (COUNT and SUM scale linearly; MIN/MAX
    /// need no scaling, but cannot *provide* a meaningful count either).
    pub fn count_scalable(&self) -> bool {
        matches!(self, AggFunc::Count | AggFunc::Sum)
    }

    /// Display name (`sum`, `count`, …).
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// One aggregate call in the select list, e.g. `sum(l_extendedprice)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AggCall {
    /// The aggregate function.
    pub func: AggFunc,
    /// Its input attribute; `None` for `count(*)`.
    pub input: Option<AttrId>,
}

/// A query over a catalog: relations, predicates, grouping and ordering.
#[derive(Clone, Debug, Default)]
pub struct Query {
    /// Catalog relations in query-relation order (index = query-relation id).
    pub relations: Vec<RelId>,
    /// Equi-join predicates.
    pub joins: Vec<JoinEdge>,
    /// `attr = const` predicates.
    pub constants: Vec<ConstPred>,
    /// Non-FD filters.
    pub filters: Vec<FilterPred>,
    /// `group by` attributes (an interesting order *and* an interesting
    /// grouping).
    pub group_by: Vec<AttrId>,
    /// `select distinct` attributes — duplicate elimination over these
    /// columns, a grouping-shaped requirement with no aggregates.
    pub distinct: Vec<AttrId>,
    /// `order by` attributes (the query's required output order).
    pub order_by: Vec<AttrId>,
    /// Aggregate functions computed per group (SUM/COUNT/MIN/MAX).
    pub aggregates: Vec<AggCall>,
    /// Owning query relation per attribute.
    attr_owner: FxHashMap<AttrId, usize>,
}

impl Query {
    /// Creates an empty query.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a catalog relation; returns its query-relation index. There
    /// is no relation-count ceiling: the set-based API below handles any
    /// width (only the legacy `u64` helpers are capped at 64).
    pub fn add_relation(&mut self, catalog: &Catalog, rel: RelId) -> usize {
        let q = self.relations.len();
        for &a in &catalog.relation(rel).attrs {
            self.attr_owner.insert(a, q);
        }
        self.relations.push(rel);
        q
    }

    /// The grouping-shaped aggregation requirement: `group by` if
    /// present, else `select distinct` (duplicate elimination is an
    /// aggregation with no aggregate functions).
    pub fn effective_group_by(&self) -> &[AttrId] {
        if !self.group_by.is_empty() {
            &self.group_by
        } else {
            &self.distinct
        }
    }

    /// Query relation owning `attr` (panics for foreign attributes).
    pub fn owner(&self, attr: AttrId) -> usize {
        self.attr_owner[&attr]
    }

    /// Whether the query computes any aggregate functions.
    pub fn has_aggregates(&self) -> bool {
        !self.aggregates.is_empty()
    }

    /// The input attributes of all aggregate calls (`count(*)`
    /// contributes none).
    pub fn agg_input_attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.aggregates.iter().filter_map(|a| a.input)
    }

    /// Number of query relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Bitmask with every query relation set (legacy `u64` API, ≤ 64
    /// relations).
    pub fn all_relations_mask(&self) -> u64 {
        assert!(self.relations.len() <= 64, "use all_relations_set()");
        if self.relations.len() == 64 {
            u64::MAX
        } else {
            (1u64 << self.relations.len()) - 1
        }
    }

    /// Singleton relation set (universe = the query's relation count —
    /// every set handed to the set-based API must share it).
    pub fn relation_set(&self, qrel: usize) -> BitSet {
        let mut s = BitSet::new(self.relations.len());
        s.insert(qrel);
        s
    }

    /// The set of all query relations.
    pub fn all_relations_set(&self) -> BitSet {
        let mut s = BitSet::new(self.relations.len());
        for q in 0..self.relations.len() {
            s.insert(q);
        }
        s
    }

    /// Join edges applicable when joining relation sets `a` and `b`
    /// (edges with one endpoint in each) as indexes into `joins` —
    /// the [`BitSet`] twin of [`connecting_joins`](Self::connecting_joins).
    pub fn connecting_joins_set<'a>(
        &'a self,
        a: &'a BitSet,
        b: &'a BitSet,
    ) -> impl Iterator<Item = usize> + 'a {
        self.joins.iter().enumerate().filter_map(move |(i, j)| {
            let l = self.owner(j.left);
            let r = self.owner(j.right);
            let cross = (a.contains(l) && b.contains(r)) || (b.contains(l) && a.contains(r));
            cross.then_some(i)
        })
    }

    /// True if the join graph restricted to `set` is connected (the
    /// [`BitSet`] twin of [`is_connected`](Self::is_connected)).
    pub fn is_connected_set(&self, set: &BitSet) -> bool {
        let Some(first) = set.iter().next() else {
            return false;
        };
        let mut seen = BitSet::new(self.relations.len());
        seen.insert(first);
        loop {
            let mut grew = false;
            for j in &self.joins {
                let l = self.owner(j.left);
                let r = self.owner(j.right);
                if !set.contains(l) || !set.contains(r) {
                    continue; // edge leaves the subgraph
                }
                if seen.contains(l) != seen.contains(r) {
                    seen.insert(l);
                    seen.insert(r);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        set.iter().all(|q| seen.contains(q))
    }

    /// Join edges applicable when joining relation sets `a` and `b`
    /// (edges with one endpoint in each) as indexes into `joins` —
    /// legacy `u64` API, ≤ 64 relations.
    pub fn connecting_joins(&self, a: u64, b: u64) -> impl Iterator<Item = usize> + '_ {
        assert!(self.relations.len() <= 64, "use connecting_joins_set()");
        self.joins.iter().enumerate().filter_map(move |(i, j)| {
            let l = 1u64 << self.owner(j.left);
            let r = 1u64 << self.owner(j.right);
            let cross = (l & a != 0 && r & b != 0) || (l & b != 0 && r & a != 0);
            cross.then_some(i)
        })
    }

    /// True if the join graph restricted to `mask` is connected (legacy
    /// `u64` API, ≤ 64 relations).
    pub fn is_connected(&self, mask: u64) -> bool {
        assert!(self.relations.len() <= 64, "use is_connected_set()");
        if mask == 0 {
            return false;
        }
        let mut seen = 1u64 << mask.trailing_zeros();
        loop {
            let mut grew = false;
            for j in &self.joins {
                let l = 1u64 << self.owner(j.left);
                let r = 1u64 << self.owner(j.right);
                if (l | r) & mask != (l | r) {
                    continue; // edge leaves the subgraph
                }
                if (seen & l != 0) != (seen & r != 0) {
                    seen |= l | r;
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        seen & mask == mask
    }

    /// Whether the whole query graph is connected.
    pub fn is_fully_connected(&self) -> bool {
        self.is_connected_set(&self.all_relations_set())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> (Catalog, Query) {
        let mut c = Catalog::new();
        let mut q = Query::new();
        let mut prev: Option<AttrId> = None;
        for i in 0..n {
            let rel = c.add_relation(&format!("r{i}"), 1000.0, &["k", "f"]);
            q.add_relation(&c, rel);
            let k = c.attr(&format!("r{i}.k"));
            let f = c.attr(&format!("r{i}.f"));
            if let Some(p) = prev {
                q.joins.push(JoinEdge {
                    left: p,
                    right: k,
                    selectivity: 0.01,
                });
            }
            prev = Some(f);
        }
        (c, q)
    }

    #[test]
    fn ownership_and_masks() {
        let (c, q) = chain(3);
        assert_eq!(q.num_relations(), 3);
        assert_eq!(q.all_relations_mask(), 0b111);
        assert_eq!(q.owner(c.attr("r0.k")), 0);
        assert_eq!(q.owner(c.attr("r2.f")), 2);
    }

    #[test]
    fn connectivity_of_chain() {
        let (_, q) = chain(4);
        assert!(q.is_fully_connected());
        assert!(q.is_connected(0b0011));
        assert!(q.is_connected(0b0110));
        assert!(!q.is_connected(0b0101), "r0 and r2 are not adjacent");
        assert!(q.is_connected(0b0001));
        assert!(!q.is_connected(0));
    }

    #[test]
    fn connecting_joins_cross_the_cut() {
        let (_, q) = chain(3);
        // Edge 0 joins r0–r1, edge 1 joins r1–r2.
        let between: Vec<usize> = q.connecting_joins(0b001, 0b010).collect();
        assert_eq!(between, vec![0]);
        let between: Vec<usize> = q.connecting_joins(0b011, 0b100).collect();
        assert_eq!(between, vec![1]);
        let none: Vec<usize> = q.connecting_joins(0b001, 0b100).collect();
        assert!(none.is_empty());
    }

    #[test]
    fn disconnected_pieces_are_detected() {
        let (_, mut q) = chain(3);
        q.joins.pop(); // drop r1–r2
        assert!(!q.is_fully_connected());
        assert!(q.is_connected(0b011));
        assert!(!q.is_connected(0b110));
    }

    #[test]
    fn set_api_mirrors_mask_api() {
        let (_, q) = chain(4);
        for mask in 1u64..=q.all_relations_mask() {
            let set: BitSet = {
                let mut s = BitSet::new(q.num_relations());
                for i in 0..q.num_relations() {
                    if mask & (1 << i) != 0 {
                        s.insert(i);
                    }
                }
                s
            };
            assert_eq!(q.is_connected(mask), q.is_connected_set(&set), "{mask:b}");
        }
        let a = q.relation_set(0);
        let mut ab = a.clone();
        ab.union_with(&q.relation_set(1));
        let c = q.relation_set(2);
        assert_eq!(q.connecting_joins_set(&ab, &c).collect::<Vec<_>>(), [1]);
        assert_eq!(q.connecting_joins_set(&a, &c).count(), 0);
    }

    #[test]
    fn aggregate_metadata_classifies_placement_legality() {
        for f in [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max] {
            assert!(f.is_decomposable(), "{}", f.name());
        }
        assert!(AggFunc::Min.duplicate_insensitive());
        assert!(AggFunc::Max.duplicate_insensitive());
        assert!(!AggFunc::Sum.duplicate_insensitive());
        assert!(!AggFunc::Count.duplicate_insensitive());
        assert!(AggFunc::Sum.count_scalable());
        assert!(AggFunc::Count.count_scalable());
        assert!(!AggFunc::Min.count_scalable());

        let (c, mut q) = chain(2);
        assert!(!q.has_aggregates());
        q.aggregates.push(AggCall {
            func: AggFunc::Count,
            input: None,
        });
        q.aggregates.push(AggCall {
            func: AggFunc::Sum,
            input: Some(c.attr("r1.f")),
        });
        assert!(q.has_aggregates());
        assert_eq!(q.agg_input_attrs().collect::<Vec<_>>(), [c.attr("r1.f")]);
    }

    #[test]
    fn effective_group_by_prefers_group_by() {
        let (c, mut q) = chain(2);
        assert!(q.effective_group_by().is_empty());
        q.distinct = vec![c.attr("r0.k")];
        assert_eq!(q.effective_group_by(), &[c.attr("r0.k")]);
        q.group_by = vec![c.attr("r0.f")];
        assert_eq!(q.effective_group_by(), &[c.attr("r0.f")]);
    }
}
