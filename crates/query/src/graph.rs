//! The select-project-join query model.
//!
//! Relations participating in a query are numbered `0..n` ("query
//! relations"). Relation sets are [`BitSet`]s (the `*_set` methods), so
//! the model scales to arbitrarily many relations; the old `u64`-bitmask
//! convenience API (capped at 64 relations) is gone. For enumeration
//! that walks the join graph itself — neighborhoods, connectedness,
//! crossing edges — [`JoinGraph`] precomputes the adjacency structure
//! once and answers those queries without rescanning the predicate
//! list.

use ofw_catalog::{AttrId, Catalog, RelId};
use ofw_common::{BitSet, FxHashMap};

/// An equi-join predicate `left = right` between two query relations.
#[derive(Clone, Debug)]
pub struct JoinEdge {
    /// Attribute on one side.
    pub left: AttrId,
    /// Attribute on the other side.
    pub right: AttrId,
    /// Join selectivity estimate in `(0, 1]`.
    pub selectivity: f64,
}

/// An equality-with-constant predicate `attr = const`.
#[derive(Clone, Debug)]
pub struct ConstPred {
    /// The bound attribute.
    pub attr: AttrId,
    /// Selectivity estimate in `(0, 1]`.
    pub selectivity: f64,
}

/// A non-equality filter (e.g. `salary > 50000`): affects cardinality
/// but induces no functional dependency.
#[derive(Clone, Debug)]
pub struct FilterPred {
    /// The filtered attribute.
    pub attr: AttrId,
    /// Selectivity estimate in `(0, 1]`.
    pub selectivity: f64,
}

/// An aggregate function over `group by` groups.
///
/// The decomposability metadata drives aggregation *placement*: an
/// aggregate can be pushed below a join only when partial per-group
/// results computed early can be combined into the final result at the
/// root (Yan & Larson's eager/lazy transformations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    /// `count(*)` / `count(attr)`.
    Count,
    /// `sum(attr)`.
    Sum,
    /// `min(attr)`.
    Min,
    /// `max(attr)`.
    Max,
}

impl AggFunc {
    /// Whether partial aggregates can be combined into the final result
    /// (SUM of SUMs, COUNT of COUNTs summed, MIN of MINs, MAX of MAXes)
    /// — the precondition for *eager group-by* push-down on the side
    /// carrying the aggregated attribute.
    pub fn is_decomposable(&self) -> bool {
        // All four classic functions decompose; AVG would be modeled as
        // SUM + COUNT.
        true
    }

    /// Whether join-induced row duplication leaves the final result
    /// unchanged (MIN/MAX: seeing a value twice changes nothing). Such
    /// functions tolerate *eager count* push-down on the opposite side
    /// without any count column.
    pub fn duplicate_insensitive(&self) -> bool {
        matches!(self, AggFunc::Min | AggFunc::Max)
    }

    /// Whether duplicated partials can be repaired by multiplying with a
    /// join-partner group count (COUNT and SUM scale linearly; MIN/MAX
    /// need no scaling, but cannot *provide* a meaningful count either).
    pub fn count_scalable(&self) -> bool {
        matches!(self, AggFunc::Count | AggFunc::Sum)
    }

    /// Display name (`sum`, `count`, …).
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// One aggregate call in the select list, e.g. `sum(l_extendedprice)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AggCall {
    /// The aggregate function.
    pub func: AggFunc,
    /// Its input attribute; `None` for `count(*)`.
    pub input: Option<AttrId>,
}

/// A query over a catalog: relations, predicates, grouping and ordering.
#[derive(Clone, Debug, Default)]
pub struct Query {
    /// Catalog relations in query-relation order (index = query-relation id).
    pub relations: Vec<RelId>,
    /// Equi-join predicates.
    pub joins: Vec<JoinEdge>,
    /// `attr = const` predicates.
    pub constants: Vec<ConstPred>,
    /// Non-FD filters.
    pub filters: Vec<FilterPred>,
    /// `group by` attributes (an interesting order *and* an interesting
    /// grouping).
    pub group_by: Vec<AttrId>,
    /// `select distinct` attributes — duplicate elimination over these
    /// columns, a grouping-shaped requirement with no aggregates.
    pub distinct: Vec<AttrId>,
    /// `order by` attributes (the query's required output order).
    pub order_by: Vec<AttrId>,
    /// Aggregate functions computed per group (SUM/COUNT/MIN/MAX).
    pub aggregates: Vec<AggCall>,
    /// Owning query relation per attribute.
    attr_owner: FxHashMap<AttrId, usize>,
}

impl Query {
    /// Creates an empty query.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a catalog relation; returns its query-relation index. There
    /// is no relation-count ceiling: the set-based API below handles any
    /// width (only the legacy `u64` helpers are capped at 64).
    pub fn add_relation(&mut self, catalog: &Catalog, rel: RelId) -> usize {
        let q = self.relations.len();
        for &a in &catalog.relation(rel).attrs {
            self.attr_owner.insert(a, q);
        }
        self.relations.push(rel);
        q
    }

    /// The grouping-shaped aggregation requirement: `group by` if
    /// present, else `select distinct` (duplicate elimination is an
    /// aggregation with no aggregate functions).
    pub fn effective_group_by(&self) -> &[AttrId] {
        if !self.group_by.is_empty() {
            &self.group_by
        } else {
            &self.distinct
        }
    }

    /// Query relation owning `attr` (panics for foreign attributes).
    pub fn owner(&self, attr: AttrId) -> usize {
        self.attr_owner[&attr]
    }

    /// Whether the query computes any aggregate functions.
    pub fn has_aggregates(&self) -> bool {
        !self.aggregates.is_empty()
    }

    /// The input attributes of all aggregate calls (`count(*)`
    /// contributes none).
    pub fn agg_input_attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.aggregates.iter().filter_map(|a| a.input)
    }

    /// Number of query relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Singleton relation set (universe = the query's relation count —
    /// every set handed to the set-based API must share it).
    pub fn relation_set(&self, qrel: usize) -> BitSet {
        let mut s = BitSet::new(self.relations.len());
        s.insert(qrel);
        s
    }

    /// The set of all query relations.
    pub fn all_relations_set(&self) -> BitSet {
        let mut s = BitSet::new(self.relations.len());
        for q in 0..self.relations.len() {
            s.insert(q);
        }
        s
    }

    /// Join edges applicable when joining relation sets `a` and `b`
    /// (edges with one endpoint in each) as indexes into `joins`.
    pub fn connecting_joins_set<'a>(
        &'a self,
        a: &'a BitSet,
        b: &'a BitSet,
    ) -> impl Iterator<Item = usize> + 'a {
        self.joins.iter().enumerate().filter_map(move |(i, j)| {
            let l = self.owner(j.left);
            let r = self.owner(j.right);
            let cross = (a.contains(l) && b.contains(r)) || (b.contains(l) && a.contains(r));
            cross.then_some(i)
        })
    }

    /// True if the join graph restricted to `set` is connected.
    pub fn is_connected_set(&self, set: &BitSet) -> bool {
        let Some(first) = set.iter().next() else {
            return false;
        };
        let mut seen = BitSet::new(self.relations.len());
        seen.insert(first);
        loop {
            let mut grew = false;
            for j in &self.joins {
                let l = self.owner(j.left);
                let r = self.owner(j.right);
                if !set.contains(l) || !set.contains(r) {
                    continue; // edge leaves the subgraph
                }
                if seen.contains(l) != seen.contains(r) {
                    seen.insert(l);
                    seen.insert(r);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        set.iter().all(|q| seen.contains(q))
    }

    /// Whether the whole query graph is connected.
    pub fn is_fully_connected(&self) -> bool {
        self.is_connected_set(&self.all_relations_set())
    }
}

/// Precomputed adjacency view of a query's join graph — the structure
/// neighborhood-driven join enumeration (DPccp/DPhyp-style) walks.
///
/// The [`Query`] predicate-list methods answer set questions by
/// rescanning every join edge; fine for one-off probes, ruinous inside
/// an enumerator that asks them millions of times. `JoinGraph` resolves
/// each edge's endpoint relations once and keeps per-relation neighbor
/// [`BitSet`]s, so neighborhood expansion and crossing-edge tests are
/// array reads.
pub struct JoinGraph {
    /// Per-relation neighbor sets (universe = the query's relation count).
    neighbors: Vec<BitSet>,
    /// Per-edge endpoints as query-relation indices, in `joins` order.
    endpoints: Vec<(usize, usize)>,
    n: usize,
}

impl JoinGraph {
    /// Resolves `query`'s join edges into an adjacency structure.
    pub fn new(query: &Query) -> Self {
        let n = query.num_relations();
        let mut neighbors = vec![BitSet::new(n); n];
        let mut endpoints = Vec::with_capacity(query.joins.len());
        for j in &query.joins {
            let l = query.owner(j.left);
            let r = query.owner(j.right);
            endpoints.push((l, r));
            if l != r {
                neighbors[l].insert(r);
                neighbors[r].insert(l);
            }
        }
        JoinGraph {
            neighbors,
            endpoints,
            n,
        }
    }

    /// Number of query relations (the universe of every set handed in).
    pub fn num_relations(&self) -> usize {
        self.n
    }

    /// Relations directly joined to `qrel`.
    pub fn neighbors(&self, qrel: usize) -> &BitSet {
        &self.neighbors[qrel]
    }

    /// Endpoint relations of join edge `e`, in `joins` order.
    pub fn edge_endpoints(&self, e: usize) -> (usize, usize) {
        self.endpoints[e]
    }

    /// The neighborhood `N(s, x)`: relations adjacent to `s` that lie
    /// neither in `s` nor in the forbidden set `x` — the csg/cmp
    /// expansion frontier of hypergraph enumeration (min-index
    /// enumeration passes the already-covered prefix as `x`).
    pub fn neighborhood(&self, s: &BitSet, x: &BitSet) -> BitSet {
        let mut nb = BitSet::new(self.n);
        for i in s.iter() {
            nb.union_with(&self.neighbors[i]);
        }
        nb.difference_with(s);
        nb.difference_with(x);
        nb
    }

    /// Whether at least one join edge crosses between the disjoint sets
    /// `a` and `b` (the cross-product guard, without materializing the
    /// edge list).
    pub fn connects(&self, a: &BitSet, b: &BitSet) -> bool {
        self.endpoints
            .iter()
            .any(|&(l, r)| (a.contains(l) && b.contains(r)) || (b.contains(l) && a.contains(r)))
    }

    /// Join-edge indexes crossing between the disjoint sets `a` and `b`,
    /// ascending — the precomputed twin of
    /// [`Query::connecting_joins_set`].
    pub fn connecting_edges<'a>(
        &'a self,
        a: &'a BitSet,
        b: &'a BitSet,
    ) -> impl Iterator<Item = usize> + 'a {
        self.endpoints
            .iter()
            .enumerate()
            .filter_map(move |(i, &(l, r))| {
                let cross = (a.contains(l) && b.contains(r)) || (b.contains(l) && a.contains(r));
                cross.then_some(i)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> (Catalog, Query) {
        let mut c = Catalog::new();
        let mut q = Query::new();
        let mut prev: Option<AttrId> = None;
        for i in 0..n {
            let rel = c.add_relation(&format!("r{i}"), 1000.0, &["k", "f"]);
            q.add_relation(&c, rel);
            let k = c.attr(&format!("r{i}.k"));
            let f = c.attr(&format!("r{i}.f"));
            if let Some(p) = prev {
                q.joins.push(JoinEdge {
                    left: p,
                    right: k,
                    selectivity: 0.01,
                });
            }
            prev = Some(f);
        }
        (c, q)
    }

    /// Builds the subset of query relations listed in `members`.
    fn set(n: usize, members: &[usize]) -> BitSet {
        let mut s = BitSet::new(n);
        for &m in members {
            s.insert(m);
        }
        s
    }

    #[test]
    fn ownership_and_masks() {
        let (c, q) = chain(3);
        assert_eq!(q.num_relations(), 3);
        assert_eq!(q.all_relations_set(), set(3, &[0, 1, 2]));
        assert_eq!(q.owner(c.attr("r0.k")), 0);
        assert_eq!(q.owner(c.attr("r2.f")), 2);
    }

    #[test]
    fn connectivity_of_chain() {
        let (_, q) = chain(4);
        assert!(q.is_fully_connected());
        assert!(q.is_connected_set(&set(4, &[0, 1])));
        assert!(q.is_connected_set(&set(4, &[1, 2])));
        assert!(
            !q.is_connected_set(&set(4, &[0, 2])),
            "r0 and r2 are not adjacent"
        );
        assert!(q.is_connected_set(&set(4, &[0])));
        assert!(!q.is_connected_set(&set(4, &[])));
    }

    #[test]
    fn connecting_joins_cross_the_cut() {
        let (_, q) = chain(3);
        // Edge 0 joins r0–r1, edge 1 joins r1–r2.
        let between: Vec<usize> = q
            .connecting_joins_set(&set(3, &[0]), &set(3, &[1]))
            .collect();
        assert_eq!(between, vec![0]);
        let between: Vec<usize> = q
            .connecting_joins_set(&set(3, &[0, 1]), &set(3, &[2]))
            .collect();
        assert_eq!(between, vec![1]);
        let none: Vec<usize> = q
            .connecting_joins_set(&set(3, &[0]), &set(3, &[2]))
            .collect();
        assert!(none.is_empty());
    }

    #[test]
    fn disconnected_pieces_are_detected() {
        let (_, mut q) = chain(3);
        q.joins.pop(); // drop r1–r2
        assert!(!q.is_fully_connected());
        assert!(q.is_connected_set(&set(3, &[0, 1])));
        assert!(!q.is_connected_set(&set(3, &[1, 2])));
    }

    #[test]
    fn join_graph_mirrors_the_predicate_scan() {
        let (_, q) = chain(4);
        let g = JoinGraph::new(&q);
        assert_eq!(g.num_relations(), 4);
        // Every subset pair: the precomputed edge iterator and the
        // rescanning Query method must agree exactly.
        for a_bits in 0usize..16 {
            for b_bits in 0usize..16 {
                if a_bits & b_bits != 0 {
                    continue;
                }
                let a = set(
                    4,
                    &(0..4).filter(|i| a_bits >> i & 1 == 1).collect::<Vec<_>>(),
                );
                let b = set(
                    4,
                    &(0..4).filter(|i| b_bits >> i & 1 == 1).collect::<Vec<_>>(),
                );
                let scan: Vec<usize> = q.connecting_joins_set(&a, &b).collect();
                let fast: Vec<usize> = g.connecting_edges(&a, &b).collect();
                assert_eq!(scan, fast, "a={a_bits:b} b={b_bits:b}");
                assert_eq!(g.connects(&a, &b), !scan.is_empty());
            }
        }
        assert_eq!(g.edge_endpoints(0), (0, 1));
        assert_eq!(g.edge_endpoints(2), (2, 3));
    }

    #[test]
    fn neighborhood_excludes_the_set_and_the_forbidden() {
        let (_, q) = chain(5);
        let g = JoinGraph::new(&q);
        assert_eq!(g.neighbors(0), &set(5, &[1]));
        assert_eq!(g.neighbors(2), &set(5, &[1, 3]));
        // N({1,2}, ∅) = {0, 3}; forbidding {0} leaves {3}; the set
        // itself is never its own neighbor.
        let s = set(5, &[1, 2]);
        assert_eq!(g.neighborhood(&s, &set(5, &[])), set(5, &[0, 3]));
        assert_eq!(g.neighborhood(&s, &set(5, &[0])), set(5, &[3]));
        assert_eq!(g.neighborhood(&s, &set(5, &[0, 3])), set(5, &[]));
        // A full set has an empty neighborhood.
        assert_eq!(
            g.neighborhood(&q.all_relations_set(), &set(5, &[])),
            set(5, &[])
        );
    }

    #[test]
    fn aggregate_metadata_classifies_placement_legality() {
        for f in [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max] {
            assert!(f.is_decomposable(), "{}", f.name());
        }
        assert!(AggFunc::Min.duplicate_insensitive());
        assert!(AggFunc::Max.duplicate_insensitive());
        assert!(!AggFunc::Sum.duplicate_insensitive());
        assert!(!AggFunc::Count.duplicate_insensitive());
        assert!(AggFunc::Sum.count_scalable());
        assert!(AggFunc::Count.count_scalable());
        assert!(!AggFunc::Min.count_scalable());

        let (c, mut q) = chain(2);
        assert!(!q.has_aggregates());
        q.aggregates.push(AggCall {
            func: AggFunc::Count,
            input: None,
        });
        q.aggregates.push(AggCall {
            func: AggFunc::Sum,
            input: Some(c.attr("r1.f")),
        });
        assert!(q.has_aggregates());
        assert_eq!(q.agg_input_attrs().collect::<Vec<_>>(), [c.attr("r1.f")]);
    }

    #[test]
    fn effective_group_by_prefers_group_by() {
        let (c, mut q) = chain(2);
        assert!(q.effective_group_by().is_empty());
        q.distinct = vec![c.attr("r0.k")];
        assert_eq!(q.effective_group_by(), &[c.attr("r0.k")]);
        q.group_by = vec![c.attr("r0.f")];
        assert_eq!(q.effective_group_by(), &[c.attr("r0.f")]);
    }
}
