//! The select-project-join query model.
//!
//! Relations participating in a query are numbered `0..n` ("query
//! relations"); sets of them are `u64` bitmasks, which caps queries at 64
//! relations — far beyond what dynamic-programming join enumeration can
//! handle anyway (the paper evaluates up to 10).

use ofw_catalog::{AttrId, Catalog, RelId};
use ofw_common::FxHashMap;

/// An equi-join predicate `left = right` between two query relations.
#[derive(Clone, Debug)]
pub struct JoinEdge {
    /// Attribute on one side.
    pub left: AttrId,
    /// Attribute on the other side.
    pub right: AttrId,
    /// Join selectivity estimate in `(0, 1]`.
    pub selectivity: f64,
}

/// An equality-with-constant predicate `attr = const`.
#[derive(Clone, Debug)]
pub struct ConstPred {
    /// The bound attribute.
    pub attr: AttrId,
    /// Selectivity estimate in `(0, 1]`.
    pub selectivity: f64,
}

/// A non-equality filter (e.g. `salary > 50000`): affects cardinality
/// but induces no functional dependency.
#[derive(Clone, Debug)]
pub struct FilterPred {
    /// The filtered attribute.
    pub attr: AttrId,
    /// Selectivity estimate in `(0, 1]`.
    pub selectivity: f64,
}

/// A query over a catalog: relations, predicates, grouping and ordering.
#[derive(Clone, Debug, Default)]
pub struct Query {
    /// Catalog relations in query-relation order (index = query-relation id).
    pub relations: Vec<RelId>,
    /// Equi-join predicates.
    pub joins: Vec<JoinEdge>,
    /// `attr = const` predicates.
    pub constants: Vec<ConstPred>,
    /// Non-FD filters.
    pub filters: Vec<FilterPred>,
    /// `group by` attributes (treated as one interesting order).
    pub group_by: Vec<AttrId>,
    /// `order by` attributes (the query's required output order).
    pub order_by: Vec<AttrId>,
    /// Owning query relation per attribute.
    attr_owner: FxHashMap<AttrId, usize>,
}

impl Query {
    /// Creates an empty query.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a catalog relation; returns its query-relation index.
    pub fn add_relation(&mut self, catalog: &Catalog, rel: RelId) -> usize {
        let q = self.relations.len();
        assert!(q < 64, "at most 64 relations per query");
        for &a in &catalog.relation(rel).attrs {
            self.attr_owner.insert(a, q);
        }
        self.relations.push(rel);
        q
    }

    /// Query relation owning `attr` (panics for foreign attributes).
    pub fn owner(&self, attr: AttrId) -> usize {
        self.attr_owner[&attr]
    }

    /// Number of query relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Bitmask with every query relation set.
    pub fn all_relations_mask(&self) -> u64 {
        if self.relations.len() == 64 {
            u64::MAX
        } else {
            (1u64 << self.relations.len()) - 1
        }
    }

    /// Join edges applicable when joining relation sets `a` and `b`
    /// (edges with one endpoint in each) as indexes into `joins`.
    pub fn connecting_joins(&self, a: u64, b: u64) -> impl Iterator<Item = usize> + '_ {
        self.joins.iter().enumerate().filter_map(move |(i, j)| {
            let l = 1u64 << self.owner(j.left);
            let r = 1u64 << self.owner(j.right);
            let cross = (l & a != 0 && r & b != 0) || (l & b != 0 && r & a != 0);
            cross.then_some(i)
        })
    }

    /// True if the join graph restricted to `mask` is connected.
    pub fn is_connected(&self, mask: u64) -> bool {
        if mask == 0 {
            return false;
        }
        let mut seen = 1u64 << mask.trailing_zeros();
        loop {
            let mut grew = false;
            for j in &self.joins {
                let l = 1u64 << self.owner(j.left);
                let r = 1u64 << self.owner(j.right);
                if (l | r) & mask != (l | r) {
                    continue; // edge leaves the subgraph
                }
                if (seen & l != 0) != (seen & r != 0) {
                    seen |= l | r;
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        seen & mask == mask
    }

    /// Whether the whole query graph is connected.
    pub fn is_fully_connected(&self) -> bool {
        self.is_connected(self.all_relations_mask())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> (Catalog, Query) {
        let mut c = Catalog::new();
        let mut q = Query::new();
        let mut prev: Option<AttrId> = None;
        for i in 0..n {
            let rel = c.add_relation(&format!("r{i}"), 1000.0, &["k", "f"]);
            q.add_relation(&c, rel);
            let k = c.attr(&format!("r{i}.k"));
            let f = c.attr(&format!("r{i}.f"));
            if let Some(p) = prev {
                q.joins.push(JoinEdge {
                    left: p,
                    right: k,
                    selectivity: 0.01,
                });
            }
            prev = Some(f);
        }
        (c, q)
    }

    #[test]
    fn ownership_and_masks() {
        let (c, q) = chain(3);
        assert_eq!(q.num_relations(), 3);
        assert_eq!(q.all_relations_mask(), 0b111);
        assert_eq!(q.owner(c.attr("r0.k")), 0);
        assert_eq!(q.owner(c.attr("r2.f")), 2);
    }

    #[test]
    fn connectivity_of_chain() {
        let (_, q) = chain(4);
        assert!(q.is_fully_connected());
        assert!(q.is_connected(0b0011));
        assert!(q.is_connected(0b0110));
        assert!(!q.is_connected(0b0101), "r0 and r2 are not adjacent");
        assert!(q.is_connected(0b0001));
        assert!(!q.is_connected(0));
    }

    #[test]
    fn connecting_joins_cross_the_cut() {
        let (_, q) = chain(3);
        // Edge 0 joins r0–r1, edge 1 joins r1–r2.
        let between: Vec<usize> = q.connecting_joins(0b001, 0b010).collect();
        assert_eq!(between, vec![0]);
        let between: Vec<usize> = q.connecting_joins(0b011, 0b100).collect();
        assert_eq!(between, vec![1]);
        let none: Vec<usize> = q.connecting_joins(0b001, 0b100).collect();
        assert!(none.is_empty());
    }

    #[test]
    fn disconnected_pieces_are_detected() {
        let (_, mut q) = chain(3);
        q.joins.pop(); // drop r1–r2
        assert!(!q.is_fully_connected());
        assert!(q.is_connected(0b011));
        assert!(!q.is_connected(0b110));
    }
}
