//! Physical plans: an arena of operator nodes.
//!
//! Plan nodes live in one flat arena (`Vec`) and reference each other by
//! dense [`PlanId`] — the representation the paper assumes when it talks
//! about "millions of subplans" whose per-node order annotation must be
//! tiny. The node's order state is the generic parameter `S` (4 bytes
//! for the DFSM framework, ordering+environment handles for Simmen).
//! Covered relation sets are [`BitSet`]s, so plans are not capped at 64
//! relations, and applied-FD masks are [`SmallBitSet`]s, so neither are
//! FD sets (one inline word until a query has more than 64 predicates).
//!
//! For the two-driver DP (serial and work-stealing parallel), plan
//! construction is *staged*: a subset's candidate plans are built in a
//! thread-local arena behind an [`ArenaView`] — global ids resolve into
//! the shared arena of earlier layers, local ids (high bit set) into the
//! view's own arena — and the driver later splices the local arena onto
//! the global one in a deterministic order, remapping child references
//! ([`PlanOp::remap_inputs`]). Because the splice order is fixed by the
//! layer structure and not by the execution schedule, the merged arena
//! is byte-identical however many threads built it.

use ofw_common::{BitSet, SmallBitSet};

/// Index of a plan node in the arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanId(pub u32);

/// Tag bit of plan ids that point into an [`ArenaView`]'s local arena
/// (not yet spliced onto the global arena). Caps both arenas at 2^31
/// nodes — far beyond what fits in memory anyway.
pub(crate) const LOCAL_PLAN_BIT: u32 = 1 << 31;

impl std::fmt::Debug for PlanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 & LOCAL_PLAN_BIT != 0 {
            write!(f, "L{}", self.0 & !LOCAL_PLAN_BIT)
        } else {
            write!(f, "P{}", self.0)
        }
    }
}

/// Aggregation placement marks: which aggregation transformations have
/// been applied somewhere in a subplan. Plans with different marks
/// compute *different intermediate relations* for the same relation
/// subset (an eagerly aggregated stream has fewer rows and partial
/// per-group results), so Pareto pruning only ever compares plans with
/// equal marks — the extra plan-space dimension of aggregation
/// placement. Marks are OR-combined by joins.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AggMark(u8);

impl AggMark {
    /// No aggregation applied below — the classic join-only subplan.
    pub const NONE: AggMark = AggMark(0);
    /// An eager group-by partial aggregate was pushed below a join.
    pub const EAGER: AggMark = AggMark(1);
    /// An eager-count partial aggregate was pushed below a join.
    pub const EAGER_COUNT: AggMark = AggMark(2);
    /// The final aggregation happened (root aggregate or group-join).
    pub const FINAL: AggMark = AggMark(4);

    /// Marks of a join of two subplans (set union).
    pub fn union(self, other: AggMark) -> AggMark {
        AggMark(self.0 | other.0)
    }

    /// True when no aggregation has been applied below.
    pub fn is_none(self) -> bool {
        self == AggMark::NONE
    }

    /// True when the final aggregation already happened.
    pub fn is_final(self) -> bool {
        self.0 & AggMark::FINAL.0 != 0
    }

    /// Index of this mark's comparability class, `0..AGG_CLASSES` —
    /// the 3-bit encoding as a telemetry bucket (see
    /// `ofw_obs::PruneCounters`).
    pub fn class_index(self) -> usize {
        (self.0 & 7) as usize
    }
}

impl std::fmt::Debug for AggMark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_none() {
            return write!(f, "-");
        }
        let mut sep = "";
        for (bit, name) in [(1u8, "E"), (2, "C"), (4, "F")] {
            if self.0 & bit != 0 {
                write!(f, "{sep}{name}")?;
                sep = "+";
            }
        }
        Ok(())
    }
}

/// A physical operator.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanOp {
    /// Unordered full scan of a query relation.
    Scan { qrel: usize },
    /// Ordered scan of an index of the relation.
    IndexScan { qrel: usize, index: usize },
    /// Explicit sort enforcer to an interesting order.
    Sort {
        input: PlanId,
        /// The produced sort key (attribute sequence).
        key: Vec<ofw_catalog::AttrId>,
    },
    /// Partial-sort enforcer to an interesting order, exploiting an
    /// input whose `head` groups are already adjacent (and possibly
    /// internally sorted by a tail prefix of `key`): blocks move as
    /// units and only the residue inside each block is compared, so the
    /// cost is `O(n · log(n/groups))` instead of a full sort's
    /// `O(n · log n)`. Producible exactly when the input satisfies the
    /// head grouping (or a head/tail pair covering more of `key`).
    PartialSort {
        input: PlanId,
        /// The produced sort key (attribute sequence) — the full
        /// interesting order, like [`PlanOp::Sort`].
        key: Vec<ofw_catalog::AttrId>,
        /// The key prefix the input's groups already cover (the head
        /// set plus any within-group sorted tail prefix) — what the
        /// `groups` estimate in the cost is taken over.
        head: Vec<ofw_catalog::AttrId>,
    },
    /// Merge join: both inputs sorted on the join attributes of `edge`.
    MergeJoin {
        left: PlanId,
        right: PlanId,
        edge: usize,
    },
    /// Hash join on `edge` (build right, probe left; preserves the
    /// probe side's physical order).
    HashJoin {
        left: PlanId,
        right: PlanId,
        edge: usize,
    },
    /// Nested-loop join (any predicates; preserves outer order).
    NestedLoopJoin { left: PlanId, right: PlanId },
    /// Streaming (sort/group-based) aggregation on `key`: requires (and
    /// exploits) input ordered *or grouped* by `key`, emits one row per
    /// group in input group order (a subsequence — every input property
    /// survives). `partial` marks a pushed-down eager aggregate whose
    /// per-group results a final aggregate still combines.
    StreamAgg {
        input: PlanId,
        /// The grouping key (attribute set).
        key: Vec<ofw_catalog::AttrId>,
        /// Pushed-down partial aggregate (eager placement)?
        partial: bool,
    },
    /// Hash aggregation on `key`: order-agnostic, destroys every input
    /// ordering, but its output *is* grouped by `key`. `partial` as in
    /// [`PlanOp::StreamAgg`].
    HashAgg {
        input: PlanId,
        /// The grouping key (attribute set).
        key: Vec<ofw_catalog::AttrId>,
        /// Pushed-down partial aggregate (eager placement)?
        partial: bool,
    },
    /// Group-join: join and final aggregation fused into one pass over a
    /// probe input whose groups are already adjacent (the join key — or
    /// the probe's properties plus the join's dependencies —
    /// functionally determines the group). Emits one row per group,
    /// preserving the probe input's properties.
    GroupJoin {
        left: PlanId,
        right: PlanId,
        edge: usize,
    },
    /// Hash-grouping enforcer: rearranges the stream so tuples equal on
    /// `key` become adjacent (the grouping analogue of the sort
    /// enforcer — linear, no ordering produced).
    HashGroup {
        input: PlanId,
        /// The produced grouping key (attribute set).
        key: Vec<ofw_catalog::AttrId>,
    },
}

impl PlanOp {
    /// The operator's display name — the label execution telemetry,
    /// error reports and the cost-calibration table key per-operator
    /// data on.
    pub fn name(&self) -> &'static str {
        match self {
            PlanOp::Scan { .. } => "Scan",
            PlanOp::IndexScan { .. } => "IndexScan",
            PlanOp::Sort { .. } => "Sort",
            PlanOp::PartialSort { .. } => "PartialSort",
            PlanOp::MergeJoin { .. } => "MergeJoin",
            PlanOp::HashJoin { .. } => "HashJoin",
            PlanOp::NestedLoopJoin { .. } => "NestedLoopJoin",
            PlanOp::StreamAgg { .. } => "StreamAgg",
            PlanOp::HashAgg { .. } => "HashAgg",
            PlanOp::GroupJoin { .. } => "GroupJoin",
            PlanOp::HashGroup { .. } => "HashGroup",
        }
    }

    /// The operator's child plans (0, 1 or 2) — the single source of
    /// truth for tree traversal, so adding an operator variant cannot
    /// silently break a walker.
    pub fn inputs(&self) -> impl Iterator<Item = PlanId> + '_ {
        let (a, b) = match self {
            PlanOp::Scan { .. } | PlanOp::IndexScan { .. } => (None, None),
            PlanOp::Sort { input, .. }
            | PlanOp::PartialSort { input, .. }
            | PlanOp::StreamAgg { input, .. }
            | PlanOp::HashAgg { input, .. }
            | PlanOp::HashGroup { input, .. } => (Some(*input), None),
            PlanOp::MergeJoin { left, right, .. }
            | PlanOp::HashJoin { left, right, .. }
            | PlanOp::GroupJoin { left, right, .. }
            | PlanOp::NestedLoopJoin { left, right } => (Some(*left), Some(*right)),
        };
        [a, b].into_iter().flatten()
    }

    /// Rewrites every child reference through `f` — what the DP driver
    /// uses to splice a local arena onto the global one.
    pub fn remap_inputs(&mut self, f: &mut dyn FnMut(PlanId) -> PlanId) {
        match self {
            PlanOp::Scan { .. } | PlanOp::IndexScan { .. } => {}
            PlanOp::Sort { input, .. }
            | PlanOp::PartialSort { input, .. }
            | PlanOp::StreamAgg { input, .. }
            | PlanOp::HashAgg { input, .. }
            | PlanOp::HashGroup { input, .. } => *input = f(*input),
            PlanOp::MergeJoin { left, right, .. }
            | PlanOp::HashJoin { left, right, .. }
            | PlanOp::GroupJoin { left, right, .. }
            | PlanOp::NestedLoopJoin { left, right } => {
                *left = f(*left);
                *right = f(*right);
            }
        }
    }
}

/// One plan node: operator, covered relations, estimates, order state.
#[derive(Clone, Debug)]
pub struct PlanNode<S> {
    /// The operator.
    pub op: PlanOp,
    /// Set of covered query relations.
    pub mask: BitSet,
    /// Cumulative cost estimate.
    pub cost: f64,
    /// Output cardinality estimate.
    pub card: f64,
    /// Order-oracle state (the ADT instance of §5.6).
    pub state: S,
    /// Aggregation placement marks — the comparability class of the
    /// aggregation plan-space dimension (see [`AggMark`]).
    pub agg: AggMark,
    /// Set of FD-set handles applied beneath this node — what a sort
    /// enforcer must replay ("following the edge … and then another edge
    /// corresponding to the set of functional dependencies that
    /// currently hold", §5.6). One inline word for ≤ 64 FD sets.
    pub applied_fds: SmallBitSet,
}

/// A candidate plan *before* materialization: the four scalars the
/// branch-and-bound and Pareto checks need, on the stack. The DP builds
/// one of these per alternative, runs the cost bound and the
/// arrival-dominance test against it, and only constructs the full
/// [`PlanNode`] (operator, mask clone, FD mask clone — the heap work)
/// for survivors. That is what keeps `#Plans` ≈ plans kept instead of
/// plans imagined.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CandidatePlan<S> {
    /// Cumulative cost estimate.
    pub cost: f64,
    /// Output cardinality estimate.
    pub card: f64,
    /// Order-oracle state.
    pub state: S,
    /// Aggregation comparability class.
    pub agg: AggMark,
}

/// The arena.
#[derive(Clone, Debug, Default)]
pub struct PlanArena<S> {
    nodes: Vec<PlanNode<S>>,
}

impl<S: Copy> PlanArena<S> {
    /// An empty arena.
    pub fn new() -> Self {
        PlanArena { nodes: Vec::new() }
    }

    /// Allocates a node; every allocation counts towards the paper's
    /// `#Plans` metric.
    pub fn push(&mut self, node: PlanNode<S>) -> PlanId {
        let id = u32::try_from(self.nodes.len()).expect("plan arena overflow");
        assert!(id < LOCAL_PLAN_BIT, "plan arena overflow");
        self.nodes.push(node);
        PlanId(id)
    }

    /// Node lookup.
    #[inline]
    pub fn node(&self, id: PlanId) -> &PlanNode<S> {
        &self.nodes[id.0 as usize]
    }

    /// Total nodes ever allocated (`#Plans`).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True before the first allocation.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes in allocation order (for fingerprinting and tests).
    pub fn nodes(&self) -> impl Iterator<Item = &PlanNode<S>> {
        self.nodes.iter()
    }

    /// Consumes the arena into its nodes (what the DP driver splices).
    pub(crate) fn into_nodes(self) -> Vec<PlanNode<S>> {
        self.nodes
    }

    /// Renders a plan tree as an indented string (for examples/tests).
    pub fn render(&self, id: PlanId, relation_name: &dyn Fn(usize) -> String) -> String {
        let mut out = String::new();
        self.render_into(id, relation_name, 0, &mut out);
        out
    }

    fn render_into(
        &self,
        id: PlanId,
        relation_name: &dyn Fn(usize) -> String,
        depth: usize,
        out: &mut String,
    ) {
        use std::fmt::Write;
        let n = self.node(id);
        let indent = "  ".repeat(depth);
        match &n.op {
            PlanOp::Scan { qrel } => {
                let _ = writeln!(
                    out,
                    "{indent}Scan({}) cost={:.0}",
                    relation_name(*qrel),
                    n.cost
                );
            }
            PlanOp::IndexScan { qrel, index } => {
                let _ = writeln!(
                    out,
                    "{indent}IndexScan({}, idx#{index}) cost={:.0}",
                    relation_name(*qrel),
                    n.cost
                );
            }
            PlanOp::Sort { input, .. } => {
                let _ = writeln!(out, "{indent}Sort cost={:.0}", n.cost);
                self.render_into(*input, relation_name, depth + 1, out);
            }
            PlanOp::PartialSort { input, head, .. } => {
                let _ = writeln!(
                    out,
                    "{indent}PartialSort(head=[{}]) cost={:.0}",
                    head.iter()
                        .map(|a| format!("{a:?}"))
                        .collect::<Vec<_>>()
                        .join(","),
                    n.cost
                );
                self.render_into(*input, relation_name, depth + 1, out);
            }
            PlanOp::MergeJoin { left, right, edge } => {
                let _ = writeln!(out, "{indent}MergeJoin(edge#{edge}) cost={:.0}", n.cost);
                self.render_into(*left, relation_name, depth + 1, out);
                self.render_into(*right, relation_name, depth + 1, out);
            }
            PlanOp::HashJoin { left, right, edge } => {
                let _ = writeln!(out, "{indent}HashJoin(edge#{edge}) cost={:.0}", n.cost);
                self.render_into(*left, relation_name, depth + 1, out);
                self.render_into(*right, relation_name, depth + 1, out);
            }
            PlanOp::NestedLoopJoin { left, right } => {
                let _ = writeln!(out, "{indent}NestedLoopJoin cost={:.0}", n.cost);
                self.render_into(*left, relation_name, depth + 1, out);
                self.render_into(*right, relation_name, depth + 1, out);
            }
            PlanOp::StreamAgg { input, partial, .. } => {
                let stage = if *partial { "partial " } else { "" };
                let _ = writeln!(out, "{indent}StreamAgg ({stage}cost={:.0})", n.cost);
                self.render_into(*input, relation_name, depth + 1, out);
            }
            PlanOp::HashAgg { input, partial, .. } => {
                let stage = if *partial { "partial " } else { "" };
                let _ = writeln!(out, "{indent}HashAgg ({stage}cost={:.0})", n.cost);
                self.render_into(*input, relation_name, depth + 1, out);
            }
            PlanOp::GroupJoin { left, right, edge } => {
                let _ = writeln!(out, "{indent}GroupJoin(edge#{edge}) cost={:.0}", n.cost);
                self.render_into(*left, relation_name, depth + 1, out);
                self.render_into(*right, relation_name, depth + 1, out);
            }
            PlanOp::HashGroup { input, .. } => {
                let _ = writeln!(out, "{indent}HashGroup cost={:.0}", n.cost);
                self.render_into(*input, relation_name, depth + 1, out);
            }
        }
    }

    /// Counts operators in the tree rooted at `id`.
    pub fn tree_size(&self, id: PlanId) -> usize {
        1 + self
            .node(id)
            .op
            .inputs()
            .map(|c| self.tree_size(c))
            .sum::<usize>()
    }
}

/// A two-level arena: reads resolve against the shared global arena of
/// earlier DP layers *or* this view's local arena (ids tagged with
/// `LOCAL_PLAN_BIT`); writes always go to the local arena. One view
/// per connected subset makes subset construction thread-local — the
/// unit of work the parallel driver hands to the pool.
pub struct ArenaView<'g, S> {
    global: &'g PlanArena<S>,
    local: PlanArena<S>,
}

impl<'g, S: Copy> ArenaView<'g, S> {
    /// A fresh view with an empty local arena.
    pub fn new(global: &'g PlanArena<S>) -> Self {
        ArenaView {
            global,
            local: PlanArena::new(),
        }
    }

    /// Allocates into the local arena; the returned id carries
    /// the local-arena tag bit until the driver splices it.
    pub fn push(&mut self, node: PlanNode<S>) -> PlanId {
        let id = self.local.push(node);
        PlanId(id.0 | LOCAL_PLAN_BIT)
    }

    /// Resolves an id against either level.
    #[inline]
    pub fn node(&self, id: PlanId) -> &PlanNode<S> {
        if id.0 & LOCAL_PLAN_BIT != 0 {
            self.local.node(PlanId(id.0 & !LOCAL_PLAN_BIT))
        } else {
            self.global.node(id)
        }
    }

    /// Hands the local arena to the driver for splicing.
    pub fn into_local(self) -> PlanArena<S> {
        self.local
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(bits: &[usize]) -> BitSet {
        let mut s = BitSet::new(8);
        for &b in bits {
            s.insert(b);
        }
        s
    }

    fn leaf(qrel: usize) -> PlanNode<u32> {
        PlanNode {
            op: PlanOp::Scan { qrel },
            mask: set(&[qrel]),
            cost: 10.0,
            card: 10.0,
            state: 0,
            agg: AggMark::NONE,
            applied_fds: SmallBitSet::new(),
        }
    }

    #[test]
    fn arena_allocates_densely() {
        let mut a: PlanArena<u32> = PlanArena::new();
        let p0 = a.push(leaf(0));
        let p1 = a.push(leaf(1));
        assert_eq!(p0, PlanId(0));
        assert_eq!(p1, PlanId(1));
        assert_eq!(a.len(), 2);
        assert_eq!(a.node(p1).mask, set(&[1]));
    }

    #[test]
    fn tree_size_and_render() {
        let mut a: PlanArena<u32> = PlanArena::new();
        let l = a.push(leaf(0));
        let r = a.push(leaf(1));
        let j = a.push(PlanNode {
            op: PlanOp::MergeJoin {
                left: l,
                right: r,
                edge: 0,
            },
            mask: set(&[0, 1]),
            cost: 30.0,
            card: 5.0,
            state: 0,
            agg: AggMark::NONE,
            applied_fds: [0usize].into_iter().collect(),
        });
        let s = a.push(PlanNode {
            op: PlanOp::Sort {
                input: j,
                key: vec![],
            },
            mask: set(&[0, 1]),
            cost: 60.0,
            card: 5.0,
            state: 1,
            agg: AggMark::NONE,
            applied_fds: [0usize].into_iter().collect(),
        });
        assert_eq!(a.tree_size(s), 4);
        let txt = a.render(s, &|q| format!("r{q}"));
        assert!(txt.contains("Sort"));
        assert!(txt.contains("MergeJoin"));
        assert!(txt.contains("Scan(r0)"));
        assert!(txt.contains("Scan(r1)"));
    }

    #[test]
    fn arena_view_resolves_both_levels_and_remaps() {
        let mut global: PlanArena<u32> = PlanArena::new();
        let g0 = global.push(leaf(0));
        let mut view = ArenaView::new(&global);
        let l0 = view.push(leaf(1));
        assert_ne!(l0, g0);
        assert!(l0.0 & LOCAL_PLAN_BIT != 0);
        let j = view.push(PlanNode {
            op: PlanOp::HashJoin {
                left: g0,
                right: l0,
                edge: 0,
            },
            mask: set(&[0, 1]),
            cost: 30.0,
            card: 5.0,
            state: 0,
            agg: AggMark::NONE,
            applied_fds: SmallBitSet::new(),
        });
        assert_eq!(view.node(j).op.inputs().count(), 2);
        assert_eq!(view.node(l0).mask, set(&[1]));
        assert_eq!(view.node(g0).mask, set(&[0]));

        // Splice: local ids shift onto the global tail.
        let base = global.len() as u32;
        let mut spliced = global.clone();
        for mut node in view.into_local().into_nodes() {
            node.op.remap_inputs(&mut |p| {
                if p.0 & LOCAL_PLAN_BIT != 0 {
                    PlanId(base + (p.0 & !LOCAL_PLAN_BIT))
                } else {
                    p
                }
            });
            spliced.push(node);
        }
        assert_eq!(spliced.len(), 3);
        let join = spliced.node(PlanId(2));
        let children: Vec<PlanId> = join.op.inputs().collect();
        assert_eq!(children, vec![PlanId(0), PlanId(1)]);
        assert_eq!(spliced.tree_size(PlanId(2)), 3);
    }
}
