//! Physical plans: an arena of operator nodes.
//!
//! Plan nodes live in one flat arena (`Vec`) and reference each other by
//! dense [`PlanId`] — the representation the paper assumes when it talks
//! about "millions of subplans" whose per-node order annotation must be
//! tiny. The node's order state is the generic parameter `S` (4 bytes
//! for the DFSM framework, ordering+environment handles for Simmen).
//! Covered relation sets are [`BitSet`]s, so plans are not capped at 64
//! relations.

use ofw_common::BitSet;

/// Index of a plan node in the arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanId(pub u32);

impl std::fmt::Debug for PlanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A physical operator.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanOp {
    /// Unordered full scan of a query relation.
    Scan { qrel: usize },
    /// Ordered scan of an index of the relation.
    IndexScan { qrel: usize, index: usize },
    /// Explicit sort enforcer to an interesting order.
    Sort {
        input: PlanId,
        /// The produced sort key (attribute sequence).
        key: Vec<ofw_catalog::AttrId>,
    },
    /// Merge join: both inputs sorted on the join attributes of `edge`.
    MergeJoin {
        left: PlanId,
        right: PlanId,
        edge: usize,
    },
    /// Hash join on `edge` (build right, probe left; preserves the
    /// probe side's physical order).
    HashJoin {
        left: PlanId,
        right: PlanId,
        edge: usize,
    },
    /// Nested-loop join (any predicates; preserves outer order).
    NestedLoopJoin { left: PlanId, right: PlanId },
    /// Group-by aggregation; `streaming` requires (and exploits) input
    /// ordered *or grouped* by the grouping attributes, hashing does
    /// not (but its output is grouped by them).
    Aggregate { input: PlanId, streaming: bool },
    /// Hash-grouping enforcer: rearranges the stream so tuples equal on
    /// `key` become adjacent (the grouping analogue of the sort
    /// enforcer — linear, no ordering produced).
    HashGroup {
        input: PlanId,
        /// The produced grouping key (attribute set).
        key: Vec<ofw_catalog::AttrId>,
    },
}

impl PlanOp {
    /// The operator's child plans (0, 1 or 2) — the single source of
    /// truth for tree traversal, so adding an operator variant cannot
    /// silently break a walker.
    pub fn inputs(&self) -> impl Iterator<Item = PlanId> + '_ {
        let (a, b) = match self {
            PlanOp::Scan { .. } | PlanOp::IndexScan { .. } => (None, None),
            PlanOp::Sort { input, .. }
            | PlanOp::Aggregate { input, .. }
            | PlanOp::HashGroup { input, .. } => (Some(*input), None),
            PlanOp::MergeJoin { left, right, .. }
            | PlanOp::HashJoin { left, right, .. }
            | PlanOp::NestedLoopJoin { left, right } => (Some(*left), Some(*right)),
        };
        [a, b].into_iter().flatten()
    }
}

/// One plan node: operator, covered relations, estimates, order state.
#[derive(Clone, Debug)]
pub struct PlanNode<S> {
    /// The operator.
    pub op: PlanOp,
    /// Set of covered query relations.
    pub mask: BitSet,
    /// Cumulative cost estimate.
    pub cost: f64,
    /// Output cardinality estimate.
    pub card: f64,
    /// Order-oracle state (the ADT instance of §5.6).
    pub state: S,
    /// Bitmask of FD-set handles applied beneath this node — what a sort
    /// enforcer must replay ("following the edge … and then another edge
    /// corresponding to the set of functional dependencies that
    /// currently hold", §5.6).
    pub applied_fds: u64,
}

/// The arena.
#[derive(Clone, Debug, Default)]
pub struct PlanArena<S> {
    nodes: Vec<PlanNode<S>>,
}

impl<S: Copy> PlanArena<S> {
    /// An empty arena.
    pub fn new() -> Self {
        PlanArena { nodes: Vec::new() }
    }

    /// Allocates a node; every allocation counts towards the paper's
    /// `#Plans` metric.
    pub fn push(&mut self, node: PlanNode<S>) -> PlanId {
        let id = PlanId(u32::try_from(self.nodes.len()).expect("plan arena overflow"));
        self.nodes.push(node);
        id
    }

    /// Node lookup.
    #[inline]
    pub fn node(&self, id: PlanId) -> &PlanNode<S> {
        &self.nodes[id.0 as usize]
    }

    /// Total nodes ever allocated (`#Plans`).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True before the first allocation.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Renders a plan tree as an indented string (for examples/tests).
    pub fn render(&self, id: PlanId, relation_name: &dyn Fn(usize) -> String) -> String {
        let mut out = String::new();
        self.render_into(id, relation_name, 0, &mut out);
        out
    }

    fn render_into(
        &self,
        id: PlanId,
        relation_name: &dyn Fn(usize) -> String,
        depth: usize,
        out: &mut String,
    ) {
        use std::fmt::Write;
        let n = self.node(id);
        let indent = "  ".repeat(depth);
        match &n.op {
            PlanOp::Scan { qrel } => {
                let _ = writeln!(
                    out,
                    "{indent}Scan({}) cost={:.0}",
                    relation_name(*qrel),
                    n.cost
                );
            }
            PlanOp::IndexScan { qrel, index } => {
                let _ = writeln!(
                    out,
                    "{indent}IndexScan({}, idx#{index}) cost={:.0}",
                    relation_name(*qrel),
                    n.cost
                );
            }
            PlanOp::Sort { input, .. } => {
                let _ = writeln!(out, "{indent}Sort cost={:.0}", n.cost);
                self.render_into(*input, relation_name, depth + 1, out);
            }
            PlanOp::MergeJoin { left, right, edge } => {
                let _ = writeln!(out, "{indent}MergeJoin(edge#{edge}) cost={:.0}", n.cost);
                self.render_into(*left, relation_name, depth + 1, out);
                self.render_into(*right, relation_name, depth + 1, out);
            }
            PlanOp::HashJoin { left, right, edge } => {
                let _ = writeln!(out, "{indent}HashJoin(edge#{edge}) cost={:.0}", n.cost);
                self.render_into(*left, relation_name, depth + 1, out);
                self.render_into(*right, relation_name, depth + 1, out);
            }
            PlanOp::NestedLoopJoin { left, right } => {
                let _ = writeln!(out, "{indent}NestedLoopJoin cost={:.0}", n.cost);
                self.render_into(*left, relation_name, depth + 1, out);
                self.render_into(*right, relation_name, depth + 1, out);
            }
            PlanOp::Aggregate { input, streaming } => {
                let kind = if *streaming { "Streaming" } else { "Hash" };
                let _ = writeln!(out, "{indent}{kind}Aggregate cost={:.0}", n.cost);
                self.render_into(*input, relation_name, depth + 1, out);
            }
            PlanOp::HashGroup { input, .. } => {
                let _ = writeln!(out, "{indent}HashGroup cost={:.0}", n.cost);
                self.render_into(*input, relation_name, depth + 1, out);
            }
        }
    }

    /// Counts operators in the tree rooted at `id`.
    pub fn tree_size(&self, id: PlanId) -> usize {
        1 + self
            .node(id)
            .op
            .inputs()
            .map(|c| self.tree_size(c))
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(bits: &[usize]) -> BitSet {
        let mut s = BitSet::new(8);
        for &b in bits {
            s.insert(b);
        }
        s
    }

    fn leaf(qrel: usize) -> PlanNode<u32> {
        PlanNode {
            op: PlanOp::Scan { qrel },
            mask: set(&[qrel]),
            cost: 10.0,
            card: 10.0,
            state: 0,
            applied_fds: 0,
        }
    }

    #[test]
    fn arena_allocates_densely() {
        let mut a: PlanArena<u32> = PlanArena::new();
        let p0 = a.push(leaf(0));
        let p1 = a.push(leaf(1));
        assert_eq!(p0, PlanId(0));
        assert_eq!(p1, PlanId(1));
        assert_eq!(a.len(), 2);
        assert_eq!(a.node(p1).mask, set(&[1]));
    }

    #[test]
    fn tree_size_and_render() {
        let mut a: PlanArena<u32> = PlanArena::new();
        let l = a.push(leaf(0));
        let r = a.push(leaf(1));
        let j = a.push(PlanNode {
            op: PlanOp::MergeJoin {
                left: l,
                right: r,
                edge: 0,
            },
            mask: set(&[0, 1]),
            cost: 30.0,
            card: 5.0,
            state: 0,
            applied_fds: 1,
        });
        let s = a.push(PlanNode {
            op: PlanOp::Sort {
                input: j,
                key: vec![],
            },
            mask: set(&[0, 1]),
            cost: 60.0,
            card: 5.0,
            state: 1,
            applied_fds: 1,
        });
        assert_eq!(a.tree_size(s), 4);
        let txt = a.render(s, &|q| format!("r{q}"));
        assert!(txt.contains("Sort"));
        assert!(txt.contains("MergeJoin"));
        assert!(txt.contains("Scan(r0)"));
        assert!(txt.contains("Scan(r1)"));
    }
}
