//! EXPLAIN: a rendered view of the winning plan, annotated with what
//! the order oracle *knows* at every node.
//!
//! The DP stores one opaque order state per plan node (4 bytes for the
//! DFSM arm). [`PlanGenResult::explain`] re-probes that state against
//! every interesting property of the query — the same O(1)
//! `satisfies` / `satisfies_grouping` / `satisfies_head_tail` calls
//! the DP itself makes — and renders the plan tree with per-node
//! operator, cost, cardinality and the list of *held* logical
//! properties. That makes the framework's bookkeeping visible: you can
//! watch an ordering appear at an index scan, survive a merge join,
//! get widened by an FD inference, and satisfy the root `order by`
//! without a sort.
//!
//! Two renderings: [`Explain::text`] (indented tree, one node per
//! line) and [`Explain::json`] (machine-readable, same shape). Both
//! are pure views — building an `Explain` never mutates the plan table
//! or the oracle.

use crate::oracle::OrderOracle;
use crate::plan::{PlanId, PlanOp};
use crate::PlanGenResult;
use ofw_catalog::{AttrId, Catalog};
use ofw_core::LogicalProperty;
use ofw_obs::json_escape;
use ofw_query::{ExtractedQuery, Query};
use std::fmt::Write as _;

/// One node of the explained plan tree.
#[derive(Clone, Debug)]
pub struct ExplainNode {
    /// Operator rendering, e.g. `MergeJoin(persons.jobid = jobs.id)`.
    pub op: String,
    /// Cumulative cost estimate.
    pub cost: f64,
    /// Output cardinality estimate.
    pub card: f64,
    /// Interesting logical properties this node's stream holds, in
    /// spec registration order (produced first, then tested-only) —
    /// orderings as `(a, b)`, groupings as `{a, b}`, head/tail pairs
    /// as `{a}(b)`.
    pub properties: Vec<String>,
    /// Input subtrees (0, 1 or 2).
    pub children: Vec<ExplainNode>,
}

/// An explained plan: the winning tree with per-node annotations.
#[derive(Clone, Debug)]
pub struct Explain {
    /// The plan root.
    pub root: ExplainNode,
    /// Total cost of the plan (the root's cumulative cost).
    pub cost: f64,
}

impl Explain {
    /// Plain-text rendering: one operator per line, two-space
    /// indentation, `[properties]` trailing each node that holds any.
    pub fn text(&self) -> String {
        let mut out = String::new();
        render_text(&self.root, 0, &mut out);
        out
    }

    /// JSON rendering: `{"cost": …, "plan": {node}}` where each node is
    /// `{"op", "cost", "card", "properties": […], "children": […]}`.
    pub fn json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"cost\":{},\"plan\":", fmt_f64(self.cost));
        render_json(&self.root, &mut out);
        out.push('}');
        out
    }
}

fn render_text(node: &ExplainNode, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    let _ = write!(
        out,
        "{indent}{}  cost={} rows={}",
        node.op,
        fmt_f64(node.cost),
        fmt_f64(node.card)
    );
    if !node.properties.is_empty() {
        let _ = write!(out, "  [{}]", node.properties.join(", "));
    }
    out.push('\n');
    for child in &node.children {
        render_text(child, depth + 1, out);
    }
}

fn render_json(node: &ExplainNode, out: &mut String) {
    let _ = write!(
        out,
        "{{\"op\":\"{}\",\"cost\":{},\"card\":{},\"properties\":[",
        json_escape(&node.op),
        fmt_f64(node.cost),
        fmt_f64(node.card)
    );
    for (i, p) in node.properties.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", json_escape(p));
    }
    out.push_str("],\"children\":[");
    for (i, child) in node.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_json(child, out);
    }
    out.push_str("]}");
}

/// Cost/cardinality formatting: integral estimates print without a
/// fraction, others with enough digits to round-trip visually.
fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// One interesting property, pre-resolved to an oracle key with its
/// probe kind and rendering.
struct ProbedProp<K> {
    key: K,
    kind: PropKind,
    rendered: String,
}

enum PropKind {
    Ordering,
    Grouping,
    HeadTail,
}

fn render_grouping(catalog: &Catalog, attrs: &[AttrId]) -> String {
    let names: Vec<&str> = attrs.iter().map(|&a| catalog.attr_name(a)).collect();
    format!("{{{}}}", names.join(", "))
}

impl<S: Copy> PlanGenResult<S> {
    /// Explains the winning plan: re-probes every node's order state
    /// against all interesting properties of `ex` through `oracle` (the
    /// instance the plan was generated with) and renders the tree.
    pub fn explain<O>(
        &self,
        catalog: &Catalog,
        query: &Query,
        ex: &ExtractedQuery,
        oracle: &O,
    ) -> Explain
    where
        O: OrderOracle<State = S>,
    {
        self.explain_node(self.best, catalog, query, ex, oracle)
    }

    /// [`Self::explain`] rooted at an arbitrary arena node.
    pub fn explain_node<O>(
        &self,
        root: PlanId,
        catalog: &Catalog,
        query: &Query,
        ex: &ExtractedQuery,
        oracle: &O,
    ) -> Explain
    where
        O: OrderOracle<State = S>,
    {
        let probes: Vec<ProbedProp<O::Key>> = ex
            .spec
            .interesting()
            .filter_map(|p| {
                let (key, kind, rendered) = match p {
                    LogicalProperty::Ordering(o) => (
                        oracle.resolve(o)?,
                        PropKind::Ordering,
                        catalog.render_ordering(o.attrs()),
                    ),
                    LogicalProperty::Grouping(g) => (
                        oracle.resolve_grouping(g)?,
                        PropKind::Grouping,
                        render_grouping(catalog, g.attrs()),
                    ),
                    LogicalProperty::HeadTail(h) => (
                        oracle.resolve_head_tail(h)?,
                        PropKind::HeadTail,
                        format!(
                            "{}{}",
                            render_grouping(catalog, h.head_attrs()),
                            catalog.render_ordering(h.tail_attrs())
                        ),
                    ),
                };
                Some(ProbedProp {
                    key,
                    kind,
                    rendered,
                })
            })
            .collect();
        let node = self.build_node(root, catalog, query, oracle, &probes);
        Explain {
            cost: node.cost,
            root: node,
        }
    }

    fn build_node<O>(
        &self,
        id: PlanId,
        catalog: &Catalog,
        query: &Query,
        oracle: &O,
        probes: &[ProbedProp<O::Key>],
    ) -> ExplainNode
    where
        O: OrderOracle<State = S>,
    {
        let n = self.arena.node(id);
        let rel = |qrel: usize| catalog.relation(query.relations[qrel]).name.as_str();
        let edge_pred = |edge: usize| {
            let e = &query.joins[edge];
            format!(
                "{} = {}",
                catalog.attr_name(e.left),
                catalog.attr_name(e.right)
            )
        };
        let op = match &n.op {
            PlanOp::Scan { qrel } => format!("Scan({})", rel(*qrel)),
            PlanOp::IndexScan { qrel, index } => {
                let key = &catalog.relation(query.relations[*qrel]).indexes[*index].key;
                format!(
                    "IndexScan({} on {})",
                    rel(*qrel),
                    catalog.render_ordering(key)
                )
            }
            PlanOp::Sort { key, .. } => format!("Sort {}", catalog.render_ordering(key)),
            PlanOp::PartialSort { key, head, .. } => format!(
                "PartialSort {} head={}",
                catalog.render_ordering(key),
                render_grouping(catalog, head)
            ),
            PlanOp::MergeJoin { edge, .. } => format!("MergeJoin({})", edge_pred(*edge)),
            PlanOp::HashJoin { edge, .. } => format!("HashJoin({})", edge_pred(*edge)),
            PlanOp::NestedLoopJoin { .. } => "NestedLoopJoin".to_string(),
            PlanOp::StreamAgg { key, partial, .. } => format!(
                "StreamAgg{} {}",
                if *partial { "[partial]" } else { "" },
                render_grouping(catalog, key)
            ),
            PlanOp::HashAgg { key, partial, .. } => format!(
                "HashAgg{} {}",
                if *partial { "[partial]" } else { "" },
                render_grouping(catalog, key)
            ),
            PlanOp::GroupJoin { edge, .. } => format!("GroupJoin({})", edge_pred(*edge)),
            PlanOp::HashGroup { key, .. } => {
                format!("HashGroup {}", render_grouping(catalog, key))
            }
        };
        let properties = probes
            .iter()
            .filter(|p| match p.kind {
                PropKind::Ordering => oracle.satisfies(n.state, p.key),
                PropKind::Grouping => oracle.satisfies_grouping(n.state, p.key),
                PropKind::HeadTail => oracle.satisfies_head_tail(n.state, p.key),
            })
            .map(|p| p.rendered.clone())
            .collect();
        let children =
            n.op.inputs()
                .map(|c| self.build_node(c, catalog, query, oracle, probes))
                .collect();
        ExplainNode {
            op,
            cost: n.cost,
            card: n.card,
            properties,
            children,
        }
    }
}
