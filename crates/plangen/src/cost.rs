//! The cost model.
//!
//! Deliberately textbook-simple — the experiments measure *plan
//! generation* cost, not execution quality — but order-sensitive where
//! it matters: a merge join is the cheapest join when both inputs are
//! already sorted, which is what makes interesting orders worth
//! tracking. Costs are abstract "work units" proportional to tuples
//! processed.

/// Cost of a full heap scan.
pub fn scan(card: f64) -> f64 {
    card
}

/// Cost of a full index scan producing the index order.
pub fn index_scan(card: f64, clustered: bool) -> f64 {
    if clustered {
        // Same I/O as a heap scan, order for free.
        card * 1.05
    } else {
        // Random accesses: markedly more expensive.
        card * 4.0
    }
}

/// Cost of sorting `card` tuples.
pub fn sort(card: f64) -> f64 {
    let n = card.max(2.0);
    n * n.log2()
}

/// Cost of partially sorting `card` tuples whose sort-key groups are
/// already adjacent (`groups` distinct key blocks, from the catalog's
/// distinct-value estimates). Only the residue *inside* each block
/// (≈ `card/groups` tuples) is compared: `n · log₂(n/groups)`, with a
/// linear floor for the pass that rearranges the blocks. Degenerates to
/// a full [`sort`] when the input has a single group (`groups = 1` ⇒
/// `n · log₂ n`) and to the linear floor when every block is a
/// singleton — the grouped-but-unsorted hash-aggregate output the
/// ROADMAP's head/tail item targets.
///
/// Modeling assumption, stated explicitly: arranging the blocks
/// themselves charges **no comparison term**. A comparison sort of the
/// blocks would add `groups · log₂(groups)` (making a partial sort of
/// per-row groups as expensive as a full sort); this model instead
/// assumes the operator arranges blocks with a *distribution* pass —
/// the admission test guarantees the blocks are adjacent, and the
/// catalog's distinct-value statistics hand the operator the block-key
/// domain, so a bucket/counting pass keyed on it is linear in `n` and
/// not subject to the comparison lower bound. That is as idealized as
/// the rest of this textbook cost model (cf. [`hash_join`]'s flat
/// per-tuple factors) and is what the `O(n · log(n/groups))` claim in
/// the literature assumes; the plan-quality experiments measure plan
/// *generation*, not execution.
pub fn partial_sort(card: f64, groups: f64) -> f64 {
    let n = card.max(2.0);
    let per_group = (n / groups.clamp(1.0, n)).max(2.0);
    n * per_group.log2()
}

/// Cost of a merge join over two sorted inputs.
pub fn merge_join(left: f64, right: f64, out: f64) -> f64 {
    left + right + 0.1 * out
}

/// Cost of a hash join (build right, probe left).
pub fn hash_join(left: f64, right: f64, out: f64) -> f64 {
    1.2 * right + 1.1 * left + 0.1 * out
}

/// Cost of a tuple-at-a-time nested-loop join.
pub fn nested_loop_join(left: f64, right: f64, out: f64) -> f64 {
    left + left * right * 0.01 + 0.1 * out
}

/// Cost of a streaming (sort-based) aggregation — requires the input to
/// be ordered *or grouped* by the grouping attributes.
pub fn streaming_aggregate(card: f64) -> f64 {
    0.5 * card
}

/// Cost of a hash aggregation — order-agnostic but pays for the table.
pub fn hash_aggregate(card: f64) -> f64 {
    1.6 * card
}

/// Cost of the hash-grouping enforcer: one hash pass that makes equal
/// key tuples adjacent without sorting. Linear — the grouping analogue
/// of [`sort`], and the reason groupings are cheaper to enforce than
/// orderings (the VLDB'04 motivation).
pub fn hash_group(card: f64) -> f64 {
    1.3 * card
}

/// Lower bound on the cost of *any* join operator over inputs of
/// `left`/`right` tuples producing `out` — the pair-level floor of the
/// branch-and-bound pruning seam (see ARCHITECTURE.md, "The pruning
/// seam"). It is the minimum of [`merge_join`] and [`nested_loop_join`]
/// (a nested-loop over a tiny outer can undercut the merge join's
/// `+right` term); [`hash_join`] and [`group_join`] dominate the merge
/// join term-by-term. Any new join operator must keep this function a
/// true lower bound or bounded search loses admissibility.
pub fn join_floor(left: f64, right: f64, out: f64) -> f64 {
    merge_join(left, right, out).min(nested_loop_join(left, right, out))
}

/// Cost of a group-join: a hash join and the final aggregation fused
/// into one pass over a probe input whose groups are already adjacent.
/// The join work is the hash join's; the aggregation folds into the
/// probe loop for a fraction of a separate streaming aggregate's pass —
/// which is why a grouped probe makes the fused operator strictly
/// cheaper than any join-then-aggregate split.
pub fn group_join(left: f64, right: f64, out: f64) -> f64 {
    1.2 * right + 1.1 * left + 0.15 * out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_join_wins_on_sorted_inputs() {
        let (l, r, out) = (10_000.0, 10_000.0, 1_000.0);
        assert!(merge_join(l, r, out) < hash_join(l, r, out));
        assert!(merge_join(l, r, out) < nested_loop_join(l, r, out));
    }

    #[test]
    fn sorting_then_merging_can_lose_to_hashing() {
        // If both inputs must first be sorted, hashing is cheaper —
        // so the optimizer's choice genuinely depends on available
        // orderings.
        let (l, r, out) = (100_000.0, 100_000.0, 10_000.0);
        let sort_then_merge = sort(l) + sort(r) + merge_join(l, r, out);
        assert!(hash_join(l, r, out) < sort_then_merge);
    }

    #[test]
    fn clustered_index_scan_beats_scan_plus_sort() {
        let card = 50_000.0;
        assert!(index_scan(card, true) < scan(card) + sort(card));
        assert!(index_scan(card, false) > index_scan(card, true));
    }

    #[test]
    fn streaming_aggregation_beats_hashing_but_needs_order() {
        let card = 10_000.0;
        assert!(streaming_aggregate(card) < hash_aggregate(card));
        // If a sort must be paid first, hashing wins — the choice
        // depends on available orderings, like the join choice.
        assert!(hash_aggregate(card) < sort(card) + streaming_aggregate(card));
    }

    #[test]
    fn hash_group_is_cheaper_than_sort_but_not_free() {
        // Enforcing a grouping never pays off right under the aggregate
        // (hash aggregation already groups), but it beats sorting on the
        // small side of a join whose output feeds a streaming aggregate.
        let card = 10_000.0;
        assert!(hash_group(card) < sort(card));
        assert!(hash_group(card) + streaming_aggregate(card) > hash_aggregate(card));
        let (small, joined) = (100.0, 100_000.0);
        assert!(
            hash_group(small) + streaming_aggregate(joined) < hash_aggregate(joined),
            "pre-grouping a small input wins once the join fans out"
        );
    }

    #[test]
    fn group_join_beats_every_join_then_aggregate_split() {
        let (l, r, out) = (10_000.0, 1_000.0, 100_000.0);
        assert!(group_join(l, r, out) < hash_join(l, r, out) + streaming_aggregate(out));
        assert!(group_join(l, r, out) < hash_join(l, r, out) + hash_aggregate(out));
        // But it is still a join: it cannot beat the join alone.
        assert!(group_join(l, r, out) > hash_join(l, r, out));
    }

    #[test]
    fn eager_aggregation_pays_when_the_join_fans_out() {
        // Pre-aggregating a 1M-row fact table down to 1k groups, then
        // joining, beats joining 1M rows and aggregating at the root —
        // the Yan/Larson eager group-by payoff the placement dimension
        // searches for.
        let (fact, dim, groups) = (1_000_000.0, 100.0, 1_000.0);
        let eager = hash_aggregate(fact) + hash_join(groups, dim, groups) + hash_aggregate(groups);
        let lazy = hash_join(fact, dim, fact) + hash_aggregate(fact);
        assert!(eager < lazy);
    }

    #[test]
    fn partial_sort_interpolates_between_linear_and_full_sort() {
        let n = 100_000.0;
        // One group = a full sort; per-row groups = the linear floor.
        assert!((partial_sort(n, 1.0) - sort(n)).abs() < 1e-6);
        assert!((partial_sort(n, n) - n).abs() < 1e-6);
        // Monotone: more groups (finer pre-grouping) = cheaper.
        assert!(partial_sort(n, 1000.0) < partial_sort(n, 10.0));
        assert!(partial_sort(n, 10.0) < sort(n));
        // The acceptance shape: hash-aggregate output (one row per
        // group) re-sorted by its group key is far cheaper than a full
        // sort — that is the enforcer's whole reason to exist.
        let groups = 10_000.0;
        assert!(partial_sort(groups, groups) < 0.2 * sort(groups));
        // Degenerate inputs stay positive and finite.
        assert!(partial_sort(0.0, 1.0) > 0.0);
        assert!(partial_sort(1.0, 5.0) > 0.0);
    }

    #[test]
    fn join_floor_is_a_true_lower_bound() {
        // Across small/large/skewed shapes the floor never exceeds any
        // join operator's cost — the admissibility requirement of the
        // bounded search.
        for &(l, r, out) in &[
            (10.0, 10.0, 1.0),
            (10.0, 1_000_000.0, 50.0),
            (1_000_000.0, 10.0, 50.0),
            (100_000.0, 100_000.0, 1_000_000.0),
            (1.0, 1.0, 1.0),
        ] {
            let floor = join_floor(l, r, out);
            assert!(floor <= merge_join(l, r, out));
            assert!(floor <= hash_join(l, r, out));
            assert!(floor <= nested_loop_join(l, r, out));
            assert!(floor <= group_join(l, r, out));
        }
    }

    #[test]
    fn sort_is_superlinear() {
        assert!(sort(2000.0) > 2.0 * sort(1000.0));
        // Tiny inputs do not produce NaN/negative costs.
        assert!(sort(0.0) > 0.0);
        assert!(sort(1.0) > 0.0);
    }
}
