//! The cost model.
//!
//! Deliberately textbook-simple — the experiments measure *plan
//! generation* cost, not execution quality — but order-sensitive where
//! it matters: a merge join is the cheapest join when both inputs are
//! already sorted, which is what makes interesting orders worth
//! tracking. Costs are abstract "work units" proportional to tuples
//! processed.

/// Cost of a full heap scan.
pub fn scan(card: f64) -> f64 {
    card
}

/// Cost of a full index scan producing the index order.
pub fn index_scan(card: f64, clustered: bool) -> f64 {
    if clustered {
        // Same I/O as a heap scan, order for free.
        card * 1.05
    } else {
        // Random accesses: markedly more expensive.
        card * 4.0
    }
}

/// Cost of sorting `card` tuples.
pub fn sort(card: f64) -> f64 {
    let n = card.max(2.0);
    n * n.log2()
}

/// Cost of a merge join over two sorted inputs.
pub fn merge_join(left: f64, right: f64, out: f64) -> f64 {
    left + right + 0.1 * out
}

/// Cost of a hash join (build right, probe left).
pub fn hash_join(left: f64, right: f64, out: f64) -> f64 {
    1.2 * right + 1.1 * left + 0.1 * out
}

/// Cost of a tuple-at-a-time nested-loop join.
pub fn nested_loop_join(left: f64, right: f64, out: f64) -> f64 {
    left + left * right * 0.01 + 0.1 * out
}

/// Cost of a streaming (sort-based) aggregation — requires the input to
/// be ordered *or grouped* by the grouping attributes.
pub fn streaming_aggregate(card: f64) -> f64 {
    0.5 * card
}

/// Cost of a hash aggregation — order-agnostic but pays for the table.
pub fn hash_aggregate(card: f64) -> f64 {
    1.6 * card
}

/// Cost of the hash-grouping enforcer: one hash pass that makes equal
/// key tuples adjacent without sorting. Linear — the grouping analogue
/// of [`sort`], and the reason groupings are cheaper to enforce than
/// orderings (the VLDB'04 motivation).
pub fn hash_group(card: f64) -> f64 {
    1.3 * card
}

/// Cost of a group-join: a hash join and the final aggregation fused
/// into one pass over a probe input whose groups are already adjacent.
/// The join work is the hash join's; the aggregation folds into the
/// probe loop for a fraction of a separate streaming aggregate's pass —
/// which is why a grouped probe makes the fused operator strictly
/// cheaper than any join-then-aggregate split.
pub fn group_join(left: f64, right: f64, out: f64) -> f64 {
    1.2 * right + 1.1 * left + 0.15 * out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_join_wins_on_sorted_inputs() {
        let (l, r, out) = (10_000.0, 10_000.0, 1_000.0);
        assert!(merge_join(l, r, out) < hash_join(l, r, out));
        assert!(merge_join(l, r, out) < nested_loop_join(l, r, out));
    }

    #[test]
    fn sorting_then_merging_can_lose_to_hashing() {
        // If both inputs must first be sorted, hashing is cheaper —
        // so the optimizer's choice genuinely depends on available
        // orderings.
        let (l, r, out) = (100_000.0, 100_000.0, 10_000.0);
        let sort_then_merge = sort(l) + sort(r) + merge_join(l, r, out);
        assert!(hash_join(l, r, out) < sort_then_merge);
    }

    #[test]
    fn clustered_index_scan_beats_scan_plus_sort() {
        let card = 50_000.0;
        assert!(index_scan(card, true) < scan(card) + sort(card));
        assert!(index_scan(card, false) > index_scan(card, true));
    }

    #[test]
    fn streaming_aggregation_beats_hashing_but_needs_order() {
        let card = 10_000.0;
        assert!(streaming_aggregate(card) < hash_aggregate(card));
        // If a sort must be paid first, hashing wins — the choice
        // depends on available orderings, like the join choice.
        assert!(hash_aggregate(card) < sort(card) + streaming_aggregate(card));
    }

    #[test]
    fn hash_group_is_cheaper_than_sort_but_not_free() {
        // Enforcing a grouping never pays off right under the aggregate
        // (hash aggregation already groups), but it beats sorting on the
        // small side of a join whose output feeds a streaming aggregate.
        let card = 10_000.0;
        assert!(hash_group(card) < sort(card));
        assert!(hash_group(card) + streaming_aggregate(card) > hash_aggregate(card));
        let (small, joined) = (100.0, 100_000.0);
        assert!(
            hash_group(small) + streaming_aggregate(joined) < hash_aggregate(joined),
            "pre-grouping a small input wins once the join fans out"
        );
    }

    #[test]
    fn group_join_beats_every_join_then_aggregate_split() {
        let (l, r, out) = (10_000.0, 1_000.0, 100_000.0);
        assert!(group_join(l, r, out) < hash_join(l, r, out) + streaming_aggregate(out));
        assert!(group_join(l, r, out) < hash_join(l, r, out) + hash_aggregate(out));
        // But it is still a join: it cannot beat the join alone.
        assert!(group_join(l, r, out) > hash_join(l, r, out));
    }

    #[test]
    fn eager_aggregation_pays_when_the_join_fans_out() {
        // Pre-aggregating a 1M-row fact table down to 1k groups, then
        // joining, beats joining 1M rows and aggregating at the root —
        // the Yan/Larson eager group-by payoff the placement dimension
        // searches for.
        let (fact, dim, groups) = (1_000_000.0, 100.0, 1_000.0);
        let eager = hash_aggregate(fact) + hash_join(groups, dim, groups) + hash_aggregate(groups);
        let lazy = hash_join(fact, dim, fact) + hash_aggregate(fact);
        assert!(eager < lazy);
    }

    #[test]
    fn sort_is_superlinear() {
        assert!(sort(2000.0) > 2.0 * sort(1000.0));
        // Tiny inputs do not produce NaN/negative costs.
        assert!(sort(0.0) > 0.0);
        assert!(sort(1.0) > 0.0);
    }
}
