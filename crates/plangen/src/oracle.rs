//! The order-optimization interface the plan generator programs against.
//!
//! This is the ADT of the paper's §2 (`contains`,
//! `inferNewLogicalOrderings`, constructors), extended with the grouping
//! operations of the combined VLDB'04 framework, plus the
//! plan-domination test of §7 and memory accounting for Fig. 14. The
//! DFSM framework, the Simmen baseline, and the naive explicit-set
//! oracle all implement it, so the DP code is shared verbatim between
//! every experiment arm.
//!
//! All three implementations are `Sync` (statically asserted below), so
//! all three run unchanged under the parallel DP driver. The DFSM
//! framework is immutable after preparation — parallel probes contend on
//! nothing, the property the paper's design buys. The baseline and the
//! explicit oracle memoize behind a mutex and pay for the sharing,
//! faithfully reproducing their cost profile on multicore.

use ofw_common::FxHashMap;
use ofw_core::fd::{FdSet, FdSetId};
use ofw_core::ordering::Ordering;
use ofw_core::property::{Grouping, HeadTail, LogicalProperty};
use ofw_core::spec::InputSpec;
use ofw_core::ExplicitOrderings;
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::Mutex;

/// Preparation-side counters an oracle can report after a run. Only the
/// DFSM framework has a non-trivial preparation phase; the other arms
/// return the default (all zero / unknown), which the stats plumbing
/// passes through unchanged.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrepCounters {
    /// NFSM nodes after pruning (0 when the arm has no NFSM).
    pub nfsm_states: usize,
    /// DFSM states materialized so far — under lazy preparation, the
    /// states this query's probes actually forced into existence.
    pub dfsm_states_materialized: usize,
    /// Total DFSM states, when known (`None` until a lazy automaton
    /// reaches its fixpoint).
    pub dfsm_states_total: Option<usize>,
    /// Preparation-cache hits that served this oracle (0 or 1 for a
    /// single prepared framework).
    pub interned_hits: u64,
}

/// Order/grouping-optimization ADT as seen by the plan generator.
pub trait OrderOracle {
    /// Per-plan-node order annotation.
    type State: Copy + Eq + Hash + Debug;
    /// Pre-resolved handle of an interesting property.
    type Key: Copy + Debug;

    /// Resolves an ordering to a handle once per query (cold path).
    fn resolve(&self, o: &Ordering) -> Option<Self::Key>;

    /// Resolves a grouping to a handle once per query (cold path).
    fn resolve_grouping(&self, g: &Grouping) -> Option<Self::Key>;

    /// Resolves a head/tail pair to a handle once per query (cold path).
    fn resolve_head_tail(&self, h: &HeadTail) -> Option<Self::Key>;

    /// Whether a sort/scan/hash operator may produce this property
    /// (`O_P`).
    fn is_producible(&self, k: Self::Key) -> bool;

    /// Constructor: unordered stream.
    fn produce_empty(&self) -> Self::State;

    /// Constructor: stream physically ordered by the order behind `k`
    /// (must be producible).
    fn produce(&self, k: Self::Key) -> Self::State;

    /// Constructor: stream physically *grouped* by the grouping behind
    /// `k` — hash-aggregation or hash-partition output (must be
    /// producible).
    fn produce_grouping(&self, k: Self::Key) -> Self::State;

    /// `inferNewLogicalOrderings`: one operator's FD set is applied.
    fn infer(&self, s: Self::State, f: FdSetId) -> Self::State;

    /// `contains`: does a stream in state `s` satisfy order `k`?
    fn satisfies(&self, s: Self::State, k: Self::Key) -> bool;

    /// `contains` for groupings: does a stream in state `s` satisfy the
    /// grouping behind `k`?
    fn satisfies_grouping(&self, s: Self::State, k: Self::Key) -> bool;

    /// `contains` for head/tail pairs: is a stream in state `s` grouped
    /// by the pair's head and sorted by its tail within each group —
    /// the partial-sort admission and refinement probe?
    fn satisfies_head_tail(&self, s: Self::State, k: Self::Key) -> bool;

    /// Property-wise plan domination (`a` at least as ordered/grouped as
    /// `b`).
    ///
    /// Contract: domination is **reflexive** — `dominates(s, s)` must be
    /// `true` for every state. The DP's bucketed Pareto sets rely on it:
    /// two plans carrying the *same* state handle are compared on cost
    /// alone, without calling the oracle (counted as
    /// `dominance_memo_hits`, not probes). All three arms short-circuit
    /// `a == b` today; a new oracle must too.
    fn dominates(&self, a: Self::State, b: Self::State) -> bool;

    /// Bytes of order-annotation storage for `plan_nodes` plan nodes,
    /// including shared structures.
    fn memory_bytes(&self, plan_nodes: usize) -> usize;

    /// Preparation counters, read *after* a DP run so lazy automata
    /// report what the run materialized. Defaults to all-zero for arms
    /// without a preparation phase.
    fn prep_counters(&self) -> PrepCounters {
        PrepCounters::default()
    }

    /// Display name for experiment tables.
    fn name(&self) -> &'static str;
}

impl OrderOracle for ofw_core::OrderingFramework {
    type State = ofw_core::State;
    type Key = ofw_core::OrderHandle;

    fn resolve(&self, o: &Ordering) -> Option<Self::Key> {
        self.handle(o)
    }

    fn resolve_grouping(&self, g: &Grouping) -> Option<Self::Key> {
        self.handle_grouping(g)
    }

    fn resolve_head_tail(&self, h: &HeadTail) -> Option<Self::Key> {
        self.handle_head_tail(h)
    }

    fn is_producible(&self, k: Self::Key) -> bool {
        ofw_core::OrderingFramework::is_producible(self, k)
    }

    fn produce_empty(&self) -> Self::State {
        ofw_core::OrderingFramework::produce_empty(self)
    }

    fn produce(&self, k: Self::Key) -> Self::State {
        ofw_core::OrderingFramework::produce(self, k)
    }

    fn produce_grouping(&self, k: Self::Key) -> Self::State {
        ofw_core::OrderingFramework::produce_grouping(self, k)
    }

    #[inline]
    fn infer(&self, s: Self::State, f: FdSetId) -> Self::State {
        ofw_core::OrderingFramework::infer(self, s, f)
    }

    #[inline]
    fn satisfies(&self, s: Self::State, k: Self::Key) -> bool {
        ofw_core::OrderingFramework::satisfies(self, s, k)
    }

    #[inline]
    fn satisfies_grouping(&self, s: Self::State, k: Self::Key) -> bool {
        ofw_core::OrderingFramework::satisfies_grouping(self, s, k)
    }

    #[inline]
    fn satisfies_head_tail(&self, s: Self::State, k: Self::Key) -> bool {
        ofw_core::OrderingFramework::satisfies_head_tail(self, s, k)
    }

    #[inline]
    fn dominates(&self, a: Self::State, b: Self::State) -> bool {
        ofw_core::OrderingFramework::dominates(self, a, b)
    }

    fn memory_bytes(&self, plan_nodes: usize) -> usize {
        ofw_core::OrderingFramework::memory_bytes(self, plan_nodes)
    }

    fn prep_counters(&self) -> PrepCounters {
        let stats = self.stats();
        PrepCounters {
            nfsm_states: stats.nfsm_nodes,
            dfsm_states_materialized: self.dfsm_states_materialized(),
            dfsm_states_total: self.dfsm_states_total(),
            interned_hits: stats.interned_hit as u64,
        }
    }

    fn name(&self) -> &'static str {
        "nfsm/dfsm (ours)"
    }
}

impl OrderOracle for ofw_simmen::SimmenFramework {
    type State = ofw_simmen::SimmenState;
    type Key = ofw_simmen::SimmenOrderKey;

    fn resolve(&self, o: &Ordering) -> Option<Self::Key> {
        self.key(o)
    }

    fn resolve_grouping(&self, g: &Grouping) -> Option<Self::Key> {
        self.grouping_key(g)
    }

    fn resolve_head_tail(&self, h: &HeadTail) -> Option<Self::Key> {
        self.head_tail_key(h)
    }

    fn is_producible(&self, k: Self::Key) -> bool {
        ofw_simmen::SimmenFramework::is_producible(self, k)
    }

    fn produce_empty(&self) -> Self::State {
        ofw_simmen::SimmenFramework::produce_empty(self)
    }

    fn produce(&self, k: Self::Key) -> Self::State {
        ofw_simmen::SimmenFramework::produce(self, k)
    }

    fn produce_grouping(&self, k: Self::Key) -> Self::State {
        ofw_simmen::SimmenFramework::produce(self, k)
    }

    #[inline]
    fn infer(&self, s: Self::State, f: FdSetId) -> Self::State {
        ofw_simmen::SimmenFramework::infer(self, s, f)
    }

    #[inline]
    fn satisfies(&self, s: Self::State, k: Self::Key) -> bool {
        ofw_simmen::SimmenFramework::satisfies(self, s, k)
    }

    #[inline]
    fn satisfies_grouping(&self, s: Self::State, k: Self::Key) -> bool {
        ofw_simmen::SimmenFramework::satisfies(self, s, k)
    }

    #[inline]
    fn satisfies_head_tail(&self, s: Self::State, k: Self::Key) -> bool {
        ofw_simmen::SimmenFramework::satisfies(self, s, k)
    }

    #[inline]
    fn dominates(&self, a: Self::State, b: Self::State) -> bool {
        ofw_simmen::SimmenFramework::dominates(self, a, b)
    }

    fn memory_bytes(&self, plan_nodes: usize) -> usize {
        ofw_simmen::SimmenFramework::memory_bytes(self, plan_nodes)
    }

    fn name(&self) -> &'static str {
        "simmen"
    }
}

/// Per-plan-node state under the explicit-set oracle: a handle into the
/// interned set store (the sets themselves are Ω(2^n)-sized — that is
/// the point).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExplicitStateId(pub u32);

impl Debug for ExplicitStateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Key of an interesting property under the explicit oracle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ExplicitKey(u32);

/// Canonical form of an explicit set (for interning).
type Canon = (Vec<Ordering>, Vec<Grouping>, Vec<HeadTail>);

struct ExplicitStore {
    states: Vec<ExplicitOrderings>,
    canon: FxHashMap<Canon, u32>,
    infer_cache: FxHashMap<(u32, FdSetId), u32>,
}

/// The §2 "intuitive approach" wrapped in the plan-generation interface:
/// every state is a fully materialized, closed set of orderings and
/// groupings, and `infer` recomputes the closure. Unusable at scale (the
/// paper's motivation) but the perfect third arm for cross-checking the
/// DFSM framework *inside* the plan generator — the `table_grouping`
/// binary and the integration tests assert all arms agree on the
/// optimal plan cost. The state store sits behind a mutex so the oracle
/// is `Sync`; interning is content-addressed, so which thread interns a
/// set first never changes what any state *means*.
pub struct ExplicitOracle {
    fd_sets: Vec<FdSet>,
    props: Vec<LogicalProperty>,
    keys: FxHashMap<LogicalProperty, ExplicitKey>,
    producible: Vec<bool>,
    store: Mutex<ExplicitStore>,
}

impl ExplicitOracle {
    /// Preparation: record the interesting properties; states are built
    /// lazily.
    pub fn prepare(spec: &InputSpec) -> Self {
        let mut props: Vec<LogicalProperty> = Vec::new();
        let mut keys = FxHashMap::default();
        let mut producible = Vec::new();
        for (p, prod) in spec.interesting_closure() {
            keys.insert(p.clone(), ExplicitKey(props.len() as u32));
            props.push(p);
            producible.push(prod);
        }
        ExplicitOracle {
            fd_sets: spec.fd_sets().to_vec(),
            props,
            keys,
            producible,
            store: Mutex::new(ExplicitStore {
                states: Vec::new(),
                canon: FxHashMap::default(),
                infer_cache: FxHashMap::default(),
            }),
        }
    }

    /// Content-addressed interning under an already-held store lock.
    fn intern_locked(store: &mut ExplicitStore, e: ExplicitOrderings) -> ExplicitStateId {
        let mut orderings: Vec<Ordering> = e.iter().cloned().collect();
        orderings.sort();
        let mut groupings: Vec<Grouping> = e.iter_groupings().cloned().collect();
        groupings.sort();
        let mut pairs: Vec<HeadTail> = e.iter_head_tails().cloned().collect();
        pairs.sort();
        let canon = (orderings, groupings, pairs);
        if let Some(&id) = store.canon.get(&canon) {
            return ExplicitStateId(id);
        }
        let id = store.states.len() as u32;
        store.states.push(e);
        store.canon.insert(canon, id);
        ExplicitStateId(id)
    }

    fn intern(&self, e: ExplicitOrderings) -> ExplicitStateId {
        Self::intern_locked(&mut self.store.lock().unwrap(), e)
    }
}

impl OrderOracle for ExplicitOracle {
    type State = ExplicitStateId;
    type Key = ExplicitKey;

    fn resolve(&self, o: &Ordering) -> Option<Self::Key> {
        self.keys
            .get(&LogicalProperty::Ordering(o.clone()))
            .copied()
    }

    fn resolve_grouping(&self, g: &Grouping) -> Option<Self::Key> {
        self.keys
            .get(&LogicalProperty::Grouping(g.clone()))
            .copied()
    }

    fn resolve_head_tail(&self, h: &HeadTail) -> Option<Self::Key> {
        self.keys
            .get(&LogicalProperty::HeadTail(h.clone()))
            .copied()
    }

    fn is_producible(&self, k: Self::Key) -> bool {
        self.producible[k.0 as usize]
    }

    fn produce_empty(&self) -> Self::State {
        self.intern(ExplicitOrderings::unordered())
    }

    fn produce(&self, k: Self::Key) -> Self::State {
        let e = match &self.props[k.0 as usize] {
            LogicalProperty::Ordering(o) => ExplicitOrderings::from_physical(o),
            LogicalProperty::Grouping(g) => ExplicitOrderings::from_grouping(g),
            LogicalProperty::HeadTail(h) => ExplicitOrderings::from_head_tail(h),
        };
        self.intern(e)
    }

    fn produce_grouping(&self, k: Self::Key) -> Self::State {
        self.produce(k)
    }

    fn infer(&self, s: Self::State, f: FdSetId) -> Self::State {
        let mut store = self.store.lock().unwrap();
        if let Some(&hit) = store.infer_cache.get(&(s.0, f)) {
            return ExplicitStateId(hit);
        }
        let mut e = store.states[s.0 as usize].clone();
        e.infer(&self.fd_sets[f.index()]);
        let id = Self::intern_locked(&mut store, e);
        store.infer_cache.insert((s.0, f), id.0);
        id
    }

    fn satisfies(&self, s: Self::State, k: Self::Key) -> bool {
        let store = self.store.lock().unwrap();
        let e = &store.states[s.0 as usize];
        match &self.props[k.0 as usize] {
            LogicalProperty::Ordering(o) => e.contains(o),
            LogicalProperty::Grouping(g) => e.contains_grouping(g),
            LogicalProperty::HeadTail(h) => e.contains_head_tail(h),
        }
    }

    fn satisfies_grouping(&self, s: Self::State, k: Self::Key) -> bool {
        self.satisfies(s, k)
    }

    fn satisfies_head_tail(&self, s: Self::State, k: Self::Key) -> bool {
        self.satisfies(s, k)
    }

    fn dominates(&self, a: Self::State, b: Self::State) -> bool {
        if a == b {
            return true;
        }
        let store = self.store.lock().unwrap();
        let (ea, eb) = (&store.states[a.0 as usize], &store.states[b.0 as usize]);
        // Set inclusion is future-proof: derivation is monotone in the
        // materialized sets.
        eb.iter().all(|o| ea.contains(o))
            && eb.iter_groupings().all(|g| ea.contains_grouping(g))
            && eb.iter_head_tails().all(|h| ea.contains_head_tail(h))
    }

    fn memory_bytes(&self, plan_nodes: usize) -> usize {
        let store = self.store.lock().unwrap();
        let set_bytes: usize = store
            .states
            .iter()
            .map(|e| {
                e.iter()
                    .map(|o| o.heap_bytes() + std::mem::size_of::<Ordering>())
                    .sum::<usize>()
                    + e.iter_groupings()
                        .map(|g| g.heap_bytes() + std::mem::size_of::<Grouping>())
                        .sum::<usize>()
                    + e.iter_head_tails()
                        .map(|h| h.heap_bytes() + std::mem::size_of::<HeadTail>())
                        .sum::<usize>()
            })
            .sum();
        plan_nodes * std::mem::size_of::<ExplicitStateId>() + set_bytes
    }

    fn name(&self) -> &'static str {
        "explicit set (oracle)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofw_catalog::AttrId;
    use ofw_core::fd::Fd;
    use ofw_core::{InputSpec, OrderingFramework, PruneConfig};
    use ofw_simmen::SimmenFramework;

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);
    const C: AttrId = AttrId(2);

    fn o(ids: &[AttrId]) -> Ordering {
        Ordering::new(ids.to_vec())
    }

    fn g(ids: &[AttrId]) -> Grouping {
        Grouping::new(ids.to_vec())
    }

    fn spec() -> InputSpec {
        let mut s = InputSpec::new();
        s.add_produced(o(&[A]));
        s.add_produced(o(&[A, B]));
        s.add_produced(g(&[A, B]));
        s.add_fd_set(vec![Fd::functional(&[B], C)]);
        s.add_fd_set(vec![Fd::equation(A, B)]);
        s
    }

    /// All oracles must agree on satisfied interesting properties for
    /// the same call sequence (generic over the trait).
    fn probe<O: OrderOracle>(oracle: &O, f_eq: FdSetId) -> Vec<bool> {
        let k_a = oracle.resolve(&o(&[A])).unwrap();
        let k_ab = oracle.resolve(&o(&[A, B])).unwrap();
        let kg_ab = oracle.resolve_grouping(&g(&[A, B])).unwrap();
        let s0 = oracle.produce(k_a);
        let s1 = oracle.infer(s0, f_eq);
        let sg = oracle.produce_grouping(kg_ab);
        vec![
            oracle.satisfies(s0, k_a),
            oracle.satisfies(s0, k_ab),
            oracle.satisfies(s1, k_a),
            oracle.satisfies(s1, k_ab),
            oracle.satisfies_grouping(s1, kg_ab),
            oracle.satisfies_grouping(sg, kg_ab),
            oracle.satisfies(sg, k_a),
        ]
    }

    #[test]
    fn oracles_agree_through_the_trait() {
        let spec = spec();
        let ours = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
        let simmen = SimmenFramework::prepare(&spec);
        let explicit = ExplicitOracle::prepare(&spec);
        let f_eq = FdSetId(1);
        let expected = vec![true, false, true, true, true, true, false];
        assert_eq!(probe(&ours, f_eq), expected, "dfsm");
        assert_eq!(probe(&simmen, f_eq), expected, "simmen");
        assert_eq!(probe(&explicit, f_eq), expected, "explicit");
    }

    #[test]
    fn explicit_oracle_interns_states() {
        let spec = spec();
        let ex = ExplicitOracle::prepare(&spec);
        let k = ex.resolve(&o(&[A])).unwrap();
        let s1 = ex.produce(k);
        let s2 = ex.produce(k);
        assert_eq!(s1, s2, "equal sets share a state id");
        let f = FdSetId(0);
        assert_eq!(ex.infer(s1, f), ex.infer(s2, f));
        assert!(ex.memory_bytes(10) > 0);
    }

    /// The parallel driver shares one oracle across all workers; every
    /// arm must be `Send + Sync` (states/keys ride inside plan nodes
    /// between threads, so they must be too). A compile-time guarantee —
    /// if an oracle regresses to non-thread-safe interior mutability,
    /// this stops building.
    #[test]
    fn all_oracles_are_send_and_sync() {
        fn assert_thread_safe<T: Send + Sync>() {}
        assert_thread_safe::<ofw_core::OrderingFramework>();
        assert_thread_safe::<ofw_simmen::SimmenFramework>();
        assert_thread_safe::<ExplicitOracle>();
        assert_thread_safe::<ofw_core::State>();
        assert_thread_safe::<ofw_simmen::SimmenState>();
        assert_thread_safe::<ExplicitStateId>();
        assert_thread_safe::<ofw_core::OrderHandle>();
        assert_thread_safe::<ofw_simmen::SimmenOrderKey>();
        assert_thread_safe::<ExplicitKey>();
    }

    #[test]
    fn names_differ() {
        let spec = spec();
        let ours = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
        let simmen = SimmenFramework::prepare(&spec);
        let explicit = ExplicitOracle::prepare(&spec);
        assert_ne!(OrderOracle::name(&ours), OrderOracle::name(&simmen));
        assert_ne!(OrderOracle::name(&ours), OrderOracle::name(&explicit));
    }
}
