//! The order-optimization interface the plan generator programs against.
//!
//! This is the ADT of the paper's §2 (`contains`,
//! `inferNewLogicalOrderings`, constructors), plus the plan-domination
//! test of §7 and memory accounting for Fig. 14. Both the DFSM framework
//! and the Simmen baseline implement it, so the DP code is shared
//! verbatim between the two experiment arms.

use ofw_core::fd::FdSetId;
use ofw_core::ordering::Ordering;
use std::fmt::Debug;
use std::hash::Hash;

/// Order-optimization ADT as seen by the plan generator.
pub trait OrderOracle {
    /// Per-plan-node order annotation.
    type State: Copy + Eq + Hash + Debug;
    /// Pre-resolved handle of an interesting order.
    type Key: Copy + Debug;

    /// Resolves an ordering to a handle once per query (cold path).
    fn resolve(&self, o: &Ordering) -> Option<Self::Key>;

    /// Whether a sort/scan may produce this ordering (`O_P`).
    fn is_producible(&self, k: Self::Key) -> bool;

    /// Constructor: unordered stream.
    fn produce_empty(&self) -> Self::State;

    /// Constructor: stream physically ordered by the order behind `k`
    /// (must be producible).
    fn produce(&self, k: Self::Key) -> Self::State;

    /// `inferNewLogicalOrderings`: one operator's FD set is applied.
    fn infer(&self, s: Self::State, f: FdSetId) -> Self::State;

    /// `contains`: does a stream in state `s` satisfy order `k`?
    fn satisfies(&self, s: Self::State, k: Self::Key) -> bool;

    /// Order-wise plan domination (`a` at least as ordered as `b`).
    fn dominates(&self, a: Self::State, b: Self::State) -> bool;

    /// Bytes of order-annotation storage for `plan_nodes` plan nodes,
    /// including shared structures.
    fn memory_bytes(&self, plan_nodes: usize) -> usize;

    /// Display name for experiment tables.
    fn name(&self) -> &'static str;
}

impl OrderOracle for ofw_core::OrderingFramework {
    type State = ofw_core::State;
    type Key = ofw_core::OrderHandle;

    fn resolve(&self, o: &Ordering) -> Option<Self::Key> {
        self.handle(o)
    }

    fn is_producible(&self, k: Self::Key) -> bool {
        OrderingFrameworkExt::is_producible(self, k)
    }

    fn produce_empty(&self) -> Self::State {
        ofw_core::OrderingFramework::produce_empty(self)
    }

    fn produce(&self, k: Self::Key) -> Self::State {
        ofw_core::OrderingFramework::produce(self, k)
    }

    #[inline]
    fn infer(&self, s: Self::State, f: FdSetId) -> Self::State {
        ofw_core::OrderingFramework::infer(self, s, f)
    }

    #[inline]
    fn satisfies(&self, s: Self::State, k: Self::Key) -> bool {
        ofw_core::OrderingFramework::satisfies(self, s, k)
    }

    #[inline]
    fn dominates(&self, a: Self::State, b: Self::State) -> bool {
        ofw_core::OrderingFramework::dominates(self, a, b)
    }

    fn memory_bytes(&self, plan_nodes: usize) -> usize {
        ofw_core::OrderingFramework::memory_bytes(self, plan_nodes)
    }

    fn name(&self) -> &'static str {
        "nfsm/dfsm (ours)"
    }
}

/// Disambiguation shim (the inherent method has the same name).
trait OrderingFrameworkExt {
    fn is_producible(&self, k: ofw_core::OrderHandle) -> bool;
}

impl OrderingFrameworkExt for ofw_core::OrderingFramework {
    fn is_producible(&self, k: ofw_core::OrderHandle) -> bool {
        ofw_core::OrderingFramework::is_producible(self, k)
    }
}

impl OrderOracle for ofw_simmen::SimmenFramework {
    type State = ofw_simmen::SimmenState;
    type Key = ofw_simmen::SimmenOrderKey;

    fn resolve(&self, o: &Ordering) -> Option<Self::Key> {
        self.key(o)
    }

    fn is_producible(&self, k: Self::Key) -> bool {
        ofw_simmen::SimmenFramework::is_producible(self, k)
    }

    fn produce_empty(&self) -> Self::State {
        ofw_simmen::SimmenFramework::produce_empty(self)
    }

    fn produce(&self, k: Self::Key) -> Self::State {
        ofw_simmen::SimmenFramework::produce(self, k)
    }

    #[inline]
    fn infer(&self, s: Self::State, f: FdSetId) -> Self::State {
        ofw_simmen::SimmenFramework::infer(self, s, f)
    }

    #[inline]
    fn satisfies(&self, s: Self::State, k: Self::Key) -> bool {
        ofw_simmen::SimmenFramework::satisfies(self, s, k)
    }

    #[inline]
    fn dominates(&self, a: Self::State, b: Self::State) -> bool {
        ofw_simmen::SimmenFramework::dominates(self, a, b)
    }

    fn memory_bytes(&self, plan_nodes: usize) -> usize {
        ofw_simmen::SimmenFramework::memory_bytes(self, plan_nodes)
    }

    fn name(&self) -> &'static str {
        "simmen"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofw_catalog::AttrId;
    use ofw_core::fd::Fd;
    use ofw_core::{InputSpec, OrderingFramework, PruneConfig};
    use ofw_simmen::SimmenFramework;

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);
    const C: AttrId = AttrId(2);

    fn o(ids: &[AttrId]) -> Ordering {
        Ordering::new(ids.to_vec())
    }

    fn spec() -> InputSpec {
        let mut s = InputSpec::new();
        s.add_produced(o(&[A]));
        s.add_produced(o(&[A, B]));
        s.add_fd_set(vec![Fd::functional(&[B], C)]);
        s.add_fd_set(vec![Fd::equation(A, B)]);
        s
    }

    /// Both oracles must agree on satisfied interesting orders for the
    /// same call sequence (generic over the trait).
    fn agree<O: OrderOracle>(oracle: &O, f_eq: FdSetId) -> Vec<bool> {
        let k_a = oracle.resolve(&o(&[A])).unwrap();
        let k_ab = oracle.resolve(&o(&[A, B])).unwrap();
        let s0 = oracle.produce(k_a);
        let s1 = oracle.infer(s0, f_eq);
        vec![
            oracle.satisfies(s0, k_a),
            oracle.satisfies(s0, k_ab),
            oracle.satisfies(s1, k_a),
            oracle.satisfies(s1, k_ab),
        ]
    }

    #[test]
    fn oracles_agree_through_the_trait() {
        let spec = spec();
        let ours = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
        let simmen = SimmenFramework::prepare(&spec);
        let f_eq = FdSetId(1);
        assert_eq!(agree(&ours, f_eq), agree(&simmen, f_eq));
        // (a) + a=b ⇒ (a,b) satisfied.
        assert_eq!(agree(&ours, f_eq), vec![true, false, true, true]);
    }

    #[test]
    fn names_differ() {
        let spec = spec();
        let ours = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
        let simmen = SimmenFramework::prepare(&spec);
        assert_ne!(OrderOracle::name(&ours), OrderOracle::name(&simmen));
    }
}
