//! # ofw-plangen — a bottom-up dynamic-programming plan generator
//!
//! The experimental vehicle of the paper's §7: "we implemented both our
//! algorithm and the algorithm proposed by Simmen et al. and integrated
//! them into a bottom-up plan generator based on [Lohman 1988]". This
//! crate is that generator: dynamic programming over connected
//! subgraphs, a physical algebra with order-sensitive operators (sort,
//! merge join, ordered index scan) and order-agnostic ones (heap scan,
//! hash join, nested-loop join), a textbook cost model, and Pareto
//! pruning on (cost, order state).
//!
//! Order optimization is accessed exclusively through the
//! [`OrderOracle`] trait, implemented by both
//! [`ofw_core::OrderingFramework`] (the paper's DFSM, O(1) per call) and
//! [`ofw_simmen::SimmenFramework`] (the Ω(n) baseline), so the two run
//! under *identical* call patterns — the fairness requirement of §7.

pub mod cost;
pub mod dp;
pub mod exec;
pub mod oracle;
pub mod plan;

pub use dp::{PlanGen, PlanGenResult, PlanGenStats};
pub use exec::{execute, synthetic_data, Table};
pub use oracle::{ExplicitKey, ExplicitOracle, ExplicitStateId, OrderOracle};
pub use plan::{PlanId, PlanNode, PlanOp};
