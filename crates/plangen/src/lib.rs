//! # ofw-plangen — a bottom-up dynamic-programming plan generator
//!
//! The experimental vehicle of the paper's §7: "we implemented both our
//! algorithm and the algorithm proposed by Simmen et al. and integrated
//! them into a bottom-up plan generator based on [Lohman 1988]". This
//! crate is that generator: dynamic programming over connected
//! subgraphs, a physical algebra with order-sensitive operators (sort,
//! partial sort, merge join, ordered index scan) and order-agnostic
//! ones (heap scan, hash join, nested-loop join), a textbook cost
//! model, and Pareto pruning on (cost, property state, aggregation
//! class).
//!
//! ## The oracle seam
//!
//! Order optimization is accessed exclusively through the
//! [`OrderOracle`] trait, so every arm runs under *identical* call
//! patterns — the fairness requirement of §7. Three arms implement it:
//!
//! * [`ofw_core::OrderingFramework`] — the paper's DFSM, O(1) per call,
//!   immutable after preparation (lock-free under the parallel driver);
//! * [`ofw_simmen::SimmenFramework`] — the Ω(n) baseline, memoized;
//! * [`ExplicitOracle`] (this crate) — fully materialized property
//!   sets, the §2 "intuitive approach", kept as the ground-truth arm.
//!
//! The arm invariant the whole experiment rests on: **for the same
//! query, all three arms find equally cheap optimal plans** (asserted
//! across the test suite and the `table_*` binaries), even though their
//! probe costs differ by orders of magnitude. The DP itself is
//! deterministic — byte-identical plan tables at any thread count.
//!
//! ## Example: the oracle calls a DP iteration makes
//!
//! ```
//! use ofw_core::{Fd, InputSpec, Ordering, OrderingFramework, PruneConfig};
//! use ofw_plangen::{ExplicitOracle, OrderOracle};
//! use ofw_catalog::AttrId;
//!
//! let [a, b] = [AttrId(0), AttrId(1)];
//! let mut spec = InputSpec::new();
//! spec.add_produced(Ordering::new(vec![a]));
//! spec.add_tested(Ordering::new(vec![a, b]));
//! let f_ab = spec.add_fd_set(vec![Fd::functional(&[a], b)]);
//!
//! // Any arm slots into the same generic code — here the DFSM and the
//! // explicit-set ground truth, answering identically.
//! fn probe<O: OrderOracle>(oracle: &O, f: ofw_core::FdSetId) -> (bool, bool) {
//!     let a = oracle.resolve(&Ordering::new(vec![AttrId(0)])).unwrap();
//!     let ab = oracle.resolve(&Ordering::new(vec![AttrId(0), AttrId(1)])).unwrap();
//!     let scan = oracle.produce(a);          // ordered index scan
//!     let joined = oracle.infer(scan, f);    // join applies a → b
//!     (oracle.satisfies(scan, ab), oracle.satisfies(joined, ab))
//! }
//! let dfsm = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
//! let truth = ExplicitOracle::prepare(&spec);
//! assert_eq!(probe(&dfsm, f_ab), (false, true));
//! assert_eq!(probe(&truth, f_ab), (false, true));
//! ```

pub mod cost;
pub mod dp;
pub mod exec;
pub mod explain;
pub mod oracle;
pub mod plan;

pub use dp::{
    Enumerator, PlanGen, PlanGenResult, PlanGenStats, DEFAULT_ENUMERATION_BUDGET,
    DEFAULT_LINEARIZE_WINDOW,
};
pub use exec::{execute, synthetic_data, try_execute, ExecError, MissingAttr, Table};
pub use explain::{Explain, ExplainNode};
pub use oracle::{ExplicitKey, ExplicitOracle, ExplicitStateId, OrderOracle, PrepCounters};
pub use plan::{PlanArena, PlanId, PlanNode, PlanOp};
