//! A tuple-at-a-time plan executor over synthetic data.
//!
//! This is a *verification* substrate, not a performance one: it runs a
//! generated physical plan against small synthetic tables so tests can
//! check that every logical ordering the order framework claims for the
//! plan's output actually holds on the physical tuple stream — the
//! stream-satisfaction definition of the paper's §2, checked for real.
//!
//! Operator semantics mirror the planner's modeling assumptions:
//! scans emit rows in insertion (heap) order, index scans in key order,
//! joins evaluate *all* connecting equi-join predicates and preserve the
//! left (probe/outer) input's order, sorts are stable, streaming
//! aggregates keep the group order, and hash aggregates deliberately
//! emit groups in a scrambled deterministic order (so a test can never
//! pass by accident on "conveniently sorted" hash output).

use crate::plan::{PlanArena, PlanId, PlanOp};
use ofw_catalog::{AttrId, Catalog};
use ofw_common::{BitSet, FxHashMap};
use ofw_query::Query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A materialized relation: a column list and rows of `i64` values.
#[derive(Clone, Debug)]
pub struct Table {
    /// Column attribute ids, in row layout order.
    pub attrs: Vec<AttrId>,
    /// Row values, parallel to `attrs`.
    pub rows: Vec<Vec<i64>>,
}

/// An operator referenced an attribute its input does not carry — the
/// raw lookup failure. [`try_execute`] wraps it with the offending plan
/// node so a harness failure names the plan and attribute instead of
/// aborting the whole test binary.
#[derive(Clone, Debug, PartialEq)]
pub struct MissingAttr {
    /// The attribute that was looked up.
    pub attr: AttrId,
    /// The columns the table actually carries.
    pub available: Vec<AttrId>,
}

impl std::fmt::Display for MissingAttr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "attribute {:?} not in table (columns: {:?})",
            self.attr, self.available
        )
    }
}

impl std::error::Error for MissingAttr {}

/// Execution failure, located: which plan node, which operator, which
/// attribute. Produced by [`try_execute`]; `Display` renders everything
/// a differential-harness failure report needs.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecError {
    /// The plan node whose operator failed.
    pub plan: PlanId,
    /// The failing operator's display name.
    pub op: &'static str,
    /// The underlying lookup failure.
    pub cause: MissingAttr,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "plan {:?} ({}): {}", self.plan, self.op, self.cause)
    }
}

impl std::error::Error for ExecError {}

impl Table {
    /// Column index of `attr`, or a [`MissingAttr`] naming the
    /// attribute and the columns actually present.
    pub fn try_col(&self, attr: AttrId) -> Result<usize, MissingAttr> {
        self.attrs
            .iter()
            .position(|&a| a == attr)
            .ok_or_else(|| MissingAttr {
                attr,
                available: self.attrs.clone(),
            })
    }

    fn col(&self, attr: AttrId) -> usize {
        self.try_col(attr).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Does the physical tuple sequence satisfy the logical ordering
    /// `attrs` (lexicographically non-decreasing)? This is the §2
    /// satisfaction condition, evaluated directly.
    pub fn satisfies_ordering(&self, attrs: &[AttrId]) -> bool {
        let cols: Vec<usize> = attrs.iter().map(|&a| self.col(a)).collect();
        self.rows.windows(2).all(|w| {
            let (x, y) = (&w[0], &w[1]);
            let kx: Vec<i64> = cols.iter().map(|&c| x[c]).collect();
            let ky: Vec<i64> = cols.iter().map(|&c| y[c]).collect();
            kx <= ky
        })
    }

    /// Does the physical tuple sequence satisfy the *head/tail pair*
    /// — all tuples with equal values on `head` consecutive, and within
    /// each such run sorted lexicographically by `tail`? The pair
    /// satisfaction condition, evaluated directly.
    pub fn satisfies_head_tail(&self, head: &[AttrId], tail: &[AttrId]) -> bool {
        if !self.satisfies_grouping(head) {
            return false;
        }
        let hcols: Vec<usize> = head.iter().map(|&a| self.col(a)).collect();
        let tcols: Vec<usize> = tail.iter().map(|&a| self.col(a)).collect();
        self.rows.windows(2).all(|w| {
            let (x, y) = (&w[0], &w[1]);
            let same_group = hcols.iter().all(|&c| x[c] == y[c]);
            if !same_group {
                return true; // the tail only constrains within a group
            }
            let kx: Vec<i64> = tcols.iter().map(|&c| x[c]).collect();
            let ky: Vec<i64> = tcols.iter().map(|&c| y[c]).collect();
            kx <= ky
        })
    }

    /// Does the physical tuple sequence satisfy the logical *grouping*
    /// over `attrs` — are all tuples with equal values on `attrs`
    /// consecutive? The VLDB'04 grouping-satisfaction condition,
    /// evaluated directly.
    pub fn satisfies_grouping(&self, attrs: &[AttrId]) -> bool {
        let cols: Vec<usize> = attrs.iter().map(|&a| self.col(a)).collect();
        let mut seen: std::collections::HashSet<Vec<i64>> = std::collections::HashSet::new();
        let mut prev: Option<Vec<i64>> = None;
        for row in &self.rows {
            let key: Vec<i64> = cols.iter().map(|&c| row[c]).collect();
            if prev.as_ref() == Some(&key) {
                continue;
            }
            if !seen.insert(key.clone()) {
                return false; // the group resumed after a break
            }
            prev = Some(key);
        }
        true
    }
}

/// The constant every `attr = const` predicate compares against (the
/// synthetic value domain is small so a fixed constant always matches
/// some rows).
pub const CONST_VALUE: i64 = 0;

/// Generates one synthetic table per query relation: `rows_per_rel`
/// rows, values drawn from `0..domain` (small, to exercise duplicate /
/// tie handling in the ordering semantics).
pub fn synthetic_data(
    catalog: &Catalog,
    query: &Query,
    rows_per_rel: usize,
    domain: i64,
    seed: u64,
) -> Vec<Table> {
    let mut rng = StdRng::seed_from_u64(seed);
    query
        .relations
        .iter()
        .map(|&rel| {
            let attrs = catalog.relation(rel).attrs.clone();
            let rows = (0..rows_per_rel)
                .map(|_| attrs.iter().map(|_| rng.gen_range(0..domain)).collect())
                .collect();
            Table { attrs, rows }
        })
        .collect()
}

/// Executes the plan rooted at `plan` and returns its output table.
/// Panics on a malformed plan; harnesses that must survive a bad plan
/// use [`try_execute`].
pub fn execute<S: Copy>(
    arena: &PlanArena<S>,
    plan: PlanId,
    catalog: &Catalog,
    query: &Query,
    data: &[Table],
) -> Table {
    try_execute(arena, plan, catalog, query, data).unwrap_or_else(|e| panic!("{e}"))
}

/// Executes the plan rooted at `plan`, reporting a malformed attribute
/// reference as an [`ExecError`] naming the offending plan node and
/// attribute instead of aborting the process.
pub fn try_execute<S: Copy>(
    arena: &PlanArena<S>,
    plan: PlanId,
    catalog: &Catalog,
    query: &Query,
    data: &[Table],
) -> Result<Table, ExecError> {
    let node = &arena.node(plan);
    let locate = |cause: MissingAttr| ExecError {
        plan,
        op: node.op.name(),
        cause,
    };
    let table = match &node.op {
        PlanOp::Scan { qrel } => {
            apply_selections(data[*qrel].clone(), query, *qrel).map_err(locate)?
        }
        PlanOp::IndexScan { qrel, index } => {
            let rel = query.relations[*qrel];
            let key = catalog.relation(rel).indexes[*index].key.clone();
            let mut t = data[*qrel].clone();
            sort_table(&mut t, &key).map_err(locate)?;
            apply_selections(t, query, *qrel).map_err(locate)?
        }
        PlanOp::Sort { input, key } => {
            let mut t = try_execute(arena, *input, catalog, query, data)?;
            sort_table(&mut t, key).map_err(locate)?;
            t
        }
        PlanOp::PartialSort { input, key, .. } => {
            // Physically a block-wise sort (the head groups are already
            // adjacent); the output tuple sequence equals a full stable
            // sort by the key, which is what the executor checks.
            let mut t = try_execute(arena, *input, catalog, query, data)?;
            sort_table(&mut t, key).map_err(locate)?;
            t
        }
        PlanOp::MergeJoin { left, right, .. }
        | PlanOp::HashJoin { left, right, .. }
        | PlanOp::NestedLoopJoin { left, right } => {
            let lt = try_execute(arena, *left, catalog, query, data)?;
            let rt = try_execute(arena, *right, catalog, query, data)?;
            let lmask = arena.node(*left).mask.clone();
            let rmask = arena.node(*right).mask.clone();
            join(&lt, &rt, query, &lmask, &rmask).map_err(locate)?
        }
        PlanOp::GroupJoin { left, right, .. } => {
            // Join fused with the final aggregation: the probe side's
            // groups are adjacent, so one streaming pass per group.
            let lt = try_execute(arena, *left, catalog, query, data)?;
            let rt = try_execute(arena, *right, catalog, query, data)?;
            let lmask = arena.node(*left).mask.clone();
            let rmask = arena.node(*right).mask.clone();
            let joined = join(&lt, &rt, query, &lmask, &rmask).map_err(locate)?;
            aggregate(joined, query.effective_group_by(), true).map_err(locate)?
        }
        PlanOp::StreamAgg { input, key, .. } => {
            let t = try_execute(arena, *input, catalog, query, data)?;
            aggregate(t, key, true).map_err(locate)?
        }
        PlanOp::HashAgg { input, key, .. } => {
            let t = try_execute(arena, *input, catalog, query, data)?;
            aggregate(t, key, false).map_err(locate)?
        }
        PlanOp::HashGroup { input, key } => {
            let t = try_execute(arena, *input, catalog, query, data)?;
            hash_group(t, key).map_err(locate)?
        }
    };
    Ok(table)
}

/// Applies the relation's constant and filter predicates (constants
/// compare against [`CONST_VALUE`]; filters keep the smaller half of the
/// domain, a stand-in for a range predicate).
fn apply_selections(mut t: Table, query: &Query, qrel: usize) -> Result<Table, MissingAttr> {
    for c in &query.constants {
        if query.owner(c.attr) == qrel {
            let col = t.try_col(c.attr)?;
            t.rows.retain(|r| r[col] == CONST_VALUE);
        }
    }
    for f in &query.filters {
        if query.owner(f.attr) == qrel {
            let col = t.try_col(f.attr)?;
            t.rows.retain(|r| r[col] <= 1);
        }
    }
    Ok(t)
}

/// Stable sort by the key attributes.
fn sort_table(t: &mut Table, key: &[AttrId]) -> Result<(), MissingAttr> {
    let cols: Vec<usize> = key
        .iter()
        .map(|&a| t.try_col(a))
        .collect::<Result<_, _>>()?;
    t.rows.sort_by(|x, y| {
        for &c in &cols {
            match x[c].cmp(&y[c]) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(())
}

/// Left-order-preserving join evaluating every connecting equi-join
/// predicate between the two relation sets (the planner applies them
/// all at this operator too).
fn join(
    lt: &Table,
    rt: &Table,
    query: &Query,
    lmask: &BitSet,
    rmask: &BitSet,
) -> Result<Table, MissingAttr> {
    // Resolve every edge's columns up front so a bad reference surfaces
    // as an error, not mid-loop.
    let mut edge_cols = Vec::new();
    for e in query.connecting_joins_set(lmask, rmask) {
        let j = &query.joins[e];
        let (la, ra) = if lmask.contains(query.owner(j.left)) {
            (j.left, j.right)
        } else {
            (j.right, j.left)
        };
        edge_cols.push((lt.try_col(la)?, rt.try_col(ra)?));
    }
    let mut attrs = lt.attrs.clone();
    attrs.extend_from_slice(&rt.attrs);
    let mut rows = Vec::new();
    for lrow in &lt.rows {
        for rrow in &rt.rows {
            let matches = edge_cols.iter().all(|&(lc, rc)| lrow[lc] == rrow[rc]);
            if matches {
                let mut row = lrow.clone();
                row.extend_from_slice(rrow);
                rows.push(row);
            }
        }
    }
    Ok(Table { attrs, rows })
}

/// Group-by over `group` attributes. Streaming keeps first-seen group
/// order (valid only on grouped input — which the planner guarantees);
/// hashing emits groups in a deterministically scrambled order so no
/// ordering claim can survive it by luck.
fn aggregate(t: Table, group: &[AttrId], streaming: bool) -> Result<Table, MissingAttr> {
    let cols: Vec<usize> = group
        .iter()
        .map(|&a| t.try_col(a))
        .collect::<Result<_, _>>()?;
    let mut seen: FxHashMap<Vec<i64>, usize> = FxHashMap::default();
    let mut out_rows: Vec<Vec<i64>> = Vec::new();
    for row in &t.rows {
        let key: Vec<i64> = cols.iter().map(|&c| row[c]).collect();
        if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(key) {
            e.insert(out_rows.len());
            out_rows.push(row.clone());
        }
    }
    if !streaming {
        // Deterministic scramble (reverse + odd/even interleave).
        let mut scrambled: Vec<Vec<i64>> = Vec::with_capacity(out_rows.len());
        let mut rev: Vec<Vec<i64>> = out_rows.into_iter().rev().collect();
        let mut i = 0;
        while i < rev.len() {
            scrambled.push(std::mem::take(&mut rev[i]));
            i += 2;
        }
        let mut i = 1;
        while i < rev.len() {
            scrambled.push(std::mem::take(&mut rev[i]));
            i += 2;
        }
        out_rows = scrambled;
    }
    Ok(Table {
        attrs: t.attrs,
        rows: out_rows,
    })
}

/// The hash-group enforcer: rearranges rows so tuples equal on `key`
/// become adjacent. Blocks keep the rows' relative order, but the block
/// sequence is deterministically scrambled (like the hash aggregate) so
/// no *ordering* claim can survive the operator by luck.
fn hash_group(t: Table, key: &[AttrId]) -> Result<Table, MissingAttr> {
    let cols: Vec<usize> = key
        .iter()
        .map(|&a| t.try_col(a))
        .collect::<Result<_, _>>()?;
    let mut block_of: FxHashMap<Vec<i64>, usize> = FxHashMap::default();
    let mut blocks: Vec<Vec<Vec<i64>>> = Vec::new();
    for row in &t.rows {
        let key: Vec<i64> = cols.iter().map(|&c| row[c]).collect();
        let idx = *block_of.entry(key).or_insert_with(|| {
            blocks.push(Vec::new());
            blocks.len() - 1
        });
        blocks[idx].push(row.clone());
    }
    // Deterministic scramble of the block order (reverse + interleave).
    let mut rev: Vec<Vec<Vec<i64>>> = blocks.into_iter().rev().collect();
    let mut rows: Vec<Vec<i64>> = Vec::with_capacity(t.rows.len());
    let mut i = 0;
    while i < rev.len() {
        rows.extend(std::mem::take(&mut rev[i]));
        i += 2;
    }
    let mut i = 1;
    while i < rev.len() {
        rows.extend(std::mem::take(&mut rev[i]));
        i += 2;
    }
    Ok(Table {
        attrs: t.attrs,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);

    fn table(rows: &[[i64; 2]]) -> Table {
        Table {
            attrs: vec![A, B],
            rows: rows.iter().map(|r| r.to_vec()).collect(),
        }
    }

    #[test]
    fn satisfies_ordering_is_lexicographic() {
        let t = table(&[[1, 5], [1, 7], [2, 0]]);
        assert!(t.satisfies_ordering(&[A]));
        assert!(t.satisfies_ordering(&[A, B]));
        assert!(!t.satisfies_ordering(&[B]));
        assert!(t.satisfies_ordering(&[]));
    }

    #[test]
    fn ties_do_not_break_ordering() {
        let t = table(&[[1, 1], [1, 1], [1, 2]]);
        assert!(t.satisfies_ordering(&[A, B]));
        assert!(t.satisfies_ordering(&[B, A]));
    }

    #[test]
    fn sort_is_stable_and_correct() {
        let mut t = table(&[[2, 1], [1, 9], [1, 3], [2, 0]]);
        sort_table(&mut t, &[A]).unwrap();
        assert!(t.satisfies_ordering(&[A]));
        // Stability: [1,9] stays before [1,3] (both key 1).
        assert_eq!(t.rows[0], vec![1, 9]);
        assert_eq!(t.rows[1], vec![1, 3]);
    }

    #[test]
    fn hash_aggregate_scramble_breaks_order() {
        let t = table(&[[1, 0], [2, 0], [3, 0], [4, 0], [5, 0]]);
        let agg = aggregate(t, &[A], false).unwrap();
        assert_eq!(agg.rows.len(), 5);
        assert!(!agg.satisfies_ordering(&[A]), "scramble must destroy order");
    }

    #[test]
    fn streaming_aggregate_preserves_order() {
        let t = table(&[[1, 0], [1, 1], [2, 0], [3, 0], [3, 2]]);
        let agg = aggregate(t, &[A], true).unwrap();
        assert_eq!(agg.rows.len(), 3);
        assert!(agg.satisfies_ordering(&[A]));
    }

    #[test]
    fn satisfies_grouping_checks_adjacency() {
        let grouped = table(&[[2, 0], [2, 1], [1, 0], [3, 0]]);
        assert!(grouped.satisfies_grouping(&[A]));
        assert!(!grouped.satisfies_ordering(&[A]), "grouped ≠ sorted");
        let broken = table(&[[2, 0], [1, 0], [2, 1]]);
        assert!(!broken.satisfies_grouping(&[A]));
        assert!(grouped.satisfies_grouping(&[]));
    }

    #[test]
    fn hash_group_makes_groups_adjacent_without_sorting() {
        let t = table(&[[1, 0], [2, 0], [1, 1], [3, 0], [2, 1], [1, 2]]);
        let g = hash_group(t, &[A]).unwrap();
        assert_eq!(g.rows.len(), 6, "no rows lost");
        assert!(g.satisfies_grouping(&[A]));
        assert!(!g.satisfies_ordering(&[A]), "scramble must destroy order");
        // Rows within a block keep their relative order.
        let ones: Vec<i64> = g.rows.iter().filter(|r| r[0] == 1).map(|r| r[1]).collect();
        assert_eq!(ones, vec![0, 1, 2]);
    }

    #[test]
    fn streaming_aggregate_works_on_grouped_input() {
        let t = table(&[[2, 0], [2, 1], [1, 0], [3, 0]]);
        let agg = aggregate(t, &[A], true).unwrap();
        assert_eq!(agg.rows.len(), 3, "one row per adjacent group");
        assert!(agg.satisfies_grouping(&[A]));
    }
}
