//! Bottom-up dynamic programming over connected subgraphs (Lohman-style,
//! the architecture the paper's §7 experiments use).
//!
//! Connected relation subsets are [`BitSet`]s (no 64-relation ceiling)
//! enumerated in size order: every connected set of size `s` arises as
//! the union of two disjoint connected sets joined by at least one
//! predicate, so all ordered partitions of every connected set are
//! visited exactly once. For every set the generator keeps a Pareto set
//! of plans pruned on *(cost, property state)*: a plan dies iff a
//! cheaper-or-equal plan property-dominates it. Two enforcers compete
//! next to the native plans: the *sort* enforcer for every producible
//! interesting ordering, and the *hash-group* enforcer (linear, no
//! ordering produced) for every producible interesting grouping — the
//! VLDB'04 extension that lets hash-based aggregation plans exploit
//! grouped-but-unsorted streams. Merge joins require both inputs sorted
//! on the join attributes, and hash/NL joins preserve the probe/outer
//! input's properties — the interplay that makes interesting properties
//! pay off.
//!
//! # Aggregation as a plan-space dimension
//!
//! For queries computing aggregate functions over a `group by`,
//! aggregation is *placed*, not bolted onto the root: every subset may
//! additionally carry eagerly aggregated plans — a partial
//! [`PlanOp::StreamAgg`]/[`PlanOp::HashAgg`] on the subset's canonical
//! aggregation key (group-by attributes inside, join attributes
//! crossing out, minimized under the subset's dependencies), legal per
//! the aggregate functions' decomposability (eager group-by on the side
//! carrying the aggregated attributes, eager-count on the opposite
//! side) — and the root subset may fuse the top join with the final
//! aggregation into a [`PlanOp::GroupJoin`] whenever the probe side's
//! properties plus the join's dependencies make the groups adjacent.
//! Plans with different aggregation histories compute different
//! intermediate relations, so they live in separate comparability
//! classes ([`AggMark`]) of the same Pareto set; the unaggregated class
//! replicates the root-only search exactly, which is why enabling
//! placement can never yield a costlier winner.
//!
//! # The enumerator seam and the two-driver batch API
//!
//! *Which* subsets get planned, and from *which* ordered partitions, is
//! a strategy choice behind the [`Enumerator`] seam. An enumerator is a
//! pure function of the join graph: it produces **batches** of
//! [`UnionWork`] items (a connected subset plus its ordered partitions,
//! referencing earlier subsets by flat index — singletons `0..n` first,
//! then unions in emission order). The driver loop is enumerator-
//! agnostic: each batch is *executed* — each union's Pareto set built
//! independently in a thread-local [`ArenaView`] — and spliced onto the
//! global arena **in batch order** at the batch barrier. Execution is
//! delegated to an [`ofw_common::OrderedExecutor`]: [`SerialExecutor`]
//! for the classic single-threaded driver ([`PlanGen::run`]), the
//! `ofw-parallel` work-stealing pool for the sharded driver
//! ([`PlanGen::run_with`]). Three enumerators exist:
//!
//! * [`Enumerator::DpSize`] (default) — the classic size-layered DP
//!   (batch = size layer), byte-identical to the historical generator;
//! * [`Enumerator::DpHyp`] — connected-subgraph/complement-pair
//!   enumeration over [`ofw_query::JoinGraph`] neighborhoods, emitting
//!   only valid csg-cmp pairs (no disconnected/overlapping candidates),
//!   canonicalized to DpSize's discovery order so the output stays
//!   byte-identical;
//! * [`Enumerator::Linearized`] — greedy join-order linearization plus a
//!   sliding local-DP refinement window; not exhaustive, but plans
//!   100-relation cliques. [`Enumerator::Auto`] runs DpHyp under an
//!   enumeration budget (counted in emitted csg-cmp pairs) and falls
//!   back to Linearized beyond it.
//!
//! Because the splice order and the per-union work are both schedule-
//! independent, the final plan table — operators, masks, costs,
//! cardinalities, applied FDs, winner — is byte-identical for every
//! executor and thread count. Per-node oracle *state handles* are also
//! bit-equal when the oracle assigns them schedule-independently: the
//! DFSM framework always does (states precomputed before the DP);
//! the memoizing oracles intern handles first-come, so bit-equality
//! there additionally requires a warmed instance (serial run first) —
//! cold, their handles stay semantically equal but may renumber.
//!
//! # The pruning seam
//!
//! The inner loop prunes before it builds. A cheap greedy linearized
//! run seeds a global cost upper bound `B`; every candidate is tested
//! against `B` minus an admissible floor on the cost still to be paid
//! outside its subset — *before* its plan node is allocated, and
//! usually before the oracle is probed ([`PlanGen::cost_bounding`]
//! turns this off). Pareto sets are bucketed by `(comparability class,
//! oracle state)` with a per-union dominance memo, so most Pareto
//! comparisons never reach the oracle. Candidates travel as stack-only
//! `CandidatePlan`s and are committed into the arena only after
//! surviving both gates. The chosen plan and its cost are identical
//! with bounding on or off (the contract and its proof obligations are
//! written down in ARCHITECTURE.md, "The pruning seam"); every
//! [`PlanNode`] that enters the table is counted — the paper's
//! `#Plans` metric ("the time to introduce one plan operator") for the
//! work actually performed.

mod dphyp;
mod dpsize;
mod linearize;

use crate::cost;
use crate::oracle::OrderOracle;
use crate::plan::{
    AggMark, ArenaView, CandidatePlan, PlanArena, PlanId, PlanNode, PlanOp, LOCAL_PLAN_BIT,
};
use ofw_catalog::{AttrId, Catalog};
use ofw_common::{BitSet, FxHashMap, OrderedExecutor, SerialExecutor, SmallBitSet};
use ofw_core::fd::FdSetId;
use ofw_core::ordering::Ordering;
use ofw_core::property::{Grouping, HeadTail, LogicalProperty};
use ofw_obs::{DecisionCounters, PhaseStats, Trace};
use ofw_query::{ExtractedQuery, JoinGraph, Query};
use std::time::{Duration, Instant};

pub(crate) use dphyp::DpHypSchedule;
pub(crate) use dpsize::DpSizeSchedule;
pub(crate) use linearize::LinearizedSchedule;

/// Default ceiling on emitted csg-cmp pairs before [`Enumerator::Auto`]
/// abandons exhaustive enumeration for the linearized fallback. Exact
/// through ~13-relation cliques, 100-relation chains and cycles, and
/// ~14-relation stars; dense graphs beyond that linearize.
pub const DEFAULT_ENUMERATION_BUDGET: u64 = 1_000_000;

/// Default linearized-fallback refinement-window width (see
/// [`Enumerator::Linearized`]): each sliding window runs a local DP over
/// this many consecutive relations of the greedy linear order.
pub const DEFAULT_LINEARIZE_WINDOW: usize = 6;

/// Join-enumeration strategy behind the DP core (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Enumerator {
    /// Classic size-layered exhaustive DP — the default, byte-identical
    /// to the historical generator. Θ(3ⁿ) on cliques.
    DpSize,
    /// Connected-subgraph/complement-pair (csg-cmp) enumeration over
    /// join-graph neighborhoods: exhaustive like DpSize (and
    /// canonicalized to its exact output), but it never *considers*
    /// disconnected or overlapping candidate pairs, so sparse and
    /// cyclic graphs enumerate in time proportional to the valid pairs.
    DpHyp,
    /// Greedy join-order linearization (smallest effective cardinality
    /// first, then repeatedly append the adjacent relation minimizing
    /// the running intermediate cardinality) refined by a sliding
    /// local-DP window over the linear order. Not exhaustive; bounded
    /// work even on 100-relation cliques.
    Linearized,
    /// DpHyp when it fits the enumeration budget, Linearized beyond it
    /// (the budget is counted in emitted csg-cmp pairs; see
    /// [`PlanGen::enumeration_budget`]).
    Auto,
}

impl Enumerator {
    /// Lower-case name for stats, tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Enumerator::DpSize => "dpsize",
            Enumerator::DpHyp => "dphyp",
            Enumerator::Linearized => "linearized",
            Enumerator::Auto => "auto",
        }
    }
}

/// Plan-generation metrics — the paper's §7 table columns plus the
/// deterministic enumeration counters.
///
/// The derived default is honest: `enumerator` is `""` (no enumerator
/// has run — `run_with` always overwrites it with what actually ran),
/// every counter is zero and the phase ledger is empty.
#[derive(Clone, Debug, Default)]
pub struct PlanGenStats {
    /// Total subplans generated (`#Plans`).
    pub plans: usize,
    /// Wall-clock plan-generation time (includes framework preparation
    /// when the caller folds it in, as the paper does for the DFSM).
    pub time: Duration,
    /// Bytes of order-annotation memory (per-plan states + shared
    /// structures of the order framework).
    pub memory_bytes: usize,
    /// Name of the enumerator that actually ran (`"dpsize"`, `"dphyp"`
    /// or `"linearized"` — [`Enumerator::Auto`] resolves to one of the
    /// latter two).
    pub enumerator: &'static str,
    /// Candidate ordered partitions *examined* — for DpSize this
    /// includes the disjointness/connectedness rejects its nested size
    /// loops wade through; for DpHyp and Linearized every considered
    /// pair is valid, so it equals `pairs_emitted`. Deterministic per
    /// query.
    pub pairs_considered: u64,
    /// Valid ordered csg-cmp pairs handed to plan construction.
    /// Identical between DpSize and DpHyp on every graph (they
    /// enumerate the same pair set). Deterministic per query.
    pub pairs_emitted: u64,
    /// Union work items processed (connected subsets planned, counting
    /// re-visits by the linearized fallback's overlapping windows).
    /// Deterministic per query.
    pub unions: u64,
    /// Whether [`Enumerator::Auto`] exceeded the enumeration budget and
    /// fell back to the linearized enumerator.
    pub fallback: bool,
    /// NFSM nodes of the oracle's prepared automaton (0 for oracles
    /// without a preparation automaton). Deterministic per query.
    pub nfsm_states: usize,
    /// DFSM states materialized by the end of the run — for an eager
    /// preparation this equals the total; for a lazy one it counts only
    /// the states plan generation actually touched. Deterministic per
    /// query: the probe set is schedule-independent. 0 for
    /// automaton-less oracles.
    pub dfsm_states_materialized: usize,
    /// Total reachable DFSM states, when the oracle knows it (eager
    /// preparation, or a lazy automaton that materialized fully).
    pub dfsm_states_total: Option<usize>,
    /// Whether the oracle's preparation was served from an interning
    /// cache (see `ofw_core::PreparedCache`).
    pub prep_interned_hits: u64,
    /// Per-phase breakdown: base relations, each DP layer, aggregate
    /// finalization, final pick (plus an "enumerate" entry carrying the
    /// schedule-construction counters). Everything but
    /// [`PhaseStats::time`] is deterministic per query.
    pub phases: Vec<PhaseStats>,
    /// Whole-run decision telemetry: Pareto-pruning outcomes per
    /// comparability class, enforcer admissions/wins, oracle probe
    /// counts. Deterministic per query at any thread count.
    pub decisions: DecisionCounters,
}

/// The winning plan plus metrics and the arena to inspect it.
pub struct PlanGenResult<S> {
    /// Cheapest complete plan honoring the query's output order.
    pub best: PlanId,
    /// Its cost.
    pub cost: f64,
    /// The arena holding every generated subplan.
    pub arena: PlanArena<S>,
    /// Metrics.
    pub stats: PlanGenStats,
}

/// One producible interesting property, pre-resolved: the target of a
/// sort enforcer (ordering) or a hash-group enforcer (grouping).
struct EnforcerTarget<K> {
    key: K,
    /// The attribute list (for the executor and plan rendering).
    attrs: Vec<ofw_catalog::AttrId>,
    /// Relations whose attributes the property mentions.
    rel_mask: BitSet,
    /// Grouping targets get a hash-group enforcer, ordering targets a
    /// sort.
    grouping: bool,
    /// Partial-sort probes for ordering targets (see
    /// [`PlanGen::partial_sort_probes`]); empty for grouping targets.
    psort: Vec<PartialSortProbe<K>>,
}

/// One pre-resolved partial-sort admission probe: if a plan's state
/// satisfies `key` (a head grouping over a prefix *set* of the target
/// ordering, or a head/tail pair extending it with a within-group
/// sorted continuation), a partial sort to the target only has to sort
/// inside blocks of the first `covered` target attributes.
struct PartialSortProbe<K> {
    key: K,
    /// How many leading target attributes the probed property covers —
    /// the `groups` estimate of the cost model is taken over them.
    covered: usize,
}

/// One connected subset with its ordered partitions — the unit of work
/// the executor schedules. Pairs reference earlier subsets by **flat
/// global index**: singletons occupy `0..n` in query-relation order,
/// and every union takes the next index in batch-emission order (the
/// order the driver commits them). Pair order within a work item is the
/// enumerator's deterministic emission order.
pub struct UnionWork {
    /// The connected subset this work item builds plans for.
    pub union: BitSet,
    /// Seed the Pareto set from the subset's existing plan-table entry
    /// instead of starting empty — the linearized enumerator re-visits
    /// subsets shared between overlapping refinement windows and merges
    /// rather than discards the earlier window's plans.
    seed: bool,
    pairs: Vec<(u32, u32)>,
}

impl UnionWork {
    pub(crate) fn new(union: BitSet, seed: bool, pairs: Vec<(u32, u32)>) -> Self {
        UnionWork { union, seed, pairs }
    }

    /// Number of ordered partitions feeding this subset.
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    pub(crate) fn push_pair(&mut self, left: u32, right: u32) {
        self.pairs.push((left, right));
    }
}

/// The enumerator side of the driver contract: a pure function of the
/// join graph producing batches of [`UnionWork`]. Within a batch every
/// pair may only reference subsets that were *committed before the
/// batch started* (singletons `0..n`, then one index per union in
/// emission order across all earlier batches); the driver executes the
/// batch — possibly in parallel — then commits its unions in batch
/// order. Counters must be deterministic per query.
pub(crate) trait WorkSchedule {
    /// The next batch of union work, or `None` when enumeration is
    /// complete.
    fn next_batch(&mut self) -> Option<Vec<UnionWork>>;
    /// Candidate ordered partitions examined so far.
    fn pairs_considered(&self) -> u64;
    /// Valid ordered partitions emitted so far.
    fn pairs_emitted(&self) -> u64;
}

/// Pre-resolved aggregation context: what placement enumeration needs
/// to know at every subset (see the module docs on the aggregation
/// dimension).
struct AggInfo<K> {
    /// The final aggregation key (`group by` / `distinct` attributes).
    group_by: Vec<AttrId>,
    /// Ordering handle of the final key (streaming-aggregate probe).
    order_key: Option<K>,
    /// Grouping handle of the final key.
    group_key: Option<K>,
    /// Relations owning aggregate input attributes.
    input_owners: BitSet,
    /// All aggregates decomposable — eager group-by push-down is legal
    /// on the side carrying the aggregated attributes.
    decomposable: bool,
    /// All aggregates count-scalable or duplicate-insensitive —
    /// eager-count push-down is legal on the opposite side.
    count_scalable: bool,
}

/// Pre-resolved oracle handles for aggregating on one key (see
/// [`PlanGen::resolve_agg_key`]).
struct AggKeyHandles<K> {
    /// The key attribute list (positional for the operator rendering;
    /// `group by` order for the final key, canonical set order for
    /// subset keys).
    attrs: Vec<AttrId>,
    /// Ordering handle of the key, if interesting.
    order: Option<K>,
    /// Grouping handle of the key, if interesting.
    group: Option<K>,
    /// The grouping handle when it is also producible.
    producible: Option<K>,
}

/// One admitted member of a [`ParetoSet`]. Eviction tombstones the
/// entry (`alive = false`) instead of removing it so the surviving
/// members keep their insertion order — the order the legacy linear
/// scan produced, which downstream consumers (enforcer scans, the
/// committed plan table) depend on for determinism.
struct ParetoEntry<S> {
    id: PlanId,
    cost: f64,
    card: f64,
    agg: AggMark,
    state: S,
    alive: bool,
}

/// One dominance bucket of a [`ParetoSet`]: all members sharing a
/// `(comparability class, oracle state)` pair. Dominance is a pure
/// function of the state (and reflexive — see
/// [`OrderOracle::dominates`]), so one probe against the bucket's
/// state answers the property half of the Pareto test for every
/// member at once.
struct ParetoBucket<S> {
    agg: AggMark,
    state: S,
    /// Alive member indices into [`ParetoSet::entries`], insertion
    /// order.
    members: Vec<usize>,
}

/// The Pareto set of one subset under construction, bucketed by
/// `(comparability class, oracle state)`. Replaces the legacy linear
/// `Vec<PlanId>` scan: exact-state arrivals resolve against their own
/// bucket without any oracle call, cross-state comparisons probe one
/// bucket representative instead of every member, and repeated state
/// pairs are answered by a per-union `(state, state) → bool` memo.
/// Buckets are probed in creation order (a `Vec`, not the hash map) so
/// probe counts stay deterministic even when a memoizing oracle
/// renumbers its state handles.
struct ParetoSet<S> {
    entries: Vec<ParetoEntry<S>>,
    buckets: Vec<ParetoBucket<S>>,
    /// `(AggMark::class_index(), state)` → bucket position.
    index: FxHashMap<(usize, S), usize>,
    /// Per-union dominance memo: `(dominator state, subordinate state)`
    /// → oracle verdict. Lives and dies with the subset's set — state
    /// pairs recur heavily within one union (every candidate is
    /// compared against the same few buckets) and union-local scope
    /// keeps the memo out of the shared-state determinism story.
    memo: FxHashMap<(S, S), bool>,
}

impl<S: Copy + Eq + std::hash::Hash> ParetoSet<S> {
    fn new() -> Self {
        ParetoSet {
            entries: Vec::new(),
            buckets: Vec::new(),
            index: FxHashMap::default(),
            memo: FxHashMap::default(),
        }
    }

    /// Inserts a member without any dominance checks — used for seeds
    /// (already a Pareto set) and for candidates that survived them.
    fn insert_unchecked(&mut self, id: PlanId, cost: f64, card: f64, agg: AggMark, state: S) {
        let e = self.entries.len();
        self.entries.push(ParetoEntry {
            id,
            cost,
            card,
            agg,
            state,
            alive: true,
        });
        let key = (agg.class_index(), state);
        let b = match self.index.get(&key) {
            Some(&b) => b,
            None => {
                let b = self.buckets.len();
                self.buckets.push(ParetoBucket {
                    agg,
                    state,
                    members: Vec::new(),
                });
                self.index.insert(key, b);
                b
            }
        };
        self.buckets[b].members.push(e);
    }

    /// Memoized dominance probe: does `dom`'s state dominate `sub`'s?
    /// Equal states short-circuit through reflexivity; repeated pairs
    /// hit the memo. Both are charged to `dominance_memo_hits`, real
    /// oracle calls to `dominates`.
    fn dominates_memo<O: OrderOracle<State = S>>(
        &mut self,
        oracle: &O,
        dom: S,
        sub: S,
        dc: &mut DecisionCounters,
    ) -> bool {
        if dom == sub {
            dc.probes.dominance_memo_hits += 1;
            return true;
        }
        if let Some(&v) = self.memo.get(&(dom, sub)) {
            dc.probes.dominance_memo_hits += 1;
            return v;
        }
        dc.probes.dominates += 1;
        let v = oracle.dominates(dom, sub);
        self.memo.insert((dom, sub), v);
        v
    }

    /// Arrival test: is `cand` dominated by an existing member at
    /// lower-or-equal cost (and, within aggregated classes, no larger
    /// cardinality)? Charges the rejection to the candidate's class.
    fn arrival_dominated<O: OrderOracle<State = S>>(
        &mut self,
        oracle: &O,
        cand: &CandidatePlan<S>,
        dc: &mut DecisionCounters,
    ) -> bool {
        let class = cand.agg.class_index();
        for bi in 0..self.buckets.len() {
            let (b_agg, b_state) = (self.buckets[bi].agg, self.buckets[bi].state);
            if b_agg != cand.agg {
                continue;
            }
            // Cost/cardinality prefilter first: a bucket whose members
            // are all too expensive never needs a dominance probe.
            let qualifies = self.buckets[bi].members.iter().any(|&e| {
                let m = &self.entries[e];
                m.cost <= cand.cost && (cand.agg.is_none() || m.card <= cand.card)
            });
            if qualifies && self.dominates_memo(oracle, b_state, cand.state, dc) {
                dc.pruning.dominated[class] += 1;
                return true;
            }
        }
        false
    }

    /// Admits a surviving candidate (already materialized as `id`):
    /// evicts every member it dominates at lower-or-equal cost, then
    /// inserts it.
    fn admit<O: OrderOracle<State = S>>(
        &mut self,
        oracle: &O,
        id: PlanId,
        cand: &CandidatePlan<S>,
        dc: &mut DecisionCounters,
    ) {
        let class = cand.agg.class_index();
        for bi in 0..self.buckets.len() {
            let (b_agg, b_state) = (self.buckets[bi].agg, self.buckets[bi].state);
            if b_agg != cand.agg {
                continue;
            }
            let qualifies = self.buckets[bi].members.iter().any(|&e| {
                let m = &self.entries[e];
                cand.cost <= m.cost && (cand.agg.is_none() || cand.card <= m.card)
            });
            if !qualifies || !self.dominates_memo(oracle, cand.state, b_state, dc) {
                continue;
            }
            let entries = &mut self.entries;
            self.buckets[bi].members.retain(|&e| {
                let m = &mut entries[e];
                if cand.cost <= m.cost && (cand.agg.is_none() || cand.card <= m.card) {
                    m.alive = false;
                    dc.pruning.dominated[class] += 1;
                    false
                } else {
                    true
                }
            });
        }
        self.insert_unchecked(id, cand.cost, cand.card, cand.agg, cand.state);
    }

    /// Alive members in insertion order.
    fn members(&self) -> impl Iterator<Item = &ParetoEntry<S>> + '_ {
        self.entries.iter().filter(|e| e.alive)
    }

    /// The surviving plan ids in insertion order — what the plan table
    /// commits.
    fn ids(&self) -> Vec<PlanId> {
        self.members().map(|e| e.id).collect()
    }
}

/// The generator, parameterized by the order oracle.
pub struct PlanGen<'a, O: OrderOracle> {
    catalog: &'a Catalog,
    query: &'a Query,
    ex: &'a ExtractedQuery,
    oracle: &'a O,
    /// Precomputed join-graph adjacency (edge endpoints resolved once —
    /// the pair loops and `emit_joins` ask crossing-edge questions
    /// millions of times).
    graph: JoinGraph,
    /// Join-enumeration strategy (see [`Enumerator`]).
    enumerator: Enumerator,
    /// csg-cmp pair budget for [`Enumerator::Auto`].
    budget: u64,
    /// Refinement-window width for [`Enumerator::Linearized`]. `None`
    /// (the default) adapts the width to the enumeration budget: the
    /// schedule widens past [`DEFAULT_LINEARIZE_WINDOW`] as long as the
    /// projected pair count stays within `budget`.
    window: Option<usize>,
    targets: Vec<EnforcerTarget<O::Key>>,
    /// Aggregation context (`Some` iff the query computes aggregates
    /// over a group-by and extraction ran with placement enabled).
    agg: Option<AggInfo<O::Key>>,
    /// Enumerate aggregation placements (eager/eager-count partial
    /// aggregates per subset, group-joins at the root)? Off restricts
    /// aggregation to the plan root — the classic enforcer behavior and
    /// the ceiling the placement search must beat.
    placement: bool,
    /// Enforce interesting orderings with the partial-sort enforcer
    /// (next to the full sort) when the input already satisfies a head
    /// grouping? Off reproduces the sort-only enforcer behavior — the
    /// ceiling the partial-sort search is measured against.
    partial_sort: bool,
    /// Branch-and-bound cost pruning (on by default): seed a global
    /// upper bound from one greedy linearized run and reject candidates
    /// whose cost lower bound exceeds it before they are materialized.
    /// The chosen plan and its cost are identical either way (see "The
    /// pruning seam" in ARCHITECTURE.md); off reproduces the unbounded
    /// search for A/B measurement.
    bounding: bool,
    /// Cheapest possible access cost per query relation (min over heap
    /// scan and index scans) — the per-leaf term of the admissible
    /// remaining-cost floor.
    min_access: Vec<f64>,
    /// Σ [`min_access`](Self::min_access).
    total_access: f64,
    /// The global cost upper bound `B` (∞ until the bound provider has
    /// run, and always ∞ with bounding off).
    bound: f64,
    /// Span sink for phase-level tracing (disabled by default — one
    /// pointer check per phase, nothing in the per-plan hot path).
    trace: Trace,
    arena: PlanArena<O::State>,
    table: FxHashMap<BitSet, Vec<PlanId>>,
}

impl<'a, O: OrderOracle> PlanGen<'a, O> {
    /// Sets up a generator for one query.
    pub fn new(
        catalog: &'a Catalog,
        query: &'a Query,
        ex: &'a ExtractedQuery,
        oracle: &'a O,
    ) -> Self {
        assert!(query.is_fully_connected(), "cross products not supported");
        // Pre-resolve every producible interesting property (cold path).
        // Head/tail pairs are tested-only (a partial sort *consumes*
        // them and produces a full ordering), so they never become
        // enforcer targets themselves.
        let mut targets = Vec::new();
        for p in ex.spec.produced() {
            let (key, grouping) = match p {
                LogicalProperty::Ordering(o) => match oracle.resolve(o) {
                    Some(k) => (k, false),
                    None => continue,
                },
                LogicalProperty::Grouping(g) => match oracle.resolve_grouping(g) {
                    Some(k) => (k, true),
                    None => continue,
                },
                LogicalProperty::HeadTail(_) => continue,
            };
            if !oracle.is_producible(key) {
                continue;
            }
            let mut rel_mask = BitSet::new(query.num_relations());
            for &a in p.attrs() {
                rel_mask.insert(query.owner(a));
            }
            let psort = if grouping {
                Vec::new()
            } else {
                Self::partial_sort_probes(oracle, p.attrs())
            };
            targets.push(EnforcerTarget {
                key,
                attrs: p.attrs().to_vec(),
                rel_mask,
                grouping,
                psort,
            });
        }
        // Grouping targets first: a sort satisfies the grouping too, so
        // adding the sort first would mask the cheaper hash-group
        // enforcer ("already satisfied"); added first, both variants
        // enter the Pareto set and the cost model decides.
        targets.sort_by_key(|t| !t.grouping);
        let agg = ex.aggregation.then(|| {
            let group_by = query.effective_group_by().to_vec();
            let mut input_owners = BitSet::new(query.num_relations());
            for a in query.agg_input_attrs() {
                input_owners.insert(query.owner(a));
            }
            AggInfo {
                order_key: oracle.resolve(&Ordering::new(group_by.clone())),
                group_key: oracle.resolve_grouping(&Grouping::new(group_by.clone())),
                group_by,
                input_owners,
                decomposable: query.aggregates.iter().all(|a| a.func.is_decomposable()),
                count_scalable: query
                    .aggregates
                    .iter()
                    .all(|a| a.func.count_scalable() || a.func.duplicate_insensitive()),
            }
        });
        // Cheapest conceivable access path per relation: the admissible
        // remaining-cost floor of the bounded search charges at least
        // this much for every relation a subplan has not joined yet.
        let min_access: Vec<f64> = (0..query.num_relations())
            .map(|qrel| {
                let rel = catalog.relation(query.relations[qrel]);
                let mut m = cost::scan(rel.cardinality);
                for index in &rel.indexes {
                    m = m.min(cost::index_scan(rel.cardinality, index.clustered));
                }
                m
            })
            .collect();
        let total_access = min_access.iter().sum();
        PlanGen {
            catalog,
            query,
            ex,
            oracle,
            graph: JoinGraph::new(query),
            enumerator: Enumerator::DpSize,
            budget: DEFAULT_ENUMERATION_BUDGET,
            window: None,
            targets,
            agg,
            placement: true,
            partial_sort: true,
            bounding: true,
            min_access,
            total_access,
            bound: f64::INFINITY,
            trace: Trace::disabled(),
            arena: PlanArena::new(),
            table: FxHashMap::default(),
        }
    }

    /// Attaches a span sink (default: disabled). A recording sink never
    /// changes the generated plan table — spans observe phase
    /// boundaries, not decisions.
    pub fn trace(mut self, trace: &Trace) -> Self {
        self.trace = trace.clone();
        self
    }

    /// Selects the join-enumeration strategy (default
    /// [`Enumerator::DpSize`], the legacy byte-identical behavior).
    pub fn enumerator(mut self, e: Enumerator) -> Self {
        self.enumerator = e;
        self
    }

    /// Sets the [`Enumerator::Auto`] budget: the number of emitted
    /// csg-cmp pairs beyond which exhaustive DpHyp enumeration is
    /// abandoned for the linearized fallback (default
    /// [`DEFAULT_ENUMERATION_BUDGET`]). Emitted pairs are a faithful
    /// work proxy — every pair costs at least one join alternative
    /// downstream — and are counted *before* any planning happens, so
    /// tripping the budget is cheap.
    pub fn enumeration_budget(mut self, pairs: u64) -> Self {
        self.budget = pairs;
        self
    }

    /// Pins the linearized fallback's refinement-window width (capped
    /// at 16): wider windows explore more local join orders per window
    /// at exponentially more work per window. Without this call the
    /// width is budget-adaptive: it starts at
    /// [`DEFAULT_LINEARIZE_WINDOW`] and widens while the projected pair
    /// count stays within the enumeration budget — spending whatever
    /// budget the DPhyp trip left unused on better local plans.
    pub fn linearize_window(mut self, relations: usize) -> Self {
        self.window = Some(relations);
        self
    }

    /// Pre-resolves the partial-sort admission probes for the ordering
    /// `attrs` (cold path, once per target): for every head prefix
    /// `attrs[..k]` the head grouping, and for every continuation
    /// `attrs[k..j]` the head/tail pair — each probe records how many
    /// leading target attributes it covers. Only properties the query
    /// registered as interesting resolve; everything else simply yields
    /// no probe (a pure-ordering query gets an empty list and the
    /// enforcer behaves exactly as before). Probes are ordered by
    /// descending coverage so the first satisfied probe is the best.
    fn partial_sort_probes(oracle: &O, attrs: &[AttrId]) -> Vec<PartialSortProbe<O::Key>> {
        let mut probes: Vec<PartialSortProbe<O::Key>> = Vec::new();
        for k in 1..=attrs.len() {
            let head = Grouping::new(attrs[..k].to_vec());
            if let Some(key) = oracle.resolve_grouping(&head) {
                probes.push(PartialSortProbe { key, covered: k });
            }
        }
        for pair in HeadTail::decompositions(&Ordering::new(attrs.to_vec())) {
            if let Some(key) = oracle.resolve_head_tail(&pair) {
                probes.push(PartialSortProbe {
                    key,
                    covered: pair.attrs().len(),
                });
            }
        }
        probes.sort_by_key(|p| std::cmp::Reverse(p.covered));
        probes
    }

    /// The cheapest admissible partial sort of a plan in `state` with
    /// `card` rows to the ordering `attrs`: the first (deepest-coverage)
    /// satisfied probe decides how much of the key the input's blocks
    /// already cover, and the cost model charges only the within-block
    /// residue. `None` when no head grouping (or pair) is satisfied —
    /// then only the full sort can enforce the ordering.
    fn best_partial_sort(
        &self,
        state: O::State,
        card: f64,
        attrs: &[AttrId],
        probes: &[PartialSortProbe<O::Key>],
        dc: &mut DecisionCounters,
    ) -> Option<(f64, usize)> {
        if !self.partial_sort {
            return None;
        }
        for p in probes {
            dc.probes.satisfies += 1;
            if self.oracle.satisfies_head_tail(state, p.key) {
                let groups = self.group_count(card, &attrs[..p.covered]);
                return Some((cost::partial_sort(card, groups), p.covered));
            }
        }
        None
    }

    /// Enables/disables aggregation-placement enumeration (on by
    /// default). With placement off, aggregation happens only at the
    /// plan root — the baseline the placement search is measured
    /// against; the plans of the root-only search are a strict subset
    /// of the placement search, so placement can never be costlier.
    pub fn aggregation_placement(mut self, enabled: bool) -> Self {
        self.placement = enabled;
        self
    }

    /// Enables/disables the partial-sort enforcer (on by default). With
    /// it off, only the full sort enforces orderings — the ceiling the
    /// partial-sort search is measured against; the sort-only plans are
    /// a strict subset of the partial-sort search, so enabling it can
    /// never yield a costlier winner.
    pub fn partial_sort(mut self, enabled: bool) -> Self {
        self.partial_sort = enabled;
        self
    }

    /// Enables/disables branch-and-bound cost pruning (on by default).
    /// One greedy linearized run seeds a global upper bound `B`; a
    /// candidate for subset `S` is rejected — before its plan node is
    /// materialized, and usually before the oracle is probed — when
    /// `cost + rem(S) > B`, where `rem(S)` charges every relation
    /// outside `S` its cheapest access path. The bound is admissible
    /// (see "The pruning seam" in ARCHITECTURE.md), so the chosen plan
    /// and its cost are identical either way; only the work counters
    /// change. Off reproduces the unbounded search for A/B measurement.
    pub fn cost_bounding(mut self, enabled: bool) -> Self {
        self.bounding = enabled;
        self
    }

    /// The per-subset cost upper bound: `B − rem(mask)`, where
    /// `rem(mask)` is the admissible floor on the cost any complete
    /// plan still has to pay outside `mask` (the cheapest access path
    /// of every relation not yet joined — joins, enforcers and
    /// aggregates only ever add on top). ∞ when no bound is active.
    fn upper_bound(&self, mask: &BitSet) -> f64 {
        if self.bound.is_infinite() {
            return f64::INFINITY;
        }
        let mut inside = 0.0;
        for r in mask.iter() {
            inside += self.min_access[r];
        }
        self.bound - (self.total_access - inside)
    }

    /// Estimated group count of aggregating `card` rows on `attrs`:
    /// the product of per-attribute distinct-value estimates when the
    /// catalog has them all, capped by the input cardinality; otherwise
    /// the square-root staircase fallback.
    fn group_count(&self, card: f64, attrs: &[AttrId]) -> f64 {
        let mut prod = 1.0;
        for &a in attrs {
            match self.catalog.distinct_values(a) {
                Some(dv) => prod *= dv,
                None => return card.sqrt().max(1.0),
            }
        }
        prod.min(card).max(1.0)
    }

    /// Group count of the *final* aggregation. Queries without an
    /// aggregation context keep the legacy square-root estimate
    /// bit-for-bit.
    fn final_group_count(&self, card: f64, group_by: &[AttrId]) -> f64 {
        if self.agg.is_some() {
            self.group_count(card, group_by)
        } else {
            card.sqrt().max(1.0)
        }
    }

    /// Runs the DP serially and returns the cheapest complete plan that
    /// honors the query's `order by` (adding a final sort if needed).
    pub fn run(self) -> PlanGenResult<O::State>
    where
        O: Sync,
        O::Key: Sync,
        O::State: Send + Sync,
    {
        self.run_with(&SerialExecutor)
    }

    /// Runs the DP with `exec` scheduling each layer's subsets. The
    /// result — plan table, arena layout, winner — is identical for
    /// every executor; a parallel executor only changes how fast it
    /// arrives. (See the module docs for the one caveat: numeric state
    /// handles of cold memoizing oracles.)
    pub fn run_with<E: OrderedExecutor>(mut self, exec: &E) -> PlanGenResult<O::State>
    where
        O: Sync,
        O::Key: Sync,
        O::State: Send + Sync,
    {
        let t0 = Instant::now();
        let trace = self.trace.clone();
        let mut root = trace.span("plangen");
        // Executor kind only — no thread count, so the trace skeleton
        // stays byte-identical across thread counts (the Chrome
        // export's tid lanes show the actual parallelism).
        root.label(exec.label());
        let n = self.query.num_relations();
        let all = self.query.all_relations_set();
        let mut phases: Vec<PhaseStats> = Vec::new();
        let mut run_dc = DecisionCounters::default();

        // Subsets committed so far, in flat global-index order: the
        // numbering every enumerator's pair references use (singletons
        // `0..n` first, then unions in batch-emission order).
        let mut subsets: Vec<BitSet> = Vec::with_capacity(n);

        // Bound provider: one cheap greedy linearized run (window 2,
        // itself unbounded) seeds the global upper bound `B` every
        // later phase prunes against. Its plan space is a subset of
        // every enumerator's search space, so `B` is always achievable
        // — the admissibility contract lives in ARCHITECTURE.md, "The
        // pruning seam". Serial, and run before anything else: on
        // memoizing oracles this also warms the state interner
        // deterministically. Its decision counters merge into the run
        // totals via the "bound" phase; its plan nodes live in its own
        // discarded arena and do not count toward `#Plans`.
        if self.bounding && n >= 3 {
            let mut sp = root.child("bound");
            let tp = Instant::now();
            let provider = PlanGen::new(self.catalog, self.query, self.ex, self.oracle)
                .enumerator(Enumerator::Linearized)
                .linearize_window(2)
                .cost_bounding(false)
                .aggregation_placement(self.placement)
                .partial_sort(self.partial_sort)
                .run();
            self.bound = provider.cost;
            sp.count("plans", provider.stats.plans as u64);
            phases.push(PhaseStats {
                name: "bound".into(),
                time: tp.elapsed(),
                unions: provider.stats.unions,
                pairs_considered: provider.stats.pairs_considered,
                pairs_emitted: provider.stats.pairs_emitted,
                plans: provider.stats.plans as u64,
                decisions: provider.stats.decisions.clone(),
            });
            run_dc.merge(&provider.stats.decisions);
        }

        // Base relations (cheap — built inline on the driver thread).
        {
            let mut sp = root.child("base_plans");
            let tp = Instant::now();
            let mut dc = DecisionCounters::default();
            for qrel in 0..n {
                let mask = self.query.relation_set(qrel);
                let ub = self.upper_bound(&mask);
                let mut view = ArenaView::new(&self.arena);
                let mut set = ParetoSet::new();
                self.base_plans(qrel, &mut set, &mut view, ub, &mut dc);
                self.add_enforcer_variants(&mask, &mut set, &mut view, ub, &mut dc);
                self.add_placement_variants(&mask, &mut set, &mut view, ub, &mut dc);
                let set = self.commit(view.into_local(), set.ids());
                self.table.insert(mask.clone(), set);
                subsets.push(mask);
            }
            let plans = self.arena.len() as u64;
            sp.count("plans", plans);
            sp.count("kept", dc.pruning.kept_total());
            phases.push(PhaseStats {
                name: "base".into(),
                time: tp.elapsed(),
                unions: n as u64,
                pairs_considered: 0,
                pairs_emitted: 0,
                plans,
                decisions: dc.clone(),
            });
            run_dc.merge(&dc);
        }

        // Enumerator-agnostic driver loop: the schedule hands over
        // batches of union work whose pairs only reference committed
        // subsets, so each batch's unions are independent of each other.
        // Each union is one executor chunk; the batch barrier splices
        // the thread-local arenas in batch order, which makes the arena
        // independent of the parallel schedule.
        let (mut schedule, enumerator_name, fallback) = {
            let mut sp = root.child("enumerate");
            let tp = Instant::now();
            let (schedule, name, fallback) = self.make_schedule();
            // DpHyp counts its full pair set at construction; DpSize and
            // Linearized count during batching — so this entry carries
            // the pre-counted totals and the layer entries the diffs.
            sp.label(name);
            sp.count("pairs_considered", schedule.pairs_considered());
            sp.count("pairs_emitted", schedule.pairs_emitted());
            phases.push(PhaseStats {
                name: "enumerate".into(),
                time: tp.elapsed(),
                unions: 0,
                pairs_considered: schedule.pairs_considered(),
                pairs_emitted: schedule.pairs_emitted(),
                plans: 0,
                decisions: DecisionCounters::default(),
            });
            (schedule, name, fallback)
        };
        let mut unions = 0u64;
        let mut layer = 0usize;
        let (mut prev_considered, mut prev_emitted) =
            (schedule.pairs_considered(), schedule.pairs_emitted());
        while let Some(batch) = schedule.next_batch() {
            layer += 1;
            let mut sp = root.child("dp_layer");
            if trace.is_enabled() {
                sp.label(format!("layer {layer}"));
            }
            let tp = Instant::now();
            let plans_before = self.arena.len();
            let batch_len = batch.len() as u64;
            let results = {
                let this = &self;
                let subsets = &subsets;
                let batch = &batch;
                let trace = &trace;
                let depth = sp.depth() + 1;
                exec.run_ordered(batch.len(), &|i| {
                    let mut view = ArenaView::new(&this.arena);
                    let mut dc = DecisionCounters::default();
                    let mut spans = trace.local(depth);
                    let started = spans.start();
                    let set = this.process_union(&batch[i], subsets, &mut view, &mut dc);
                    let local = view.into_local();
                    if started.is_some() {
                        spans.push(
                            "union",
                            format!("|{}| pairs={}", batch[i].union.len(), batch[i].num_pairs()),
                            started,
                            vec![
                                ("plans", local.len() as u64),
                                ("kept", dc.pruning.kept_total()),
                                ("dominated", dc.pruning.dominated_total()),
                            ],
                        );
                    }
                    (local, set, dc, spans)
                })
            };
            // Per-worker span buffers and counters merge in batch order
            // — the same deterministic order the arenas splice in, so
            // the trace skeleton is thread-count-independent.
            let mut dc = DecisionCounters::default();
            for (work, (local, set, union_dc, spans)) in batch.into_iter().zip(results) {
                let set = self.commit(local, set);
                self.table.insert(work.union.clone(), set);
                subsets.push(work.union);
                unions += 1;
                dc.merge(&union_dc);
                trace.absorb(spans);
            }
            let (considered, emitted) = (schedule.pairs_considered(), schedule.pairs_emitted());
            let plans = (self.arena.len() - plans_before) as u64;
            // Pruning work (kept/dominated) is charged once, on the
            // per-union spans — repeating the totals here would
            // double-charge the layer in the span ledger. The layer
            // span carries only what the unions cannot: batch size and
            // the spliced plan count.
            sp.count("unions", batch_len);
            sp.count("plans", plans);
            phases.push(PhaseStats {
                name: format!("layer {layer}"),
                time: tp.elapsed(),
                unions: batch_len,
                pairs_considered: considered - prev_considered,
                pairs_emitted: emitted - prev_emitted,
                plans,
                decisions: dc.clone(),
            });
            run_dc.merge(&dc);
            (prev_considered, prev_emitted) = (considered, emitted);
        }

        // Aggregation: a streaming aggregate exploits an input ordered
        // *or grouped* by the grouping attributes; otherwise hash
        // aggregation (or sort/hash-group + stream, via the enforcer
        // variants already in the set) competes on cost. The property
        // state decides which plans qualify. Under aggregation
        // placement the root set also carries eagerly pre-aggregated
        // plans (which still finalize here) and fused group-join plans
        // (which do not).
        let mut final_set = self.table[&all].clone();
        if !self.query.effective_group_by().is_empty() {
            let mut sp = root.child("finalize_aggregates");
            let tp = Instant::now();
            let mut dc = DecisionCounters::default();
            let plans_before = self.arena.len();
            final_set = self.finalize_aggregates(&final_set, &mut dc);
            let plans = (self.arena.len() - plans_before) as u64;
            sp.count("plans", plans);
            phases.push(PhaseStats {
                name: "finalize".into(),
                time: tp.elapsed(),
                unions: 0,
                pairs_considered: 0,
                pairs_emitted: 0,
                plans,
                decisions: dc.clone(),
            });
            run_dc.merge(&dc);
        }
        let final_set = final_set;

        // Final: honor the output order. A bare group-by/distinct needs
        // no output *ordering* — one row per group is a grouping-shaped
        // requirement the aggregate itself guarantees.
        let required = if !self.query.order_by.is_empty() {
            Some(Ordering::new(self.query.order_by.clone()))
        } else {
            None
        };
        let best = {
            let mut sp = root.child("pick_final");
            let tp = Instant::now();
            let mut dc = DecisionCounters::default();
            let plans_before = self.arena.len();
            let best = self.pick_final(&final_set, required.as_ref(), &mut dc);
            let plans = (self.arena.len() - plans_before) as u64;
            sp.count("plans", plans);
            phases.push(PhaseStats {
                name: "pick_final".into(),
                time: tp.elapsed(),
                unions: 0,
                pairs_considered: 0,
                pairs_emitted: 0,
                plans,
                decisions: dc.clone(),
            });
            run_dc.merge(&dc);
            best
        };
        let cost = self.arena.node(best).cost;
        // Preparation counters are read *after* the run so a lazy
        // oracle reports the states this query's probes materialized.
        let prep = self.oracle.prep_counters();
        root.count("plans", self.arena.len() as u64);
        root.count("unions", unions);
        drop(root);
        let stats = PlanGenStats {
            plans: self.arena.len(),
            time: t0.elapsed(),
            memory_bytes: self.oracle.memory_bytes(self.arena.len()),
            enumerator: enumerator_name,
            pairs_considered: schedule.pairs_considered(),
            pairs_emitted: schedule.pairs_emitted(),
            unions,
            fallback,
            nfsm_states: prep.nfsm_states,
            dfsm_states_materialized: prep.dfsm_states_materialized,
            dfsm_states_total: prep.dfsm_states_total,
            prep_interned_hits: prep.interned_hits,
            phases,
            decisions: run_dc,
        };
        PlanGenResult {
            best,
            cost,
            arena: self.arena,
            stats,
        }
    }

    /// Instantiates the configured enumerator: the schedule, the name of
    /// what actually runs, and whether the auto budget forced the
    /// linearized fallback. Enumeration is a pure function of the join
    /// graph, so (for [`Enumerator::Auto`]) the budget trips before any
    /// planning work is spent.
    fn make_schedule(&self) -> (Box<dyn WorkSchedule + 'a>, &'static str, bool) {
        let linearized =
            || LinearizedSchedule::new(self.catalog, self.query, self.window, self.budget);
        match self.enumerator {
            Enumerator::DpSize => (
                Box::new(DpSizeSchedule::new(self.query)),
                Enumerator::DpSize.name(),
                false,
            ),
            Enumerator::DpHyp => {
                let s = DpHypSchedule::new(self.query, None)
                    .expect("DpHyp without a budget cannot exceed it");
                (Box::new(s), Enumerator::DpHyp.name(), false)
            }
            Enumerator::Linearized => {
                (Box::new(linearized()), Enumerator::Linearized.name(), false)
            }
            Enumerator::Auto => match DpHypSchedule::new(self.query, Some(self.budget)) {
                Ok(s) => (Box::new(s), Enumerator::DpHyp.name(), false),
                Err(_) => (Box::new(linearized()), Enumerator::Linearized.name(), true),
            },
        }
    }

    /// Builds one subset's Pareto set from its ordered partitions —
    /// the executor chunk. Reads only frozen earlier-batch state
    /// (`table`, `subsets`, the oracle); writes only into `view`.
    fn process_union(
        &self,
        work: &UnionWork,
        subsets: &[BitSet],
        view: &mut ArenaView<'_, O::State>,
        dc: &mut DecisionCounters,
    ) -> Vec<PlanId> {
        let ub = self.upper_bound(&work.union);
        let mut set = ParetoSet::new();
        if work.seed {
            // Seeds are the subset's committed Pareto set — already
            // mutually non-dominated and bound-admissible, so they
            // enter unchecked (and uncounted: they were counted when
            // first kept).
            for &p in &self.table[&work.union] {
                let n = view.node(p);
                set.insert_unchecked(p, n.cost, n.card, n.agg, n.state);
            }
        }
        for &(l, r) in &work.pairs {
            self.emit_joins(
                &subsets[l as usize],
                &subsets[r as usize],
                &mut set,
                view,
                ub,
                dc,
            );
        }
        self.add_enforcer_variants(&work.union, &mut set, view, ub, dc);
        self.add_placement_variants(&work.union, &mut set, view, ub, dc);
        set.ids()
    }

    /// Splices a thread-local arena onto the global one, rewriting local
    /// ids (the high [`LOCAL_PLAN_BIT`]) to their global positions, and
    /// returns the remapped Pareto set.
    fn commit(&mut self, local: PlanArena<O::State>, set: Vec<PlanId>) -> Vec<PlanId> {
        let base = self.arena.len() as u32;
        let remap = |p: PlanId| {
            if p.0 & LOCAL_PLAN_BIT != 0 {
                PlanId(base + (p.0 & !LOCAL_PLAN_BIT))
            } else {
                p
            }
        };
        for mut node in local.into_nodes() {
            node.op.remap_inputs(&mut |p| remap(p));
            self.arena.push(node);
        }
        set.into_iter().map(remap).collect()
    }

    /// Resolves the oracle handles for aggregating on `attrs` — the
    /// ordering and grouping probes of the streaming admission test,
    /// plus the producible grouping a hash aggregate constructs its
    /// output state from (tested-only groupings may be probed but never
    /// produced).
    fn resolve_agg_key(&self, attrs: Vec<AttrId>) -> AggKeyHandles<O::Key> {
        let order = self.oracle.resolve(&Ordering::new(attrs.clone()));
        let group = self.oracle.resolve_grouping(&Grouping::new(attrs.clone()));
        let producible = group.filter(|&k| self.oracle.is_producible(k));
        AggKeyHandles {
            attrs,
            order,
            group,
            producible,
        }
    }

    /// Builds one aggregate candidate on `keys` over plan `p` — the
    /// single implementation behind final aggregates and pushed-down
    /// partials: streaming when the input satisfies the key as an
    /// ordering *or* a grouping (its output is a subsequence — first
    /// row per group — so every input property and applied FD
    /// survives), hashing otherwise (destroys all orderings but
    /// *produces* the key's grouping). Whether the node is a partial
    /// follows from `mark`: final marks combine partials, everything
    /// else *is* a partial.
    ///
    /// Bound-checked before the admission probes with the aggregate
    /// cost floor (a streaming aggregate, the cheapest variant), and
    /// inserted through [`try_insert`](Self::try_insert) — a pruned
    /// aggregate costs no allocation.
    #[allow(clippy::too_many_arguments)]
    fn try_push_aggregate(
        &self,
        view: &mut ArenaView<'_, O::State>,
        set: &mut ParetoSet<O::State>,
        ub: f64,
        p: PlanId,
        keys: &AggKeyHandles<O::Key>,
        mark: AggMark,
        groups: f64,
        dc: &mut DecisionCounters,
    ) -> Option<PlanId> {
        let (c, d, st) = {
            let n = view.node(p);
            (n.cost, n.card, n.state)
        };
        if c + cost::streaming_aggregate(d) > ub {
            dc.pruning.bound_pruned += 1;
            return None;
        }
        let (fd_bits, mask) = {
            let n = view.node(p);
            (n.applied_fds.clone(), n.mask.clone())
        };
        let partial = !mark.is_final();
        let streaming = keys.order.is_some_and(|k| {
            dc.probes.satisfies += 1;
            self.oracle.satisfies(st, k)
        }) || keys.group.is_some_and(|k| {
            dc.probes.satisfies += 1;
            self.oracle.satisfies_grouping(st, k)
        });
        let (op_cost, state, fds_out) = if streaming {
            (cost::streaming_aggregate(d), st, fd_bits)
        } else {
            dc.probes.produce += 1;
            let state = match keys.producible {
                Some(k) => self.replay_fds(self.oracle.produce_grouping(k), &fd_bits, dc),
                None => self.oracle.produce_empty(),
            };
            (cost::hash_aggregate(d), state, SmallBitSet::new())
        };
        let cand = CandidatePlan {
            cost: c + op_cost,
            card: groups,
            state,
            agg: mark,
        };
        self.try_insert(
            view,
            set,
            ub,
            cand,
            || {
                let op = if streaming {
                    PlanOp::StreamAgg {
                        input: p,
                        key: keys.attrs.clone(),
                        partial,
                    }
                } else {
                    PlanOp::HashAgg {
                        input: p,
                        key: keys.attrs.clone(),
                        partial,
                    }
                };
                PlanNode {
                    op,
                    mask,
                    cost: cand.cost,
                    card: groups,
                    state,
                    agg: mark,
                    applied_fds: fds_out,
                }
            },
            dc,
        )
    }

    /// Final-aggregation alternatives for every complete plan (streaming
    /// vs hashing per [`push_aggregate`](Self::push_aggregate)). Eagerly
    /// pre-aggregated plans finalize the same way — the root aggregate
    /// combines their partials — while group-join plans are already
    /// final and pass through untouched.
    fn finalize_aggregates(&mut self, plans: &[PlanId], dc: &mut DecisionCounters) -> Vec<PlanId> {
        let keys = self.resolve_agg_key(self.query.effective_group_by().to_vec());
        // At the root nothing remains outside the mask: the bound
        // applies with a zero remainder.
        let ub = self.bound;
        let mut view = ArenaView::new(&self.arena);
        let mut out: ParetoSet<O::State> = ParetoSet::new();
        for &p in plans {
            let (n_agg, n_card) = {
                let n = view.node(p);
                (n.agg, n.card)
            };
            if n_agg.is_final() {
                // Group-join output: the aggregation already happened.
                self.try_insert_existing(&view, &mut out, ub, p, dc);
                continue;
            }
            let mark = n_agg.union(AggMark::FINAL);
            let groups = self.final_group_count(n_card, &keys.attrs);
            self.try_push_aggregate(&mut view, &mut out, ub, p, &keys, mark, groups, dc);
        }
        let local = view.into_local();
        self.commit(local, out.ids())
    }

    /// Aggregation-placement variants for one subset — the tentpole of
    /// the aggregation plan-space dimension. For every unaggregated plan
    /// of the subset, an *eager* partial aggregate (on the side carrying
    /// the aggregated attributes) or an *eager-count* partial aggregate
    /// (on the opposite side) is placed above it when the aggregate
    /// functions' decomposability permits. The aggregation key is the
    /// subset's canonical key — group-by attributes inside, join
    /// attributes crossing out, minimized under the subset's
    /// dependencies — so every later join and the final combine remain
    /// answerable. Streaming when the plan's properties already group
    /// the key; hashing otherwise. The resulting plans live in their own
    /// comparability class ([`AggMark`]), never evicting (or being
    /// evicted by) the classic join-only plans: their payoff is the
    /// collapsed cardinality every operator above them enjoys.
    fn add_placement_variants(
        &self,
        mask: &BitSet,
        set: &mut ParetoSet<O::State>,
        view: &mut ArenaView<'_, O::State>,
        ub: f64,
        dc: &mut DecisionCounters,
    ) {
        if !self.placement {
            return;
        }
        let Some(agg) = &self.agg else {
            return;
        };
        // Never at the root set: a partial aggregate there could only
        // feed the final aggregate it is redundant with.
        if mask.len() == self.query.num_relations() {
            return;
        }
        let eager = agg.decomposable && agg.input_owners.iter().all(|r| mask.contains(r));
        let mark = if eager {
            AggMark::EAGER
        } else if agg.count_scalable && !agg.input_owners.iter().any(|r| mask.contains(r)) {
            AggMark::EAGER_COUNT
        } else {
            return; // aggregate inputs split across the cut — no legal placement
        };
        let key = self.ex.subset_agg_key(self.query, mask);
        if key.is_empty() {
            return;
        }
        let keys = self.resolve_agg_key(key.attrs().to_vec());
        let snapshot: Vec<(PlanId, f64)> = set
            .members()
            .filter(|m| m.agg.is_none())
            .map(|m| (m.id, m.card))
            .collect();
        for (p, card) in snapshot {
            let groups = self.group_count(card, &keys.attrs);
            self.try_push_aggregate(view, set, ub, p, &keys, mark, groups, dc);
        }
    }

    /// Scan and index-scan plans for one relation, with constant-
    /// predicate FDs applied and filter selectivities folded in —
    /// inserted straight into the singleton's Pareto set. The cheapest
    /// access path can never bust the bound (the bound provider's plan
    /// pays at least that much for this relation), so the set is never
    /// left empty; pricier index scans are bound-checked before their
    /// state is produced.
    fn base_plans(
        &self,
        qrel: usize,
        set: &mut ParetoSet<O::State>,
        view: &mut ArenaView<'_, O::State>,
        ub: f64,
        dc: &mut DecisionCounters,
    ) {
        let rel = self.query.relations[qrel];
        let raw_card = self.catalog.relation(rel).cardinality;
        let mut sel = 1.0;
        let mut fd_bits = SmallBitSet::new();
        let mut fds: Vec<FdSetId> = Vec::new();
        for (i, c) in self.query.constants.iter().enumerate() {
            if self.query.owner(c.attr) == qrel {
                sel *= c.selectivity;
                let f = self.ex.const_fd[i];
                fds.push(f);
                fd_bits.insert(f.index());
            }
        }
        // Schema (key-constraint) FDs hold from the scan onward: a
        // unique column determines the relation's other attributes —
        // what lets a join key determine the aggregation group.
        if let Some(f) = self.ex.rel_fd.get(qrel).copied().flatten() {
            fds.push(f);
            fd_bits.insert(f.index());
        }
        for f in &self.query.filters {
            if self.query.owner(f.attr) == qrel {
                sel *= f.selectivity;
            }
        }
        let card = (raw_card * sel).max(1.0);
        let mask = self.query.relation_set(qrel);

        // Heap scan.
        dc.probes.produce += 1;
        let mut state = self.oracle.produce_empty();
        for &f in &fds {
            dc.probes.infer += 1;
            state = self.oracle.infer(state, f);
        }
        let scan = CandidatePlan {
            cost: cost::scan(raw_card),
            card,
            state,
            agg: AggMark::NONE,
        };
        self.try_insert(
            view,
            set,
            ub,
            scan,
            || PlanNode {
                op: PlanOp::Scan { qrel },
                mask: mask.clone(),
                cost: scan.cost,
                card,
                state,
                agg: AggMark::NONE,
                applied_fds: fd_bits.clone(),
            },
            dc,
        );
        // Index scans (only when the index order is interesting —
        // otherwise the order information is useless for this query and
        // the heap scan dominates). Bound-checked before the state is
        // produced: the cost needs no oracle.
        for (idx, index) in self.catalog.relation(rel).indexes.iter().enumerate() {
            let ordering = Ordering::new(index.key.clone());
            let Some(key) = self.oracle.resolve(&ordering) else {
                continue;
            };
            if !self.oracle.is_producible(key) {
                continue;
            }
            let ix_cost = cost::index_scan(raw_card, index.clustered);
            if ix_cost > ub {
                dc.pruning.bound_pruned += 1;
                continue;
            }
            dc.probes.produce += 1;
            let mut state = self.oracle.produce(key);
            for &f in &fds {
                dc.probes.infer += 1;
                state = self.oracle.infer(state, f);
            }
            let ix = CandidatePlan {
                cost: ix_cost,
                card,
                state,
                agg: AggMark::NONE,
            };
            self.try_insert(
                view,
                set,
                ub,
                ix,
                || PlanNode {
                    op: PlanOp::IndexScan { qrel, index: idx },
                    mask: mask.clone(),
                    cost: ix_cost,
                    card,
                    state,
                    agg: AggMark::NONE,
                    applied_fds: fd_bits.clone(),
                },
                dc,
            );
        }
    }

    /// All join alternatives for the ordered partition (s1, s2).
    ///
    /// Prune-before-build: each plan combination is first tested
    /// against the subset's cost upper bound with
    /// [`cost::join_floor`] — a bust rejects every join alternative of
    /// the combination before any oracle inference, FD-set clone or
    /// node allocation happens. Survivors build stack-only
    /// [`CandidatePlan`]s per alternative; [`try_insert`]
    /// (Self::try_insert) materializes a node only after the bound and
    /// arrival-dominance checks pass.
    fn emit_joins(
        &self,
        s1: &BitSet,
        s2: &BitSet,
        set: &mut ParetoSet<O::State>,
        view: &mut ArenaView<'_, O::State>,
        ub: f64,
        dc: &mut DecisionCounters,
    ) {
        let edges: Vec<usize> = self.graph.connecting_edges(s1, s2).collect();
        if edges.is_empty() {
            return; // would be a cross product
        }
        let sel: f64 = edges
            .iter()
            .map(|&e| self.query.joins[e].selectivity)
            .product();
        let mask = {
            let mut m = s1.clone();
            m.union_with(s2);
            m
        };
        // Fused group-joins exist only at the root subset: they perform
        // the query's *final* aggregation.
        let at_root = mask.len() == self.query.num_relations();
        let left_plans = &self.table[s1];
        let right_plans = &self.table[s2];
        for &p1 in left_plans {
            for &p2 in right_plans {
                let n1 = view.node(p1);
                let (c1, d1, st1, mark1) = (n1.cost, n1.card, n1.state, n1.agg);
                let n2 = view.node(p2);
                let (c2, d2, mark2) = (n2.cost, n2.card, n2.agg);
                let mark = mark1.union(mark2);
                let out_card = (d1 * d2 * sel).max(1.0);
                // Pair-level bound check: no join operator over these
                // two inputs can cost less than the floor, so a bust
                // rejects the two unconditional alternatives (hash,
                // nested-loop) at once — counted as such — and skips
                // the conditional ones before any state is inferred.
                if c1 + c2 + cost::join_floor(d1, d2, out_card) > ub {
                    dc.pruning.bound_pruned += 2;
                    continue;
                }
                // Property state: the probe/outer (left) side's
                // orderings and groupings survive; all connecting
                // predicates' equations now hold.
                let mut fd_bits = view.node(p1).applied_fds.clone();
                fd_bits.union_with(&view.node(p2).applied_fds);
                let mut state = st1;
                for &e in &edges {
                    let f = self.ex.join_fd[e];
                    dc.probes.infer += 1;
                    state = self.oracle.infer(state, f);
                    fd_bits.insert(f.index());
                }
                // Schema FDs are key constraints — they hold on the
                // join output no matter which side carried them, but
                // only the probe side's chain is in `state`. Re-infer
                // the build side's (idempotent when already applied);
                // with the edge equations this is what makes a join key
                // determine a build-side group column.
                if self.agg.is_some() {
                    for r in s2.iter() {
                        if let Some(f) = self.ex.rel_fd.get(r).copied().flatten() {
                            dc.probes.infer += 1;
                            state = self.oracle.infer(state, f);
                        }
                    }
                }
                // Hash join (on the first edge; the rest are residual
                // predicates either way).
                let hj = CandidatePlan {
                    cost: c1 + c2 + cost::hash_join(d1, d2, out_card),
                    card: out_card,
                    state,
                    agg: mark,
                };
                self.try_insert(
                    view,
                    set,
                    ub,
                    hj,
                    || PlanNode {
                        op: PlanOp::HashJoin {
                            left: p1,
                            right: p2,
                            edge: edges[0],
                        },
                        mask: mask.clone(),
                        cost: hj.cost,
                        card: hj.card,
                        state,
                        agg: mark,
                        applied_fds: fd_bits.clone(),
                    },
                    dc,
                );
                // Nested-loop join.
                let nl = CandidatePlan {
                    cost: c1 + c2 + cost::nested_loop_join(d1, d2, out_card),
                    card: out_card,
                    state,
                    agg: mark,
                };
                self.try_insert(
                    view,
                    set,
                    ub,
                    nl,
                    || PlanNode {
                        op: PlanOp::NestedLoopJoin {
                            left: p1,
                            right: p2,
                        },
                        mask: mask.clone(),
                        cost: nl.cost,
                        card: nl.card,
                        state,
                        agg: mark,
                        applied_fds: fd_bits.clone(),
                    },
                    dc,
                );
                // Group-join: the top join fused with the final
                // aggregation, admissible when the probe side's groups
                // are already adjacent — its properties, the schema FDs,
                // and the join's own equations together make the join
                // key (or whatever the probe is grouped by) functionally
                // determine the group, which is exactly what the
                // post-inference `state` answers in O(1). The bound is
                // checked before the admission probes: a busted fused
                // plan never reaches the oracle.
                if at_root && self.placement && !mark.is_final() {
                    if let Some(agg) = &self.agg {
                        let gj_cost = c1 + c2 + cost::group_join(d1, d2, out_card);
                        if gj_cost > ub {
                            dc.pruning.bound_pruned += 1;
                        } else {
                            let streaming_ok = agg.order_key.is_some_and(|k| {
                                dc.probes.satisfies += 1;
                                self.oracle.satisfies(state, k)
                            }) || agg.group_key.is_some_and(|k| {
                                dc.probes.satisfies += 1;
                                self.oracle.satisfies_grouping(state, k)
                            });
                            if streaming_ok {
                                let gj = CandidatePlan {
                                    cost: gj_cost,
                                    card: self.group_count(out_card, &agg.group_by),
                                    state,
                                    agg: mark.union(AggMark::FINAL),
                                };
                                self.try_insert(
                                    view,
                                    set,
                                    ub,
                                    gj,
                                    || PlanNode {
                                        op: PlanOp::GroupJoin {
                                            left: p1,
                                            right: p2,
                                            edge: edges[0],
                                        },
                                        mask: mask.clone(),
                                        cost: gj.cost,
                                        card: gj.card,
                                        state,
                                        agg: gj.agg,
                                        applied_fds: fd_bits.clone(),
                                    },
                                    dc,
                                );
                            }
                        }
                    }
                }
                // Merge joins: need both inputs sorted on the edge. The
                // bound is checked before the satisfies probes.
                for &e in &edges {
                    let j = &self.query.joins[e];
                    let (la, ra) = if s1.contains(self.query.owner(j.left)) {
                        (j.left, j.right)
                    } else {
                        (j.right, j.left)
                    };
                    let (Some(kl), Some(kr)) = (
                        self.oracle.resolve(&Ordering::new(vec![la])),
                        self.oracle.resolve(&Ordering::new(vec![ra])),
                    ) else {
                        continue;
                    };
                    let mj_cost = c1 + c2 + cost::merge_join(d1, d2, out_card);
                    if mj_cost > ub {
                        dc.pruning.bound_pruned += 1;
                        continue;
                    }
                    let st2 = view.node(p2).state;
                    dc.probes.satisfies += 1;
                    if !self.oracle.satisfies(st1, kl) {
                        continue;
                    }
                    dc.probes.satisfies += 1;
                    if !self.oracle.satisfies(st2, kr) {
                        continue;
                    }
                    let mj = CandidatePlan {
                        cost: mj_cost,
                        card: out_card,
                        state,
                        agg: mark,
                    };
                    self.try_insert(
                        view,
                        set,
                        ub,
                        mj,
                        || PlanNode {
                            op: PlanOp::MergeJoin {
                                left: p1,
                                right: p2,
                                edge: e,
                            },
                            mask: mask.clone(),
                            cost: mj.cost,
                            card: mj.card,
                            state,
                            agg: mark,
                            applied_fds: fd_bits.clone(),
                        },
                        dc,
                    );
                }
            }
        }
    }

    /// Replays the FD sets that hold beneath a node onto a freshly
    /// produced state (§5.6: the enforcer's state follows the `*` edge,
    /// "and then another edge corresponding to the set of functional
    /// dependencies that currently hold").
    fn replay_fds(
        &self,
        mut state: O::State,
        bits: &SmallBitSet,
        dc: &mut DecisionCounters,
    ) -> O::State {
        for f in bits.iter() {
            dc.probes.infer += 1;
            state = self.oracle.infer(state, FdSetId(f as u32));
        }
        state
    }

    /// Enforcer variants: for every producible interesting property
    /// covered by `mask`, a full enforcer on the cheapest unaggregated
    /// plan — a sort for orderings, a linear hash-group for groupings —
    /// plus a partial-sort alternative on whichever input makes it
    /// cheapest (grouping-aware Pareto pruning keeps whichever
    /// combinations survive).
    ///
    /// A variant is suppressed when some unaggregated member already
    /// satisfies the target at a cost no higher than the variant's own
    /// total — the *cost-window* rule. (The legacy rule skipped the
    /// target as soon as *any* member satisfied it; the window form is
    /// what keeps the bounded and unbounded searches identical: every
    /// member inside a variant's cost window is bound-admissible
    /// exactly when the variant is, so both modes reach the same
    /// suppression decision — see "The pruning seam" in
    /// ARCHITECTURE.md.) Surviving variants are bound-checked before
    /// the enforcer state is produced.
    ///
    /// Enforcers operate on the unaggregated ([`AggMark::NONE`]) class
    /// only: that keeps the class an exact replica of the
    /// root-only-aggregation search (the guarantee that placement can
    /// never lose), and placement variants stacked on top of the
    /// enforced plans inherit their properties anyway.
    fn add_enforcer_variants(
        &self,
        mask: &BitSet,
        set: &mut ParetoSet<O::State>,
        view: &mut ArenaView<'_, O::State>,
        ub: f64,
        dc: &mut DecisionCounters,
    ) {
        // First-minimum over the unaggregated members. Never evicted
        // later: every enforcer variant costs strictly more than its
        // input.
        let Some(cheapest) = set
            .members()
            .filter(|m| m.agg.is_none())
            .fold(None::<(PlanId, f64)>, |best, m| match best {
                Some((_, bc)) if bc <= m.cost => best,
                _ => Some((m.id, m.cost)),
            })
            .map(|(id, _)| id)
        else {
            return;
        };
        for t in 0..self.targets.len() {
            let key = self.targets[t].key;
            let grouping = self.targets[t].grouping;
            if !mask.is_superset(&self.targets[t].rel_mask) {
                continue; // mentions relations outside this subset
            }
            // Alive unaggregated members and their satisfaction of the
            // target, snapshotted per target (earlier targets' variants
            // compete here, as before): (id, cost, card, state, sat).
            let members: Vec<(PlanId, f64, f64, O::State, bool)> = set
                .members()
                .filter(|m| m.agg.is_none())
                .map(|m| {
                    dc.probes.satisfies += 1;
                    let sat = if grouping {
                        self.oracle.satisfies_grouping(m.state, key)
                    } else {
                        self.oracle.satisfies(m.state, key)
                    };
                    (m.id, m.cost, m.card, m.state, sat)
                })
                .collect();
            let (c, d) = {
                let n = view.node(cheapest);
                (n.cost, n.card)
            };
            let op_cost = if grouping {
                cost::hash_group(d)
            } else {
                cost::sort(d)
            };
            let enforced_cost = c + op_cost;
            let in_window =
                |limit: f64| members.iter().any(|&(_, mc, _, _, sat)| sat && mc <= limit);
            if !in_window(enforced_cost) {
                if enforced_cost > ub {
                    dc.pruning.bound_pruned += 1;
                } else {
                    let fd_bits = view.node(cheapest).applied_fds.clone();
                    dc.probes.produce += 1;
                    let produced = if grouping {
                        self.oracle.produce_grouping(key)
                    } else {
                        self.oracle.produce(key)
                    };
                    let state = self.replay_fds(produced, &fd_bits, dc);
                    let cand = CandidatePlan {
                        cost: enforced_cost,
                        card: d,
                        state,
                        agg: AggMark::NONE,
                    };
                    let key_attrs = self.targets[t].attrs.clone();
                    let won = self
                        .try_insert(
                            view,
                            set,
                            ub,
                            cand,
                            || PlanNode {
                                op: if grouping {
                                    PlanOp::HashGroup {
                                        input: cheapest,
                                        key: key_attrs,
                                    }
                                } else {
                                    PlanOp::Sort {
                                        input: cheapest,
                                        key: key_attrs,
                                    }
                                },
                                mask: mask.clone(),
                                cost: enforced_cost,
                                card: d,
                                state,
                                agg: AggMark::NONE,
                                applied_fds: fd_bits,
                            },
                            dc,
                        )
                        .is_some();
                    if grouping {
                        dc.enforcers.hash_group_admitted += 1;
                        dc.enforcers.hash_group_won += u64::from(won);
                    } else {
                        dc.enforcers.sort_admitted += 1;
                        dc.enforcers.sort_won += u64::from(won);
                    }
                }
            }
            // Partial-sort alternative for ordering targets: the best
            // (input cost + partial-sort cost) over members whose state
            // already satisfies a head grouping — typically *not* the
            // cheapest plan (a grouped plan costs a bit more but makes
            // the enforcement nearly free). The full sort above stays in
            // the set; Pareto pruning keeps whichever survives.
            if grouping {
                continue;
            }
            let mut best: Option<(f64, PlanId, f64, usize)> = None;
            for &(id, mc, mcard, mstate, sat) in &members {
                if sat {
                    continue;
                }
                let Some((ps_cost, covered)) = self.best_partial_sort(
                    mstate,
                    mcard,
                    &self.targets[t].attrs,
                    &self.targets[t].psort,
                    dc,
                ) else {
                    continue;
                };
                let total = mc + ps_cost;
                if best.is_none_or(|(bt, ..)| total < bt) {
                    best = Some((total, id, mcard, covered));
                }
            }
            if let Some((total, input, card, covered)) = best {
                if in_window(total) {
                    continue;
                }
                if total > ub {
                    dc.pruning.bound_pruned += 1;
                    continue;
                }
                let fd_bits = view.node(input).applied_fds.clone();
                dc.probes.produce += 1;
                let state = self.replay_fds(self.oracle.produce(key), &fd_bits, dc);
                let cand = CandidatePlan {
                    cost: total,
                    card,
                    state,
                    agg: AggMark::NONE,
                };
                let won = self
                    .try_insert(
                        view,
                        set,
                        ub,
                        cand,
                        || PlanNode {
                            op: PlanOp::PartialSort {
                                input,
                                key: self.targets[t].attrs.clone(),
                                head: self.targets[t].attrs[..covered].to_vec(),
                            },
                            mask: mask.clone(),
                            cost: total,
                            card,
                            state,
                            agg: AggMark::NONE,
                            applied_fds: fd_bits,
                        },
                        dc,
                    )
                    .is_some();
                dc.enforcers.partial_sort_admitted += 1;
                dc.enforcers.partial_sort_won += u64::from(won);
            }
        }
    }

    /// Pareto insertion, prune-before-build: the candidate arrives as a
    /// stack-only [`CandidatePlan`] and is materialized (via `build`)
    /// only after it clears the cost bound and the arrival-dominance
    /// test. Pruned candidates therefore cost no arena allocation —
    /// `#Plans` counts plans that entered the table (including ones a
    /// later candidate evicts), which is still "the time to introduce
    /// one plan operator" for the work actually performed.
    ///
    /// Aggregation placement adds a comparability dimension: plans with
    /// different [`AggMark`]s compute different intermediate relations
    /// and never prune each other, and plans *inside* an aggregated
    /// class additionally compare output cardinality (two eager plans
    /// with partial aggregates at different subsets produce genuinely
    /// different row counts — the cheaper one is not better if it
    /// carries more rows into every operator above). Unaggregated plans
    /// of one subset all compute the same relation, so they keep the
    /// classic cost-plus-property test. The [`ParetoSet`] buckets make
    /// the property half of the test one memoized probe per distinct
    /// state instead of one oracle call per member.
    ///
    /// Returns the admitted plan's id, or `None` when the candidate was
    /// bound-pruned or dominated on arrival.
    fn try_insert(
        &self,
        view: &mut ArenaView<'_, O::State>,
        set: &mut ParetoSet<O::State>,
        ub: f64,
        cand: CandidatePlan<O::State>,
        build: impl FnOnce() -> PlanNode<O::State>,
        dc: &mut DecisionCounters,
    ) -> Option<PlanId> {
        if cand.cost > ub {
            dc.pruning.bound_pruned += 1;
            return None;
        }
        if set.arrival_dominated(self.oracle, &cand, dc) {
            return None;
        }
        let id = view.push(build());
        set.admit(self.oracle, id, &cand, dc);
        dc.pruning.kept[cand.agg.class_index()] += 1;
        Some(id)
    }

    /// [`try_insert`](Self::try_insert) for a plan that already exists
    /// in the arena (group-join passthrough at finalization): same
    /// bound and dominance gates, no build. Returns whether the plan
    /// entered the set.
    fn try_insert_existing(
        &self,
        view: &ArenaView<'_, O::State>,
        set: &mut ParetoSet<O::State>,
        ub: f64,
        p: PlanId,
        dc: &mut DecisionCounters,
    ) -> bool {
        let n = view.node(p);
        let cand = CandidatePlan {
            cost: n.cost,
            card: n.card,
            state: n.state,
            agg: n.agg,
        };
        if cand.cost > ub {
            dc.pruning.bound_pruned += 1;
            return false;
        }
        if set.arrival_dominated(self.oracle, &cand, dc) {
            return false;
        }
        set.admit(self.oracle, p, &cand, dc);
        dc.pruning.kept[cand.agg.class_index()] += 1;
        true
    }

    /// Cheapest complete plan, enforcing the required output order at
    /// the top if it is not satisfied — with a full sort, or with a
    /// partial sort when the plan's output already satisfies a head
    /// grouping of the requirement (the `ORDER BY group-key` case above
    /// a hash aggregate, whose grouped output makes the root sort
    /// nearly free).
    fn pick_final(
        &mut self,
        set: &[PlanId],
        required: Option<&Ordering>,
        dc: &mut DecisionCounters,
    ) -> PlanId {
        let required_key = required.and_then(|o| self.oracle.resolve(o));
        let probes = required
            .map(|o| Self::partial_sort_probes(self.oracle, o.attrs()))
            .unwrap_or_default();
        // Enforcement cost of plan p: None when satisfied, otherwise the
        // cheaper of full sort and (admissible) partial sort, with the
        // covered prefix length recorded for the partial sort.
        let enforcement =
            |this: &Self, p: PlanId, dc: &mut DecisionCounters| -> Option<(f64, Option<usize>)> {
                let n = this.arena.node(p);
                let k = required_key?;
                dc.probes.satisfies += 1;
                if this.oracle.satisfies(n.state, k) {
                    return None;
                }
                let full = (cost::sort(n.card), None);
                match required
                    .and_then(|o| this.best_partial_sort(n.state, n.card, o.attrs(), &probes, dc))
                {
                    Some((ps, covered)) if ps < full.0 => Some((ps, Some(covered))),
                    _ => Some(full),
                }
            };
        let mut best: Option<(f64, PlanId)> = None;
        for &p in set {
            let total = self.arena.node(p).cost + enforcement(self, p, dc).map_or(0.0, |(c, _)| c);
            if best.is_none_or(|(bc, _)| total < bc) {
                best = Some((total, p));
            }
        }
        let (total, p) = best.expect("no complete plan");
        let Some((_, covered)) = enforcement(self, p, dc) else {
            return p;
        };
        // Materialize the final (partial) sort.
        let key = required_key.expect("unsatisfied requires a key");
        let key_attrs = required
            .expect("sort implies a requirement")
            .attrs()
            .to_vec();
        let n = self.arena.node(p);
        let (d, fd_bits, mask, mark) = (n.card, n.applied_fds.clone(), n.mask.clone(), n.agg);
        if covered.is_some() {
            dc.enforcers.partial_sort_admitted += 1;
            dc.enforcers.partial_sort_won += 1;
        } else {
            dc.enforcers.sort_admitted += 1;
            dc.enforcers.sort_won += 1;
        }
        dc.probes.produce += 1;
        let state = self.replay_fds(self.oracle.produce(key), &fd_bits, dc);
        let op = match covered {
            Some(covered) => PlanOp::PartialSort {
                input: p,
                head: key_attrs[..covered].to_vec(),
                key: key_attrs,
            },
            None => PlanOp::Sort {
                input: p,
                key: key_attrs,
            },
        };
        self.arena.push(PlanNode {
            op,
            mask,
            cost: total,
            card: d,
            state,
            agg: mark,
            applied_fds: fd_bits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ExplicitOracle;
    use crate::plan::PlanOp;
    use ofw_core::{OrderingFramework, PruneConfig};
    use ofw_query::extract::ExtractOptions;
    use ofw_query::QueryBuilder;
    use ofw_simmen::SimmenFramework;

    fn persons_jobs() -> (Catalog, Query) {
        let mut c = Catalog::new();
        c.add_relation("persons", 10_000.0, &["id", "name", "jobid"]);
        c.add_relation("jobs", 100.0, &["id", "salary"]);
        let jobs = c.relation_id("jobs").unwrap();
        let jid = c.attr("jobs.id");
        c.add_index(jobs, vec![jid], true);
        let q = QueryBuilder::new(&c)
            .relation("persons")
            .relation("jobs")
            .join("persons.jobid", "jobs.id", 0.01)
            .filter("jobs.salary", 0.3)
            .order_by(&["jobs.id", "persons.name"])
            .build();
        (c, q)
    }

    fn run_ours(c: &Catalog, q: &Query) -> PlanGenResult<ofw_core::State> {
        let ex = ofw_query::extract(c, q, &ExtractOptions::default());
        let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
        PlanGen::new(c, q, &ex, &fw).run()
    }

    fn run_simmen(c: &Catalog, q: &Query) -> PlanGenResult<ofw_simmen::SimmenState> {
        let ex = ofw_query::extract(c, q, &ExtractOptions::default());
        let fw = SimmenFramework::prepare(&ex.spec);
        PlanGen::new(c, q, &ex, &fw).run()
    }

    fn run_explicit(c: &Catalog, q: &Query) -> PlanGenResult<crate::oracle::ExplicitStateId> {
        let ex = ofw_query::extract(c, q, &ExtractOptions::default());
        let fw = ExplicitOracle::prepare(&ex.spec);
        PlanGen::new(c, q, &ex, &fw).run()
    }

    #[test]
    fn both_oracles_find_the_same_optimal_cost() {
        let (c, q) = persons_jobs();
        let ours = run_ours(&c, &q);
        let simmen = run_simmen(&c, &q);
        // §7: "we carefully observed that in all cases both order
        // optimization algorithms produced the same optimal plan".
        assert!(
            (ours.cost - simmen.cost).abs() < 1e-6,
            "ours={} simmen={}",
            ours.cost,
            simmen.cost
        );
        assert!(ours.stats.plans > 0);
    }

    #[test]
    fn final_plan_honors_order_by() {
        let (c, q) = persons_jobs();
        let r = run_ours(&c, &q);
        let root = r.arena.node(r.best);
        assert_eq!(root.mask, q.all_relations_set());
        assert!(root.cost.is_finite() && root.cost > 0.0);
    }

    #[test]
    fn merge_join_is_chosen_when_inputs_can_be_ordered_cheaply() {
        // Big relations, clustered indexes on both join keys: merge join
        // on index order must beat hashing.
        let mut c = Catalog::new();
        c.add_relation("l", 100_000.0, &["k"]);
        c.add_relation("r", 100_000.0, &["k"]);
        let lk = c.attr("l.k");
        let rk = c.attr("r.k");
        c.add_index(c.relation_id("l").unwrap(), vec![lk], true);
        c.add_index(c.relation_id("r").unwrap(), vec![rk], true);
        let q = QueryBuilder::new(&c)
            .relation("l")
            .relation("r")
            .join("l.k", "r.k", 0.00001)
            .build();
        let r = run_ours(&c, &q);
        let mut found_merge = false;
        let mut stack = vec![r.best];
        while let Some(p) = stack.pop() {
            let op = &r.arena.node(p).op;
            found_merge |= matches!(op, PlanOp::MergeJoin { .. });
            stack.extend(op.inputs());
        }
        assert!(
            found_merge,
            "expected a merge join:\n{}",
            r.arena.render(r.best, &|i| format!("r{i}"))
        );
    }

    #[test]
    fn ours_generates_no_more_plans_than_simmen() {
        let (c, q) = persons_jobs();
        let ours = run_ours(&c, &q);
        let simmen = run_simmen(&c, &q);
        assert!(
            ours.stats.plans <= simmen.stats.plans,
            "ours={} simmen={}",
            ours.stats.plans,
            simmen.stats.plans
        );
    }

    #[test]
    fn chain_of_four_relations_plans() {
        let mut c = Catalog::new();
        let mut qb_rels = Vec::new();
        for i in 0..4 {
            c.add_relation(&format!("t{i}"), 1000.0 * (i as f64 + 1.0), &["k", "f"]);
            qb_rels.push(format!("t{i}"));
        }
        let mut qb = QueryBuilder::new(&c);
        for r in &qb_rels {
            qb = qb.relation(r);
        }
        for i in 0..3 {
            qb = qb.join(&format!("t{i}.f"), &format!("t{}.k", i + 1), 0.001);
        }
        let q = qb.build();
        let ours = run_ours(&c, &q);
        let simmen = run_simmen(&c, &q);
        assert!((ours.cost - simmen.cost).abs() < 1e-6);
        // Prune-before-build: the bounded default materializes fewer
        // plans than the unbounded search over the same space, at the
        // exact same winning cost.
        let ex = ofw_query::extract(&c, &q, &ExtractOptions::default());
        let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
        let unbounded = PlanGen::new(&c, &q, &ex, &fw).cost_bounding(false).run();
        assert_eq!(unbounded.cost.to_bits(), ours.cost.to_bits());
        assert!(unbounded.stats.plans > 20);
        assert!(ours.stats.plans <= unbounded.stats.plans);
        assert!(
            ours.stats.plans >= 11,
            "4 base plans plus at least one plan per larger connected subset"
        );
        assert!(ours.arena.tree_size(ours.best) >= 7, "4 scans + 3 joins");
    }

    #[test]
    fn streaming_aggregate_exploits_free_order() {
        // Clustered index on the grouping attribute: the optimizer must
        // pick an ordered scan + merge-joinable path ending in a
        // streaming aggregate instead of hashing.
        let mut c = Catalog::new();
        c.add_relation("f", 100_000.0, &["g", "k"]);
        c.add_relation("d", 100.0, &["k"]);
        let fg = c.attr("f.g");
        c.add_index(c.relation_id("f").unwrap(), vec![fg], true);
        let q = QueryBuilder::new(&c)
            .relation("f")
            .relation("d")
            .join("f.k", "d.k", 0.01)
            .group_by(&["f.g"])
            .build();
        let r = run_ours(&c, &q);
        let mut found_streaming = false;
        let mut stack = vec![r.best];
        while let Some(p) = stack.pop() {
            let op = &r.arena.node(p).op;
            found_streaming |= matches!(op, PlanOp::StreamAgg { partial: false, .. });
            stack.extend(op.inputs());
        }
        assert!(
            found_streaming,
            "expected a streaming aggregate:\n{}",
            r.arena.render(r.best, &|i| format!("r{i}"))
        );
        // Simmen agrees on the optimum.
        let s = run_simmen(&c, &q);
        assert!((r.cost - s.cost).abs() < 1e-6);
    }

    #[test]
    fn hash_aggregate_when_order_is_expensive() {
        // No index: sorting 100k rows to stream-aggregate loses to
        // hashing, and a bare group-by needs no output ordering — the
        // hash aggregate (whose output *is* grouped by f.g) tops the
        // plan with no final sort.
        let mut c = Catalog::new();
        c.add_relation("f", 100_000.0, &["g", "k"]);
        c.add_relation("d", 100.0, &["k"]);
        let q = QueryBuilder::new(&c)
            .relation("f")
            .relation("d")
            .join("f.k", "d.k", 0.01)
            .group_by(&["f.g"])
            .build();
        let r = run_ours(&c, &q);
        let root = r.arena.node(r.best);
        match &root.op {
            PlanOp::HashAgg { partial, .. } => assert!(!partial),
            other => panic!("expected a hash aggregate at the root, got {other:?}"),
        }
        // The root state satisfies the grouping {f.g} — hash aggregation
        // produced it.
        let ex = ofw_query::extract(&c, &q, &ExtractOptions::default());
        let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
        let r2 = PlanGen::new(&c, &q, &ex, &fw).run();
        let g = Grouping::new(vec![c.attr("f.g")]);
        let hg = fw.handle_grouping(&g).expect("{f.g} is interesting");
        assert!(fw.satisfies_grouping(r2.arena.node(r2.best).state, hg));
    }

    #[test]
    fn hash_group_enforcer_wins_below_a_fanning_join() {
        // Small dimension with the grouping attribute, big fact table:
        // hash-grouping the 100-row input (then joining, preserving the
        // grouping, then streaming-aggregating) beats hashing the entire
        // join output — the VLDB'04 early-grouping payoff.
        let mut c = Catalog::new();
        c.add_relation("d", 100.0, &["g", "k"]);
        c.add_relation("f", 1_000_000.0, &["k"]);
        let q = QueryBuilder::new(&c)
            .relation("d")
            .relation("f")
            .join("d.k", "f.k", 0.0001)
            .group_by(&["d.g"])
            .build();
        let r = run_ours(&c, &q);
        let mut found_hash_group = false;
        let mut found_streaming = false;
        let mut stack = vec![r.best];
        while let Some(p) = stack.pop() {
            let op = &r.arena.node(p).op;
            found_hash_group |= matches!(op, PlanOp::HashGroup { .. });
            found_streaming |= matches!(op, PlanOp::StreamAgg { partial: false, .. });
            stack.extend(op.inputs());
        }
        assert!(
            found_hash_group && found_streaming,
            "expected hash-group + streaming aggregate:\n{}",
            r.arena.render(r.best, &|i| format!("r{i}"))
        );
        // All three oracles agree on the optimum.
        let s = run_simmen(&c, &q);
        let e = run_explicit(&c, &q);
        assert!((r.cost - s.cost).abs() < 1e-6, "{} vs {}", r.cost, s.cost);
        assert!((r.cost - e.cost).abs() < 1e-6, "{} vs {}", r.cost, e.cost);
    }

    #[test]
    fn order_by_group_key_plans_a_partial_sort_above_the_hash_aggregate() {
        // GROUP BY f.g ORDER BY f.g with no useful index: hashing wins
        // the aggregation, and its grouped-but-unsorted output makes
        // the root ordering enforceable by a partial sort (blocks are
        // already adjacent) instead of a full sort — the ROADMAP's
        // head/tail payoff.
        let mut c = Catalog::new();
        c.add_relation("f", 100_000.0, &["g", "k"]);
        c.add_relation("d", 100.0, &["k"]);
        c.set_distinct_values(c.attr("f.g"), 1_000.0);
        let q = QueryBuilder::new(&c)
            .relation("f")
            .relation("d")
            .join("f.k", "d.k", 0.01)
            .group_by(&["f.g"])
            .order_by(&["f.g"])
            .build();
        let ex = ofw_query::extract(&c, &q, &ExtractOptions::default());
        let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
        let r = PlanGen::new(&c, &q, &ex, &fw).run();
        let root = r.arena.node(r.best);
        let PlanOp::PartialSort { input, key, head } = &root.op else {
            panic!(
                "expected a root partial sort:\n{}",
                r.arena.render(r.best, &|i| format!("r{i}"))
            );
        };
        assert_eq!(key, &vec![c.attr("f.g")]);
        assert_eq!(head, &vec![c.attr("f.g")]);
        assert!(
            matches!(
                r.arena.node(*input).op,
                PlanOp::HashAgg { partial: false, .. }
            ),
            "the partial sort must sit directly on the hash aggregate:\n{}",
            r.arena.render(r.best, &|i| format!("r{i}"))
        );
        // The sort-only ceiling is strictly costlier, and never cheaper.
        let full = PlanGen::new(&c, &q, &ex, &fw).partial_sort(false).run();
        assert!(
            r.cost < full.cost,
            "partial sort must beat the full-sort ceiling: {} vs {}",
            r.cost,
            full.cost
        );
        // All three arms agree on the partial-sort optimum.
        let s = run_simmen(&c, &q);
        assert!((r.cost - s.cost).abs() < 1e-6, "{} vs {}", r.cost, s.cost);
        let e = run_explicit(&c, &q);
        assert!((r.cost - e.cost).abs() < 1e-6, "{} vs {}", r.cost, e.cost);
    }

    #[test]
    fn partial_sort_exploits_within_group_order_for_finer_blocks() {
        // Requirement (a, b) over a stream grouped by {a}: a partial
        // sort with head {a} qualifies. The probe list prefers the
        // deepest coverage, so when distinct stats make finer blocks
        // cheaper the head/tail pair {a}(b) — satisfied after an FD
        // a→b — refines the estimate. Here we at least pin the
        // admission logic: grouped by {a} alone admits head [a].
        let mut c = Catalog::new();
        c.add_relation("f", 50_000.0, &["g", "h", "k"]);
        c.add_relation("d", 50.0, &["k"]);
        c.set_distinct_values(c.attr("f.g"), 100.0);
        c.set_distinct_values(c.attr("f.h"), 5_000.0);
        let q = QueryBuilder::new(&c)
            .relation("f")
            .relation("d")
            .join("f.k", "d.k", 0.02)
            .group_by(&["f.g", "f.h"])
            .order_by(&["f.g", "f.h"])
            .build();
        let ex = ofw_query::extract(&c, &q, &ExtractOptions::default());
        // The order-by decompositions are registered as interesting:
        // the head grouping {g} (tested) and the pair {g}(h).
        let g = Grouping::new(vec![c.attr("f.g")]);
        let pair = ofw_core::HeadTail::new(g.clone(), Ordering::new(vec![c.attr("f.h")]));
        let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
        assert!(fw.handle_grouping(&g).is_some());
        assert!(fw.handle_head_tail(&pair).is_some());
        let r = PlanGen::new(&c, &q, &ex, &fw).run();
        let mut found_partial_sort = false;
        let mut stack = vec![r.best];
        while let Some(p) = stack.pop() {
            let op = &r.arena.node(p).op;
            if let PlanOp::PartialSort { head, .. } = op {
                found_partial_sort = true;
                assert!(!head.is_empty());
            }
            stack.extend(op.inputs());
        }
        assert!(
            found_partial_sort,
            "expected a partial sort:\n{}",
            r.arena.render(r.best, &|i| format!("r{i}"))
        );
        let s = run_simmen(&c, &q);
        assert!((r.cost - s.cost).abs() < 1e-6, "{} vs {}", r.cost, s.cost);
    }

    #[test]
    fn distinct_is_planned_as_grouping_aggregation() {
        let mut c = Catalog::new();
        c.add_relation("f", 50_000.0, &["g", "k"]);
        c.add_relation("d", 100.0, &["k"]);
        let q = QueryBuilder::new(&c)
            .relation("f")
            .relation("d")
            .join("f.k", "d.k", 0.01)
            .distinct(&["f.g"])
            .build();
        let r = run_ours(&c, &q);
        let mut found_aggregate = false;
        let mut stack = vec![r.best];
        while let Some(p) = stack.pop() {
            let op = &r.arena.node(p).op;
            found_aggregate |= matches!(op, PlanOp::StreamAgg { .. } | PlanOp::HashAgg { .. });
            stack.extend(op.inputs());
        }
        assert!(found_aggregate, "distinct plans as an aggregation");
        let s = run_simmen(&c, &q);
        assert!((r.cost - s.cost).abs() < 1e-6);
    }

    fn contains_op(r: &PlanGenResult<ofw_core::State>, pred: &dyn Fn(&PlanOp) -> bool) -> bool {
        let mut stack = vec![r.best];
        while let Some(p) = stack.pop() {
            let op = &r.arena.node(p).op;
            if pred(op) {
                return true;
            }
            stack.extend(op.inputs());
        }
        false
    }

    #[test]
    fn group_join_wins_the_showcase() {
        // "orders per customer": probe side clustered by the (unique)
        // group key, no useful index on the fact side — the fused
        // group-join must beat both eager pre-aggregation and any
        // join-then-aggregate split.
        let (c, q) = ofw_workload::groupjoin_showcase_query();
        let ex = ofw_query::extract(&c, &q, &ExtractOptions::default());
        let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
        let placed = PlanGen::new(&c, &q, &ex, &fw).run();
        assert!(
            contains_op(&placed, &|op| matches!(op, PlanOp::GroupJoin { .. })),
            "expected a group-join:\n{}",
            placed.arena.render(placed.best, &|i| format!("r{i}"))
        );
        // Root-only aggregation is strictly costlier.
        let root_only = PlanGen::new(&c, &q, &ex, &fw)
            .aggregation_placement(false)
            .run();
        assert!(
            placed.cost < root_only.cost,
            "placement {} must beat root-only {}",
            placed.cost,
            root_only.cost
        );
        // All three arms agree on the placed optimum.
        let simmen = SimmenFramework::prepare(&ex.spec);
        let s = PlanGen::new(&c, &q, &ex, &simmen).run();
        assert!((placed.cost - s.cost).abs() / placed.cost < 1e-9);
        let explicit = ExplicitOracle::prepare(&ex.spec);
        let e = PlanGen::new(&c, &q, &ex, &explicit).run();
        assert!((placed.cost - e.cost).abs() / placed.cost < 1e-9);
    }

    #[test]
    fn eager_push_down_wins_by_orders_of_magnitude_on_a_star_schema() {
        // A 10⁵–10⁶-row fact table joined to small dimensions with
        // selective group keys: pre-aggregating the fact side collapses
        // every join input, so the placed plan must win big and carry a
        // partial aggregate strictly below the root.
        let mut wins = 0usize;
        let mut best_ratio = 1.0f64;
        for seed in 0..12u64 {
            let (c, q) = ofw_workload::star_agg_query(&ofw_workload::StarAggConfig {
                dimensions: 3,
                seed,
            });
            let ex = ofw_query::extract(&c, &q, &ExtractOptions::default());
            let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
            let placed = PlanGen::new(&c, &q, &ex, &fw).run();
            let root_only = PlanGen::new(&c, &q, &ex, &fw)
                .aggregation_placement(false)
                .run();
            assert!(
                placed.cost <= root_only.cost + 1e-9,
                "seed {seed}: placement can never lose"
            );
            if placed.cost < root_only.cost * 0.999 {
                wins += 1;
                assert!(
                    contains_op(&placed, &|op| matches!(
                        op,
                        PlanOp::StreamAgg { partial: true, .. }
                            | PlanOp::HashAgg { partial: true, .. }
                            | PlanOp::GroupJoin { .. }
                    )),
                    "seed {seed}: a winning placed plan must aggregate below the root:\n{}",
                    placed.arena.render(placed.best, &|i| format!("r{i}"))
                );
            }
            best_ratio = best_ratio.max(root_only.cost / placed.cost);
        }
        assert!(wins >= 8, "placement must usually win on stars ({wins}/12)");
        assert!(
            best_ratio > 10.0,
            "the payoff must reach an order of magnitude (best {best_ratio:.1}x)"
        );
    }

    #[test]
    fn memory_accounting_is_populated() {
        let (c, q) = persons_jobs();
        let ours = run_ours(&c, &q);
        let simmen = run_simmen(&c, &q);
        assert!(ours.stats.memory_bytes > 0);
        assert!(simmen.stats.memory_bytes > 0);
    }

    #[test]
    fn layer_plan_covers_every_connected_subset_once() {
        let mut c = Catalog::new();
        for i in 0..5 {
            c.add_relation(&format!("t{i}"), 1000.0, &["k", "f"]);
        }
        let mut qb = QueryBuilder::new(&c);
        for i in 0..5 {
            qb = qb.relation(&format!("t{i}"));
        }
        for i in 0..4 {
            qb = qb.join(&format!("t{i}.f"), &format!("t{}.k", i + 1), 0.001);
        }
        let q = qb.build();
        // Chain of 5: connected subsets of size s are the 6-s intervals,
        // each with 2(s-1) ordered partitions; one batch per size.
        let mut schedule = DpSizeSchedule::new(&q);
        for size in 2..=5usize {
            let layer = schedule.next_batch().expect("one batch per size");
            assert_eq!(layer.len(), 6 - size, "intervals of length {size}");
            for work in &layer {
                assert_eq!(work.union.len(), size);
                assert_eq!(work.num_pairs(), 2 * (size - 1));
            }
        }
        assert!(schedule.next_batch().is_none());
        // Σ over sizes of (#intervals × 2(size−1)) ordered partitions.
        assert_eq!(schedule.pairs_emitted(), 8 + 12 + 12 + 8);
        assert!(schedule.pairs_considered() >= schedule.pairs_emitted());
    }
}
