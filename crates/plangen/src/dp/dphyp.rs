//! Connected-subgraph / complement-pair enumeration (DPccp/DPhyp-style)
//! over [`JoinGraph`] neighborhoods.
//!
//! Instead of pairing all smaller subsets and rejecting the
//! overlapping/disconnected combinations (the DPsize candidate loop),
//! this enumerator *grows* connected subgraphs along the join graph:
//! for every start relation (descending index), connected subgraphs
//! (csg) are expanded through their neighborhood, and for each csg the
//! connected complement subgraphs (cmp) are expanded the same way from
//! the csg's higher-indexed neighbors. Min-index forbidden sets make
//! every unordered csg-cmp pair appear exactly once, so enumeration
//! time is proportional to the number of *valid* pairs — the quantity
//! the optional budget counts and the reason `pairs_considered ==
//! pairs_emitted` here.
//!
//! The emitted pair set is exactly DPsize's (every ordered partition of
//! every connected subset, both directions), just discovered in a
//! different order. A canonicalization pass restores DPsize's order —
//! batches by subset size; within a layer, unions ranked by their
//! minimal ordered-pair key `(left size, left rank, right rank)` and
//! each union's pairs sorted by that key; ranks assigned per layer
//! recursively — so the downstream plan table, arena layout and winner
//! are **byte-identical** to the size-layered enumerator wherever both
//! run.

use super::{UnionWork, WorkSchedule};
use ofw_common::{BitSet, FxHashMap};
use ofw_query::{JoinGraph, Query};

/// Enumeration exceeded its csg-cmp pair budget — the signal that flips
/// [`Enumerator::Auto`](super::Enumerator::Auto) to the linearized
/// fallback. Carries nothing: the point is aborting *before* planning
/// work is spent.
#[derive(Debug)]
pub(crate) struct BudgetExceeded;

/// csg-cmp enumeration state: interned connected subsets plus the
/// unordered pair list in discovery order.
struct CsgCmp {
    graph: JoinGraph,
    n: usize,
    /// Interned subset → index into `sets` (singletons first, `0..n`).
    index: FxHashMap<BitSet, u32>,
    sets: Vec<BitSet>,
    /// Unordered csg-cmp pairs as interned indices, discovery order.
    pairs: Vec<(u32, u32)>,
    /// csg visits — the backstop counter for graphs whose rare barren
    /// subgraphs (no emittable complement) outnumber their pairs.
    visits: u64,
    budget: Option<u64>,
}

impl CsgCmp {
    fn intern(&mut self, s: &BitSet) -> u32 {
        if let Some(&i) = self.index.get(s) {
            return i;
        }
        let i = self.sets.len() as u32;
        self.index.insert(s.clone(), i);
        self.sets.push(s.clone());
        i
    }

    /// `{0, 1, …, i}` — the min-index forbidden prefix `Bᵢ`.
    fn prefix(&self, i: usize) -> BitSet {
        let mut b = BitSet::new(self.n);
        for j in 0..=i {
            b.insert(j);
        }
        b
    }

    fn singleton(&self, i: usize) -> BitSet {
        let mut s = BitSet::new(self.n);
        s.insert(i);
        s
    }

    /// Calls `f` with `base ∪ S'` for every non-empty subset `S'` of
    /// `members`, in counter order. Wide frontiers only ever matter on
    /// graphs far past any exhaustible size, where the budget (checked
    /// inside `f` via the emit counters) aborts the loop long before the
    /// counter space is exhausted.
    fn for_each_extension(
        &mut self,
        base: &BitSet,
        members: &[usize],
        mut f: impl FnMut(&mut Self, BitSet) -> Result<(), BudgetExceeded>,
    ) -> Result<(), BudgetExceeded> {
        if members.len() >= 128 {
            // No u128 counter can walk this frontier. Budgeted runs
            // treat it as the budget overflow it is about to become;
            // unbudgeted explicit DpHyp has no sane continuation.
            assert!(
                self.budget.is_some(),
                "DpHyp neighborhood of {} relations needs a budget (use Enumerator::Auto)",
                members.len()
            );
            return Err(BudgetExceeded);
        }
        for bits in 1u128..(1u128 << members.len()) {
            let mut s = base.clone();
            let mut b = bits;
            while b != 0 {
                let j = b.trailing_zeros() as usize;
                s.insert(members[j]);
                b &= b - 1;
            }
            f(self, s)?;
        }
        Ok(())
    }

    fn emit_pair(&mut self, s1: &BitSet, s2: &BitSet) -> Result<(), BudgetExceeded> {
        let a = self.intern(s1);
        let b = self.intern(s2);
        self.pairs.push((a, b));
        if let Some(budget) = self.budget {
            if self.pairs.len() as u64 > budget {
                return Err(BudgetExceeded);
            }
        }
        Ok(())
    }

    fn run(&mut self) -> Result<(), BudgetExceeded> {
        for i in (0..self.n).rev() {
            let s = self.singleton(i);
            self.emit_csg(&s)?;
            let bi = self.prefix(i);
            self.enumerate_csg_rec(&s, &bi)?;
        }
        Ok(())
    }

    /// Emits every pair whose csg is `s1`: complements grow from `s1`'s
    /// neighbors above its minimum index (lower ones belong to the
    /// start relations that already covered those pairs).
    fn emit_csg(&mut self, s1: &BitSet) -> Result<(), BudgetExceeded> {
        self.visits += 1;
        if let Some(budget) = self.budget {
            // Backstop: barren csgs emit nothing, so on adversarial
            // graphs the pair counter alone might never trip.
            if self.visits > budget.saturating_mul(2) + 10_000 {
                return Err(BudgetExceeded);
            }
        }
        let min = s1.iter().next().expect("csg is non-empty");
        let mut x = self.prefix(min);
        x.union_with(s1);
        let nb = self.graph.neighborhood(s1, &x);
        let members: Vec<usize> = nb.iter().collect();
        for &i in members.iter().rev() {
            let s2 = self.singleton(i);
            self.emit_pair(s1, &s2)?;
            // Forbidden for the complement expansion: everything the
            // csg side forbids, plus `s1`'s neighbors up to `i` (they
            // seed their own complement enumerations).
            let mut x2 = x.clone();
            for &j in &members {
                if j <= i {
                    x2.insert(j);
                }
            }
            self.enumerate_cmp_rec(s1, &s2, &x2)?;
        }
        Ok(())
    }

    fn enumerate_csg_rec(&mut self, s: &BitSet, x: &BitSet) -> Result<(), BudgetExceeded> {
        let nb = self.graph.neighborhood(s, x);
        if nb.is_empty() {
            return Ok(());
        }
        let members: Vec<usize> = nb.iter().collect();
        self.for_each_extension(s, &members, |this, grown| this.emit_csg(&grown))?;
        let mut x2 = x.clone();
        x2.union_with(&nb);
        self.for_each_extension(s, &members, |this, grown| {
            this.enumerate_csg_rec(&grown, &x2)
        })
    }

    fn enumerate_cmp_rec(
        &mut self,
        s1: &BitSet,
        s2: &BitSet,
        x: &BitSet,
    ) -> Result<(), BudgetExceeded> {
        let nb = self.graph.neighborhood(s2, x);
        if nb.is_empty() {
            return Ok(());
        }
        let members: Vec<usize> = nb.iter().collect();
        let s1c = s1.clone();
        self.for_each_extension(s2, &members, |this, grown| this.emit_pair(&s1c, &grown))?;
        let mut x2 = x.clone();
        x2.union_with(&nb);
        self.for_each_extension(s2, &members, |this, grown| {
            this.enumerate_cmp_rec(&s1c, &grown, &x2)
        })
    }
}

/// The canonicalized schedule: all batches precomputed (enumeration
/// needs only the graph), drained one per subset size.
pub(crate) struct DpHypSchedule {
    batches: std::vec::IntoIter<Vec<UnionWork>>,
    emitted: u64,
}

impl DpHypSchedule {
    /// Enumerates `query`'s csg-cmp pairs and canonicalizes them into
    /// size-layered batches in DPsize order. `Err` iff the budget was
    /// exceeded — before any planning work happened.
    pub(crate) fn new(query: &Query, budget: Option<u64>) -> Result<Self, BudgetExceeded> {
        let n = query.num_relations();
        let mut enumeration = CsgCmp {
            graph: JoinGraph::new(query),
            n,
            index: FxHashMap::default(),
            sets: Vec::new(),
            pairs: Vec::new(),
            visits: 0,
            budget,
        };
        // Singletons interned first: indices 0..n, matching the
        // driver's flat numbering.
        for q in 0..n {
            let s = query.relation_set(q);
            enumeration.intern(&s);
        }
        enumeration.run()?;
        let CsgCmp {
            mut index,
            mut sets,
            pairs,
            ..
        } = enumeration;

        // Union of each pair (unions are csgs too, but the root set may
        // not have been interned as a pair side).
        let mut pair_union: Vec<u32> = Vec::with_capacity(pairs.len());
        for &(a, b) in &pairs {
            let mut u = sets[a as usize].clone();
            u.union_with(&sets[b as usize]);
            let ui = match index.get(&u) {
                Some(&i) => i,
                None => {
                    let i = sets.len() as u32;
                    index.insert(u.clone(), i);
                    sets.push(u);
                    i
                }
            };
            pair_union.push(ui);
        }
        let sizes: Vec<u32> = sets.iter().map(|s| s.len() as u32).collect();
        let mut members: FxHashMap<u32, Vec<(u32, u32)>> = FxHashMap::default();
        for (i, &(a, b)) in pairs.iter().enumerate() {
            members.entry(pair_union[i]).or_default().push((a, b));
        }
        let mut unions_by_size: Vec<Vec<u32>> = vec![Vec::new(); n + 1];
        for &u in members.keys() {
            unions_by_size[sizes[u as usize] as usize].push(u);
        }

        // Rank (position within the size layer) and flat global index
        // per subset, assigned in DPsize discovery order layer by layer.
        let mut rank: Vec<u32> = vec![u32::MAX; sets.len()];
        let mut global: Vec<u32> = vec![u32::MAX; sets.len()];
        for q in 0..n {
            rank[q] = q as u32;
            global[q] = q as u32;
        }
        let mut next_global = n as u32;
        let mut batches: Vec<Vec<UnionWork>> = Vec::new();
        let mut emitted = 0u64;
        // Each union's ordered pairs, keyed and sorted the way the
        // DPsize pair loop would discover them: `(left size, left
        // rank, right rank)` ascending. Both directions of every
        // unordered pair are planned, exactly like DPsize.
        type KeyedPair = ((u32, u32, u32), (u32, u32));
        for layer_unions in unions_by_size.iter_mut().take(n + 1).skip(2) {
            let mut layer: Vec<(Vec<KeyedPair>, u32)> = Vec::new();
            for u in std::mem::take(layer_unions) {
                let mut ordered = Vec::with_capacity(members[&u].len() * 2);
                for &(a, b) in &members[&u] {
                    let (ra, rb) = (rank[a as usize], rank[b as usize]);
                    debug_assert!(ra != u32::MAX && rb != u32::MAX, "side from a later layer");
                    ordered.push(((sizes[a as usize], ra, rb), (a, b)));
                    ordered.push(((sizes[b as usize], rb, ra), (b, a)));
                }
                ordered.sort_unstable_by_key(|&(key, _)| key);
                layer.push((ordered, u));
            }
            // A union's first discovery is its minimal pair key; no two
            // unions share one (the key identifies both sides).
            layer.sort_unstable_by_key(|(ordered, _)| ordered[0].0);
            let mut batch = Vec::with_capacity(layer.len());
            for (ordered, u) in layer {
                rank[u as usize] = batch.len() as u32;
                global[u as usize] = next_global;
                next_global += 1;
                emitted += ordered.len() as u64;
                let pairs = ordered
                    .into_iter()
                    .map(|(_, (a, b))| (global[a as usize], global[b as usize]))
                    .collect();
                batch.push(UnionWork::new(sets[u as usize].clone(), false, pairs));
            }
            batches.push(batch);
        }
        Ok(DpHypSchedule {
            batches: batches.into_iter(),
            emitted,
        })
    }
}

impl WorkSchedule for DpHypSchedule {
    fn next_batch(&mut self) -> Option<Vec<UnionWork>> {
        self.batches.next()
    }

    fn pairs_considered(&self) -> u64 {
        // Neighborhood expansion never examines an invalid pair.
        self.emitted
    }

    fn pairs_emitted(&self) -> u64 {
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::super::DpSizeSchedule;
    use super::*;
    use ofw_catalog::Catalog;
    use ofw_query::QueryBuilder;

    /// Builds an n-relation query with the given edges (0.01 selectivity
    /// each); attributes are one column per incident edge.
    fn graph_query(n: usize, edges: &[(usize, usize)]) -> Query {
        let mut c = Catalog::new();
        let mut degree = vec![0usize; n];
        for &(a, b) in edges {
            degree[a] += 1;
            degree[b] += 1;
        }
        for (i, &d) in degree.iter().enumerate() {
            let cols: Vec<String> = (0..d.max(1)).map(|k| format!("c{k}")).collect();
            let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
            c.add_relation(&format!("r{i}"), 1000.0, &col_refs);
        }
        let mut used = vec![0usize; n];
        let mut qb = QueryBuilder::new(&c);
        for i in 0..n {
            qb = qb.relation(&format!("r{i}"));
        }
        for &(a, b) in edges {
            let left = format!("r{a}.c{}", used[a]);
            let right = format!("r{b}.c{}", used[b]);
            used[a] += 1;
            used[b] += 1;
            qb = qb.join(&left, &right, 0.01);
        }
        qb.build()
    }

    /// Drains a schedule into (per-batch) resolved `(union, s1, s2)`
    /// triples so two enumerators can be compared structurally.
    fn drain(schedule: &mut dyn WorkSchedule, query: &Query) -> Vec<Vec<(BitSet, BitSet, BitSet)>> {
        let n = query.num_relations();
        let mut subsets: Vec<BitSet> = (0..n).map(|q| query.relation_set(q)).collect();
        let mut out = Vec::new();
        while let Some(batch) = schedule.next_batch() {
            let mut resolved = Vec::new();
            for work in &batch {
                for &(l, r) in &work.pairs {
                    resolved.push((
                        work.union.clone(),
                        subsets[l as usize].clone(),
                        subsets[r as usize].clone(),
                    ));
                }
            }
            for work in batch {
                subsets.push(work.union);
            }
            out.push(resolved);
        }
        out
    }

    /// DpHyp must reproduce DpSize's batches *exactly* — same unions,
    /// same pairs, same order — on every small graph shape.
    #[test]
    fn dphyp_batches_equal_dpsize_batches() {
        type Shape = (&'static str, usize, Vec<(usize, usize)>);
        let shapes: Vec<Shape> = vec![
            ("chain", 5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]),
            ("star", 5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]),
            (
                "cycle",
                6,
                vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
            ),
            (
                "clique",
                5,
                (0..5)
                    .flat_map(|a| ((a + 1)..5).map(move |b| (a, b)))
                    .collect(),
            ),
            (
                "two-triangles",
                6,
                vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)],
            ),
            ("pair", 2, vec![(0, 1)]),
        ];
        for (name, n, edges) in shapes {
            let q = graph_query(n, &edges);
            let mut dpsize = DpSizeSchedule::new(&q);
            let mut dphyp = DpHypSchedule::new(&q, None).unwrap_or_else(|_| unreachable!());
            let a = drain(&mut dpsize, &q);
            let b = drain(&mut dphyp, &q);
            assert_eq!(a, b, "{name}: canonicalized DpHyp diverged from DpSize");
            assert_eq!(
                dpsize.pairs_emitted(),
                dphyp.pairs_emitted(),
                "{name}: emitted pair counts diverged"
            );
            assert!(
                dpsize.pairs_considered() >= dphyp.pairs_considered(),
                "{name}: DpSize must consider at least as many candidates"
            );
        }
    }

    /// On a cycle DPsize wades through quadratically many disconnected
    /// candidates; DPhyp considers none.
    #[test]
    fn dphyp_skips_the_disconnected_candidates() {
        let n = 12;
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let q = graph_query(n, &edges);
        let mut dpsize = DpSizeSchedule::new(&q);
        let mut dphyp = DpHypSchedule::new(&q, None).unwrap_or_else(|_| unreachable!());
        while dpsize.next_batch().is_some() {}
        while dphyp.next_batch().is_some() {}
        assert_eq!(dpsize.pairs_emitted(), dphyp.pairs_emitted());
        assert!(
            dpsize.pairs_considered() > 4 * dphyp.pairs_considered(),
            "cycle-12: dpsize considered {} vs dphyp {}",
            dpsize.pairs_considered(),
            dphyp.pairs_considered()
        );
    }

    /// The budget trips before any batch exists, and a generous budget
    /// does not.
    #[test]
    fn budget_trips_on_dense_graphs() {
        let edges: Vec<(usize, usize)> = (0..10)
            .flat_map(|a| ((a + 1)..10).map(move |b| (a, b)))
            .collect();
        let q = graph_query(10, &edges);
        assert!(DpHypSchedule::new(&q, Some(100)).is_err());
        let ok = DpHypSchedule::new(&q, Some(10_000_000));
        assert!(ok.is_ok());
    }
}
