//! The classic size-layered enumerator (DPsize, Lohman-style) — the
//! historical hard-wired loop of the DP core, extracted verbatim behind
//! the [`WorkSchedule`] seam so its output stays byte-identical.
//!
//! Every connected set of size `s` arises as the union of two disjoint
//! connected sets joined by at least one predicate, so pairing every
//! size-`k` subset with every size-`s−k` subset visits all ordered
//! partitions of every connected set exactly once. The price is the
//! *candidate* loop: most `(s1, s2)` combinations overlap or are
//! disconnected and get rejected after the intersect/connects tests —
//! on dense graphs that rejection work dominates (Θ(3ⁿ) on cliques,
//! and `pairs_considered` ≫ `pairs_emitted` even on chains). The
//! neighborhood-driven [`DpHypSchedule`](super::DpHypSchedule) exists
//! to skip exactly that waste.
//!
//! One batch per subset size, unions in first-discovery order, pairs in
//! pair-loop order `(k ascending, left index, right index)` — the
//! canonical order [`DpHypSchedule`](super::DpHypSchedule) reproduces.

use super::{UnionWork, WorkSchedule};
use ofw_common::{BitSet, FxHashMap};
use ofw_query::{JoinGraph, Query};

/// Lazy size-layered schedule: each `next_batch` call enumerates one
/// size layer from the subsets discovered so far, exactly as the old
/// in-line `plan_layer` loop did.
pub(crate) struct DpSizeSchedule<'a> {
    query: &'a Query,
    graph: JoinGraph,
    /// Committed subsets in flat global-index order (mirrors the
    /// driver's numbering: singletons first, then each batch's unions).
    subsets: Vec<BitSet>,
    /// Global indices of the subsets of each size.
    by_size: Vec<Vec<u32>>,
    /// Size of the last batch handed out (1 = just the singletons).
    size: usize,
    considered: u64,
    emitted: u64,
}

impl<'a> DpSizeSchedule<'a> {
    pub(crate) fn new(query: &'a Query) -> Self {
        let n = query.num_relations();
        let subsets: Vec<BitSet> = (0..n).map(|q| query.relation_set(q)).collect();
        let mut by_size: Vec<Vec<u32>> = vec![Vec::new(); n + 1];
        by_size[1] = (0..n as u32).collect();
        DpSizeSchedule {
            query,
            graph: JoinGraph::new(query),
            subsets,
            by_size,
            size: 1,
            considered: 0,
            emitted: 0,
        }
    }
}

impl WorkSchedule for DpSizeSchedule<'_> {
    fn next_batch(&mut self) -> Option<Vec<UnionWork>> {
        self.size += 1;
        let size = self.size;
        if size > self.query.num_relations() {
            return None;
        }
        let mut index: FxHashMap<BitSet, usize> = FxHashMap::default();
        let mut layer: Vec<UnionWork> = Vec::new();
        let (mut considered, mut emitted) = (0u64, 0u64);
        for k in 1..size {
            for &li in &self.by_size[k] {
                let s1 = &self.subsets[li as usize];
                for &ri in &self.by_size[size - k] {
                    let s2 = &self.subsets[ri as usize];
                    considered += 1;
                    if s1.intersects(s2) {
                        continue;
                    }
                    if !self.graph.connects(s1, s2) {
                        continue; // would be a cross product
                    }
                    let mut union = s1.clone();
                    union.union_with(s2);
                    let at = match index.get(&union) {
                        Some(&at) => at,
                        None => {
                            index.insert(union.clone(), layer.len());
                            layer.push(UnionWork::new(union, false, Vec::new()));
                            layer.len() - 1
                        }
                    };
                    layer[at].push_pair(li, ri);
                    emitted += 1;
                }
            }
        }
        self.considered += considered;
        self.emitted += emitted;
        for work in &layer {
            self.by_size[size].push(self.subsets.len() as u32);
            self.subsets.push(work.union.clone());
        }
        Some(layer)
    }

    fn pairs_considered(&self) -> u64 {
        self.considered
    }

    fn pairs_emitted(&self) -> u64 {
        self.emitted
    }
}
