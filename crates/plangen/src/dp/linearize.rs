//! Budget-fallback enumerator: greedy linearization plus a sliding
//! local-DP window.
//!
//! When even neighborhood-driven enumeration would emit more csg-cmp
//! pairs than the budget allows (dense graphs past ~13 relations have
//! exponentially many connected complements), exhaustive join ordering
//! is off the table. This enumerator trades optimality for a linear
//! pair count:
//!
//! 1. **Linearize** — order the relations greedily by estimated
//!    intermediate cardinality (start at the smallest effective
//!    cardinality, repeatedly append the join-graph neighbor that keeps
//!    the running estimate smallest). Every prefix of the order is
//!    connected.
//! 2. **Window DP** — slide a window of `w` relations along the order
//!    with stride `w/2`. Within a window, run an exhaustive DP over the
//!    *local* connected subsets, but only through subset-plus-relation
//!    decompositions; everything before the window is frozen into an
//!    **anchor** plan that participates as a single pseudo-relation.
//!    Overlapping windows revisit the subsets of the overlap region —
//!    those [`UnionWork`] items carry `seed: true` so the driver merges
//!    the new alternatives into the already-committed Pareto set
//!    instead of starting over.
//!
//! The result explores left-deep orders globally and all bushy-free
//! local reorderings, with pair counts linear in `n · 2^w`: the
//! 100-relation clique plans in milliseconds where both exact
//! enumerators are unreachable.
//!
//! **Budget-adaptive width.** When no explicit window is pinned, the
//! schedule starts at [`DEFAULT_LINEARIZE_WINDOW`] and widens one
//! relation at a time while the *projected* pair count of the wider
//! schedule still fits the enumeration budget (with 2× headroom before
//! probing, so the probe itself never balloons). A fallback trip only
//! happens because the exact enumerators would blow the budget — so
//! whatever slack the budget leaves is spent on better local plans
//! instead of being thrown away.

use super::{UnionWork, WorkSchedule, DEFAULT_LINEARIZE_WINDOW};
use ofw_catalog::Catalog;
use ofw_common::{BitSet, FxHashMap};
use ofw_query::Query;

/// Local DP windows wider than this would overflow the `u64`
/// local-mask arithmetic long after the table (`2^w` entries) became
/// the real problem.
const MAX_WINDOW: usize = 16;

/// Precomputed window-DP schedule over a greedy linearization.
pub(crate) struct LinearizedSchedule {
    batches: std::vec::IntoIter<Vec<UnionWork>>,
    emitted: u64,
}

/// Effective cardinality of each query relation: base cardinality
/// scaled by its constant and filter predicate selectivities.
fn effective_cards(catalog: &Catalog, query: &Query) -> Vec<f64> {
    let mut eff: Vec<f64> = query
        .relations
        .iter()
        .map(|&rel| catalog.relation(rel).cardinality)
        .collect();
    for c in &query.constants {
        eff[query.owner(c.attr)] *= c.selectivity;
    }
    for f in &query.filters {
        eff[query.owner(f.attr)] *= f.selectivity;
    }
    eff
}

/// Join adjacency as `(partner, selectivity)` lists per relation.
fn adjacency(query: &Query) -> Vec<Vec<(usize, f64)>> {
    let n = query.num_relations();
    let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for j in &query.joins {
        let (l, r) = (query.owner(j.left), query.owner(j.right));
        if l == r {
            continue;
        }
        adj[l].push((r, j.selectivity));
        adj[r].push((l, j.selectivity));
    }
    adj
}

/// Greedy linearization: start at the smallest effective cardinality,
/// repeatedly append the adjacent relation that minimizes the running
/// intermediate-result estimate. Ties keep the lowest relation index,
/// so the order is deterministic.
fn linearize(eff: &[f64], adj: &[Vec<(usize, f64)>]) -> Vec<usize> {
    let n = eff.len();
    let mut start = 0;
    for (i, &e) in eff.iter().enumerate() {
        if e < eff[start] {
            start = i;
        }
    }
    let mut placed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    placed[start] = true;
    order.push(start);
    let mut current = eff[start].max(1.0);
    while order.len() < n {
        let mut best: Option<(usize, f64)> = None;
        for r in 0..n {
            if placed[r] {
                continue;
            }
            let mut sel = 1.0f64;
            let mut touches = false;
            for &(p, s) in &adj[r] {
                if placed[p] {
                    sel *= s;
                    touches = true;
                }
            }
            if !touches {
                continue;
            }
            let grown = (current * sel * eff[r]).max(1.0);
            if best.is_none_or(|(_, b)| grown < b) {
                best = Some((r, grown));
            }
        }
        let (r, grown) = best.expect("query graph is connected");
        placed[r] = true;
        order.push(r);
        current = grown;
    }
    order
}

/// Builds the window-DP batch sequence for one fixed window width.
/// Returns the batches plus the total csg-cmp pair count they emit —
/// the quantity the adaptive widening loop compares against the budget.
fn build_windows(
    n: usize,
    order: &[usize],
    adj: &[Vec<(usize, f64)>],
    w: usize,
) -> (Vec<Vec<UnionWork>>, u64) {
    let stride = (w / 2).max(1);

    // Committed subset → the *latest* flat global index the driver
    // will have assigned to it (re-committed seeds get fresh
    // indices; the plan table is keyed by the set itself, so only
    // the set identity matters for lookup).
    let mut known: FxHashMap<BitSet, u32> = FxHashMap::default();
    let mut next_idx = n as u32;
    let mut batches: Vec<Vec<UnionWork>> = Vec::new();
    let mut emitted = 0u64;

    let mut p = 0usize;
    loop {
        let wend = (p + w).min(n);
        let wrels = &order[p..wend];
        let m = wrels.len();
        // The frozen prefix, contracted to one pseudo-relation.
        let mut anchor = BitSet::new(n);
        for &q in &order[..p] {
            anchor.insert(q);
        }
        let anchor_idx = if p == 0 {
            u32::MAX
        } else {
            *known
                .get(&anchor)
                .expect("every linearization prefix is a committed subset")
        };
        // Window-local adjacency: bitmask of in-window neighbors
        // and anchor adjacency per window position.
        let mut win_nbrs = vec![0u64; m];
        let mut anchor_adj = vec![false; m];
        for (j, &r) in wrels.iter().enumerate() {
            for &(partner, _) in &adj[r] {
                if let Some(pos) = wrels.iter().position(|&x| x == partner) {
                    win_nbrs[j] |= 1u64 << pos;
                } else if anchor.contains(partner) {
                    anchor_adj[j] = true;
                }
            }
        }

        let mut valid = vec![false; 1usize << m];
        let mut idx_of = vec![u32::MAX; 1usize << m];
        for k in 1..=m {
            let mut batch: Vec<UnionWork> = Vec::new();
            for mask in 1usize..(1usize << m) {
                if (mask.count_ones() as usize) != k {
                    continue;
                }
                if p == 0 && k == 1 {
                    // Window-initial singletons are the driver's
                    // base plans; they need no work item — but they
                    // *are* committed subsets (driver indices 0..n),
                    // and a width-2/3 schedule (stride 1) anchors its
                    // second window on the first singleton prefix, so
                    // record them.
                    let j = mask.trailing_zeros() as usize;
                    valid[mask] = true;
                    idx_of[mask] = wrels[j] as u32;
                    let mut s = BitSet::new(n);
                    s.insert(wrels[j]);
                    known.insert(s, wrels[j] as u32);
                    continue;
                }
                let mut pairs: Vec<(u32, u32)> = Vec::new();
                let mut b = mask;
                while b != 0 {
                    let j = b.trailing_zeros() as usize;
                    b &= b - 1;
                    let sub = mask & !(1usize << j);
                    let (sub_ok, sub_idx) = if sub == 0 {
                        (p > 0, anchor_idx)
                    } else {
                        (valid[sub], idx_of[sub])
                    };
                    let connected = anchor_adj[j] || (win_nbrs[j] & sub as u64) != 0;
                    if sub_ok && connected {
                        let r = wrels[j] as u32;
                        pairs.push((sub_idx, r));
                        pairs.push((r, sub_idx));
                    }
                }
                if pairs.is_empty() {
                    continue;
                }
                valid[mask] = true;
                let mut mset = anchor.clone();
                let mut b = mask;
                while b != 0 {
                    let j = b.trailing_zeros() as usize;
                    b &= b - 1;
                    mset.insert(wrels[j]);
                }
                let seed = known.contains_key(&mset);
                emitted += pairs.len() as u64;
                idx_of[mask] = next_idx;
                known.insert(mset.clone(), next_idx);
                next_idx += 1;
                batch.push(UnionWork::new(mset, seed, pairs));
            }
            if !batch.is_empty() {
                batches.push(batch);
            }
        }
        if wend == n {
            break;
        }
        p += stride;
    }

    (batches, emitted)
}

impl LinearizedSchedule {
    /// Builds the schedule. `window: Some(w)` pins the width to `w`
    /// (clamped to `[2, MAX_WINDOW]` and the relation count); `None`
    /// adapts it: start at [`DEFAULT_LINEARIZE_WINDOW`] and widen while
    /// the wider schedule's pair count still fits `budget`.
    pub(crate) fn new(
        catalog: &Catalog,
        query: &Query,
        window: Option<usize>,
        budget: u64,
    ) -> Self {
        let n = query.num_relations();
        let eff = effective_cards(catalog, query);
        let adj = adjacency(query);
        let order = linearize(&eff, &adj);
        let cap = MAX_WINDOW.min(n.max(2));

        let (batches, emitted) = match window {
            Some(w) => build_windows(n, &order, &adj, w.clamp(2, cap)),
            None => {
                let mut w = DEFAULT_LINEARIZE_WINDOW.clamp(2, cap);
                let (mut batches, mut emitted) = build_windows(n, &order, &adj, w);
                // Widen only while the *current* schedule leaves 2×
                // headroom — each +1 roughly doubles per-window work,
                // so anything tighter would probe widths that cannot
                // fit. Reject a probe that overshoots the budget.
                while w < cap && emitted.saturating_mul(2) <= budget {
                    let (wider, wider_emitted) = build_windows(n, &order, &adj, w + 1);
                    if wider_emitted > budget {
                        break;
                    }
                    w += 1;
                    batches = wider;
                    emitted = wider_emitted;
                }
                (batches, emitted)
            }
        };

        LinearizedSchedule {
            batches: batches.into_iter(),
            emitted,
        }
    }
}

impl WorkSchedule for LinearizedSchedule {
    fn next_batch(&mut self) -> Option<Vec<UnionWork>> {
        self.batches.next()
    }

    fn pairs_considered(&self) -> u64 {
        self.emitted
    }

    fn pairs_emitted(&self) -> u64 {
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofw_query::QueryBuilder;

    /// A clique query with per-relation cardinalities.
    fn clique_query(cards: &[f64]) -> (Catalog, Query) {
        let n = cards.len();
        let mut c = Catalog::new();
        for (i, &card) in cards.iter().enumerate() {
            let cols: Vec<String> = (0..n).map(|k| format!("c{k}")).collect();
            let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
            c.add_relation(&format!("r{i}"), card, &col_refs);
        }
        let mut qb = QueryBuilder::new(&c);
        for i in 0..n {
            qb = qb.relation(&format!("r{i}"));
        }
        for a in 0..n {
            for b in (a + 1)..n {
                qb = qb.join(&format!("r{a}.c{b}"), &format!("r{b}.c{a}"), 0.01);
            }
        }
        let q = qb.build();
        (c, q)
    }

    /// The greedy order starts at the smallest effective cardinality
    /// and visits neighbors; every prefix must be connected.
    #[test]
    fn linearization_starts_small_and_stays_connected() {
        let (c, q) = clique_query(&[1e6, 10.0, 1e4, 1e5, 100.0]);
        let eff = effective_cards(&c, &q);
        let adj = adjacency(&q);
        let order = linearize(&eff, &adj);
        assert_eq!(order[0], 1, "starts at the 10-tuple relation");
        assert_eq!(order.len(), 5);
        let mut seen = [false; 5];
        for &r in &order {
            assert!(!seen[r]);
            seen[r] = true;
        }
    }

    /// Every subset the schedule emits decomposes into already-known
    /// parts, the final union covers all relations, and the pair count
    /// stays far below exhaustive enumeration.
    #[test]
    fn windows_cover_the_full_set_with_linear_pair_counts() {
        let n = 30;
        let cards: Vec<f64> = (0..n).map(|i| 1000.0 + i as f64).collect();
        let (c, q) = clique_query(&cards);
        let mut schedule = LinearizedSchedule::new(&c, &q, Some(6), 1_000_000);
        let mut covered = false;
        let mut total_pairs = 0u64;
        while let Some(batch) = schedule.next_batch() {
            for work in batch {
                total_pairs += work.num_pairs() as u64;
                if work.union.len() == n {
                    covered = true;
                }
            }
        }
        assert!(covered, "the full relation set is never planned");
        assert_eq!(total_pairs, schedule.pairs_emitted());
        assert!(
            schedule.pairs_emitted() < 20_000,
            "pair count should be linear-ish, got {}",
            schedule.pairs_emitted()
        );
    }

    /// With no pinned window the width adapts to the budget: a roomy
    /// budget widens past the default (more pairs than the pinned
    /// default emits, never more than the budget), a tight budget stays
    /// at the default, and a pinned window ignores the budget entirely.
    #[test]
    fn adaptive_window_spends_leftover_budget() {
        let n = 30;
        let cards: Vec<f64> = (0..n).map(|i| 1000.0 + i as f64).collect();
        let (c, q) = clique_query(&cards);
        let pinned = LinearizedSchedule::new(&c, &q, Some(DEFAULT_LINEARIZE_WINDOW), 1_000_000);
        let baseline = pinned.emitted;

        let roomy = LinearizedSchedule::new(&c, &q, None, 1_000_000);
        assert!(
            roomy.emitted > baseline,
            "a 1M budget should widen past the default ({} vs {baseline})",
            roomy.emitted
        );
        assert!(roomy.emitted <= 1_000_000, "never overshoots the budget");

        let tight = LinearizedSchedule::new(&c, &q, None, baseline);
        assert_eq!(
            tight.emitted, baseline,
            "a budget with no headroom keeps the default width"
        );
    }
}
