//! Bottom-up dynamic programming over connected subgraphs (Lohman-style,
//! the architecture the paper's §7 experiments use).
//!
//! For every connected relation set (in subset order) the generator
//! keeps a Pareto set of plans pruned on *(cost, order state)*: a plan
//! dies iff a cheaper-or-equal plan order-dominates it. Sort enforcers
//! are generated for every producible interesting order, merge joins
//! require both inputs sorted on the join attributes, and hash/NL joins
//! preserve the probe/outer input's order — the interplay that makes
//! interesting orders pay off.
//!
//! Every [`PlanNode`] allocation is counted: that is the paper's
//! `#Plans` metric ("the time to introduce one plan operator").

use crate::cost;
use crate::oracle::OrderOracle;
use crate::plan::{PlanArena, PlanId, PlanNode, PlanOp};
use ofw_catalog::Catalog;
use ofw_common::FxHashMap;
use ofw_core::fd::FdSetId;
use ofw_core::ordering::Ordering;
use ofw_query::{ExtractedQuery, Query};
use std::time::{Duration, Instant};

/// Plan-generation metrics — the paper's §7 table columns.
#[derive(Clone, Debug, Default)]
pub struct PlanGenStats {
    /// Total subplans generated (`#Plans`).
    pub plans: usize,
    /// Wall-clock plan-generation time (includes framework preparation
    /// when the caller folds it in, as the paper does for the DFSM).
    pub time: Duration,
    /// Bytes of order-annotation memory (per-plan states + shared
    /// structures of the order framework).
    pub memory_bytes: usize,
}

/// The winning plan plus metrics and the arena to inspect it.
pub struct PlanGenResult<S> {
    /// Cheapest complete plan honoring the query's output order.
    pub best: PlanId,
    /// Its cost.
    pub cost: f64,
    /// The arena holding every generated subplan.
    pub arena: PlanArena<S>,
    /// Metrics.
    pub stats: PlanGenStats,
}

/// One producible interesting order, pre-resolved.
struct SortTarget<K> {
    key: K,
    /// The attribute sequence (for the executor and plan rendering).
    attrs: Vec<ofw_catalog::AttrId>,
    /// Relations whose attributes the ordering mentions.
    rel_mask: u64,
}

/// The generator, parameterized by the order oracle.
pub struct PlanGen<'a, O: OrderOracle> {
    catalog: &'a Catalog,
    query: &'a Query,
    ex: &'a ExtractedQuery,
    oracle: &'a O,
    sort_targets: Vec<SortTarget<O::Key>>,
    arena: PlanArena<O::State>,
    table: FxHashMap<u64, Vec<PlanId>>,
}

impl<'a, O: OrderOracle> PlanGen<'a, O> {
    /// Sets up a generator for one query.
    pub fn new(
        catalog: &'a Catalog,
        query: &'a Query,
        ex: &'a ExtractedQuery,
        oracle: &'a O,
    ) -> Self {
        assert!(query.is_fully_connected(), "cross products not supported");
        assert!(
            ex.spec.fd_sets().len() <= 64,
            "applied-FD bitmask is 64 bits wide"
        );
        // Pre-resolve every producible interesting order (cold path).
        let mut sort_targets = Vec::new();
        for o in ex.spec.produced() {
            let Some(key) = oracle.resolve(o) else {
                continue;
            };
            if !oracle.is_producible(key) {
                continue;
            }
            let rel_mask = o
                .attrs()
                .iter()
                .fold(0u64, |m, &a| m | 1u64 << query.owner(a));
            sort_targets.push(SortTarget {
                key,
                attrs: o.attrs().to_vec(),
                rel_mask,
            });
        }
        PlanGen {
            catalog,
            query,
            ex,
            oracle,
            sort_targets,
            arena: PlanArena::new(),
            table: FxHashMap::default(),
        }
    }

    /// Runs the DP and returns the cheapest complete plan that honors
    /// the query's `order by` (adding a final sort if needed).
    pub fn run(mut self) -> PlanGenResult<O::State> {
        let t0 = Instant::now();
        let all = self.query.all_relations_mask();

        // Base relations.
        for qrel in 0..self.query.num_relations() {
            let mask = 1u64 << qrel;
            let plans = self.base_plans(qrel);
            let mut set = Vec::new();
            for p in plans {
                self.insert_pruned(&mut set, p);
            }
            self.add_sorted_variants(mask, &mut set);
            self.table.insert(mask, set);
        }

        // Connected composites, in subset order.
        for mask in 1..=all {
            if mask.count_ones() < 2 || !self.query.is_connected(mask) {
                continue;
            }
            let mut set: Vec<PlanId> = Vec::new();
            // Enumerate ordered partitions (s1 = left/probe side).
            let mut s1 = (mask - 1) & mask;
            while s1 != 0 {
                let s2 = mask & !s1;
                if s2 != 0 && self.table.contains_key(&s1) && self.table.contains_key(&s2) {
                    self.emit_joins(s1, s2, &mut set);
                }
                s1 = (s1 - 1) & mask;
            }
            if !set.is_empty() {
                self.add_sorted_variants(mask, &mut set);
                self.table.insert(mask, set);
            }
        }

        // Aggregation: a streaming aggregate exploits an input ordered by
        // the grouping attributes; otherwise hash aggregation (or
        // sort + stream, via the sorted variants already in the set)
        // competes on cost. The order state decides which plans qualify.
        let mut final_set = self.table[&all].clone();
        if !self.query.group_by.is_empty() {
            final_set = self.aggregate_all(&final_set);
        }
        let final_set = final_set;

        // Final: honor the output order.
        let required = if !self.query.order_by.is_empty() {
            Some(Ordering::new(self.query.order_by.clone()))
        } else if !self.query.group_by.is_empty() {
            Some(Ordering::new(self.query.group_by.clone()))
        } else {
            None
        };
        let best = self.pick_final(&final_set, required.as_ref());
        let cost = self.arena.node(best).cost;
        let stats = PlanGenStats {
            plans: self.arena.len(),
            time: t0.elapsed(),
            memory_bytes: self.oracle.memory_bytes(self.arena.len()),
        };
        PlanGenResult {
            best,
            cost,
            arena: self.arena,
            stats,
        }
    }

    /// Aggregation alternatives for every complete plan: streaming when
    /// the input satisfies the grouping order, hashing otherwise. The
    /// grouping order survives a streaming aggregate (groups emerge in
    /// order); a hash aggregate destroys all ordering.
    fn aggregate_all(&mut self, plans: &[PlanId]) -> Vec<PlanId> {
        let group = Ordering::new(self.query.group_by.clone());
        let group_key = self.oracle.resolve(&group);
        let mut out: Vec<PlanId> = Vec::new();
        for &p in plans {
            let (c, d, st, fd_bits) = self.snapshot(p);
            // Group count estimate: square-root staircase, at least 1.
            let groups = d.sqrt().max(1.0);
            let streaming = group_key.is_some_and(|k| self.oracle.satisfies(st, k));
            let (op_cost, state) = if streaming {
                (cost::streaming_aggregate(d), st)
            } else {
                (cost::hash_aggregate(d), self.oracle.produce_empty())
            };
            let agg = self.arena.push(PlanNode {
                op: PlanOp::Aggregate {
                    input: p,
                    streaming,
                },
                mask: self.arena.node(p).mask,
                cost: c + op_cost,
                card: groups,
                state,
                applied_fds: if streaming { fd_bits } else { 0 },
            });
            self.insert_pruned(&mut out, agg);
        }
        out
    }

    /// Scan and index-scan plans for one relation, with constant-
    /// predicate FDs applied and filter selectivities folded in.
    fn base_plans(&mut self, qrel: usize) -> Vec<PlanId> {
        let rel = self.query.relations[qrel];
        let raw_card = self.catalog.relation(rel).cardinality;
        let mut sel = 1.0;
        let mut fd_bits: u64 = 0;
        let mut fds: Vec<FdSetId> = Vec::new();
        for (i, c) in self.query.constants.iter().enumerate() {
            if self.query.owner(c.attr) == qrel {
                sel *= c.selectivity;
                let f = self.ex.const_fd[i];
                fds.push(f);
                fd_bits |= 1u64 << f.index();
            }
        }
        for f in &self.query.filters {
            if self.query.owner(f.attr) == qrel {
                sel *= f.selectivity;
            }
        }
        let card = (raw_card * sel).max(1.0);
        let mask = 1u64 << qrel;

        let mut out = Vec::new();
        // Heap scan.
        let mut state = self.oracle.produce_empty();
        for &f in &fds {
            state = self.oracle.infer(state, f);
        }
        out.push(self.arena.push(PlanNode {
            op: PlanOp::Scan { qrel },
            mask,
            cost: cost::scan(raw_card),
            card,
            state,
            applied_fds: fd_bits,
        }));
        // Index scans (only when the index order is interesting —
        // otherwise the order information is useless for this query and
        // the heap scan dominates).
        for (idx, index) in self.catalog.relation(rel).indexes.iter().enumerate() {
            let ordering = Ordering::new(index.key.clone());
            let Some(key) = self.oracle.resolve(&ordering) else {
                continue;
            };
            if !self.oracle.is_producible(key) {
                continue;
            }
            let mut state = self.oracle.produce(key);
            for &f in &fds {
                state = self.oracle.infer(state, f);
            }
            out.push(self.arena.push(PlanNode {
                op: PlanOp::IndexScan { qrel, index: idx },
                mask,
                cost: cost::index_scan(raw_card, index.clustered),
                card,
                state,
                applied_fds: fd_bits,
            }));
        }
        out
    }

    /// All join alternatives for the ordered partition (s1, s2).
    fn emit_joins(&mut self, s1: u64, s2: u64, set: &mut Vec<PlanId>) {
        let edges: Vec<usize> = self.query.connecting_joins(s1, s2).collect();
        if edges.is_empty() {
            return; // would be a cross product
        }
        let sel: f64 = edges
            .iter()
            .map(|&e| self.query.joins[e].selectivity)
            .product();
        let left_plans = self.table[&s1].clone();
        let right_plans = self.table[&s2].clone();
        for &p1 in &left_plans {
            for &p2 in &right_plans {
                let (c1, d1, st1, fd1) = self.snapshot(p1);
                let (c2, d2, _st2, fd2) = self.snapshot(p2);
                let out_card = (d1 * d2 * sel).max(1.0);
                // Order state: the probe/outer (left) order survives;
                // all connecting predicates' equations now hold.
                let mut state = st1;
                let mut fd_bits = fd1 | fd2;
                for &e in &edges {
                    let f = self.ex.join_fd[e];
                    state = self.oracle.infer(state, f);
                    fd_bits |= 1u64 << f.index();
                }
                let mask = s1 | s2;
                // Hash join (on the first edge; the rest are residual
                // predicates either way).
                let hj = self.arena.push(PlanNode {
                    op: PlanOp::HashJoin {
                        left: p1,
                        right: p2,
                        edge: edges[0],
                    },
                    mask,
                    cost: c1 + c2 + cost::hash_join(d1, d2, out_card),
                    card: out_card,
                    state,
                    applied_fds: fd_bits,
                });
                self.insert_pruned(set, hj);
                // Nested-loop join.
                let nl = self.arena.push(PlanNode {
                    op: PlanOp::NestedLoopJoin {
                        left: p1,
                        right: p2,
                    },
                    mask,
                    cost: c1 + c2 + cost::nested_loop_join(d1, d2, out_card),
                    card: out_card,
                    state,
                    applied_fds: fd_bits,
                });
                self.insert_pruned(set, nl);
                // Merge joins: need both inputs sorted on the edge.
                for &e in &edges {
                    let j = &self.query.joins[e];
                    let (la, ra) = if s1 & (1u64 << self.query.owner(j.left)) != 0 {
                        (j.left, j.right)
                    } else {
                        (j.right, j.left)
                    };
                    let (Some(kl), Some(kr)) = (
                        self.oracle.resolve(&Ordering::new(vec![la])),
                        self.oracle.resolve(&Ordering::new(vec![ra])),
                    ) else {
                        continue;
                    };
                    let st2 = self.arena.node(p2).state;
                    if !self.oracle.satisfies(st1, kl) || !self.oracle.satisfies(st2, kr) {
                        continue;
                    }
                    let mj = self.arena.push(PlanNode {
                        op: PlanOp::MergeJoin {
                            left: p1,
                            right: p2,
                            edge: e,
                        },
                        mask,
                        cost: c1 + c2 + cost::merge_join(d1, d2, out_card),
                        card: out_card,
                        state,
                        applied_fds: fd_bits,
                    });
                    self.insert_pruned(set, mj);
                }
            }
        }
    }

    fn snapshot(&self, p: PlanId) -> (f64, f64, O::State, u64) {
        let n = self.arena.node(p);
        (n.cost, n.card, n.state, n.applied_fds)
    }

    /// Sort enforcers: for every producible interesting order covered by
    /// `mask`, sort the cheapest plan if nothing satisfies the order yet
    /// (§5.6: the sort's state follows the `*` edge, then replays the
    /// FD sets that hold).
    fn add_sorted_variants(&mut self, mask: u64, set: &mut Vec<PlanId>) {
        let Some(&cheapest) = set
            .iter()
            .min_by(|&&a, &&b| self.arena.node(a).cost.total_cmp(&self.arena.node(b).cost))
        else {
            return;
        };
        for t in 0..self.sort_targets.len() {
            let (key, rel_mask) = (self.sort_targets[t].key, self.sort_targets[t].rel_mask);
            let key_attrs = self.sort_targets[t].attrs.clone();
            if rel_mask & mask != rel_mask {
                continue; // mentions relations outside this subset
            }
            if set
                .iter()
                .any(|&p| self.oracle.satisfies(self.arena.node(p).state, key))
            {
                continue;
            }
            let (c, d, _st, fd_bits) = self.snapshot(cheapest);
            let mut state = self.oracle.produce(key);
            let mut bits = fd_bits;
            while bits != 0 {
                let f = bits.trailing_zeros();
                bits &= bits - 1;
                state = self.oracle.infer(state, FdSetId(f));
            }
            let sorted = self.arena.push(PlanNode {
                op: PlanOp::Sort {
                    input: cheapest,
                    key: key_attrs,
                },
                mask,
                cost: c + cost::sort(d),
                card: d,
                state,
                applied_fds: fd_bits,
            });
            self.insert_pruned(set, sorted);
        }
    }

    /// Pareto insertion: drop the candidate if a cheaper-or-equal plan
    /// order-dominates it; evict plans it dominates at lower-or-equal
    /// cost. (The candidate is already allocated — pruned plans still
    /// count toward `#Plans`, as in the paper, which counts the "time to
    /// introduce one plan operator".)
    fn insert_pruned(&mut self, set: &mut Vec<PlanId>, cand: PlanId) {
        let (c_cost, _, c_state, _) = self.snapshot(cand);
        for &p in set.iter() {
            let n = self.arena.node(p);
            if n.cost <= c_cost && self.oracle.dominates(n.state, c_state) {
                return;
            }
        }
        set.retain(|&p| {
            let n = self.arena.node(p);
            !(c_cost <= n.cost && self.oracle.dominates(c_state, n.state))
        });
        set.push(cand);
    }

    /// Cheapest complete plan, sorting at the top if the required output
    /// order is not satisfied.
    fn pick_final(&mut self, set: &[PlanId], required: Option<&Ordering>) -> PlanId {
        let required_key = required.and_then(|o| self.oracle.resolve(o));
        let mut best: Option<(f64, PlanId)> = None;
        for &p in set {
            let n = self.arena.node(p);
            let mut total = n.cost;
            let satisfied = match required_key {
                Some(k) => self.oracle.satisfies(n.state, k),
                None => true,
            };
            if !satisfied {
                total += cost::sort(n.card);
            }
            if best.is_none_or(|(bc, _)| total < bc) {
                best = Some((total, p));
            }
        }
        let (total, p) = best.expect("no complete plan");
        let n = self.arena.node(p);
        let satisfied = match required_key {
            Some(k) => self.oracle.satisfies(n.state, k),
            None => true,
        };
        if satisfied {
            return p;
        }
        // Materialize the final sort.
        let key = required_key.expect("unsatisfied requires a key");
        let (_, d, _, fd_bits) = self.snapshot(p);
        let mut state = self.oracle.produce(key);
        let mut bits = fd_bits;
        while bits != 0 {
            let f = bits.trailing_zeros();
            bits &= bits - 1;
            state = self.oracle.infer(state, FdSetId(f));
        }
        self.arena.push(PlanNode {
            op: PlanOp::Sort {
                input: p,
                key: required
                    .expect("sort implies a requirement")
                    .attrs()
                    .to_vec(),
            },
            mask: self.arena.node(p).mask,
            cost: total,
            card: d,
            state,
            applied_fds: fd_bits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanOp;
    use ofw_core::{OrderingFramework, PruneConfig};
    use ofw_query::extract::ExtractOptions;
    use ofw_query::QueryBuilder;
    use ofw_simmen::SimmenFramework;

    fn persons_jobs() -> (Catalog, Query) {
        let mut c = Catalog::new();
        c.add_relation("persons", 10_000.0, &["id", "name", "jobid"]);
        c.add_relation("jobs", 100.0, &["id", "salary"]);
        let jobs = c.relation_id("jobs").unwrap();
        let jid = c.attr("jobs.id");
        c.add_index(jobs, vec![jid], true);
        let q = QueryBuilder::new(&c)
            .relation("persons")
            .relation("jobs")
            .join("persons.jobid", "jobs.id", 0.01)
            .filter("jobs.salary", 0.3)
            .order_by(&["jobs.id", "persons.name"])
            .build();
        (c, q)
    }

    fn run_ours(c: &Catalog, q: &Query) -> PlanGenResult<ofw_core::State> {
        let ex = ofw_query::extract(c, q, &ExtractOptions::default());
        let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
        PlanGen::new(c, q, &ex, &fw).run()
    }

    fn run_simmen(c: &Catalog, q: &Query) -> PlanGenResult<ofw_simmen::SimmenState> {
        let ex = ofw_query::extract(c, q, &ExtractOptions::default());
        let fw = SimmenFramework::prepare(&ex.spec);
        PlanGen::new(c, q, &ex, &fw).run()
    }

    #[test]
    fn both_oracles_find_the_same_optimal_cost() {
        let (c, q) = persons_jobs();
        let ours = run_ours(&c, &q);
        let simmen = run_simmen(&c, &q);
        // §7: "we carefully observed that in all cases both order
        // optimization algorithms produced the same optimal plan".
        assert!(
            (ours.cost - simmen.cost).abs() < 1e-6,
            "ours={} simmen={}",
            ours.cost,
            simmen.cost
        );
        assert!(ours.stats.plans > 0);
    }

    #[test]
    fn final_plan_honors_order_by() {
        let (c, q) = persons_jobs();
        let r = run_ours(&c, &q);
        let ex = ofw_query::extract(&c, &q, &ExtractOptions::default());
        let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
        // The result state must satisfy (jobs.id, persons.name).
        let req = Ordering::new(q.order_by.clone());
        let key = fw.handle(&req).unwrap();
        // Re-derive the state by walking the tree is overkill: the root
        // node's stored state is what the generator checked.
        let root = r.arena.node(r.best);
        let _ = key; // state came from a different framework instance; just
                     // check the plan covers everything and is finite.
        assert_eq!(root.mask, q.all_relations_mask());
        assert!(root.cost.is_finite() && root.cost > 0.0);
    }

    #[test]
    fn merge_join_is_chosen_when_inputs_can_be_ordered_cheaply() {
        // Big relations, clustered indexes on both join keys: merge join
        // on index order must beat hashing.
        let mut c = Catalog::new();
        c.add_relation("l", 100_000.0, &["k"]);
        c.add_relation("r", 100_000.0, &["k"]);
        let lk = c.attr("l.k");
        let rk = c.attr("r.k");
        c.add_index(c.relation_id("l").unwrap(), vec![lk], true);
        c.add_index(c.relation_id("r").unwrap(), vec![rk], true);
        let q = QueryBuilder::new(&c)
            .relation("l")
            .relation("r")
            .join("l.k", "r.k", 0.00001)
            .build();
        let r = run_ours(&c, &q);
        let mut found_merge = false;
        let mut stack = vec![r.best];
        while let Some(p) = stack.pop() {
            match &r.arena.node(p).op {
                PlanOp::MergeJoin { left, right, .. } => {
                    found_merge = true;
                    stack.push(*left);
                    stack.push(*right);
                }
                PlanOp::Sort { input, .. } => stack.push(*input),
                PlanOp::HashJoin { left, right, .. } | PlanOp::NestedLoopJoin { left, right } => {
                    stack.push(*left);
                    stack.push(*right);
                }
                _ => {}
            }
        }
        assert!(
            found_merge,
            "expected a merge join:\n{}",
            r.arena.render(r.best, &|i| format!("r{i}"))
        );
    }

    #[test]
    fn ours_generates_no_more_plans_than_simmen() {
        let (c, q) = persons_jobs();
        let ours = run_ours(&c, &q);
        let simmen = run_simmen(&c, &q);
        assert!(
            ours.stats.plans <= simmen.stats.plans,
            "ours={} simmen={}",
            ours.stats.plans,
            simmen.stats.plans
        );
    }

    #[test]
    fn chain_of_four_relations_plans() {
        let mut c = Catalog::new();
        let mut qb_rels = Vec::new();
        for i in 0..4 {
            c.add_relation(&format!("t{i}"), 1000.0 * (i as f64 + 1.0), &["k", "f"]);
            qb_rels.push(format!("t{i}"));
        }
        let mut qb = QueryBuilder::new(&c);
        for r in &qb_rels {
            qb = qb.relation(r);
        }
        for i in 0..3 {
            qb = qb.join(&format!("t{i}.f"), &format!("t{}.k", i + 1), 0.001);
        }
        let q = qb.build();
        let ours = run_ours(&c, &q);
        let simmen = run_simmen(&c, &q);
        assert!((ours.cost - simmen.cost).abs() < 1e-6);
        assert!(ours.stats.plans > 20);
        assert!(ours.arena.tree_size(ours.best) >= 7, "4 scans + 3 joins");
    }

    #[test]
    fn streaming_aggregate_exploits_free_order() {
        // Clustered index on the grouping attribute: the optimizer must
        // pick an ordered scan + merge-joinable path ending in a
        // streaming aggregate instead of hashing.
        let mut c = Catalog::new();
        c.add_relation("f", 100_000.0, &["g", "k"]);
        c.add_relation("d", 100.0, &["k"]);
        let fg = c.attr("f.g");
        c.add_index(c.relation_id("f").unwrap(), vec![fg], true);
        let q = QueryBuilder::new(&c)
            .relation("f")
            .relation("d")
            .join("f.k", "d.k", 0.01)
            .group_by(&["f.g"])
            .build();
        let r = run_ours(&c, &q);
        let mut found_streaming = false;
        let mut stack = vec![r.best];
        while let Some(p) = stack.pop() {
            match &r.arena.node(p).op {
                PlanOp::Aggregate { input, streaming } => {
                    found_streaming |= *streaming;
                    stack.push(*input);
                }
                PlanOp::Sort { input, .. } => stack.push(*input),
                PlanOp::MergeJoin { left, right, .. }
                | PlanOp::HashJoin { left, right, .. }
                | PlanOp::NestedLoopJoin { left, right } => {
                    stack.push(*left);
                    stack.push(*right);
                }
                _ => {}
            }
        }
        assert!(
            found_streaming,
            "expected a streaming aggregate:\n{}",
            r.arena.render(r.best, &|i| format!("r{i}"))
        );
        // Simmen agrees on the optimum.
        let s = run_simmen(&c, &q);
        assert!((r.cost - s.cost).abs() < 1e-6);
    }

    #[test]
    fn hash_aggregate_when_order_is_expensive() {
        // No index: sorting 100k rows to stream-aggregate loses to
        // hashing.
        let mut c = Catalog::new();
        c.add_relation("f", 100_000.0, &["g", "k"]);
        c.add_relation("d", 100.0, &["k"]);
        let q = QueryBuilder::new(&c)
            .relation("f")
            .relation("d")
            .join("f.k", "d.k", 0.01)
            .group_by(&["f.g"])
            .build();
        let r = run_ours(&c, &q);
        // The grouping requirement re-sorts the (tiny) aggregate output;
        // beneath the sort sits a hash aggregate, not sort + stream.
        let mut node = r.arena.node(r.best);
        if let PlanOp::Sort { input, .. } = &node.op {
            node = r.arena.node(*input);
        }
        match &node.op {
            PlanOp::Aggregate { streaming, .. } => assert!(!streaming),
            other => panic!("expected an aggregate, got {other:?}"),
        }
    }

    #[test]
    fn memory_accounting_is_populated() {
        let (c, q) = persons_jobs();
        let ours = run_ours(&c, &q);
        let simmen = run_simmen(&c, &q);
        assert!(ours.stats.memory_bytes > 0);
        assert!(simmen.stats.memory_bytes > 0);
    }
}
