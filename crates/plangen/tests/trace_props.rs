//! Observability must be a pure observer: attaching a recording
//! [`Trace`] sink to the DP must not perturb the plan table by a single
//! byte — same arena nodes, same costs, same winner — serially and at
//! every thread count, for every oracle arm. And the trace itself must
//! be deterministic where it claims to be: the *skeleton* (span names,
//! labels, depths, counters in record order) is byte-identical across
//! thread counts; only timestamps and thread lanes may differ.
//!
//! Protocol per arm: one untraced serial run first on the shared oracle
//! instance (this warms the memoizing oracles so their numeric state
//! handles are bit-stable — see `determinism.rs` for the two-tier
//! guarantee), then a traced serial run and traced pool runs at 1, 2
//! and 8 threads, all fingerprint-checked against the untraced
//! reference.

use proptest::prelude::*;
use std::fmt::Debug;
use std::fmt::Write as _;

use ofw_catalog::Catalog;
use ofw_core::{OrderingFramework, PruneConfig};
use ofw_obs::Trace;
use ofw_parallel::ThreadPool;
use ofw_plangen::{ExplicitOracle, OrderOracle, PlanGen, PlanGenResult};
use ofw_query::extract::ExtractOptions;
use ofw_query::Query;
use ofw_workload::{grouping_query, random_query, GroupingQueryConfig, RandomQueryConfig};

/// Full byte-level fingerprint of a plan-generation result, including
/// oracle state handles (valid here because every run shares a warmed
/// oracle instance).
fn fingerprint<S: Copy + Debug>(r: &PlanGenResult<S>) -> String {
    let mut out = String::new();
    for n in r.arena.nodes() {
        let _ = write!(
            out,
            "{:?}|{:?}|{:016x}|{:016x}|{:?}|{:?}|{:?}",
            n.op,
            n.mask,
            n.cost.to_bits(),
            n.card.to_bits(),
            n.agg,
            n.applied_fds,
            n.state,
        );
        out.push('\n');
    }
    let _ = write!(
        out,
        "best={:?} cost={:016x} plans={}",
        r.best,
        r.cost.to_bits(),
        r.stats.plans
    );
    out
}

fn assert_arm_trace_inert<O>(label: &str, catalog: &Catalog, query: &Query, oracle: &O)
where
    O: OrderOracle + Sync,
    O::Key: Sync,
    O::State: Send + Sync + Debug,
{
    let ex = ofw_query::extract(catalog, query, &ExtractOptions::default());

    // Untraced serial reference (also the oracle warm-up run).
    let reference = fingerprint(&PlanGen::new(catalog, query, &ex, oracle).run());

    // Traced serial run: same bytes, and the trace actually recorded.
    let serial_trace = Trace::recording();
    let serial = PlanGen::new(catalog, query, &ex, oracle)
        .trace(&serial_trace)
        .run();
    assert_eq!(
        fingerprint(&serial),
        reference,
        "{label}: recording sink changed the serial plan table"
    );
    let records = serial_trace.records();
    assert!(!records.is_empty(), "{label}: recording sink saw no spans");
    assert_eq!(records[0].name, "plangen");

    // Traced pool runs: same bytes at every thread count, and one
    // skeleton shared by all thread counts.
    let mut pool_skeleton: Option<String> = None;
    for threads in [1usize, 2, 8] {
        let pool = ThreadPool::new(threads);
        let trace = Trace::recording();
        let r = PlanGen::new(catalog, query, &ex, oracle)
            .trace(&trace)
            .run_with(&pool);
        assert_eq!(
            fingerprint(&r),
            reference,
            "{label}: recording sink changed the plan table at {threads} threads"
        );
        let skeleton = trace.skeleton();
        match &pool_skeleton {
            None => pool_skeleton = Some(skeleton),
            Some(first) => assert_eq!(
                &skeleton, first,
                "{label}: trace skeleton varies with thread count ({threads} threads)"
            ),
        }
    }
}

fn check_query(catalog: &Catalog, query: &Query) {
    let ex = ofw_query::extract(catalog, query, &ExtractOptions::default());
    let dfsm = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
    assert_arm_trace_inert("dfsm", catalog, query, &dfsm);
    let simmen = ofw_simmen::SimmenFramework::prepare(&ex.spec);
    assert_arm_trace_inert("simmen", catalog, query, &simmen);
    let explicit = ExplicitOracle::prepare(&ex.spec);
    assert_arm_trace_inert("explicit", catalog, query, &explicit);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random join queries: a recording trace is inert for all three
    /// oracle arms at every thread count.
    #[test]
    fn recording_trace_never_changes_join_plans(seed in 0u64..1000, extra in 0usize..2) {
        let (catalog, query) = random_query(&RandomQueryConfig {
            num_relations: 5,
            extra_edges: extra,
            seed,
        });
        check_query(&catalog, &query);
    }

    /// Grouping queries (group by / distinct): same guarantee.
    #[test]
    fn recording_trace_never_changes_grouping_plans(seed in 0u64..1000) {
        let (catalog, query) = grouping_query(&GroupingQueryConfig {
            num_relations: 5,
            extra_edges: 1,
            seed,
        });
        check_query(&catalog, &query);
    }
}

/// The phase ledger is populated whether or not a sink is attached:
/// decision telemetry is always-on, and phase entries cover the whole
/// run (base → enumerate → per-layer → finalize → pick_final).
#[test]
fn phase_stats_are_always_populated() {
    let (catalog, query) = random_query(&RandomQueryConfig {
        num_relations: 6,
        extra_edges: 1,
        seed: 7,
    });
    let ex = ofw_query::extract(&catalog, &query, &ExtractOptions::default());
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
    let r = PlanGen::new(&catalog, &query, &ex, &fw).run();

    let names: Vec<&str> = r.stats.phases.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(names.first(), Some(&"bound"), "bound provider runs first");
    assert_eq!(names.get(1), Some(&"base"));
    assert_eq!(names.get(2), Some(&"enumerate"));
    assert_eq!(names.last(), Some(&"pick_final"));
    assert!(names.contains(&"layer 2"), "no layer phases in {names:?}");

    // Decision counters saw real work on every axis.
    let d = &r.stats.decisions;
    assert!(d.pruning.kept_total() > 0);
    assert!(d.pruning.bound_pruned > 0, "the bound never fired");
    assert!(d.probes.total() > 0);
    assert!(d.enforcers.admitted_total() > 0);
    // The per-phase ledger sums to the run totals on *every* decision
    // axis — kept, dominated, bound_pruned, each probe family (memo
    // hits included) and each enforcer counter. This is the pin that
    // pruning work is charged to exactly one phase: a double-charge
    // (e.g. to a layer *and* its unions) would break the equality.
    let mut summed = ofw_obs::DecisionCounters::default();
    for p in &r.stats.phases {
        summed.merge(&p.decisions);
    }
    assert_eq!(&summed, d);

    // With bounding off, the bound phase disappears and nothing is
    // bound-pruned — and the ledger still sums exactly.
    let unbounded = PlanGen::new(&catalog, &query, &ex, &fw)
        .cost_bounding(false)
        .run();
    let names: Vec<&str> = unbounded
        .stats
        .phases
        .iter()
        .map(|p| p.name.as_str())
        .collect();
    assert_eq!(names.first(), Some(&"base"));
    assert_eq!(unbounded.stats.decisions.pruning.bound_pruned, 0);
    assert_eq!(unbounded.cost.to_bits(), r.cost.to_bits());
    let mut summed = ofw_obs::DecisionCounters::default();
    for p in &unbounded.stats.phases {
        summed.merge(&p.decisions);
    }
    assert_eq!(&summed, &unbounded.stats.decisions);
}
