//! Preparation-mode regression: the DP must produce **byte-identical**
//! plan tables whether the DFSM oracle was prepared eagerly, lazily or
//! in auto mode, with or without preparation parallelism, at every DP
//! thread count.
//!
//! This is the contract that makes lazy determinization safe to turn on
//! by default: laziness is a *truncated* eager BFS, so every state the
//! DP ever sees carries the same 4-byte handle it would have carried
//! under an eager build — the plan arena (operator trees, masks, cost
//! bit patterns, applied FDs, oracle states) cannot tell the modes
//! apart. Minimization deliberately breaks handle stability (it
//! renumbers states) in exchange for a smaller automaton, so it is held
//! to the state-blind tier: identical plans, costs and winners, handle
//! values free.

use std::fmt::Debug;
use std::fmt::Write as _;
use std::sync::Arc;

use ofw_catalog::Catalog;
use ofw_core::{OrderingFramework, PrepareOptions, PruneConfig};
use ofw_parallel::ThreadPool;
use ofw_plangen::{PlanGen, PlanGenResult};
use ofw_query::extract::ExtractOptions;
use ofw_query::Query;
use ofw_workload::{grouping_query, random_query, GroupingQueryConfig, RandomQueryConfig};

/// Arena fingerprint; with `with_state`, includes the oracle state
/// handles (the full tier — only modes with eager-compatible state
/// numbering can pass it).
fn fingerprint_opt<S: Copy + Debug>(r: &PlanGenResult<S>, with_state: bool) -> String {
    let mut out = String::new();
    for n in r.arena.nodes() {
        let _ = write!(
            out,
            "{:?}|{:?}|{:016x}|{:016x}|{:?}|{:?}",
            n.op,
            n.mask,
            n.cost.to_bits(),
            n.card.to_bits(),
            n.agg,
            n.applied_fds,
        );
        if with_state {
            let _ = write!(out, "|{:?}", n.state);
        }
        out.push('\n');
    }
    let _ = write!(
        out,
        "best={:?} cost={:016x} plans={}",
        r.best,
        r.cost.to_bits(),
        r.stats.plans
    );
    out
}

/// Runs the DP over a freshly prepared framework, serially or on a
/// pool of `threads` workers.
fn run_dp(
    catalog: &Catalog,
    query: &Query,
    options: &PrepareOptions,
    threads: Option<usize>,
) -> PlanGenResult<ofw_core::State> {
    let ex = ofw_query::extract(catalog, query, &ExtractOptions::default());
    let oracle = OrderingFramework::prepare_opts(&ex.spec, PruneConfig::default(), options)
        .expect("preparation");
    let pg = PlanGen::new(catalog, query, &ex, &oracle);
    match threads {
        None => pg.run(),
        Some(t) => pg.run_with(&ThreadPool::new(t)),
    }
}

/// The headline contract: eager, lazy and auto preparation — the auto
/// arm once with a tiny threshold so it *completes* mid-build and once
/// with the default so it stays lazy — produce byte-identical plan
/// tables at every DP thread count, including the oracle state column.
fn check_modes(catalog: &Catalog, query: &Query) {
    let reference = fingerprint_opt(
        &run_dp(catalog, query, &PrepareOptions::eager(), None),
        true,
    );
    let pool = Arc::new(ThreadPool::new(4));
    let arms: Vec<(&str, PrepareOptions)> = vec![
        ("lazy", PrepareOptions::lazy()),
        ("auto", PrepareOptions::auto()),
        ("auto-tiny", PrepareOptions::auto().auto_threshold(2)),
        ("eager-pooled", PrepareOptions::eager().exec(pool.clone())),
        ("lazy-pooled", PrepareOptions::lazy().exec(pool)),
    ];
    for (label, options) in &arms {
        for threads in [None, Some(1), Some(2), Some(8)] {
            let r = run_dp(catalog, query, options, threads);
            assert_eq!(
                fingerprint_opt(&r, true),
                reference,
                "{label} preparation diverged from eager at {threads:?} DP threads"
            );
        }
    }
}

#[test]
fn plan_tables_are_identical_across_preparation_modes_on_a_join_query() {
    let (catalog, query) = random_query(&RandomQueryConfig {
        num_relations: 7,
        extra_edges: 1,
        seed: 0x5EED,
    });
    check_modes(&catalog, &query);
}

#[test]
fn plan_tables_are_identical_across_preparation_modes_on_a_grouping_query() {
    let (catalog, query) = grouping_query(&GroupingQueryConfig {
        num_relations: 5,
        extra_edges: 1,
        seed: 42,
    });
    check_modes(&catalog, &query);
}

/// Minimization renumbers states, so it owes only the state-blind tier:
/// plans, costs, masks, FDs and the winner must match the eager build
/// exactly, while the handle column is free to differ.
#[test]
fn minimized_preparation_is_plan_equivalent() {
    let (catalog, query) = grouping_query(&GroupingQueryConfig {
        num_relations: 5,
        extra_edges: 1,
        seed: 7,
    });
    let eager = run_dp(&catalog, &query, &PrepareOptions::eager(), None);
    let minimized = run_dp(
        &catalog,
        &query,
        &PrepareOptions::eager().minimize(true),
        None,
    );
    assert_eq!(
        fingerprint_opt(&minimized, false),
        fingerprint_opt(&eager, false),
        "minimized automaton changed the plan table"
    );
}

/// The preparation counters surface through `PlanGenStats`: an eager
/// run reports a complete automaton, a lazy run reports how much of it
/// the DP actually forced — never more than the eager total.
#[test]
fn plan_stats_carry_preparation_counters() {
    let (catalog, query) = random_query(&RandomQueryConfig {
        num_relations: 6,
        extra_edges: 1,
        seed: 99,
    });
    let eager = run_dp(&catalog, &query, &PrepareOptions::eager(), None);
    assert!(eager.stats.nfsm_states > 0);
    let total = eager
        .stats
        .dfsm_states_total
        .expect("eager preparation knows the full automaton size");
    assert_eq!(eager.stats.dfsm_states_materialized, total);

    let lazy = run_dp(&catalog, &query, &PrepareOptions::lazy(), None);
    assert_eq!(lazy.stats.nfsm_states, eager.stats.nfsm_states);
    assert!(lazy.stats.dfsm_states_materialized <= total);
    assert!(lazy.stats.dfsm_states_materialized > 0, "the DP probed");
}
