//! Enumerator-seam regression: DPhyp must be **byte-identical** to the
//! size-layered DPsize enumerator — same arena layout, same plans, same
//! costs, same winner — for every oracle arm, serial and at every
//! thread count, across the random join and grouping workloads.
//!
//! The canonicalization pass inside `DpHypSchedule` is what makes this
//! possible: csg-cmp pairs are discovered in neighborhood order but
//! replayed in DPsize first-discovery order, so the only observable
//! difference between the enumerators is `pairs_considered` (the
//! rejected-candidate work DPsize pays and DPhyp skips).

use proptest::prelude::*;
use std::fmt::Debug;
use std::fmt::Write as _;

use ofw_catalog::Catalog;
use ofw_core::{OrderingFramework, PruneConfig};
use ofw_parallel::ThreadPool;
use ofw_plangen::{Enumerator, ExplicitOracle, OrderOracle, PlanGen, PlanGenResult};
use ofw_query::extract::ExtractOptions;
use ofw_query::Query;
use ofw_simmen::SimmenFramework;
use ofw_workload::{
    grouping_query, large_query, random_query, GroupingQueryConfig, LargeQueryConfig,
    RandomQueryConfig, Topology,
};

/// Full byte-level fingerprint of a plan-generation result (operator
/// trees, masks, cost/cardinality bit patterns, FDs, oracle states,
/// winner and plan count).
fn fingerprint<S: Copy + Debug>(r: &PlanGenResult<S>) -> String {
    let mut out = String::new();
    for n in r.arena.nodes() {
        let _ = writeln!(
            out,
            "{:?}|{:?}|{:016x}|{:016x}|{:?}|{:?}|{:?}",
            n.op,
            n.mask,
            n.cost.to_bits(),
            n.card.to_bits(),
            n.agg,
            n.applied_fds,
            n.state,
        );
    }
    let _ = write!(
        out,
        "best={:?} cost={:016x} plans={}",
        r.best,
        r.cost.to_bits(),
        r.stats.plans
    );
    out
}

/// Runs one oracle arm with DPsize serially (warming the oracle, so
/// memoized state handles are bit-stable for all later runs), then
/// DPhyp serially and at 1, 2 and 8 threads on the same instance, and
/// asserts byte-identical fingerprints throughout.
fn assert_enumerators_identical<O>(label: &str, catalog: &Catalog, query: &Query, oracle: &O)
where
    O: OrderOracle + Sync,
    O::Key: Sync,
    O::State: Send + Sync + Debug,
{
    let ex = ofw_query::extract(catalog, query, &ExtractOptions::default());
    let dpsize = PlanGen::new(catalog, query, &ex, oracle).run();
    assert_eq!(dpsize.stats.enumerator, "dpsize");
    let reference = fingerprint(&dpsize);

    let dphyp = PlanGen::new(catalog, query, &ex, oracle)
        .enumerator(Enumerator::DpHyp)
        .run();
    assert_eq!(dphyp.stats.enumerator, "dphyp");
    assert_eq!(
        fingerprint(&dphyp),
        reference,
        "{label}: serial DpHyp diverged from DpSize"
    );
    assert_eq!(
        dphyp.stats.pairs_emitted, dpsize.stats.pairs_emitted,
        "{label}: the enumerators emitted different pair sets"
    );
    assert!(
        dphyp.stats.pairs_considered <= dpsize.stats.pairs_considered,
        "{label}: DpHyp considered more candidates than DpSize"
    );
    assert!(!dphyp.stats.fallback && !dpsize.stats.fallback);

    for threads in [1usize, 2, 8] {
        let pool = ThreadPool::new(threads);
        let parallel = PlanGen::new(catalog, query, &ex, oracle)
            .enumerator(Enumerator::DpHyp)
            .run_with(&pool);
        assert_eq!(
            fingerprint(&parallel),
            reference,
            "{label}: DpHyp at {threads} threads diverged from serial DpSize"
        );
    }
}

fn check_query(catalog: &Catalog, query: &Query, with_explicit: bool) {
    let ex = ofw_query::extract(catalog, query, &ExtractOptions::default());
    let dfsm = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
    assert_enumerators_identical("dfsm", catalog, query, &dfsm);
    let simmen = SimmenFramework::prepare(&ex.spec);
    assert_enumerators_identical("simmen", catalog, query, &simmen);
    if with_explicit {
        let explicit = ExplicitOracle::prepare(&ex.spec);
        assert_enumerators_identical("explicit", catalog, query, &explicit);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random join queries: DPhyp == DPsize for all three oracle arms,
    /// serial and parallel.
    #[test]
    fn dphyp_matches_dpsize_on_join_workloads(seed in 0u64..1000, extra in 0usize..2) {
        let (catalog, query) = random_query(&RandomQueryConfig {
            num_relations: 6,
            extra_edges: extra,
            seed,
        });
        check_query(&catalog, &query, true);
    }

    /// Grouping queries (group by / distinct / aggregates): the
    /// enumerator seam must not disturb aggregation placement either.
    #[test]
    fn dphyp_matches_dpsize_on_grouping_workloads(seed in 0u64..1000) {
        let (catalog, query) = grouping_query(&GroupingQueryConfig {
            num_relations: 5,
            extra_edges: 1,
            seed,
        });
        check_query(&catalog, &query, true);
    }
}

/// A 12-relation cycle — the shape where DPsize's candidate loop pays a
/// quadratic rejected-pair overhead that DPhyp skips entirely, while
/// the plans stay byte-identical.
#[test]
fn dphyp_matches_dpsize_on_a_twelve_relation_cycle() {
    let (catalog, query) = large_query(&LargeQueryConfig {
        topology: Topology::Cycle,
        num_relations: 12,
        seed: 12,
    });
    let ex = ofw_query::extract(&catalog, &query, &ExtractOptions::lean());
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();

    let dpsize = PlanGen::new(&catalog, &query, &ex, &fw).run();
    let dphyp = PlanGen::new(&catalog, &query, &ex, &fw)
        .enumerator(Enumerator::DpHyp)
        .run();
    assert_eq!(fingerprint(&dphyp), fingerprint(&dpsize));
    assert_eq!(dphyp.stats.pairs_emitted, dpsize.stats.pairs_emitted);
    assert!(
        dpsize.stats.pairs_considered > 4 * dphyp.stats.pairs_considered,
        "cycle-12: dpsize considered {} vs dphyp {}",
        dpsize.stats.pairs_considered,
        dphyp.stats.pairs_considered
    );
}
