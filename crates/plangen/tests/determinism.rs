//! Determinism regression: the parallel DP driver must produce plans
//! and costs **byte-identical** to the serial driver, at every thread
//! count, for every oracle arm, across the random join and grouping
//! workload generators.
//!
//! The fingerprint covers every arena node — operator tree, relation
//! mask, exact cost/cardinality bit patterns, applied FDs, oracle state
//! — plus the winner and the `#Plans` count. A schedule leak anywhere
//! in the layered DP (union discovery order, splice order, Pareto
//! insertion order) would show up here as a fingerprint mismatch at
//! some thread count.
//!
//! Two protocols are pinned, matching the guarantee's two tiers:
//!
//! * **warm shared instance** (the full-fingerprint tests): serial
//!   first, then every thread count on the *same* oracle — after the
//!   serial run every reachable state is interned, so even the
//!   memoizing oracles' numeric state handles are bit-stable;
//! * **cold instance per run** (the structural test): a fresh memoizing
//!   oracle interns state handles in schedule-dependent first-come
//!   order, so only the state-blind fingerprint is required to match —
//!   plans, costs, masks, FDs and winner identical, handle numbering
//!   free. The DFSM arm has no such caveat (states precomputed), so it
//!   must pass the full fingerprint even cold.

use proptest::prelude::*;
use std::fmt::Debug;
use std::fmt::Write as _;

use ofw_catalog::Catalog;
use ofw_core::{OrderingFramework, PruneConfig};
use ofw_parallel::ThreadPool;
use ofw_plangen::{ExplicitOracle, OrderOracle, PlanGen, PlanGenResult};
use ofw_query::extract::ExtractOptions;
use ofw_query::Query;
use ofw_simmen::SimmenFramework;
use ofw_workload::{grouping_query, random_query, GroupingQueryConfig, RandomQueryConfig};

/// Arena fingerprint; with `with_state`, includes the oracle state
/// handles (bit-stable only for schedule-independent handle assignment
/// — see the module docs).
fn fingerprint_opt<S: Copy + Debug>(r: &PlanGenResult<S>, with_state: bool) -> String {
    let mut out = String::new();
    for n in r.arena.nodes() {
        let _ = write!(
            out,
            "{:?}|{:?}|{:016x}|{:016x}|{:?}|{:?}",
            n.op,
            n.mask,
            n.cost.to_bits(),
            n.card.to_bits(),
            n.agg,
            n.applied_fds,
        );
        if with_state {
            let _ = write!(out, "|{:?}", n.state);
        }
        out.push('\n');
    }
    let _ = write!(
        out,
        "best={:?} cost={:016x} plans={}",
        r.best,
        r.cost.to_bits(),
        r.stats.plans
    );
    out
}

/// Full byte-level fingerprint of a plan-generation result.
fn fingerprint<S: Copy + Debug>(r: &PlanGenResult<S>) -> String {
    fingerprint_opt(r, true)
}

/// Runs one oracle arm serially and at 1, 2 and 8 threads on the SAME
/// prepared framework (shared read-mostly state — exactly how the
/// parallel driver deploys it) and asserts byte-identical output.
fn assert_arm_deterministic<O>(label: &str, catalog: &Catalog, query: &Query, oracle: &O)
where
    O: OrderOracle + Sync,
    O::Key: Sync,
    O::State: Send + Sync + Debug,
{
    let ex = ofw_query::extract(catalog, query, &ExtractOptions::default());
    let serial = PlanGen::new(catalog, query, &ex, oracle).run();
    let reference = fingerprint(&serial);
    for threads in [1usize, 2, 8] {
        let pool = ThreadPool::new(threads);
        let parallel = PlanGen::new(catalog, query, &ex, oracle).run_with(&pool);
        let got = fingerprint(&parallel);
        assert_eq!(
            got, reference,
            "{label}: parallel DP at {threads} threads diverged from serial"
        );
    }
}

fn check_query(catalog: &Catalog, query: &Query, with_explicit: bool) {
    let ex = ofw_query::extract(catalog, query, &ExtractOptions::default());
    let dfsm = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
    assert_arm_deterministic("dfsm", catalog, query, &dfsm);
    let simmen = SimmenFramework::prepare(&ex.spec);
    assert_arm_deterministic("simmen", catalog, query, &simmen);
    if with_explicit {
        let explicit = ExplicitOracle::prepare(&ex.spec);
        assert_arm_deterministic("explicit", catalog, query, &explicit);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random join queries: all three oracle arms, byte-identical at
    /// every thread count.
    #[test]
    fn parallel_dp_is_deterministic_on_join_workloads(seed in 0u64..1000, extra in 0usize..2) {
        let (catalog, query) = random_query(&RandomQueryConfig {
            num_relations: 6,
            extra_edges: extra,
            seed,
        });
        check_query(&catalog, &query, true);
    }

    /// Grouping queries (group by / distinct): all three oracle arms.
    #[test]
    fn parallel_dp_is_deterministic_on_grouping_workloads(seed in 0u64..1000) {
        let (catalog, query) = grouping_query(&GroupingQueryConfig {
            num_relations: 5,
            extra_edges: 1,
            seed,
        });
        check_query(&catalog, &query, true);
    }
}

/// A denser, bigger single case (8 relations, 2 extra edges) so the
/// layered merge sees real multi-union layers — DFSM and Simmen arms.
#[test]
fn parallel_dp_is_deterministic_on_a_dense_eight_relation_query() {
    let (catalog, query) = random_query(&RandomQueryConfig {
        num_relations: 8,
        extra_edges: 2,
        seed: 0xDECADE,
    });
    check_query(&catalog, &query, false);
}

/// The cold-instance tier of the guarantee: with a *fresh* memoizing
/// oracle per run, the state-blind structure must still be byte-
/// identical at every thread count (handle numbering is the only
/// schedule-dependent freedom), and a cold DFSM instance must pass the
/// full fingerprint including states.
#[test]
fn cold_oracle_instances_are_structurally_deterministic() {
    let (catalog, query) = random_query(&RandomQueryConfig {
        num_relations: 7,
        extra_edges: 1,
        seed: 0xC01D,
    });
    let ex = ofw_query::extract(&catalog, &query, &ExtractOptions::default());

    let fresh_simmen = || {
        let oracle = SimmenFramework::prepare(&ex.spec);
        PlanGen::new(&catalog, &query, &ex, &oracle).run()
    };
    let reference = fingerprint_opt(&fresh_simmen(), false);
    for threads in [2usize, 8] {
        let oracle = SimmenFramework::prepare(&ex.spec);
        let pool = ThreadPool::new(threads);
        let r = PlanGen::new(&catalog, &query, &ex, &oracle).run_with(&pool);
        assert_eq!(
            fingerprint_opt(&r, false),
            reference,
            "cold simmen structure diverged at {threads} threads"
        );
    }

    let fresh_dfsm = |pool: Option<&ThreadPool>| {
        let oracle = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
        let pg = PlanGen::new(&catalog, &query, &ex, &oracle);
        match pool {
            None => pg.run(),
            Some(p) => pg.run_with(p),
        }
    };
    let dfsm_reference = fingerprint(&fresh_dfsm(None));
    let pool = ThreadPool::new(8);
    assert_eq!(
        fingerprint(&fresh_dfsm(Some(&pool))),
        dfsm_reference,
        "cold dfsm must be fully byte-identical (states precomputed)"
    );
}
