//! EXPLAIN rendering: a golden test on the paper's running example
//! (§5: persons ⋈ jobs with an `order by (jobs.id, persons.name)`),
//! pinned byte-for-byte so the rendering contract — operator strings,
//! cost/row formatting, held-property annotations — cannot drift
//! silently. Plus invariants that hold for every arm: explain is a
//! pure view (identical plan table before and after) and the JSON
//! variant parses structurally.

use ofw_catalog::Catalog;
use ofw_core::{OrderingFramework, PruneConfig};
use ofw_plangen::{ExplicitOracle, PlanGen, PlanGenStats};
use ofw_query::extract::ExtractOptions;
use ofw_query::QueryBuilder;

fn persons_jobs() -> (Catalog, ofw_query::Query) {
    let mut c = Catalog::new();
    c.add_relation("persons", 10_000.0, &["id", "name", "jobid"]);
    c.add_relation("jobs", 100.0, &["id", "salary"]);
    let jobs = c.relation_id("jobs").unwrap();
    let jid = c.attr("jobs.id");
    c.add_index(jobs, vec![jid], true);
    let q = QueryBuilder::new(&c)
        .relation("persons")
        .relation("jobs")
        .join("persons.jobid", "jobs.id", 0.01)
        .order_by(&["jobs.id", "persons.name"])
        .build();
    (c, q)
}

#[test]
fn explain_text_is_stable_on_the_section5_query() {
    let (c, q) = persons_jobs();
    let ex = ofw_query::extract(&c, &q, &ExtractOptions::default());
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
    let r = PlanGen::new(&c, &q, &ex, &fw).run();
    let explain = r.explain(&c, &q, &ex, &fw);
    assert_eq!(explain.cost, r.cost);
    // Note the root Sort's annotations: it physically produces
    // `(jobs.id, persons.name)`, which satisfies the prefix `(jobs.id)`
    // — and the join's FD `persons.jobid = jobs.id` lets the framework
    // infer `(persons.jobid)` too, a fact no physical operator produced.
    let expected = "\
Sort (jobs.id, persons.name)  cost=154077.12 rows=10000  [(persons.jobid), (jobs.id), (jobs.id, persons.name)]
  NestedLoopJoin  cost=21200 rows=10000
    Scan(jobs)  cost=100 rows=100
    Scan(persons)  cost=10000 rows=10000
";
    assert_eq!(explain.text(), expected);
}

/// The explicit ground-truth arm must annotate the same plan with the
/// same held properties as the DFSM arm (both probe the same logical
/// facts through different machinery).
#[test]
fn explain_agrees_across_oracle_arms() {
    let (c, q) = persons_jobs();
    let ex = ofw_query::extract(&c, &q, &ExtractOptions::default());
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
    let truth = ExplicitOracle::prepare(&ex.spec);
    let dfsm = PlanGen::new(&c, &q, &ex, &fw).run();
    let explicit = PlanGen::new(&c, &q, &ex, &truth).run();
    assert_eq!(
        dfsm.explain(&c, &q, &ex, &fw).text(),
        explicit.explain(&c, &q, &ex, &truth).text()
    );
}

#[test]
fn explain_json_has_the_expected_shape() {
    let (c, q) = persons_jobs();
    let ex = ofw_query::extract(&c, &q, &ExtractOptions::default());
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
    let r = PlanGen::new(&c, &q, &ex, &fw).run();
    let json = r.explain(&c, &q, &ex, &fw).json();
    assert!(json.starts_with("{\"cost\":"));
    assert!(json.contains("\"op\":\""));
    assert!(json.contains("\"properties\":["));
    assert!(json.contains("\"children\":["));
    assert!(json.ends_with("]}}"));
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "unbalanced JSON: {json}"
    );
}

/// `PlanGenStats::default()` must not claim an enumerator ran: stats
/// that never went through a DP run carry the empty string, and only
/// `run`/`run_with` fill in `dpsize`/`dphyp`/`linearized`.
#[test]
fn default_stats_claim_no_enumerator() {
    let stats = PlanGenStats::default();
    assert_eq!(stats.enumerator, "");

    let (c, q) = persons_jobs();
    let ex = ofw_query::extract(&c, &q, &ExtractOptions::default());
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
    let r = PlanGen::new(&c, &q, &ex, &fw).run();
    assert_eq!(r.stats.enumerator, "dpsize");
}
