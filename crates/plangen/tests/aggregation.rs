//! Aggregation-placement regression properties:
//!
//! 1. **Placement never loses** — the plan found with eager/lazy
//!    aggregation placement enabled is never costlier than root-only
//!    aggregation, on every oracle arm (the unaggregated comparability
//!    class replicates the root-only search exactly, so its winner is
//!    always still available).
//! 2. **Determinism survives the new dimension** — with placement
//!    enabled, the serial driver and the work-stealing parallel driver
//!    at 1/2/8 threads produce byte-identical plan tables, for all
//!    three oracle arms, across random star-schema aggregation
//!    workloads (the same guarantee the join-only workloads already
//!    pin, now with partial aggregates and group-joins in the arena).

use proptest::prelude::*;
use std::fmt::Debug;
use std::fmt::Write as _;

use ofw_catalog::Catalog;
use ofw_core::{OrderingFramework, PruneConfig};
use ofw_parallel::ThreadPool;
use ofw_plangen::{ExplicitOracle, OrderOracle, PlanGen, PlanGenResult};
use ofw_query::extract::ExtractOptions;
use ofw_query::Query;
use ofw_simmen::SimmenFramework;
use ofw_workload::{star_agg_query, StarAggConfig};

/// Full byte-level fingerprint of a plan-generation result (operator
/// tree, masks, exact cost/card bits, FDs, aggregation marks, oracle
/// states, winner).
fn fingerprint<S: Copy + Debug>(r: &PlanGenResult<S>) -> String {
    let mut out = String::new();
    for n in r.arena.nodes() {
        let _ = writeln!(
            out,
            "{:?}|{:?}|{:016x}|{:016x}|{:?}|{:?}|{:?}",
            n.op,
            n.mask,
            n.cost.to_bits(),
            n.card.to_bits(),
            n.agg,
            n.applied_fds,
            n.state,
        );
    }
    let _ = write!(
        out,
        "best={:?} cost={:016x} plans={}",
        r.best,
        r.cost.to_bits(),
        r.stats.plans
    );
    out
}

/// Runs one warm oracle arm: placement ≤ root-only, and serial vs
/// 1/2/8-thread parallel drivers byte-identical with placement enabled.
fn check_arm<O>(label: &str, catalog: &Catalog, query: &Query, oracle: &O)
where
    O: OrderOracle + Sync,
    O::Key: Sync,
    O::State: Send + Sync + Debug,
{
    let ex = ofw_query::extract(catalog, query, &ExtractOptions::default());
    let placed = PlanGen::new(catalog, query, &ex, oracle).run();
    let root_only = PlanGen::new(catalog, query, &ex, oracle)
        .aggregation_placement(false)
        .run();
    assert!(
        placed.cost <= root_only.cost + 1e-9 * root_only.cost.abs(),
        "{label}: placement ({}) must never be costlier than root-only ({})",
        placed.cost,
        root_only.cost
    );
    let reference = fingerprint(&placed);
    for threads in [1usize, 2, 8] {
        let pool = ThreadPool::new(threads);
        let parallel = PlanGen::new(catalog, query, &ex, oracle).run_with(&pool);
        assert_eq!(
            fingerprint(&parallel),
            reference,
            "{label}: parallel DP at {threads} threads diverged with placement enabled"
        );
    }
}

fn check_query(catalog: &Catalog, query: &Query) {
    let ex = ofw_query::extract(catalog, query, &ExtractOptions::default());
    assert!(ex.aggregation, "star queries must activate placement");
    let dfsm = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
    check_arm("dfsm", catalog, query, &dfsm);
    let simmen = SimmenFramework::prepare(&ex.spec);
    check_arm("simmen", catalog, query, &simmen);
    let explicit = ExplicitOracle::prepare(&ex.spec);
    check_arm("explicit", catalog, query, &explicit);

    // Cross-arm agreement on the placed optimum.
    let a = PlanGen::new(catalog, query, &ex, &dfsm).run().cost;
    let b = PlanGen::new(catalog, query, &ex, &simmen).run().cost;
    let c = PlanGen::new(catalog, query, &ex, &explicit).run().cost;
    assert!((a - b).abs() / a.max(1.0) < 1e-9, "dfsm {a} vs simmen {b}");
    assert!(
        (a - c).abs() / a.max(1.0) < 1e-9,
        "dfsm {a} vs explicit {c}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random star-schema aggregation queries: placement never loses and
    /// the parallel drivers stay byte-identical, all three oracle arms.
    #[test]
    fn placement_is_sound_and_deterministic(seed in 0u64..1000, dims in 1usize..4) {
        let (catalog, query) = star_agg_query(&StarAggConfig {
            dimensions: dims,
            seed,
        });
        check_query(&catalog, &query);
    }
}

/// The root-only arm of a placed run and a placement-disabled run agree
/// exactly: the unaggregated class is a faithful replica (this is the
/// structural invariant behind "placement never loses").
#[test]
fn root_only_winner_survives_inside_the_placed_search() {
    for seed in [3u64, 9, 10] {
        let (catalog, query) = star_agg_query(&StarAggConfig {
            dimensions: 3,
            seed,
        });
        let ex = ofw_query::extract(&catalog, &query, &ExtractOptions::default());
        let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
        let placed = PlanGen::new(&catalog, &query, &ex, &fw).run();
        let root_only = PlanGen::new(&catalog, &query, &ex, &fw)
            .aggregation_placement(false)
            .run();
        assert!(placed.cost <= root_only.cost);
        assert!(
            placed.stats.plans >= root_only.stats.plans,
            "the placed search strictly extends the root-only search"
        );
    }
}
