//! Cost-bounded pruning must be invisible in the answer: for every
//! workload shape, oracle arm and driver, the bounded search picks a
//! winner with the **same rendered plan tree and bit-identical cost**
//! as the unbounded search. Only the amount of work (plans
//! materialized, oracle probes, candidates bound-pruned) may differ.
//!
//! This is the black-box pin behind the mode-stability argument in
//! `dp/mod.rs`: the Pareto table under bounding is exactly the
//! unbounded table intersected with the bound-admissible plans, and
//! ties are kept (strict-inequality rejection), so every optimum-tying
//! plan survives and the deterministic tie-break picks the same winner.
//!
//! Protocol per arm: the unbounded serial run goes first on the shared
//! oracle instance (warming the memoizing oracles so state handles are
//! stable), then the bounded serial run and bounded pool runs at 1, 2
//! and 8 threads are compared against it.

use proptest::prelude::*;
use std::fmt::Debug;

use ofw_catalog::Catalog;
use ofw_core::{OrderingFramework, PruneConfig};
use ofw_parallel::ThreadPool;
use ofw_plangen::{ExplicitOracle, OrderOracle, PlanGen, PlanGenResult};
use ofw_query::extract::ExtractOptions;
use ofw_query::Query;
use ofw_workload::{
    grouping_query, large_query, random_query, GroupingQueryConfig, LargeQueryConfig,
    RandomQueryConfig, Topology,
};

/// The observable answer: the winner's rendered operator tree plus the
/// exact cost bits. Deliberately *not* the full arena — bounding exists
/// to materialize fewer plans, so plan tables legitimately differ.
fn winner<S: Copy + Debug>(catalog: &Catalog, query: &Query, r: &PlanGenResult<S>) -> String {
    format!(
        "{}\ncost={:016x}",
        r.arena.render(r.best, &|i| catalog
            .relation(query.relations[i])
            .name
            .clone()),
        r.cost.to_bits()
    )
}

fn assert_arm_bounding_invisible<O>(label: &str, catalog: &Catalog, query: &Query, oracle: &O)
where
    O: OrderOracle + Sync,
    O::Key: Sync,
    O::State: Send + Sync + Debug,
{
    let ex = ofw_query::extract(catalog, query, &ExtractOptions::default());

    // Unbounded serial reference (also the oracle warm-up run).
    let unbounded = PlanGen::new(catalog, query, &ex, oracle)
        .cost_bounding(false)
        .run();
    let reference = winner(catalog, query, &unbounded);
    assert_eq!(unbounded.stats.decisions.pruning.bound_pruned, 0, "{label}");

    let bounded = PlanGen::new(catalog, query, &ex, oracle).run();
    assert_eq!(
        winner(catalog, query, &bounded),
        reference,
        "{label}: bounding changed the serial winner"
    );
    assert!(
        bounded.stats.plans <= unbounded.stats.plans,
        "{label}: bounding must never materialize more plans \
         ({} vs {})",
        bounded.stats.plans,
        unbounded.stats.plans
    );

    for threads in [1usize, 2, 8] {
        let pool = ThreadPool::new(threads);
        let r = PlanGen::new(catalog, query, &ex, oracle).run_with(&pool);
        assert_eq!(
            winner(catalog, query, &r),
            reference,
            "{label}: bounding changed the winner at {threads} threads"
        );
        assert_eq!(
            r.stats.plans, bounded.stats.plans,
            "{label}: thread count changed the bounded plan table size"
        );
    }
}

fn check_query(catalog: &Catalog, query: &Query) {
    let ex = ofw_query::extract(catalog, query, &ExtractOptions::default());
    let dfsm = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
    assert_arm_bounding_invisible("dfsm", catalog, query, &dfsm);
    let simmen = ofw_simmen::SimmenFramework::prepare(&ex.spec);
    assert_arm_bounding_invisible("simmen", catalog, query, &simmen);
    let explicit = ExplicitOracle::prepare(&ex.spec);
    assert_arm_bounding_invisible("explicit", catalog, query, &explicit);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random join queries: bounded and unbounded searches agree for
    /// all three oracle arms at every thread count.
    #[test]
    fn bounding_never_changes_join_plans(seed in 0u64..1000, extra in 0usize..2) {
        let (catalog, query) = random_query(&RandomQueryConfig {
            num_relations: 5,
            extra_edges: extra,
            seed,
        });
        check_query(&catalog, &query);
    }

    /// Grouping queries (group by / distinct): same guarantee through
    /// the aggregation-placement and finalize paths.
    #[test]
    fn bounding_never_changes_grouping_plans(seed in 0u64..1000) {
        let (catalog, query) = grouping_query(&GroupingQueryConfig {
            num_relations: 5,
            extra_edges: 1,
            seed,
        });
        check_query(&catalog, &query);
    }

    /// Structured topologies — chains, stars and cycles: the shapes
    /// where the greedy bound provider is respectively near-perfect,
    /// adversarial (hub joins), and forced around a cycle.
    #[test]
    fn bounding_never_changes_topology_plans(seed in 0u64..1000, shape in 0usize..3) {
        let topology = [Topology::Chain, Topology::Star, Topology::Cycle][shape];
        let (catalog, query) = large_query(&LargeQueryConfig {
            topology,
            num_relations: 7,
            seed,
        });
        check_query(&catalog, &query);
    }
}

/// The acceptance workload: on a 20-relation chain the bound must
/// actually fire (work pruned, not just allowed to be), while the
/// winner stays bit-identical to the unbounded search.
#[test]
fn chain_20_bound_fires_and_winner_is_identical() {
    let (catalog, query) = large_query(&LargeQueryConfig {
        topology: Topology::Chain,
        num_relations: 20,
        seed: 42,
    });
    let ex = ofw_query::extract(&catalog, &query, &ExtractOptions::default());
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();

    let bounded = PlanGen::new(&catalog, &query, &ex, &fw).run();
    let unbounded = PlanGen::new(&catalog, &query, &ex, &fw)
        .cost_bounding(false)
        .run();

    assert_eq!(unbounded.cost.to_bits(), bounded.cost.to_bits());
    assert_eq!(
        winner(&catalog, &query, &bounded),
        winner(&catalog, &query, &unbounded)
    );
    assert!(
        bounded.stats.decisions.pruning.bound_pruned > 1000,
        "the bound barely fired on chain-20: {}",
        bounded.stats.decisions.pruning.bound_pruned
    );
    assert!(
        bounded.stats.plans <= unbounded.stats.plans,
        "bounding must never materialize more plans: {} vs {}",
        bounded.stats.plans,
        unbounded.stats.plans
    );
    // The bucketed sets answer the overwhelming majority of dominance
    // checks from the per-union memo / state equality instead of oracle
    // probes — that, not the bound, is where chain-20's probe budget
    // goes (the bound's job is to skip candidate *construction*).
    let d = &bounded.stats.decisions;
    assert!(
        d.probes.dominance_memo_hits > d.probes.dominates,
        "memo hits ({}) should dwarf residual dominance probes ({})",
        d.probes.dominance_memo_hits,
        d.probes.dominates
    );
}
