//! Above-64-relation regression: the DP must plan queries wider than one
//! machine word end to end — `BitSet` relation masks (lifted in PR 2)
//! *and* spillable applied-FD masks (a 70-relation chain carries 69 FD
//! sets, past the legacy `u64` bitmask that used to be asserted at
//! `PlanGen::new`) — through both the serial and the parallel driver.

use ofw_core::{OrderingFramework, PruneConfig};
use ofw_parallel::ThreadPool;
use ofw_plangen::PlanGen;
use ofw_query::extract::ExtractOptions;
use ofw_workload::{large_query, LargeQueryConfig, Topology};

#[test]
fn seventy_relation_chain_plans_through_both_drivers() {
    let (catalog, query) = large_query(&LargeQueryConfig {
        topology: Topology::Chain,
        num_relations: 70,
        seed: 70,
    });
    assert_eq!(query.num_relations(), 70);
    // Lean extraction: full FD sets (one per predicate — 69, past the
    // u64 boundary) but no per-join interesting orders, so the DP's
    // Pareto sets stay narrow and the 70-wide sweep fits a debug-mode
    // test run.
    let ex = ofw_query::extract(&catalog, &query, &ExtractOptions::lean());
    assert!(
        ex.spec.fd_sets().len() > 64,
        "the chain must exercise the spilled FD-mask path ({} FD sets)",
        ex.spec.fd_sets().len()
    );

    // DFSM arm, serial vs parallel: identical winner, bitwise cost.
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
    let serial = PlanGen::new(&catalog, &query, &ex, &fw).run();
    assert_eq!(
        serial.arena.node(serial.best).mask,
        query.all_relations_set(),
        "the winner covers all 70 relations"
    );
    assert!(serial.cost.is_finite() && serial.cost > 0.0);
    let pool = ThreadPool::new(2);
    let parallel = PlanGen::new(&catalog, &query, &ex, &fw).run_with(&pool);
    assert_eq!(parallel.best, serial.best);
    assert_eq!(parallel.cost.to_bits(), serial.cost.to_bits());
    assert_eq!(parallel.stats.plans, serial.stats.plans);

    // (Only the DFSM arm runs at this width: the Simmen baseline's
    // env-superset dominance cannot see that FDs applied on the build
    // side are irrelevant, so its Pareto widths — and plan allocations —
    // grow with subset size until 70 relations are out of reach. That
    // asymmetry is the paper's point, and `table_parallel` measures it
    // at the sizes the baseline can still handle.)
}

/// The legacy `u64` relation-mask API must keep refusing >64-relation
/// queries loudly (the guard the set-based API replaced), so nothing
/// can silently truncate a wide query back into one machine word.
#[test]
#[should_panic(expected = "all_relations_set")]
fn legacy_u64_mask_api_still_guards_its_boundary() {
    let (_, query) = large_query(&LargeQueryConfig {
        topology: Topology::Chain,
        num_relations: 70,
        seed: 70,
    });
    let _ = query.all_relations_mask();
}
