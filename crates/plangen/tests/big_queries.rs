//! Above-64-relation regression: the DP must plan queries wider than one
//! machine word end to end — `BitSet` relation masks (lifted in PR 2)
//! *and* spillable applied-FD masks (a 70-relation chain carries 69 FD
//! sets, past the legacy `u64` bitmask that used to be asserted at
//! `PlanGen::new`) — through both the serial and the parallel driver.

use ofw_core::{OrderingFramework, PruneConfig};
use ofw_parallel::ThreadPool;
use ofw_plangen::PlanGen;
use ofw_query::extract::ExtractOptions;
use ofw_workload::{large_query, LargeQueryConfig, Topology};

#[test]
fn seventy_relation_chain_plans_through_both_drivers() {
    let (catalog, query) = large_query(&LargeQueryConfig {
        topology: Topology::Chain,
        num_relations: 70,
        seed: 70,
    });
    assert_eq!(query.num_relations(), 70);
    // Lean extraction: full FD sets (one per predicate — 69, past the
    // u64 boundary) but no per-join interesting orders, so the DP's
    // Pareto sets stay narrow and the 70-wide sweep fits a debug-mode
    // test run.
    let ex = ofw_query::extract(&catalog, &query, &ExtractOptions::lean());
    assert!(
        ex.spec.fd_sets().len() > 64,
        "the chain must exercise the spilled FD-mask path ({} FD sets)",
        ex.spec.fd_sets().len()
    );

    // DFSM arm, serial vs parallel: identical winner, bitwise cost.
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
    let serial = PlanGen::new(&catalog, &query, &ex, &fw).run();
    assert_eq!(
        serial.arena.node(serial.best).mask,
        query.all_relations_set(),
        "the winner covers all 70 relations"
    );
    assert!(serial.cost.is_finite() && serial.cost > 0.0);
    let pool = ThreadPool::new(2);
    let parallel = PlanGen::new(&catalog, &query, &ex, &fw).run_with(&pool);
    assert_eq!(parallel.best, serial.best);
    assert_eq!(parallel.cost.to_bits(), serial.cost.to_bits());
    assert_eq!(parallel.stats.plans, serial.stats.plans);

    // (Only the DFSM arm runs at this width: the Simmen baseline's
    // env-superset dominance cannot see that FDs applied on the build
    // side are irrelevant, so its Pareto widths — and plan allocations —
    // grow with subset size until 70 relations are out of reach. That
    // asymmetry is the paper's point, and `table_parallel` measures it
    // at the sizes the baseline can still handle.)
}

/// The 100-relation clique: exhaustive enumeration is out of the
/// question (Θ(3ⁿ) candidate pairs), so `Enumerator::Auto` must trip
/// its csg-cmp budget and fall back to the linearized window DP —
/// end to end, through both drivers, with identical output.
#[test]
fn hundred_relation_clique_falls_back_and_plans() {
    let (catalog, query) = large_query(&LargeQueryConfig {
        topology: Topology::Clique,
        num_relations: 100,
        seed: 100,
    });
    let ex = ofw_query::extract(&catalog, &query, &ExtractOptions::lean());
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();

    // An explicit (smaller) budget keeps the debug-mode budget trip
    // cheap; the clique exceeds the default budget by orders of
    // magnitude either way (`table_hypergraph` measures that in
    // release mode). No window is pinned, so this also exercises the
    // budget-adaptive width: the fallback may widen past the default
    // only while its pair count fits the same budget.
    let budget = 25_000;
    let serial = PlanGen::new(&catalog, &query, &ex, &fw)
        .enumerator(ofw_plangen::Enumerator::Auto)
        .enumeration_budget(budget)
        .run();
    assert!(serial.stats.fallback, "the budget must trip");
    assert_eq!(serial.stats.enumerator, "linearized");
    assert_eq!(
        serial.arena.node(serial.best).mask,
        query.all_relations_set(),
        "the winner covers all 100 relations"
    );
    assert!(serial.cost.is_finite() && serial.cost > 0.0);
    assert!(
        serial.stats.pairs_emitted < 100_000,
        "fallback pair counts stay linear-ish, got {}",
        serial.stats.pairs_emitted
    );

    let pool = ThreadPool::new(2);
    let parallel = PlanGen::new(&catalog, &query, &ex, &fw)
        .enumerator(ofw_plangen::Enumerator::Auto)
        .enumeration_budget(budget)
        .run_with(&pool);
    assert_eq!(parallel.best, serial.best);
    assert_eq!(parallel.cost.to_bits(), serial.cost.to_bits());
    assert_eq!(parallel.stats.plans, serial.stats.plans);
    assert_eq!(parallel.stats.pairs_emitted, serial.stats.pairs_emitted);
    assert!(parallel.stats.fallback);
}
