//! Property-based tests on the core derivation machinery, complementary
//! to the cross-crate equivalence suite in the workspace `tests/props.rs`:
//! these target individual invariants of orderings, derivations and the
//! preparation pipeline.

use ofw_catalog::AttrId;
use ofw_core::derive::DeriveCtx;
use ofw_core::eqclass::EqClasses;
use ofw_core::fd::Fd;
use ofw_core::filter::PrefixFilter;
use ofw_core::ordering::Ordering;
use ofw_core::property::{Grouping, LogicalProperty};
use ofw_core::{ExplicitOrderings, FdSet, InputSpec, OrderingFramework, PruneConfig};
use proptest::prelude::*;

const NUM_ATTRS: u32 = 5;

fn arb_attr() -> impl Strategy<Value = AttrId> {
    (0..NUM_ATTRS).prop_map(AttrId)
}

fn arb_ordering() -> impl Strategy<Value = Ordering> {
    proptest::collection::vec(arb_attr(), 1..=4).prop_filter_map("dups", |attrs| {
        let mut seen = std::collections::HashSet::new();
        attrs
            .iter()
            .all(|a| seen.insert(*a))
            .then(|| Ordering::new(attrs))
    })
}

fn arb_grouping() -> impl Strategy<Value = Grouping> {
    proptest::collection::vec(arb_attr(), 1..=4).prop_map(Grouping::new)
}

fn arb_fd() -> impl Strategy<Value = Fd> {
    prop_oneof![
        (arb_attr(), arb_attr())
            .prop_filter_map("trivial", |(a, b)| (a != b).then(|| Fd::equation(a, b))),
        (proptest::collection::vec(arb_attr(), 1..=2), arb_attr())
            .prop_filter_map("trivial", |(lhs, rhs)| (!lhs.contains(&rhs))
                .then(|| Fd::functional(&lhs, rhs))),
        arb_attr().prop_map(Fd::constant),
    ]
}

fn arb_fds() -> impl Strategy<Value = Vec<Fd>> {
    proptest::collection::vec(arb_fd(), 1..=4)
}

/// Unbounded derivation context (the semantic ground configuration).
fn unbounded_closure(o: &Ordering, fds: &[Fd]) -> Vec<Ordering> {
    let eq = EqClasses::from_fds(fds.iter());
    let filter = PrefixFilter::new(std::iter::empty(), &[], &eq, false);
    let ctx = DeriveCtx {
        eq: &eq,
        filter: &filter,
        max_len: usize::MAX,
    };
    ctx.closure(o, fds)
}

proptest! {
    /// Every derived ordering is duplicate-free and within the attribute
    /// universe — the core well-formedness invariant.
    #[test]
    fn derivations_are_well_formed(o in arb_ordering(), fds in arb_fds()) {
        for d in unbounded_closure(&o, &fds) {
            let mut seen = std::collections::HashSet::new();
            for &a in d.attrs() {
                prop_assert!(seen.insert(a), "duplicate in {:?}", d);
                prop_assert!(a.0 < NUM_ATTRS);
            }
            prop_assert!(!d.is_prefix_of(&o), "{:?} is implied by ε already", d);
        }
    }

    /// Derivation is monotone in the dependency set: more dependencies
    /// never derive fewer orderings.
    #[test]
    fn closure_is_monotone_in_fds(o in arb_ordering(), fds in arb_fds()) {
        let all = unbounded_closure(&o, &fds);
        let fewer = unbounded_closure(&o, &fds[..fds.len() - 1]);
        for d in fewer {
            prop_assert!(all.contains(&d), "lost {:?} when adding an FD", d);
        }
    }

    /// The bounded (filtered) closure never *invents* orderings: it is a
    /// subset of the unbounded closure up to truncation (every filtered
    /// result is a prefix of some unbounded result or of the source).
    #[test]
    fn filtered_closure_is_sound(
        o in arb_ordering(),
        interesting in proptest::collection::vec(arb_ordering(), 1..=3),
        fds in arb_fds(),
    ) {
        let eq = EqClasses::from_fds(fds.iter());
        let filter = PrefixFilter::new(interesting.iter(), &fds, &eq, true);
        let ctx = DeriveCtx { eq: &eq, filter: &filter, max_len: usize::MAX };
        let bounded = ctx.closure(&o, &fds);
        let unbounded = unbounded_closure(&o, &fds);
        for d in bounded {
            let justified = d.is_prefix_of(&o)
                || unbounded.iter().any(|u| d.is_prefix_of(u))
                || unbounded.contains(&d);
            prop_assert!(justified, "filtered closure invented {:?}", d);
        }
    }

    /// Preparation always succeeds within default caps on small inputs,
    /// and the ADT's basic laws hold: produce→satisfies, inference
    /// monotone (never loses a satisfied order), infer idempotent per
    /// symbol after reaching a fixpoint.
    #[test]
    fn adt_laws(
        produced in proptest::collection::vec(arb_ordering(), 1..=3),
        fd_sets in proptest::collection::vec(proptest::collection::vec(arb_fd(), 1..=2), 1..=3),
    ) {
        let mut spec = InputSpec::new();
        for o in &produced {
            spec.add_produced(o.clone());
        }
        let ids: Vec<_> = fd_sets.iter().map(|f| spec.add_fd_set(f.clone())).collect();
        let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();

        for o in &produced {
            let h = fw.handle(o).expect("produced orders are interesting");
            let mut s = fw.produce(h);
            prop_assert!(fw.satisfies(s, h), "produce({:?}) must satisfy it", o);
            // Prefixes are satisfied too.
            for p in o.proper_prefixes() {
                let hp = fw.handle(&p).expect("prefixes are interesting");
                prop_assert!(fw.satisfies(s, hp));
            }
            // Monotonicity: applying operators never loses orders.
            let mut satisfied: Vec<_> =
                fw.orders().filter(|&(_, k)| fw.satisfies(s, k)).map(|(_, k)| k).collect();
            for &f in &ids {
                s = fw.infer(s, f);
                for &k in &satisfied {
                    prop_assert!(fw.satisfies(s, k), "inference lost an order");
                }
                satisfied =
                    fw.orders().filter(|&(_, k)| fw.satisfies(s, k)).map(|(_, k)| k).collect();
            }
            // Re-applying the full symbol sequence converges (monotone
            // over a finite state space — chained dependencies may need
            // several rounds, e.g. const a3, a3=a4, a0=a4, a0→a1).
            let mut t = s;
            let mut rounds = 0;
            loop {
                let before = t;
                for &f in &ids {
                    t = fw.infer(t, f);
                }
                rounds += 1;
                if t == before {
                    break;
                }
                prop_assert!(rounds < 64, "no fixpoint after 64 rounds");
            }
        }
    }

    /// The combined framework's grouping answers agree with the
    /// explicit-set ground truth: for random specs mixing produced
    /// orderings and produced/tested groupings, every DFSM
    /// `satisfies`/`satisfies_grouping` probe after every `infer`
    /// sequence matches the oracle — from sorted *and* from
    /// hash-grouped start states.
    #[test]
    fn grouping_dfsm_matches_explicit_oracle(
        produced_orderings in proptest::collection::vec(arb_ordering(), 1..=2),
        produced_groupings in proptest::collection::vec(arb_grouping(), 1..=2),
        tested_groupings in proptest::collection::vec(arb_grouping(), 0..=2),
        fd_sets in proptest::collection::vec(proptest::collection::vec(arb_fd(), 1..=2), 1..=3),
        ops in proptest::collection::vec(0usize..3, 0..=4),
    ) {
        let mut spec = InputSpec::new();
        for o in &produced_orderings {
            spec.add_produced(o.clone());
        }
        for g in &produced_groupings {
            spec.add_produced(g.clone());
        }
        for g in &tested_groupings {
            spec.add_tested(g.clone());
        }
        let set_ids: Vec<_> = fd_sets.iter().map(|f| spec.add_fd_set(f.clone())).collect();
        let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();

        // Start states: one per produced property, of either kind.
        let starts: Vec<(LogicalProperty, ofw_core::State, ExplicitOrderings)> = spec
            .produced()
            .iter()
            .map(|p| {
                let h = fw.handle_property(p).expect("produced properties are interesting");
                let truth = match p {
                    LogicalProperty::Ordering(o) => ExplicitOrderings::from_physical(o),
                    LogicalProperty::Grouping(g) => ExplicitOrderings::from_grouping(g),
                    LogicalProperty::HeadTail(h) => ExplicitOrderings::from_head_tail(h),
                };
                (p.clone(), fw.produce(h), truth)
            })
            .collect();

        for (start, mut state, mut truth) in starts {
            for &op in &ops {
                if op >= set_ids.len() {
                    continue;
                }
                state = fw.infer(state, set_ids[op]);
                truth.infer(&FdSet::new(fd_sets[op].clone()));
            }
            // Every interesting property — orderings and groupings —
            // must agree between the O(1) DFSM path and the oracle.
            for (prop, handle) in fw.properties() {
                let got = match prop {
                    LogicalProperty::Ordering(_) => fw.satisfies(state, handle),
                    LogicalProperty::Grouping(_) => fw.satisfies_grouping(state, handle),
                    LogicalProperty::HeadTail(_) => fw.satisfies_head_tail(state, handle),
                };
                let want = match prop {
                    LogicalProperty::Ordering(o) => truth.contains(o),
                    LogicalProperty::Grouping(g) => truth.contains_grouping(g),
                    LogicalProperty::HeadTail(h) => truth.contains_head_tail(h),
                };
                prop_assert_eq!(
                    got, want,
                    "property {:?} from start {:?} after ops {:?}", prop, start, ops
                );
            }
        }
    }

    /// Lazy determinization is a *truncated eager BFS*, so along any
    /// probe sequence over a random spec mixing all three property
    /// kinds, a lazily (or auto-) prepared framework must return the
    /// exact same 4-byte state ids and probe answers as the eager one —
    /// not just equivalent answers — while never materializing more
    /// states than the full automaton holds.
    #[test]
    fn lazy_preparation_is_probe_identical_to_eager(
        produced_orderings in proptest::collection::vec(arb_ordering(), 1..=2),
        produced_groupings in proptest::collection::vec(arb_grouping(), 0..=2),
        tested_head_tails in proptest::collection::vec(
            (arb_grouping(), arb_ordering()),
            0..=2
        ),
        fd_sets in proptest::collection::vec(proptest::collection::vec(arb_fd(), 1..=2), 1..=3),
        ops in proptest::collection::vec(0usize..3, 0..=5),
    ) {
        let mut spec = InputSpec::new();
        for o in &produced_orderings {
            spec.add_produced(o.clone());
        }
        for g in &produced_groupings {
            spec.add_produced(g.clone());
        }
        for (head, tail) in &tested_head_tails {
            if tail.attrs().iter().any(|a| head.attrs().contains(a)) {
                continue; // head/tail pairs need disjoint attribute sets
            }
            spec.add_tested(ofw_core::HeadTail::new(head.clone(), tail.clone()));
        }
        let set_ids: Vec<_> = fd_sets.iter().map(|f| spec.add_fd_set(f.clone())).collect();
        // A spec over a size cap has nothing to compare — skip it.
        if let Ok(eager) = OrderingFramework::prepare(&spec, PruneConfig::default()) {
            let total = eager.dfsm_states_total().expect("eager automata are complete");
            let options = [
                ofw_core::PrepareOptions::lazy(),
                ofw_core::PrepareOptions::auto(),
                ofw_core::PrepareOptions::auto().auto_threshold(2),
            ];
            for opt in &options {
                let fw = OrderingFramework::prepare_opts(&spec, PruneConfig::default(), opt)
                    .expect("mode changes cannot change whether preparation fits its caps");
                prop_assert_eq!(fw.produce_empty(), eager.produce_empty());
                for p in spec.produced() {
                    let h = fw.handle_property(p).expect("produced properties are interesting");
                    prop_assert_eq!(eager.handle_property(p), Some(h));
                    let mut sl = fw.produce(h);
                    let mut se = eager.produce(h);
                    prop_assert_eq!(sl, se, "start state for {:?}", p);
                    for &op in &ops {
                        if op >= set_ids.len() {
                            continue;
                        }
                        sl = fw.infer(sl, set_ids[op]);
                        se = eager.infer(se, set_ids[op]);
                        prop_assert_eq!(sl, se, "state after ops diverged for {:?}", p);
                        for (q, hq) in eager.properties() {
                            let got = match q {
                                LogicalProperty::Ordering(_) => fw.satisfies(sl, hq),
                                LogicalProperty::Grouping(_) => fw.satisfies_grouping(sl, hq),
                                LogicalProperty::HeadTail(_) => fw.satisfies_head_tail(sl, hq),
                            };
                            prop_assert_eq!(got, eager.satisfies(se, hq), "probe {:?}", q);
                        }
                    }
                }
                prop_assert!(fw.dfsm_states_materialized() <= total);
            }
        }
    }

    /// The domination matrix is a partial order consistent with
    /// `satisfies`: if A dominates B, A satisfies everything B does.
    #[test]
    fn domination_implies_satisfaction(
        produced in proptest::collection::vec(arb_ordering(), 2..=3),
        fd_sets in proptest::collection::vec(proptest::collection::vec(arb_fd(), 1..=2), 1..=2),
    ) {
        let mut spec = InputSpec::new();
        for o in &produced {
            spec.add_produced(o.clone());
        }
        let ids: Vec<_> = fd_sets.iter().map(|f| spec.add_fd_set(f.clone())).collect();
        let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();

        // Collect a handful of reachable states.
        let mut states = vec![fw.produce_empty()];
        for o in &produced {
            let mut s = fw.produce(fw.handle(o).unwrap());
            states.push(s);
            for &f in &ids {
                s = fw.infer(s, f);
                states.push(s);
            }
        }
        for &a in &states {
            for &b in &states {
                if fw.dominates(a, b) {
                    for (_, k) in fw.orders() {
                        if fw.satisfies(b, k) {
                            prop_assert!(
                                fw.satisfies(a, k),
                                "{:?} dominates {:?} but misses an order", a, b
                            );
                        }
                    }
                }
            }
        }
    }
}
