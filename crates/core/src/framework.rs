//! The public order-and-grouping-optimization ADT (paper §5.6, extended
//! to the combined framework of VLDB'04).
//!
//! [`OrderingFramework::prepare`] runs the whole preparation phase of
//! Fig. 3 once per query; afterwards the ADT `LogicalOrderings` is the
//! 4-byte [`State`], and all plan-generation operations are single array
//! or bit lookups:
//!
//! | paper operation              | here                    | cost |
//! |------------------------------|-------------------------|------|
//! | constructor (scan/sort)      | [`OrderingFramework::produce`] | O(1) |
//! | constructor (hash grouping)  | [`OrderingFramework::produce_grouping`] | O(1) |
//! | `contains(o)`                | [`OrderingFramework::satisfies`] | O(1) |
//! | `contains(g)` (grouping)     | [`OrderingFramework::satisfies_grouping`] | O(1) |
//! | `inferNewLogicalOrderings(F)`| [`OrderingFramework::infer`] | O(1) |
//!
//! Orderings and groupings share one handle space ([`OrderHandle`]) and
//! one state space: a [`State`] annotates a plan node with *everything*
//! the stream satisfies — the orderings it is sorted by and the
//! groupings it is grouped by — still in four bytes.
//!
//! # Preparation modes
//!
//! Determinization is the framework's only real cost, and
//! [`prepare_opts`](OrderingFramework::prepare_opts) lets the caller
//! pick how to pay it ([`PrepareMode`]):
//!
//! * **Eager** — the classic full subset construction, optionally with
//!   frontier parallelism on a [`PrepExecutor`]. Required for
//!   [`dfsm`](OrderingFramework::dfsm) introspection and for
//!   [`PrepareOptions::minimize`].
//! * **Lazy** — only the entry states are built; further DFSM states
//!   materialize on first probe (see [`crate::lazy`]). State numbering
//!   is always a prefix of the eager numbering, so handles, probe
//!   answers and plan tables are bit-identical across modes and thread
//!   counts.
//! * **Auto** (default) — lazy, but a construction that grows past
//!   [`PrepareOptions::auto_threshold`] states completes eagerly at
//!   once.
//!
//! Structurally identical specs can additionally share one prepared
//! automaton through a [`PreparedCache`]
//! ([`prepare_cached`](OrderingFramework::prepare_cached)): warm
//! preparation is a canonicalization pass plus a hash lookup.

use crate::dfsm::{Dfsm, PrepExecutor};
use crate::eqclass::EqClasses;
use crate::fd::FdSetId;
use crate::intern::{canonicalize, AttrCanonMap, CacheKey, PreparedCache};
use crate::lazy::LazyDfsm;
use crate::nfsm::{BuildError, Nfsm};
use crate::ordering::Ordering;
use crate::property::{Grouping, HeadTail, LogicalProperty};
use crate::prune::{prune_fds, prune_nfsm, PruneConfig};
use crate::spec::InputSpec;
use ofw_common::FxHashMap;
use ofw_obs::Trace;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The per-plan-node annotation: a DFSM state. Four bytes, `Copy` — the
/// O(1) space bound of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct State(pub u32);

impl std::fmt::Debug for State {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Handle of an interesting order (paper §5.5: handles replace orderings
/// so comparisons are constant-time).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct OrderHandle(pub u32);

impl std::fmt::Debug for OrderHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// Preparation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrepareError(pub BuildError);

impl std::fmt::Display for PrepareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "order-framework preparation failed: {}", self.0)
    }
}

impl std::error::Error for PrepareError {}

/// When (and how far) to run the subset construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PrepareMode {
    /// Full determinization at prepare time.
    Eager,
    /// Entry states only; everything else on first probe.
    Lazy,
    /// Lazy until [`PrepareOptions::auto_threshold`] states exist, then
    /// complete eagerly.
    #[default]
    Auto,
}

/// Default [`PrepareOptions::auto_threshold`]: past this many DFSM
/// states the lattice is evidently being explored broadly and per-probe
/// laziness stops paying for its locking.
pub const DEFAULT_AUTO_MATERIALIZE_THRESHOLD: usize = 1024;

/// Knobs of [`OrderingFramework::prepare_opts`].
#[derive(Clone)]
pub struct PrepareOptions {
    /// Eager, lazy or auto determinization (default auto).
    pub mode: PrepareMode,
    /// Run Hopcroft-style minimization after (full) determinization.
    /// Implies eager construction. Minimization preserves every probe
    /// answer but renumbers states, so it is opt-in: a minimized
    /// framework is probe-equivalent, not byte-identical, to an
    /// unminimized one.
    pub minimize: bool,
    /// Auto-mode materialization threshold (states).
    pub auto_threshold: usize,
    /// Executor for preparation parallelism: eager builds (and lazy
    /// builds crossing the threshold) fan each subset-construction
    /// frontier out on it, with state numbering identical to the serial
    /// build at any thread count.
    pub exec: Option<Arc<dyn PrepExecutor>>,
    /// Span sink for preparation phases (nfsm / determinize / minimize
    /// / intern). Disabled by default; never affects the prepared
    /// result and is excluded from interning cache keys.
    pub trace: Trace,
}

impl Default for PrepareOptions {
    fn default() -> Self {
        PrepareOptions {
            mode: PrepareMode::Auto,
            minimize: false,
            auto_threshold: DEFAULT_AUTO_MATERIALIZE_THRESHOLD,
            exec: None,
            trace: Trace::disabled(),
        }
    }
}

impl PrepareOptions {
    /// Eager determinization (the classic behavior of
    /// [`OrderingFramework::prepare`]).
    pub fn eager() -> Self {
        PrepareOptions {
            mode: PrepareMode::Eager,
            ..Self::default()
        }
    }

    /// Pure lazy determinization, no auto completion.
    pub fn lazy() -> Self {
        PrepareOptions {
            mode: PrepareMode::Lazy,
            ..Self::default()
        }
    }

    /// Auto determinization with the default threshold.
    pub fn auto() -> Self {
        Self::default()
    }

    /// Enables DFSM minimization (implies eager construction).
    pub fn minimize(mut self, on: bool) -> Self {
        self.minimize = on;
        self
    }

    /// Sets the auto-mode materialization threshold.
    pub fn auto_threshold(mut self, states: usize) -> Self {
        self.auto_threshold = states;
        self
    }

    /// Attaches a preparation executor.
    pub fn exec(mut self, exec: Arc<dyn PrepExecutor>) -> Self {
        self.exec = Some(exec);
        self
    }

    /// Attaches a span sink (default: disabled).
    pub fn trace(mut self, trace: &Trace) -> Self {
        self.trace = trace.clone();
        self
    }
}

impl std::fmt::Debug for PrepareOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrepareOptions")
            .field("mode", &self.mode)
            .field("minimize", &self.minimize)
            .field("auto_threshold", &self.auto_threshold)
            .field("exec", &self.exec.is_some())
            .field("trace", &self.trace.is_enabled())
            .finish()
    }
}

/// Metrics of the preparation phase — the quantities of the paper's
/// §6.2 table (NFSM size, DFSM size, total time, precomputed bytes).
#[derive(Clone, Debug, Default)]
pub struct PrepStats {
    /// NFSM nodes before step 2(d) pruning.
    pub nfsm_nodes_before_prune: usize,
    /// NFSM nodes after pruning.
    pub nfsm_nodes: usize,
    /// NFSM FD-edge count after pruning.
    pub nfsm_edges: usize,
    /// DFSM states materialized at the end of preparation (including
    /// the empty-stream state). For eager modes this is the total; for
    /// lazy modes it is just the entry states —
    /// [`OrderingFramework::dfsm_states_materialized`] reports the
    /// live count as probes materialize more.
    pub dfsm_states: usize,
    /// Total reachable DFSM states, when known at prepare time (eager
    /// modes; `None` for a lazy automaton until materialized).
    pub dfsm_states_total: Option<usize>,
    /// State count before minimization, when it ran and merged states.
    pub minimized_from: Option<usize>,
    /// Whether preparation was satisfied from a [`PreparedCache`] hit.
    pub interned_hit: bool,
    /// Functional dependencies removed by step 2(b).
    pub pruned_fds: usize,
    /// Bytes of precomputed runtime data (transition + contains tables)
    /// at the end of preparation.
    pub precomputed_bytes: usize,
    /// Wall-clock time of the whole preparation phase.
    pub prep_time: Duration,
}

/// The automaton behind a prepared framework: one fully-built DFSM or
/// its lazily-materializing twin. Both expose identical state ids.
pub(crate) enum Automaton {
    Eager(Dfsm),
    Lazy(LazyDfsm),
}

impl Automaton {
    fn columns(&self) -> &FxHashMap<LogicalProperty, u32> {
        match self {
            Automaton::Eager(d) => &d.columns,
            Automaton::Lazy(l) => l.columns(),
        }
    }

    fn start(&self) -> &FxHashMap<LogicalProperty, u32> {
        match self {
            Automaton::Eager(d) => &d.start,
            Automaton::Lazy(l) => l.start(),
        }
    }

    fn empty_state(&self) -> u32 {
        match self {
            Automaton::Eager(d) => d.empty_state,
            Automaton::Lazy(l) => l.empty_state(),
        }
    }

    fn materialized_states(&self) -> usize {
        match self {
            Automaton::Eager(d) => d.num_states(),
            Automaton::Lazy(l) => l.materialized_states(),
        }
    }

    fn total_states(&self) -> Option<usize> {
        match self {
            Automaton::Eager(d) => Some(d.num_states()),
            Automaton::Lazy(l) => l.total_states(),
        }
    }

    fn precomputed_bytes(&self) -> usize {
        match self {
            Automaton::Eager(d) => d.precomputed_bytes(),
            Automaton::Lazy(l) => l.precomputed_bytes(),
        }
    }
}

/// One preparation result: the pruned NFSM, its automaton, and the
/// spec-independent metrics. Shareable across queries through a
/// [`PreparedCache`].
pub(crate) struct Prepared {
    pub(crate) nfsm: Nfsm,
    pub(crate) automaton: Automaton,
    nfsm_nodes_before_prune: usize,
    pruned_fds: usize,
    minimized_from: Option<usize>,
}

/// The prepared order-and-grouping framework for one query.
///
/// Besides the ICDE'04 ordering operations, the framework answers
/// grouping questions at the same O(1) cost on the same DFSM path:
/// [`handle_grouping`](Self::handle_grouping) resolves an interesting
/// grouping once (cold path), then
/// [`satisfies_grouping`](Self::satisfies_grouping) is a single bit
/// probe and [`produce_grouping`](Self::produce_grouping) a single row
/// lookup, exactly like their ordering counterparts. An ordering on
/// `(a,b)` satisfies the groupings `{a}` and `{a,b}`; FDs and
/// equivalences apply to attribute *sets* (insertion and removal of
/// determined attributes, constants, equation substitution).
pub struct OrderingFramework {
    prepared: Arc<Prepared>,
    /// Interesting property (orderings prefix-closed, groupings as-is)
    /// → contains-column handle, in the query's own attribute space.
    handles: FxHashMap<LogicalProperty, OrderHandle>,
    /// Produced property → entry state (the `*` row).
    start_of: FxHashMap<OrderHandle, State>,
    stats: PrepStats,
}

impl OrderingFramework {
    /// Runs the preparation phase of Fig. 3: FD filtering, NFSM
    /// construction, NFSM pruning, eager determinization,
    /// precomputation. Equivalent to
    /// [`prepare_opts`](Self::prepare_opts) with
    /// [`PrepareOptions::eager`] — the classic entry point, kept eager
    /// so [`dfsm`](Self::dfsm) introspection always works.
    pub fn prepare(spec: &InputSpec, config: PruneConfig) -> Result<Self, PrepareError> {
        Self::prepare_opts(spec, config, &PrepareOptions::eager())
    }

    /// Preparation with explicit [`PrepareOptions`] (mode, minimization,
    /// parallelism). All modes expose bit-identical handles, states and
    /// probe answers — except under `minimize`, which renumbers states
    /// while preserving every probe answer.
    pub fn prepare_opts(
        spec: &InputSpec,
        config: PruneConfig,
        options: &PrepareOptions,
    ) -> Result<Self, PrepareError> {
        let t0 = Instant::now();
        let mut sp = options.trace.span("prepare");
        let prepared = Arc::new(Self::build_prepared(spec, &config, options)?);
        sp.count("nfsm_nodes", prepared.nfsm.num_nodes() as u64);
        sp.count(
            "dfsm_states",
            prepared.automaton.materialized_states() as u64,
        );
        Ok(Self::from_prepared(prepared, None, false, t0))
    }

    /// Preparation through an interning cache: the spec is canonicalized
    /// (attributes renamed by first occurrence), and structurally
    /// identical specs share one `Prepared` automaton — a warm prepare
    /// is a canonicalization pass plus a hash lookup. Handles and states
    /// returned by a cached framework are internally consistent but may
    /// be numbered differently from an uncached prepare of the same spec
    /// (canonical renaming can reorder set-valued properties), so mix
    /// cached and uncached frameworks only through their probe answers,
    /// never by comparing raw handle values.
    pub fn prepare_cached(
        spec: &InputSpec,
        config: PruneConfig,
        options: &PrepareOptions,
        cache: &PreparedCache,
    ) -> Result<Self, PrepareError> {
        let t0 = Instant::now();
        let mut sp = options.trace.span("prepare");
        let (canon_spec, map, key) = {
            let _intern = sp.child("intern");
            let (canon_spec, map) = canonicalize(spec);
            let key = CacheKey::new(&canon_spec, &config, options.minimize);
            (canon_spec, map, key)
        };
        let (prepared, hit) =
            cache.get_or_build(key, || Self::build_prepared(&canon_spec, &config, options))?;
        sp.count("interned_hit", u64::from(hit));
        if hit && options.mode == PrepareMode::Eager {
            // The cached entry may have been prepared lazily; an eager
            // request still guarantees a complete automaton.
            if let Automaton::Lazy(l) = &prepared.automaton {
                l.materialize_all(&prepared.nfsm);
            }
        }
        Ok(Self::from_prepared(prepared, Some(&map), hit, t0))
    }

    /// The mode-dispatched core of every prepare entry point.
    fn build_prepared(
        spec: &InputSpec,
        config: &PruneConfig,
        options: &PrepareOptions,
    ) -> Result<Prepared, PrepareError> {
        let eq = EqClasses::from_fds(spec.fd_sets().iter().flat_map(|s| s.fds().iter()));
        let (fd_sets, pruned_fds) = if config.prune_fds {
            prune_fds(spec, &eq, config)
        } else {
            (spec.fd_sets().to_vec(), 0)
        };
        let (nfsm, nfsm_nodes_before_prune) = {
            let mut sp = options.trace.span_at("nfsm", 1);
            let nfsm = Nfsm::build(spec, &fd_sets, &eq, config).map_err(PrepareError)?;
            let before = nfsm.num_nodes();
            let nfsm = prune_nfsm(nfsm, config);
            sp.count("nodes_before_prune", before as u64);
            sp.count("nodes", nfsm.num_nodes() as u64);
            sp.count("pruned_fds", pruned_fds as u64);
            (nfsm, before)
        };

        let eager = options.minimize || options.mode == PrepareMode::Eager;
        let (automaton, minimized_from) = if eager {
            let mut dfsm = {
                let mut sp = options.trace.span_at("determinize", 1);
                let dfsm = Dfsm::build_with(&nfsm, config, options.exec.as_deref())
                    .map_err(PrepareError)?;
                sp.count("states", dfsm.num_states() as u64);
                dfsm
            };
            let minimized_from = if options.minimize {
                let mut sp = options.trace.span_at("minimize", 1);
                let before = dfsm.minimize();
                sp.count("states_before", before as u64);
                sp.count("states", dfsm.num_states() as u64);
                (before > dfsm.num_states()).then_some(before)
            } else {
                None
            };
            (Automaton::Eager(dfsm), minimized_from)
        } else {
            let threshold = match options.mode {
                PrepareMode::Auto => Some(options.auto_threshold.max(1)),
                _ => None,
            };
            let mut sp = options.trace.span_at("determinize", 1);
            let lazy = LazyDfsm::new(&nfsm, config, threshold, options.exec.clone())
                .map_err(PrepareError)?;
            sp.count("states", lazy.materialized_states() as u64);
            sp.label("lazy");
            (Automaton::Lazy(lazy), None)
        };
        Ok(Prepared {
            nfsm,
            automaton,
            nfsm_nodes_before_prune,
            pruned_fds,
            minimized_from,
        })
    }

    /// Builds the per-query view over a (possibly shared) preparation:
    /// handles and start states, translated back into the query's own
    /// attribute space when the spec was canonicalized.
    fn from_prepared(
        prepared: Arc<Prepared>,
        map: Option<&AttrCanonMap>,
        interned_hit: bool,
        t0: Instant,
    ) -> Self {
        let mut handles: FxHashMap<LogicalProperty, OrderHandle> = FxHashMap::default();
        for (p, &col) in prepared.automaton.columns() {
            let p = match map {
                Some(m) => m.prop_to_original(p),
                None => p.clone(),
            };
            handles.insert(p, OrderHandle(col));
        }
        let mut start_of: FxHashMap<OrderHandle, State> = FxHashMap::default();
        for (p, &s) in prepared.automaton.start() {
            let p = match map {
                Some(m) => m.prop_to_original(p),
                None => p.clone(),
            };
            start_of.insert(handles[&p], State(s));
        }
        let stats = PrepStats {
            nfsm_nodes_before_prune: prepared.nfsm_nodes_before_prune,
            nfsm_nodes: prepared.nfsm.num_nodes(),
            nfsm_edges: prepared.nfsm.num_edges(),
            dfsm_states: prepared.automaton.materialized_states(),
            dfsm_states_total: prepared.automaton.total_states(),
            minimized_from: prepared.minimized_from,
            interned_hit,
            pruned_fds: prepared.pruned_fds,
            precomputed_bytes: prepared.automaton.precomputed_bytes(),
            prep_time: t0.elapsed(),
        };
        OrderingFramework {
            prepared,
            handles,
            start_of,
            stats,
        }
    }

    /// Handle of an interesting order (or of a prefix of one — `Q_I` is
    /// prefix-closed). `None` if the ordering was never interesting,
    /// meaning no operator may ask about it.
    pub fn handle(&self, o: &Ordering) -> Option<OrderHandle> {
        self.handles
            .get(&LogicalProperty::Ordering(o.clone()))
            .copied()
    }

    /// Handle of an interesting grouping. `None` if the grouping was
    /// never declared interesting.
    pub fn handle_grouping(&self, g: &Grouping) -> Option<OrderHandle> {
        self.handles
            .get(&LogicalProperty::Grouping(g.clone()))
            .copied()
    }

    /// Handle of an interesting head/tail pair. `None` if the pair was
    /// never declared interesting.
    pub fn handle_head_tail(&self, h: &HeadTail) -> Option<OrderHandle> {
        self.handles
            .get(&LogicalProperty::HeadTail(h.clone()))
            .copied()
    }

    /// Handle of an interesting property of either kind.
    pub fn handle_property(&self, p: &LogicalProperty) -> Option<OrderHandle> {
        self.handles.get(p).copied()
    }

    /// ADT constructor for an operator that *physically produces* an
    /// ordering (sort, ordered index scan): the `*`-row lookup of
    /// Fig. 10. Panics if `h` is not a produced interesting property —
    /// plan generators must only sort on members of `O_P`.
    #[inline]
    pub fn produce(&self, h: OrderHandle) -> State {
        self.start_of
            .get(&h)
            .copied()
            .unwrap_or_else(|| panic!("{h:?} is not a produced interesting property"))
    }

    /// ADT constructor for an operator that *physically groups* its
    /// output (hash aggregation, hash-based partitioning): same `*`-row
    /// lookup as [`produce`](Self::produce), O(1). Panics if `h` is not
    /// a produced interesting grouping.
    #[inline]
    pub fn produce_grouping(&self, h: OrderHandle) -> State {
        self.produce(h)
    }

    /// Whether `h` may be produced (is in `O_P`).
    pub fn is_producible(&self, h: OrderHandle) -> bool {
        self.start_of.contains_key(&h)
    }

    /// ADT constructor for an unordered tuple stream (heap scan).
    #[inline]
    pub fn produce_empty(&self) -> State {
        State(self.prepared.automaton.empty_state())
    }

    /// `inferNewLogicalOrderings`: applies an operator's FD set — one
    /// transition-table lookup (lazy mode materializes the row on first
    /// use).
    #[inline]
    pub fn infer(&self, s: State, f: FdSetId) -> State {
        match &self.prepared.automaton {
            Automaton::Eager(d) => State(d.step(s.0, f.index())),
            Automaton::Lazy(l) => State(l.step(&self.prepared.nfsm, s.0, f.index())),
        }
    }

    /// `contains`: does a stream in state `s` satisfy the interesting
    /// order `h`? One bit probe.
    #[inline]
    pub fn satisfies(&self, s: State, h: OrderHandle) -> bool {
        match &self.prepared.automaton {
            Automaton::Eager(d) => d.contains.get(s.0 as usize, h.0 as usize),
            Automaton::Lazy(l) => l.contains(s.0, h.0),
        }
    }

    /// `contains` for groupings: does a stream in state `s` satisfy the
    /// interesting grouping `h`? Same single bit probe as
    /// [`satisfies`](Self::satisfies) — groupings live in the same
    /// contains matrix, so the grouping test is O(1) on the DFSM path.
    #[inline]
    pub fn satisfies_grouping(&self, s: State, h: OrderHandle) -> bool {
        self.satisfies(s, h)
    }

    /// `contains` for head/tail pairs: is a stream in state `s` grouped
    /// by the pair's head *and* sorted by its tail within each group?
    /// Same single bit probe on the same 4-byte state — pair properties
    /// are contains-matrix columns like everything else, which is what
    /// keeps the partial-sort admission test O(1) in the plan generator.
    #[inline]
    pub fn satisfies_head_tail(&self, s: State, h: OrderHandle) -> bool {
        self.satisfies(s, h)
    }

    /// Plan-domination: `a`'s underlying NFSM node set is a superset of
    /// `b`'s, so `a` satisfies at least every interesting order `b` does
    /// — now and after any further FD application (transitions are
    /// monotone in the node set). One precomputed bit probe on the eager
    /// path, an on-demand subset comparison on the lazy path — the same
    /// relation either way. Because DFSM states carry only
    /// query-relevant information, this prunes more plans than Simmen's
    /// ordering+FD-set comparability — the paper's explanation for the
    /// lower `#Plans` in §7.
    #[inline]
    pub fn dominates(&self, a: State, b: State) -> bool {
        a == b
            || match &self.prepared.automaton {
                Automaton::Eager(d) => d.state_dominates(a.0, b.0),
                Automaton::Lazy(l) => l.dominates(a.0, b.0),
            }
    }

    /// All interesting *orderings* (prefix-closed) with their handles.
    pub fn orders(&self) -> impl Iterator<Item = (&Ordering, OrderHandle)> {
        self.handles
            .iter()
            .filter_map(|(p, &h)| p.as_ordering().map(|o| (o, h)))
    }

    /// All interesting *groupings* with their handles.
    pub fn groupings(&self) -> impl Iterator<Item = (&Grouping, OrderHandle)> {
        self.handles
            .iter()
            .filter_map(|(p, &h)| p.as_grouping().map(|g| (g, h)))
    }

    /// All interesting *head/tail pairs* with their handles.
    pub fn head_tails(&self) -> impl Iterator<Item = (&HeadTail, OrderHandle)> {
        self.handles
            .iter()
            .filter_map(|(p, &h)| p.as_head_tail().map(|ht| (ht, h)))
    }

    /// All interesting properties (orderings and groupings) with their
    /// handles.
    pub fn properties(&self) -> impl Iterator<Item = (&LogicalProperty, OrderHandle)> {
        self.handles.iter().map(|(p, &h)| (p, h))
    }

    /// Preparation metrics, frozen at the end of the prepare call.
    pub fn stats(&self) -> &PrepStats {
        &self.stats
    }

    /// DFSM states materialized *right now* — equals the total for
    /// eager modes, grows with probes for lazy ones.
    pub fn dfsm_states_materialized(&self) -> usize {
        self.prepared.automaton.materialized_states()
    }

    /// Total reachable DFSM states, when known (always for eager modes;
    /// for lazy ones only once fully materialized).
    pub fn dfsm_states_total(&self) -> Option<usize> {
        self.prepared.automaton.total_states()
    }

    /// Forces full determinization of a lazy automaton (no-op when
    /// eager). Makes [`dfsm_states_total`](Self::dfsm_states_total)
    /// available.
    pub fn materialize_all(&self) {
        if let Automaton::Lazy(l) = &self.prepared.automaton {
            l.materialize_all(&self.prepared.nfsm);
        }
    }

    /// The pruned NFSM (introspection for examples/tests).
    pub fn nfsm(&self) -> &Nfsm {
        &self.prepared.nfsm
    }

    /// The DFSM (introspection for examples/tests). Panics for lazily
    /// prepared frameworks, which have no dense `Dfsm` even when fully
    /// materialized — prepare eagerly when introspection is needed.
    pub fn dfsm(&self) -> &Dfsm {
        match &self.prepared.automaton {
            Automaton::Eager(d) => d,
            Automaton::Lazy(_) => {
                panic!("dfsm() introspection requires eager preparation (PrepareOptions::eager)")
            }
        }
    }

    /// Bytes of order-annotation storage a plan with `num_plan_nodes`
    /// nodes needs under this framework: 4 bytes per node plus the
    /// shared precomputed tables (as currently materialized).
    pub fn memory_bytes(&self, num_plan_nodes: usize) -> usize {
        num_plan_nodes * std::mem::size_of::<State>() + self.prepared.automaton.precomputed_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::Fd;
    use ofw_catalog::AttrId;

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);
    const C: AttrId = AttrId(2);
    const D: AttrId = AttrId(3);

    fn o(ids: &[AttrId]) -> Ordering {
        Ordering::new(ids.to_vec())
    }

    fn running_example() -> (InputSpec, FdSetId, FdSetId) {
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[B]));
        spec.add_produced(o(&[A, B]));
        spec.add_tested(o(&[A, B, C]));
        let f_bc = spec.add_fd_set(vec![Fd::functional(&[B], C)]);
        let f_bd = spec.add_fd_set(vec![Fd::functional(&[B], D)]);
        (spec, f_bc, f_bd)
    }

    #[test]
    fn section_5_6_walkthrough() {
        // "a sort by (a,b) results in a subplan with ordering 2 … after
        // applying an operator which induces b→c, the ordering changes
        // to 3, which also satisfies (a,b,c)".
        let (spec, f_bc, _) = running_example();
        let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
        let h_a = fw.handle(&o(&[A])).unwrap();
        let h_ab = fw.handle(&o(&[A, B])).unwrap();
        let h_abc = fw.handle(&o(&[A, B, C])).unwrap();
        let h_b = fw.handle(&o(&[B])).unwrap();

        let s = fw.produce(h_ab);
        assert!(fw.satisfies(s, h_a));
        assert!(fw.satisfies(s, h_ab));
        assert!(!fw.satisfies(s, h_abc));
        assert!(!fw.satisfies(s, h_b));

        let s2 = fw.infer(s, f_bc);
        assert!(fw.satisfies(s2, h_abc));
        assert!(fw.satisfies(s2, h_ab));
        // Inference is monotone and idempotent.
        assert_eq!(fw.infer(s2, f_bc), s2);
    }

    #[test]
    fn pruned_fd_set_is_identity() {
        let (spec, _, f_bd) = running_example();
        let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
        let s = fw.produce(fw.handle(&o(&[A, B])).unwrap());
        assert_eq!(fw.infer(s, f_bd), s);
        assert_eq!(fw.stats().pruned_fds, 1);
    }

    #[test]
    fn tested_only_orders_are_not_producible() {
        let (spec, _, _) = running_example();
        let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
        let h_abc = fw.handle(&o(&[A, B, C])).unwrap();
        assert!(!fw.is_producible(h_abc));
        assert!(fw.is_producible(fw.handle(&o(&[B])).unwrap()));
        // (a) is interesting (prefix) but not producible either.
        assert!(!fw.is_producible(fw.handle(&o(&[A])).unwrap()));
    }

    #[test]
    fn domination_is_contains_superset() {
        let (spec, f_bc, _) = running_example();
        let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
        let s_ab = fw.produce(fw.handle(&o(&[A, B])).unwrap());
        let s_b = fw.produce(fw.handle(&o(&[B])).unwrap());
        let s_abc = fw.infer(s_ab, f_bc);
        assert!(fw.dominates(s_abc, s_ab));
        assert!(!fw.dominates(s_ab, s_abc));
        assert!(!fw.dominates(s_ab, s_b));
        assert!(!fw.dominates(s_b, s_ab));
        assert!(fw.dominates(s_b, s_b));
        // The empty state is dominated by everything.
        assert!(fw.dominates(s_b, fw.produce_empty()));
    }

    #[test]
    fn state_is_four_bytes() {
        assert_eq!(std::mem::size_of::<State>(), 4);
    }

    #[test]
    fn grouping_walkthrough() {
        // Combined framework: produced ordering (a,b), produced grouping
        // {g_ab} (hash aggregation can generate it), FD b→c.
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[A, B]));
        spec.add_produced(Grouping::new(vec![A, B]));
        spec.add_tested(Grouping::new(vec![A, B, C]));
        let f_bc = spec.add_fd_set(vec![Fd::functional(&[B], C)]);
        let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();

        let h_ab = fw.handle(&o(&[A, B])).unwrap();
        let hg_ab = fw.handle_grouping(&Grouping::new(vec![A, B])).unwrap();
        let hg_abc = fw.handle_grouping(&Grouping::new(vec![A, B, C])).unwrap();

        // A sorted stream is grouped (by every prefix set)...
        let s = fw.produce(h_ab);
        assert!(fw.satisfies(s, h_ab));
        assert!(fw.satisfies_grouping(s, hg_ab));
        assert!(!fw.satisfies_grouping(s, hg_abc));
        // ...and FDs extend groupings by set insertion.
        let s2 = fw.infer(s, f_bc);
        assert!(fw.satisfies_grouping(s2, hg_abc));
        assert!(fw.satisfies(s2, h_ab), "ordering survives");

        // A hash-grouped stream satisfies its grouping but no ordering.
        let sg = fw.produce_grouping(hg_ab);
        assert!(fw.satisfies_grouping(sg, hg_ab));
        assert!(!fw.satisfies(sg, h_ab));
        assert!(fw.satisfies_grouping(fw.infer(sg, f_bc), hg_abc));
        // The sorted state dominates the merely-grouped one, never the
        // other way around.
        assert!(fw.dominates(s, sg));
        assert!(!fw.dominates(sg, s));
        // Groupings are enumerable separately from orderings.
        assert_eq!(fw.groupings().count(), 2);
        assert!(fw.orders().count() >= 2);
    }

    #[test]
    fn head_tail_walkthrough() {
        // The partial-sort scenario: hash output grouped by {a}, an FD
        // a→b from a later operator, and the interesting pair {a}(b)
        // the partial-sort admission asks about.
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[A, B]));
        spec.add_produced(Grouping::new(vec![A]));
        spec.add_tested(HeadTail::new(
            Grouping::new(vec![A]),
            Ordering::new(vec![B]),
        ));
        let f_ab = spec.add_fd_set(vec![Fd::functional(&[A], B)]);
        let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();

        let pair = HeadTail::new(Grouping::new(vec![A]), Ordering::new(vec![B]));
        let h_pair = fw.handle_head_tail(&pair).expect("interesting pair");
        assert!(!fw.is_producible(h_pair), "pairs are tested-only here");

        // A stream sorted by (a,b) satisfies the pair (decomposition).
        let s_sorted = fw.produce(fw.handle(&o(&[A, B])).unwrap());
        assert!(fw.satisfies_head_tail(s_sorted, h_pair));
        // A stream merely grouped by {a} does not…
        let hg_a = fw.handle_grouping(&Grouping::new(vec![A])).unwrap();
        let s_grouped = fw.produce_grouping(hg_a);
        assert!(!fw.satisfies_head_tail(s_grouped, h_pair));
        // …until a→b holds: b is constant inside every a-group, so the
        // grouped stream is trivially sorted by (b) within groups.
        let s2 = fw.infer(s_grouped, f_ab);
        assert!(fw.satisfies_head_tail(s2, h_pair));
        assert!(
            !fw.satisfies(s2, fw.handle(&o(&[A, B])).unwrap()),
            "the pair is weaker than the full ordering"
        );
        // Sorted dominates pair-satisfying-grouped, not vice versa.
        assert!(fw.dominates(fw.infer(s_sorted, f_ab), s2));
        assert!(!fw.dominates(s2, s_sorted));
        // Pairs are enumerable next to the other kinds.
        assert_eq!(fw.head_tails().count(), 1);
    }

    #[test]
    fn ordering_on_any_permutation_satisfies_the_set_grouping() {
        // Grouping {a,b} is satisfied by a stream sorted (b,a) — sets
        // ignore position.
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[B, A]));
        spec.add_tested(Grouping::new(vec![A, B]));
        let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
        let s = fw.produce(fw.handle(&o(&[B, A])).unwrap());
        let hg = fw.handle_grouping(&Grouping::new(vec![A, B])).unwrap();
        assert!(fw.satisfies_grouping(s, hg));
        // But {a} alone is NOT implied — only prefix sets are groupings,
        // and (b,a)'s prefix sets are {b} and {a,b}.
        assert!(fw.handle_grouping(&Grouping::new(vec![A])).is_none());
    }

    #[test]
    fn unknown_ordering_has_no_handle() {
        let (spec, _, _) = running_example();
        let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
        assert!(fw.handle(&o(&[C])).is_none());
        assert!(fw.handle(&o(&[B, A])).is_none());
    }

    #[test]
    fn stats_report_prep_metrics() {
        let (spec, _, _) = running_example();
        let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
        let st = fw.stats();
        assert_eq!(st.dfsm_states, 4);
        assert_eq!(st.dfsm_states_total, Some(4));
        assert!(!st.interned_hit);
        assert!(st.nfsm_nodes <= st.nfsm_nodes_before_prune);
        assert!(st.precomputed_bytes > 0);
        // Memory: O(1) per plan node.
        assert_eq!(fw.memory_bytes(1000) - fw.memory_bytes(0), 4000);
    }

    /// Lazy and auto preparation answer the §5.6 walkthrough with the
    /// exact same handle and state values as eager preparation.
    #[test]
    fn prepare_modes_are_byte_identical() {
        let (spec, f_bc, f_bd) = running_example();
        let eager = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
        for options in [PrepareOptions::lazy(), PrepareOptions::auto()] {
            let fw =
                OrderingFramework::prepare_opts(&spec, PruneConfig::default(), &options).unwrap();
            // Identical handle spaces...
            for (p, h) in eager.properties() {
                assert_eq!(fw.handle_property(p), Some(h));
            }
            assert_eq!(fw.produce_empty(), eager.produce_empty());
            // ...and identical states along probe paths.
            for (o, h) in eager.orders() {
                if !eager.is_producible(h) {
                    continue;
                }
                let _ = o;
                let (se, sl) = (eager.produce(h), fw.produce(h));
                assert_eq!(se, sl);
                for f in [f_bc, f_bd] {
                    assert_eq!(eager.infer(se, f), fw.infer(sl, f));
                }
                for (_, hh) in eager.properties() {
                    assert_eq!(eager.satisfies(se, hh), fw.satisfies(sl, hh));
                }
            }
            // Lazy starts small; probes materialize more; totals agree.
            assert!(fw.dfsm_states_materialized() <= eager.dfsm_states_materialized());
            fw.materialize_all();
            assert_eq!(fw.dfsm_states_total(), eager.dfsm_states_total());
        }
    }

    /// Minimization merges probe-equivalent states while preserving the
    /// walkthrough's probe answers. Redundancy comes from artificial
    /// nodes, so the test disables NFSM pruning (which removes most of
    /// it before determinization) to give minimization something to do.
    #[test]
    fn minimized_framework_is_probe_equivalent() {
        let (spec, f_bc, _) = running_example();
        let plain = OrderingFramework::prepare(&spec, PruneConfig::none()).unwrap();
        let min = OrderingFramework::prepare_opts(
            &spec,
            PruneConfig::none(),
            &PrepareOptions::eager().minimize(true),
        )
        .unwrap();
        let st = min.stats();
        assert!(st.minimized_from.is_some(), "redundant orders must merge");
        assert!(st.dfsm_states < st.minimized_from.unwrap());
        for (p, h_plain) in plain.properties() {
            let h_min = min.handle_property(p).unwrap();
            if !plain.is_producible(h_plain) {
                continue;
            }
            let (sp, sm) = (plain.produce(h_plain), min.produce(h_min));
            for (q, hq_plain) in plain.properties() {
                let hq_min = min.handle_property(q).unwrap();
                assert_eq!(plain.satisfies(sp, hq_plain), min.satisfies(sm, hq_min));
                assert_eq!(
                    plain.satisfies(plain.infer(sp, f_bc), hq_plain),
                    min.satisfies(min.infer(sm, f_bc), hq_min)
                );
            }
        }
    }
}
