//! The public order-and-grouping-optimization ADT (paper §5.6, extended
//! to the combined framework of VLDB'04).
//!
//! [`OrderingFramework::prepare`] runs the whole preparation phase of
//! Fig. 3 once per query; afterwards the ADT `LogicalOrderings` is the
//! 4-byte [`State`], and all plan-generation operations are single array
//! or bit lookups:
//!
//! | paper operation              | here                    | cost |
//! |------------------------------|-------------------------|------|
//! | constructor (scan/sort)      | [`OrderingFramework::produce`] | O(1) |
//! | constructor (hash grouping)  | [`OrderingFramework::produce_grouping`] | O(1) |
//! | `contains(o)`                | [`OrderingFramework::satisfies`] | O(1) |
//! | `contains(g)` (grouping)     | [`OrderingFramework::satisfies_grouping`] | O(1) |
//! | `inferNewLogicalOrderings(F)`| [`OrderingFramework::infer`] | O(1) |
//!
//! Orderings and groupings share one handle space ([`OrderHandle`]) and
//! one state space: a [`State`] annotates a plan node with *everything*
//! the stream satisfies — the orderings it is sorted by and the
//! groupings it is grouped by — still in four bytes.

use crate::dfsm::Dfsm;
use crate::eqclass::EqClasses;
use crate::fd::FdSetId;
use crate::nfsm::{BuildError, Nfsm};
use crate::ordering::Ordering;
use crate::property::{Grouping, HeadTail, LogicalProperty};
use crate::prune::{prune_fds, prune_nfsm, PruneConfig};
use crate::spec::InputSpec;
use ofw_common::FxHashMap;
use std::time::{Duration, Instant};

/// The per-plan-node annotation: a DFSM state. Four bytes, `Copy` — the
/// O(1) space bound of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct State(pub u32);

impl std::fmt::Debug for State {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Handle of an interesting order (paper §5.5: handles replace orderings
/// so comparisons are constant-time).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct OrderHandle(pub u32);

impl std::fmt::Debug for OrderHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// Preparation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrepareError(pub BuildError);

impl std::fmt::Display for PrepareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "order-framework preparation failed: {}", self.0)
    }
}

impl std::error::Error for PrepareError {}

/// Metrics of the preparation phase — the quantities of the paper's
/// §6.2 table (NFSM size, DFSM size, total time, precomputed bytes).
#[derive(Clone, Debug, Default)]
pub struct PrepStats {
    /// NFSM nodes before step 2(d) pruning.
    pub nfsm_nodes_before_prune: usize,
    /// NFSM nodes after pruning.
    pub nfsm_nodes: usize,
    /// NFSM FD-edge count after pruning.
    pub nfsm_edges: usize,
    /// DFSM states (including the empty-stream state).
    pub dfsm_states: usize,
    /// Functional dependencies removed by step 2(b).
    pub pruned_fds: usize,
    /// Bytes of precomputed runtime data (transition + contains tables).
    pub precomputed_bytes: usize,
    /// Wall-clock time of the whole preparation phase.
    pub prep_time: Duration,
}

/// The prepared order-and-grouping framework for one query.
///
/// Besides the ICDE'04 ordering operations, the framework answers
/// grouping questions at the same O(1) cost on the same DFSM path:
/// [`handle_grouping`](Self::handle_grouping) resolves an interesting
/// grouping once (cold path), then
/// [`satisfies_grouping`](Self::satisfies_grouping) is a single bit
/// probe and [`produce_grouping`](Self::produce_grouping) a single row
/// lookup, exactly like their ordering counterparts. An ordering on
/// `(a,b)` satisfies the groupings `{a}` and `{a,b}`; FDs and
/// equivalences apply to attribute *sets* (insertion and removal of
/// determined attributes, constants, equation substitution).
pub struct OrderingFramework {
    dfsm: Dfsm,
    nfsm: Nfsm,
    /// Interesting property (orderings prefix-closed, groupings as-is)
    /// → contains-column handle.
    handles: FxHashMap<LogicalProperty, OrderHandle>,
    /// Produced property → entry state (the `*` row).
    start_of: FxHashMap<OrderHandle, State>,
    stats: PrepStats,
}

impl OrderingFramework {
    /// Runs the preparation phase of Fig. 3: FD filtering, NFSM
    /// construction, NFSM pruning, determinization, precomputation.
    pub fn prepare(spec: &InputSpec, config: PruneConfig) -> Result<Self, PrepareError> {
        let t0 = Instant::now();
        let eq = EqClasses::from_fds(spec.fd_sets().iter().flat_map(|s| s.fds().iter()));
        let (fd_sets, pruned_fds) = if config.prune_fds {
            prune_fds(spec, &eq, &config)
        } else {
            (spec.fd_sets().to_vec(), 0)
        };
        let nfsm = Nfsm::build(spec, &fd_sets, &eq, &config).map_err(PrepareError)?;
        let nfsm_nodes_before_prune = nfsm.num_nodes();
        let nfsm = prune_nfsm(nfsm, &config);
        let dfsm = Dfsm::build(&nfsm, &config).map_err(PrepareError)?;

        let mut handles: FxHashMap<LogicalProperty, OrderHandle> = FxHashMap::default();
        for (p, &col) in &dfsm.columns {
            handles.insert(p.clone(), OrderHandle(col));
        }
        let mut start_of: FxHashMap<OrderHandle, State> = FxHashMap::default();
        for (p, &s) in &dfsm.start {
            start_of.insert(handles[p], State(s));
        }

        let stats = PrepStats {
            nfsm_nodes_before_prune,
            nfsm_nodes: nfsm.num_nodes(),
            nfsm_edges: nfsm.num_edges(),
            dfsm_states: dfsm.num_states(),
            pruned_fds,
            precomputed_bytes: dfsm.precomputed_bytes(),
            prep_time: t0.elapsed(),
        };
        Ok(OrderingFramework {
            dfsm,
            nfsm,
            handles,
            start_of,
            stats,
        })
    }

    /// Handle of an interesting order (or of a prefix of one — `Q_I` is
    /// prefix-closed). `None` if the ordering was never interesting,
    /// meaning no operator may ask about it.
    pub fn handle(&self, o: &Ordering) -> Option<OrderHandle> {
        self.handles
            .get(&LogicalProperty::Ordering(o.clone()))
            .copied()
    }

    /// Handle of an interesting grouping. `None` if the grouping was
    /// never declared interesting.
    pub fn handle_grouping(&self, g: &Grouping) -> Option<OrderHandle> {
        self.handles
            .get(&LogicalProperty::Grouping(g.clone()))
            .copied()
    }

    /// Handle of an interesting head/tail pair. `None` if the pair was
    /// never declared interesting.
    pub fn handle_head_tail(&self, h: &HeadTail) -> Option<OrderHandle> {
        self.handles
            .get(&LogicalProperty::HeadTail(h.clone()))
            .copied()
    }

    /// Handle of an interesting property of either kind.
    pub fn handle_property(&self, p: &LogicalProperty) -> Option<OrderHandle> {
        self.handles.get(p).copied()
    }

    /// ADT constructor for an operator that *physically produces* an
    /// ordering (sort, ordered index scan): the `*`-row lookup of
    /// Fig. 10. Panics if `h` is not a produced interesting property —
    /// plan generators must only sort on members of `O_P`.
    #[inline]
    pub fn produce(&self, h: OrderHandle) -> State {
        self.start_of
            .get(&h)
            .copied()
            .unwrap_or_else(|| panic!("{h:?} is not a produced interesting property"))
    }

    /// ADT constructor for an operator that *physically groups* its
    /// output (hash aggregation, hash-based partitioning): same `*`-row
    /// lookup as [`produce`](Self::produce), O(1). Panics if `h` is not
    /// a produced interesting grouping.
    #[inline]
    pub fn produce_grouping(&self, h: OrderHandle) -> State {
        self.produce(h)
    }

    /// Whether `h` may be produced (is in `O_P`).
    pub fn is_producible(&self, h: OrderHandle) -> bool {
        self.start_of.contains_key(&h)
    }

    /// ADT constructor for an unordered tuple stream (heap scan).
    #[inline]
    pub fn produce_empty(&self) -> State {
        State(self.dfsm.empty_state)
    }

    /// `inferNewLogicalOrderings`: applies an operator's FD set — one
    /// transition-table lookup.
    #[inline]
    pub fn infer(&self, s: State, f: FdSetId) -> State {
        State(self.dfsm.step(s.0, f.index()))
    }

    /// `contains`: does a stream in state `s` satisfy the interesting
    /// order `h`? One bit probe.
    #[inline]
    pub fn satisfies(&self, s: State, h: OrderHandle) -> bool {
        self.dfsm.contains.get(s.0 as usize, h.0 as usize)
    }

    /// `contains` for groupings: does a stream in state `s` satisfy the
    /// interesting grouping `h`? Same single bit probe as
    /// [`satisfies`](Self::satisfies) — groupings live in the same
    /// contains matrix, so the grouping test is O(1) on the DFSM path.
    #[inline]
    pub fn satisfies_grouping(&self, s: State, h: OrderHandle) -> bool {
        self.satisfies(s, h)
    }

    /// `contains` for head/tail pairs: is a stream in state `s` grouped
    /// by the pair's head *and* sorted by its tail within each group?
    /// Same single bit probe on the same 4-byte state — pair properties
    /// are contains-matrix columns like everything else, which is what
    /// keeps the partial-sort admission test O(1) in the plan generator.
    #[inline]
    pub fn satisfies_head_tail(&self, s: State, h: OrderHandle) -> bool {
        self.satisfies(s, h)
    }

    /// Plan-domination: `a`'s underlying NFSM node set is a superset of
    /// `b`'s, so `a` satisfies at least every interesting order `b` does
    /// — now and after any further FD application (transitions are
    /// monotone in the node set). One precomputed bit probe. Because
    /// DFSM states carry only query-relevant information, this prunes
    /// more plans than Simmen's ordering+FD-set comparability — the
    /// paper's explanation for the lower `#Plans` in §7.
    #[inline]
    pub fn dominates(&self, a: State, b: State) -> bool {
        a == b || self.dfsm.state_dominates(a.0, b.0)
    }

    /// All interesting *orderings* (prefix-closed) with their handles.
    pub fn orders(&self) -> impl Iterator<Item = (&Ordering, OrderHandle)> {
        self.handles
            .iter()
            .filter_map(|(p, &h)| p.as_ordering().map(|o| (o, h)))
    }

    /// All interesting *groupings* with their handles.
    pub fn groupings(&self) -> impl Iterator<Item = (&Grouping, OrderHandle)> {
        self.handles
            .iter()
            .filter_map(|(p, &h)| p.as_grouping().map(|g| (g, h)))
    }

    /// All interesting *head/tail pairs* with their handles.
    pub fn head_tails(&self) -> impl Iterator<Item = (&HeadTail, OrderHandle)> {
        self.handles
            .iter()
            .filter_map(|(p, &h)| p.as_head_tail().map(|ht| (ht, h)))
    }

    /// All interesting properties (orderings and groupings) with their
    /// handles.
    pub fn properties(&self) -> impl Iterator<Item = (&LogicalProperty, OrderHandle)> {
        self.handles.iter().map(|(p, &h)| (p, h))
    }

    /// Preparation metrics.
    pub fn stats(&self) -> &PrepStats {
        &self.stats
    }

    /// The pruned NFSM (introspection for examples/tests).
    pub fn nfsm(&self) -> &Nfsm {
        &self.nfsm
    }

    /// The DFSM (introspection for examples/tests).
    pub fn dfsm(&self) -> &Dfsm {
        &self.dfsm
    }

    /// Bytes of order-annotation storage a plan with `num_plan_nodes`
    /// nodes needs under this framework: 4 bytes per node plus the
    /// shared precomputed tables.
    pub fn memory_bytes(&self, num_plan_nodes: usize) -> usize {
        num_plan_nodes * std::mem::size_of::<State>() + self.stats.precomputed_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::Fd;
    use ofw_catalog::AttrId;

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);
    const C: AttrId = AttrId(2);
    const D: AttrId = AttrId(3);

    fn o(ids: &[AttrId]) -> Ordering {
        Ordering::new(ids.to_vec())
    }

    fn running_example() -> (InputSpec, FdSetId, FdSetId) {
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[B]));
        spec.add_produced(o(&[A, B]));
        spec.add_tested(o(&[A, B, C]));
        let f_bc = spec.add_fd_set(vec![Fd::functional(&[B], C)]);
        let f_bd = spec.add_fd_set(vec![Fd::functional(&[B], D)]);
        (spec, f_bc, f_bd)
    }

    #[test]
    fn section_5_6_walkthrough() {
        // "a sort by (a,b) results in a subplan with ordering 2 … after
        // applying an operator which induces b→c, the ordering changes
        // to 3, which also satisfies (a,b,c)".
        let (spec, f_bc, _) = running_example();
        let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
        let h_a = fw.handle(&o(&[A])).unwrap();
        let h_ab = fw.handle(&o(&[A, B])).unwrap();
        let h_abc = fw.handle(&o(&[A, B, C])).unwrap();
        let h_b = fw.handle(&o(&[B])).unwrap();

        let s = fw.produce(h_ab);
        assert!(fw.satisfies(s, h_a));
        assert!(fw.satisfies(s, h_ab));
        assert!(!fw.satisfies(s, h_abc));
        assert!(!fw.satisfies(s, h_b));

        let s2 = fw.infer(s, f_bc);
        assert!(fw.satisfies(s2, h_abc));
        assert!(fw.satisfies(s2, h_ab));
        // Inference is monotone and idempotent.
        assert_eq!(fw.infer(s2, f_bc), s2);
    }

    #[test]
    fn pruned_fd_set_is_identity() {
        let (spec, _, f_bd) = running_example();
        let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
        let s = fw.produce(fw.handle(&o(&[A, B])).unwrap());
        assert_eq!(fw.infer(s, f_bd), s);
        assert_eq!(fw.stats().pruned_fds, 1);
    }

    #[test]
    fn tested_only_orders_are_not_producible() {
        let (spec, _, _) = running_example();
        let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
        let h_abc = fw.handle(&o(&[A, B, C])).unwrap();
        assert!(!fw.is_producible(h_abc));
        assert!(fw.is_producible(fw.handle(&o(&[B])).unwrap()));
        // (a) is interesting (prefix) but not producible either.
        assert!(!fw.is_producible(fw.handle(&o(&[A])).unwrap()));
    }

    #[test]
    fn domination_is_contains_superset() {
        let (spec, f_bc, _) = running_example();
        let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
        let s_ab = fw.produce(fw.handle(&o(&[A, B])).unwrap());
        let s_b = fw.produce(fw.handle(&o(&[B])).unwrap());
        let s_abc = fw.infer(s_ab, f_bc);
        assert!(fw.dominates(s_abc, s_ab));
        assert!(!fw.dominates(s_ab, s_abc));
        assert!(!fw.dominates(s_ab, s_b));
        assert!(!fw.dominates(s_b, s_ab));
        assert!(fw.dominates(s_b, s_b));
        // The empty state is dominated by everything.
        assert!(fw.dominates(s_b, fw.produce_empty()));
    }

    #[test]
    fn state_is_four_bytes() {
        assert_eq!(std::mem::size_of::<State>(), 4);
    }

    #[test]
    fn grouping_walkthrough() {
        // Combined framework: produced ordering (a,b), produced grouping
        // {g_ab} (hash aggregation can generate it), FD b→c.
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[A, B]));
        spec.add_produced(Grouping::new(vec![A, B]));
        spec.add_tested(Grouping::new(vec![A, B, C]));
        let f_bc = spec.add_fd_set(vec![Fd::functional(&[B], C)]);
        let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();

        let h_ab = fw.handle(&o(&[A, B])).unwrap();
        let hg_ab = fw.handle_grouping(&Grouping::new(vec![A, B])).unwrap();
        let hg_abc = fw.handle_grouping(&Grouping::new(vec![A, B, C])).unwrap();

        // A sorted stream is grouped (by every prefix set)...
        let s = fw.produce(h_ab);
        assert!(fw.satisfies(s, h_ab));
        assert!(fw.satisfies_grouping(s, hg_ab));
        assert!(!fw.satisfies_grouping(s, hg_abc));
        // ...and FDs extend groupings by set insertion.
        let s2 = fw.infer(s, f_bc);
        assert!(fw.satisfies_grouping(s2, hg_abc));
        assert!(fw.satisfies(s2, h_ab), "ordering survives");

        // A hash-grouped stream satisfies its grouping but no ordering.
        let sg = fw.produce_grouping(hg_ab);
        assert!(fw.satisfies_grouping(sg, hg_ab));
        assert!(!fw.satisfies(sg, h_ab));
        assert!(fw.satisfies_grouping(fw.infer(sg, f_bc), hg_abc));
        // The sorted state dominates the merely-grouped one, never the
        // other way around.
        assert!(fw.dominates(s, sg));
        assert!(!fw.dominates(sg, s));
        // Groupings are enumerable separately from orderings.
        assert_eq!(fw.groupings().count(), 2);
        assert!(fw.orders().count() >= 2);
    }

    #[test]
    fn head_tail_walkthrough() {
        // The partial-sort scenario: hash output grouped by {a}, an FD
        // a→b from a later operator, and the interesting pair {a}(b)
        // the partial-sort admission asks about.
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[A, B]));
        spec.add_produced(Grouping::new(vec![A]));
        spec.add_tested(HeadTail::new(
            Grouping::new(vec![A]),
            Ordering::new(vec![B]),
        ));
        let f_ab = spec.add_fd_set(vec![Fd::functional(&[A], B)]);
        let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();

        let pair = HeadTail::new(Grouping::new(vec![A]), Ordering::new(vec![B]));
        let h_pair = fw.handle_head_tail(&pair).expect("interesting pair");
        assert!(!fw.is_producible(h_pair), "pairs are tested-only here");

        // A stream sorted by (a,b) satisfies the pair (decomposition).
        let s_sorted = fw.produce(fw.handle(&o(&[A, B])).unwrap());
        assert!(fw.satisfies_head_tail(s_sorted, h_pair));
        // A stream merely grouped by {a} does not…
        let hg_a = fw.handle_grouping(&Grouping::new(vec![A])).unwrap();
        let s_grouped = fw.produce_grouping(hg_a);
        assert!(!fw.satisfies_head_tail(s_grouped, h_pair));
        // …until a→b holds: b is constant inside every a-group, so the
        // grouped stream is trivially sorted by (b) within groups.
        let s2 = fw.infer(s_grouped, f_ab);
        assert!(fw.satisfies_head_tail(s2, h_pair));
        assert!(
            !fw.satisfies(s2, fw.handle(&o(&[A, B])).unwrap()),
            "the pair is weaker than the full ordering"
        );
        // Sorted dominates pair-satisfying-grouped, not vice versa.
        assert!(fw.dominates(fw.infer(s_sorted, f_ab), s2));
        assert!(!fw.dominates(s2, s_sorted));
        // Pairs are enumerable next to the other kinds.
        assert_eq!(fw.head_tails().count(), 1);
    }

    #[test]
    fn ordering_on_any_permutation_satisfies_the_set_grouping() {
        // Grouping {a,b} is satisfied by a stream sorted (b,a) — sets
        // ignore position.
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[B, A]));
        spec.add_tested(Grouping::new(vec![A, B]));
        let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
        let s = fw.produce(fw.handle(&o(&[B, A])).unwrap());
        let hg = fw.handle_grouping(&Grouping::new(vec![A, B])).unwrap();
        assert!(fw.satisfies_grouping(s, hg));
        // But {a} alone is NOT implied — only prefix sets are groupings,
        // and (b,a)'s prefix sets are {b} and {a,b}.
        assert!(fw.handle_grouping(&Grouping::new(vec![A])).is_none());
    }

    #[test]
    fn unknown_ordering_has_no_handle() {
        let (spec, _, _) = running_example();
        let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
        assert!(fw.handle(&o(&[C])).is_none());
        assert!(fw.handle(&o(&[B, A])).is_none());
    }

    #[test]
    fn stats_report_prep_metrics() {
        let (spec, _, _) = running_example();
        let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
        let st = fw.stats();
        assert_eq!(st.dfsm_states, 4);
        assert!(st.nfsm_nodes <= st.nfsm_nodes_before_prune);
        assert!(st.precomputed_bytes > 0);
        // Memory: O(1) per plan node.
        assert_eq!(fw.memory_bytes(1000) - fw.memory_bytes(0), 4000);
    }
}
