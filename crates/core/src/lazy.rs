//! Lazy determinization: the subset construction of [`crate::dfsm`],
//! truncated at the highest state a probe has actually touched.
//!
//! Most queries visit a small corner of the reachable subset lattice —
//! plan generation starts from a handful of entry states and applies
//! the few FD sets its operators induce, while the eager construction
//! pays for *every* reachable subset up front. The lazy automaton keeps
//! the same tables as the eager build but advances the BFS only as far
//! as probes demand:
//!
//! * **Numbering contract.** States are interned in exactly the eager
//!   BFS order (entry states first, then full transition rows in
//!   `(state, symbol)` order). A probe that needs state `s`'s row
//!   advances the BFS through states `processed..=s` — never partially,
//!   never out of order — so at every instant the lazy id space is a
//!   *prefix* of the eager one. `State` handles, `contains` answers and
//!   dominance verdicts are therefore bit-identical to eager mode, which
//!   is what lets `eager | lazy | auto` share one plan-table contract.
//! * **Concurrency.** Tables live behind an `RwLock`: probes that hit
//!   materialized rows take a read lock (the common case — plan
//!   generation re-probes the same few states constantly); a miss takes
//!   the write lock and advances the BFS. Which thread wins the race is
//!   irrelevant: the BFS extension is a deterministic function of the
//!   NFSM, not of the schedule.
//! * **Auto threshold.** In auto mode a lazy automaton that crosses a
//!   materialization threshold finishes the whole construction at once
//!   (optionally on an executor) — past that point the lattice is
//!   evidently being explored broadly and per-probe locking is pure
//!   overhead.

use crate::dfsm::{PrepExecutor, SubsetCtx, SubsetTables};
use crate::nfsm::Nfsm;
use crate::property::LogicalProperty;
use crate::prune::PruneConfig;
use ofw_common::FxHashMap;
use std::sync::{Arc, RwLock};

/// The on-demand DFSM. Same tables, same numbering, same probe answers
/// as [`crate::dfsm::Dfsm`] — materialized incrementally.
pub struct LazyDfsm {
    ctx: SubsetCtx,
    empty_state: u32,
    start: FxHashMap<LogicalProperty, u32>,
    columns: FxHashMap<LogicalProperty, u32>,
    /// Materialize everything once this many states exist (auto mode).
    auto_threshold: Option<usize>,
    exec: Option<Arc<dyn PrepExecutor>>,
    tables: RwLock<SubsetTables>,
}

impl LazyDfsm {
    /// Prepares the lazy automaton: ε-closures, column map and the
    /// entry states only — no BFS.
    pub fn new(
        nfsm: &Nfsm,
        config: &PruneConfig,
        auto_threshold: Option<usize>,
        exec: Option<Arc<dyn PrepExecutor>>,
    ) -> Result<Self, crate::nfsm::BuildError> {
        let (ctx, columns) = SubsetCtx::new(nfsm, config);
        let (tables, empty_state, start) = ctx.start_tables(nfsm)?;
        Ok(LazyDfsm {
            ctx,
            empty_state,
            start,
            columns,
            auto_threshold,
            exec,
            tables: RwLock::new(tables),
        })
    }

    /// Successor state under an FD-set symbol. O(1) once `state`'s row
    /// is materialized; otherwise advances the BFS up to and including
    /// `state` first.
    #[inline]
    pub fn step(&self, nfsm: &Nfsm, state: u32, sym: usize) -> u32 {
        {
            let t = self.tables.read().unwrap();
            if state < t.processed {
                return t.transitions[state as usize * self.ctx.num_symbols + sym];
            }
        }
        self.advance_past(nfsm, state, sym)
    }

    /// Slow path of [`step`](Self::step): advance the BFS until
    /// `state`'s transition row exists.
    #[cold]
    fn advance_past(&self, nfsm: &Nfsm, state: u32, sym: usize) -> u32 {
        let mut t = self.tables.write().unwrap();
        while t.processed <= state {
            self.ctx.process_next(nfsm, &mut t).unwrap_or_else(|e| {
                panic!("lazy determinization exceeded the configured cap: {e}")
            });
        }
        if let Some(limit) = self.auto_threshold {
            if t.states.len() >= limit {
                self.materialize_locked(nfsm, &mut t);
            }
        }
        t.transitions[state as usize * self.ctx.num_symbols + sym]
    }

    /// `contains` bit probe. Always O(1): a state's contains row is
    /// filled the moment the state is interned, and probes only ever
    /// hold interned state ids.
    #[inline]
    pub fn contains(&self, state: u32, col: u32) -> bool {
        let t = self.tables.read().unwrap();
        self.ctx.contains_bit(&t, state, col)
    }

    /// Future-proof plan domination: node-set inclusion, computed on
    /// demand from the interned subsets — the same relation the eager
    /// build precomputes (or, past its matrix limit, also computes on
    /// demand), so verdicts match eager mode bit for bit.
    #[inline]
    pub fn dominates(&self, a: u32, b: u32) -> bool {
        if a == b {
            return true;
        }
        let t = self.tables.read().unwrap();
        t.states.resolve(a).is_superset(t.states.resolve(b))
    }

    /// Runs the BFS to the fixpoint (on the configured executor when
    /// present), making every reachable state's row available.
    pub fn materialize_all(&self, nfsm: &Nfsm) {
        let mut t = self.tables.write().unwrap();
        self.materialize_locked(nfsm, &mut t);
    }

    fn materialize_locked(&self, nfsm: &Nfsm, t: &mut SubsetTables) {
        let result = match &self.exec {
            Some(e) => self.ctx.run_to_fixpoint_with(nfsm, t, e.as_ref()),
            None => self.ctx.run_to_fixpoint(nfsm, t),
        };
        result.unwrap_or_else(|e| panic!("lazy determinization exceeded the configured cap: {e}"));
    }

    /// States interned so far (materialized prefix of the eager id
    /// space).
    pub fn materialized_states(&self) -> usize {
        self.tables.read().unwrap().states.len()
    }

    /// Whether the BFS has reached its fixpoint (every interned state
    /// has a complete transition row and no new states remain).
    pub fn is_complete(&self) -> bool {
        let t = self.tables.read().unwrap();
        t.processed as usize == t.states.len()
    }

    /// Total reachable states — only known once complete.
    pub fn total_states(&self) -> Option<usize> {
        let t = self.tables.read().unwrap();
        (t.processed as usize == t.states.len()).then(|| t.states.len())
    }

    /// Runtime table bytes materialized so far (transition rows +
    /// contains rows + start row), mirroring
    /// [`Dfsm::precomputed_bytes`](crate::dfsm::Dfsm::precomputed_bytes).
    pub fn precomputed_bytes(&self) -> usize {
        let t = self.tables.read().unwrap();
        self.ctx.table_bytes(&t, self.start.len())
    }

    /// Entry state for the property-less stream.
    pub fn empty_state(&self) -> u32 {
        self.empty_state
    }

    /// Entry states per produced property (the `*` row).
    pub fn start(&self) -> &FxHashMap<LogicalProperty, u32> {
        &self.start
    }

    /// Column index per interesting property.
    pub fn columns(&self) -> &FxHashMap<LogicalProperty, u32> {
        &self.columns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfsm::Dfsm;
    use crate::eqclass::EqClasses;
    use crate::fd::Fd;
    use crate::ordering::Ordering;
    use crate::prune::{prune_fds, prune_nfsm};
    use crate::spec::InputSpec;
    use ofw_catalog::AttrId;

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);
    const C: AttrId = AttrId(2);
    const D: AttrId = AttrId(3);

    fn o(ids: &[AttrId]) -> LogicalProperty {
        Ordering::new(ids.to_vec()).into()
    }

    fn running_example_nfsm() -> (Nfsm, PruneConfig) {
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[B]));
        spec.add_produced(o(&[A, B]));
        spec.add_tested(o(&[A, B, C]));
        spec.add_fd_set(vec![Fd::functional(&[B], C)]);
        spec.add_fd_set(vec![Fd::functional(&[B], D)]);
        let config = PruneConfig::default();
        let eq = EqClasses::new();
        let (sets, _) = prune_fds(&spec, &eq, &config);
        let nfsm = Nfsm::build(&spec, &sets, &eq, &config).unwrap();
        (prune_nfsm(nfsm, &config), config)
    }

    /// Lazy and eager agree on every id, transition and probe — and the
    /// lazy automaton starts with only the entry states interned.
    #[test]
    fn lazy_is_a_prefix_of_eager() {
        let (nfsm, config) = running_example_nfsm();
        let eager = Dfsm::build(&nfsm, &config).unwrap();
        let lazy = LazyDfsm::new(&nfsm, &config, None, None).unwrap();

        assert_eq!(lazy.empty_state(), eager.empty_state);
        assert_eq!(*lazy.start(), eager.start);
        assert_eq!(*lazy.columns(), eager.columns);
        assert!(lazy.materialized_states() <= eager.num_states());
        assert_eq!(lazy.total_states(), None, "BFS has not started");

        // Probe every state along every 2-symbol path; ids must match.
        for &s0 in eager.start.values() {
            for a in 0..eager.num_symbols {
                for b in 0..eager.num_symbols {
                    let e = eager.step(eager.step(s0, a), b);
                    let l = lazy.step(&nfsm, lazy.step(&nfsm, s0, a), b);
                    assert_eq!(e, l);
                    for &col in eager.columns.values() {
                        assert_eq!(
                            eager.contains.get(e as usize, col as usize),
                            lazy.contains(l, col)
                        );
                    }
                }
            }
        }
        lazy.materialize_all(&nfsm);
        assert_eq!(lazy.total_states(), Some(eager.num_states()));
        assert!(lazy.precomputed_bytes() > 0);
    }

    /// Dominance verdicts match the eager precomputed matrix.
    #[test]
    fn lazy_dominance_matches_eager() {
        let (nfsm, config) = running_example_nfsm();
        let eager = Dfsm::build(&nfsm, &config).unwrap();
        let lazy = LazyDfsm::new(&nfsm, &config, None, None).unwrap();
        lazy.materialize_all(&nfsm);
        let n = eager.num_states() as u32;
        for a in 0..n {
            for b in 0..n {
                assert_eq!(eager.state_dominates(a, b), lazy.dominates(a, b));
            }
        }
    }

    /// Crossing the auto threshold completes the construction.
    #[test]
    fn auto_threshold_materializes_fully() {
        let (nfsm, config) = running_example_nfsm();
        let lazy = LazyDfsm::new(&nfsm, &config, Some(1), None).unwrap();
        assert!(!lazy.is_complete() || lazy.materialized_states() > 0);
        // Any miss trips the 1-state threshold and finishes the BFS.
        let s0 = lazy.empty_state();
        let _ = lazy.step(&nfsm, s0, 0);
        assert!(lazy.is_complete());
        assert_eq!(
            lazy.total_states(),
            Some(Dfsm::build(&nfsm, &config).unwrap().num_states())
        );
    }
}
