//! Functional dependencies, equations and constants (paper §2).
//!
//! Every algebraic operator is associated with a *set* of functional
//! dependencies describing how it changes logical orderings:
//!
//! * `B1,…,Bk → B` — classic FD (e.g. from a key or a computed column);
//! * `A = B` — an equation, as induced by an equi-join predicate. It is
//!   strictly stronger than the FD pair `{A→B, B→A}` because it also
//!   permits *substituting* one attribute for the other in place;
//! * `∅ → A` — a constant, induced by a selection `A = const`.
//!
//! FD *sets* — not single FDs — are the input alphabet of the NFSM, since
//! one operator may introduce several dependencies at once (§4).

use ofw_catalog::AttrId;

/// One normalized dependency.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Fd {
    /// `lhs → rhs` with a single right-hand attribute. FDs with multi-
    /// attribute right-hand sides are normalized into several of these
    /// (paper §2, footnote 2).
    Functional { lhs: Box<[AttrId]>, rhs: AttrId },
    /// `A = B` (equi-join predicate).
    Equation(AttrId, AttrId),
    /// `∅ → A` (selection `A = const`).
    Constant(AttrId),
}

impl Fd {
    /// Convenience constructor for `lhs → rhs`.
    pub fn functional(lhs: &[AttrId], rhs: AttrId) -> Fd {
        debug_assert!(!lhs.contains(&rhs), "trivial FD {lhs:?} -> {rhs:?}");
        let mut l: Vec<AttrId> = lhs.to_vec();
        l.sort_unstable();
        l.dedup();
        Fd::Functional {
            lhs: l.into_boxed_slice(),
            rhs,
        }
    }

    /// Convenience constructor for `a = b` (stored with `a < b` so equal
    /// equations compare equal regardless of writing order).
    pub fn equation(a: AttrId, b: AttrId) -> Fd {
        assert_ne!(a, b, "trivial equation");
        if a < b {
            Fd::Equation(a, b)
        } else {
            Fd::Equation(b, a)
        }
    }

    /// Convenience constructor for `∅ → a`.
    pub fn constant(a: AttrId) -> Fd {
        Fd::Constant(a)
    }

    /// All attributes mentioned by the dependency.
    pub fn attrs(&self) -> Vec<AttrId> {
        match self {
            Fd::Functional { lhs, rhs } => {
                let mut v = lhs.to_vec();
                v.push(*rhs);
                v
            }
            Fd::Equation(a, b) => vec![*a, *b],
            Fd::Constant(a) => vec![*a],
        }
    }

    /// Attributes that can be *introduced into* an ordering by applying
    /// this dependency (the right-hand sides).
    pub fn producible_attrs(&self) -> Vec<AttrId> {
        match self {
            Fd::Functional { rhs, .. } => vec![*rhs],
            Fd::Equation(a, b) => vec![*a, *b],
            Fd::Constant(a) => vec![*a],
        }
    }
}

impl std::fmt::Debug for Fd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fd::Functional { lhs, rhs } => write!(f, "{lhs:?}->{rhs:?}"),
            Fd::Equation(a, b) => write!(f, "{a:?}={b:?}"),
            Fd::Constant(a) => write!(f, "{a:?}=const"),
        }
    }
}

/// The set of dependencies introduced by one algebraic operator — one
/// input symbol of the NFSM/DFSM.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct FdSet {
    fds: Vec<Fd>,
}

impl FdSet {
    /// Builds a set, deduplicating and sorting for canonical equality.
    pub fn new(mut fds: Vec<Fd>) -> Self {
        fds.sort();
        fds.dedup();
        FdSet { fds }
    }

    /// The member dependencies.
    pub fn fds(&self) -> &[Fd] {
        &self.fds
    }

    /// True if no dependency remains (e.g. after FD pruning).
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// Number of dependencies.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// A copy with `keep` applied as a retain-filter.
    pub fn filtered(&self, mut keep: impl FnMut(&Fd) -> bool) -> FdSet {
        FdSet {
            fds: self.fds.iter().filter(|fd| keep(fd)).cloned().collect(),
        }
    }
}

/// Dense handle of an [`FdSet`] within an
/// [`InputSpec`](crate::spec::InputSpec) — the form the plan generator
/// passes around (paper §5.5: "every occurrence … is replaced by a
/// handle").
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FdSetId(pub u32);

impl FdSetId {
    /// Raw index for dense arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for FdSetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "F{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);
    const C: AttrId = AttrId(2);

    #[test]
    fn equation_is_canonical() {
        assert_eq!(Fd::equation(A, B), Fd::equation(B, A));
    }

    #[test]
    fn functional_lhs_is_canonical() {
        assert_eq!(Fd::functional(&[B, A], C), Fd::functional(&[A, B, A], C));
    }

    #[test]
    fn producible_attrs() {
        assert_eq!(Fd::functional(&[A], C).producible_attrs(), vec![C]);
        assert_eq!(Fd::equation(A, B).producible_attrs(), vec![A, B]);
        assert_eq!(Fd::constant(C).producible_attrs(), vec![C]);
    }

    #[test]
    fn fdset_dedups() {
        let s = FdSet::new(vec![
            Fd::equation(A, B),
            Fd::equation(B, A),
            Fd::constant(C),
        ]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "trivial equation")]
    fn trivial_equation_rejected() {
        let _ = Fd::equation(A, A);
    }

    #[test]
    fn debug_render() {
        assert_eq!(format!("{:?}", Fd::functional(&[A, B], C)), "[a0, a1]->a2");
        assert_eq!(format!("{:?}", Fd::equation(B, A)), "a0=a1");
        assert_eq!(format!("{:?}", Fd::constant(A)), "a0=const");
    }
}
