//! NFSM size reduction (paper §5.7, steps 2(b) and 2(d) of Fig. 3).
//!
//! Four techniques, all individually toggleable so the paper's
//! with/without-pruning comparison (§6.2) and our ablation benches can
//! isolate each one:
//!
//! 1. **FD pruning** (`prune_fds`): dependencies that can never lead to a
//!    *new* interesting order are dropped before node expansion — this is
//!    the paper's `F_P` formula. It removed `{b→d}` in the running
//!    example because `d` occurs in no interesting order.
//! 2. **Artificial-node merging** (`merge_artificial`): artificial nodes
//!    with identical behaviour (same ε and FD edges) collapse into one.
//! 3. **ε-replacement** (`eps_replace`): an artificial node whose non-ε
//!    behaviour is fully subsumed by its prefixes is deleted and incoming
//!    edges are relinked to those prefixes — this removed `(b,c)` in the
//!    running example (Fig. 5 → Fig. 6).
//! 4. **Closure bounding** (`prefix_filter`, `length_cutoff`): applied
//!    during derivation, see [`crate::filter`] and [`crate::derive`].

use crate::derive::{grouping_closure, DeriveCtx};
use crate::eqclass::EqClasses;
use crate::fd::{Fd, FdSet};
use crate::filter::{GroupingFilter, PrefixFilter};
use crate::nfsm::{Nfsm, NodeId};
use crate::ordering::Ordering;
use crate::property::Grouping;
use crate::spec::InputSpec;
use ofw_common::{FxHashMap, FxHashSet};

/// Switches for the §5.7 reduction techniques plus state-space caps.
#[derive(Clone, Debug)]
pub struct PruneConfig {
    /// Step 2(b): drop FDs that can never produce a new interesting order.
    pub prune_fds: bool,
    /// Step 2(d): merge behaviourally identical artificial nodes.
    pub merge_artificial: bool,
    /// Step 2(d): delete artificial nodes subsumed by their prefixes.
    pub eps_replace: bool,
    /// Bound derivations with the interesting-order prefix trie.
    pub prefix_filter: bool,
    /// Cut derived orderings at the longest interesting order's length.
    pub length_cutoff: bool,
    /// Hard cap on NFSM nodes (guards the un-pruned configuration).
    pub max_nodes: usize,
    /// Hard cap on DFSM states.
    pub max_dfsm_states: usize,
}

impl Default for PruneConfig {
    /// Everything on — the configuration the paper recommends.
    fn default() -> Self {
        PruneConfig {
            prune_fds: true,
            merge_artificial: true,
            eps_replace: true,
            prefix_filter: true,
            length_cutoff: true,
            max_nodes: 1 << 20,
            max_dfsm_states: 1 << 20,
        }
    }
}

impl PruneConfig {
    /// Everything off — the paper's "w/o pruning" measurement column.
    pub fn none() -> Self {
        PruneConfig {
            prune_fds: false,
            merge_artificial: false,
            eps_replace: false,
            prefix_filter: false,
            length_cutoff: false,
            ..PruneConfig::default()
        }
    }
}

/// Step 2(b): returns the FD sets with prunable dependencies removed,
/// plus the number of dependencies dropped.
///
/// The paper's `F_P` prunes dependencies "that can never lead to a new
/// interesting order". Read literally, the formula only applies the
/// candidate dependency *first* (directly to an interesting order), which
/// would wrongly prune a dependency needed later in a chain — e.g. with
/// `O_I = {(a),(a,b)}` and `F = {a→d, d=b}`, the equation `d=b` never
/// helps when applied to `(a)` or `(a,b)` directly, yet the chain
/// `(a) ⊢_{a→d} (a,d) ⊢_{d=b} (a,b)` needs it. We therefore implement the
/// intent with two sound tests:
///
/// 1. quick test — if none of the attributes a dependency can introduce
///    occurs in any interesting order (modulo equivalence classes), it is
///    prunable (this is exactly the paper's `{b→d}` argument: inserting a
///    never-interesting attribute contaminates every prefix it precedes,
///    so it can never complete an interesting order, under *any* operator
///    sequence);
/// 2. within-set leave-one-out — a dependency is redundant if its own
///    FD set derives exactly the same orderings without it (e.g. `a→b`
///    next to the equation `a=b`). Cross-set redundancy must NOT be
///    exploited: the plan generator applies FD sets one operator at a
///    time, and a sequence may include only one of the two sets.
pub fn prune_fds(spec: &InputSpec, eq: &EqClasses, config: &PruneConfig) -> (Vec<FdSet>, usize) {
    let all_fds: Vec<Fd> = spec
        .fd_sets()
        .iter()
        .flat_map(|s| s.fds().iter().cloned())
        .collect();
    let filter = PrefixFilter::new(
        spec.interesting_orderings(),
        &all_fds,
        eq,
        config.prefix_filter,
    );
    // Same cutoff policy as NFSM construction: the admission filter
    // subsumes the blanket length cutoff.
    let max_len = if !config.prefix_filter && config.length_cutoff {
        spec.max_interesting_len()
    } else {
        usize::MAX
    };
    let ctx = DeriveCtx {
        eq,
        filter: &filter,
        max_len,
    };

    // Interesting orders, prefix-closed and sorted for binary search.
    let mut interesting: Vec<Ordering> = Vec::new();
    for o in spec.interesting_orderings() {
        interesting.push(o.clone());
        interesting.extend(o.proper_prefixes());
    }
    interesting.sort();
    interesting.dedup();
    // Interesting pairs participate through their implied groupings
    // (head plus any absorbed tail prefix): a dependency fires on a pair
    // `(H, T)` exactly when it fires on one of these sets (both
    // components draw determinants from `H ∪ T`), so redundancy w.r.t.
    // the grouping universe is redundancy w.r.t. pairs too.
    let mut interesting_groupings: Vec<Grouping> = spec.interesting_groupings().cloned().collect();
    interesting_groupings.extend(
        spec.interesting_head_tails()
            .flat_map(crate::property::HeadTail::absorbed_heads),
    );
    interesting_groupings.sort();
    interesting_groupings.dedup();

    // Phase 1: quick relevance test. A dependency whose producible
    // attributes (representatives) occur neither in any interesting
    // order nor on the left-hand side of any functional dependency can
    // never matter: the attributes it introduces cannot match an
    // interesting-order position, cannot make a gap fillable, and cannot
    // serve as a determinant for removals or further insertions. (The
    // interesting-order part alone — the paper's `{b→d}` argument — is
    // not sufficient once removals exist: a constant can be inserted,
    // used as a determinant, and removed again.)
    let mut relevant_reps: FxHashSet<ofw_catalog::AttrId> = FxHashSet::default();
    for o in &interesting {
        for &a in o.attrs() {
            relevant_reps.insert(ctx.eq.find(a));
        }
    }
    for g in &interesting_groupings {
        for &a in g.attrs() {
            relevant_reps.insert(ctx.eq.find(a));
        }
    }
    for set in spec.fd_sets() {
        for fd in set.fds() {
            if let Fd::Functional { lhs, .. } = fd {
                for &l in lhs.iter() {
                    relevant_reps.insert(ctx.eq.find(l));
                }
            }
        }
    }
    let occurs = |fd: &Fd| {
        fd.producible_attrs()
            .iter()
            .any(|&p| relevant_reps.contains(&ctx.eq.find(p)))
    };
    let mut survivors: Vec<Fd> = spec
        .fd_sets()
        .iter()
        .flat_map(|s| s.fds().iter().cloned())
        .filter(occurs)
        .collect();
    survivors.sort();
    survivors.dedup();

    // Reachable orderings U: interesting orders plus everything the full
    // surviving set derives from them (a superset of anything any
    // operator sequence can reach).
    let mut universe: Vec<Ordering> = interesting.clone();
    for o in &interesting {
        universe.extend(ctx.closure(o, &survivors));
    }
    universe.sort();
    universe.dedup();

    // The grouping universe: interesting groupings, the prefix sets of
    // the ordering universe (the ordering→grouping crossover), and
    // everything the surviving set derives from them. Empty when the
    // spec declares no groupings — then the grouping comparison below is
    // a no-op and phase 2 behaves exactly like the ordering-only
    // framework.
    let gfilter = GroupingFilter::permissive();
    let mut guniverse: Vec<Grouping> = Vec::new();
    if !interesting_groupings.is_empty() {
        guniverse.extend(interesting_groupings.iter().cloned());
        for o in &universe {
            for len in 1..=o.len() {
                guniverse.push(Grouping::new(o.attrs()[..len].to_vec()));
            }
        }
        guniverse.sort();
        guniverse.dedup();
        let seeds = guniverse.clone();
        for g in &seeds {
            guniverse.extend(grouping_closure(g, &survivors, &gfilter));
        }
        guniverse.sort();
        guniverse.dedup();
    }

    // Orderings derivable from `w` under `fds`, as a canonical set.
    let reach = |w: &Ordering, fds: &[Fd]| -> Vec<Ordering> {
        let mut r = ctx.closure(w, fds);
        r.sort();
        r.dedup();
        r
    };
    // Groupings derivable from `w` under `fds`, as a canonical set.
    let greach = |w: &Grouping, fds: &[Fd]| -> Vec<Grouping> {
        let mut r = grouping_closure(w, fds, &gfilter);
        r.sort();
        r
    };

    // Phase 2: per-set sequential leave-one-out. Sequential because two
    // mutually redundant dependencies in one set must not both go. A
    // dependency must be redundant for *both* ordering and grouping
    // derivation to be dropped — the set rules are more permissive, so
    // an FD useless for orderings may still produce a grouping.
    let mut removed = 0usize;
    let sets = spec
        .fd_sets()
        .iter()
        .map(|set| {
            // Start from the quick-test survivors of this set.
            let mut current: Vec<Fd> = set
                .fds()
                .iter()
                .filter(|fd| survivors.contains(fd))
                .cloned()
                .collect();
            let baseline: Vec<Vec<Ordering>> =
                universe.iter().map(|w| reach(w, &current)).collect();
            let gbaseline: Vec<Vec<Grouping>> =
                guniverse.iter().map(|w| greach(w, &current)).collect();
            let mut i = 0;
            while i < current.len() {
                let mut without = current.clone();
                without.remove(i);
                let redundant = universe
                    .iter()
                    .enumerate()
                    .all(|(w_i, w)| reach(w, &without) == baseline[w_i])
                    && guniverse
                        .iter()
                        .enumerate()
                        .all(|(w_i, w)| greach(w, &without) == gbaseline[w_i]);
                if redundant {
                    current.remove(i);
                } else {
                    i += 1;
                }
            }
            removed += set.len() - current.len();
            FdSet::new(current)
        })
        .collect();
    (sets, removed)
}

/// Steps 2(d): artificial-node merging and ε-replacement, iterated to a
/// fixpoint, followed by compaction. Returns the reduced NFSM.
pub fn prune_nfsm(mut nfsm: Nfsm, config: &PruneConfig) -> Nfsm {
    loop {
        let mut changed = false;
        if config.merge_artificial {
            changed |= merge_artificial_once(&mut nfsm);
        }
        if config.eps_replace {
            changed |= eps_replace_once(&mut nfsm);
        }
        if !changed {
            break;
        }
        nfsm = compact_unreferenced(nfsm);
    }
    nfsm
}

/// Merges artificial nodes with identical outgoing behaviour. Returns
/// whether anything was merged. Merged-away nodes have their edges
/// redirected; compaction removes them afterwards.
fn merge_artificial_once(nfsm: &mut Nfsm) -> bool {
    // Signature: (ε-targets, per-symbol FD targets). The node itself is
    // folded into each target list — determinization keeps the source
    // alive on every transition (self-retention), so two nodes that
    // merely cross-reference each other (e.g. (a,b)/(a,c) under
    // {a→b, a→c}) are behaviourally identical.
    let mut by_sig: FxHashMap<(Vec<NodeId>, Vec<Vec<NodeId>>), NodeId> = FxHashMap::default();
    let mut replace: FxHashMap<NodeId, NodeId> = FxHashMap::default();
    for node in 1..nfsm.num_nodes() as NodeId {
        if nfsm.info[node as usize].interesting {
            continue;
        }
        let with_self = |list: &[NodeId]| -> Vec<NodeId> {
            let mut v = list.to_vec();
            if let Err(pos) = v.binary_search(&node) {
                v.insert(pos, node);
            }
            v
        };
        let sig = (
            nfsm.eps[node as usize].clone(),
            nfsm.edges[node as usize]
                .iter()
                .map(|t| with_self(t))
                .collect::<Vec<_>>(),
        );
        match by_sig.entry(sig) {
            std::collections::hash_map::Entry::Occupied(e) => {
                replace.insert(node, *e.get());
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(node);
            }
        }
    }
    if replace.is_empty() {
        return false;
    }
    redirect(nfsm, |t| replace.get(&t).map(|&r| vec![r]));
    true
}

/// Deletes artificial nodes whose non-ε behaviour is subsumed by their
/// prefixes; incoming edges are relinked to the prefixes.
fn eps_replace_once(nfsm: &mut Nfsm) -> bool {
    let mut removed: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
    'nodes: for node in 1..nfsm.num_nodes() as NodeId {
        if nfsm.info[node as usize].interesting {
            continue;
        }
        let eps = nfsm.eps[node as usize].clone();
        for sym in 0..nfsm.num_symbols {
            // Everything this node derives must also be derivable from
            // one of its prefixes (which travel with it in every DFSM
            // state, since ε-closure pulls them in).
            let mine = &nfsm.edges[node as usize][sym];
            let subsumed = mine.iter().all(|t| {
                *t == node || eps.iter().any(|&p| nfsm.edges[p as usize][sym].contains(t))
            });
            if !subsumed {
                continue 'nodes;
            }
        }
        removed.insert(node, eps);
    }
    if removed.is_empty() {
        return false;
    }
    // Avoid cascading removals referencing each other in one pass:
    // resolve replacement lists transitively.
    let resolve = |t: NodeId| -> Option<Vec<NodeId>> {
        removed.get(&t).map(|eps| {
            let mut out: Vec<NodeId> = Vec::new();
            let mut work = eps.clone();
            while let Some(p) = work.pop() {
                if let Some(more) = removed.get(&p) {
                    work.extend_from_slice(more);
                } else {
                    out.push(p);
                }
            }
            out
        })
    };
    redirect(nfsm, resolve);
    // Detach the removed nodes entirely.
    for (&node, _) in removed.iter() {
        nfsm.eps[node as usize].clear();
        for sym in 0..nfsm.num_symbols {
            nfsm.edges[node as usize][sym].clear();
        }
    }
    true
}

/// Rewrites every edge/ε target through `map` (None = keep as is).
fn redirect(nfsm: &mut Nfsm, map: impl Fn(NodeId) -> Option<Vec<NodeId>>) {
    let rewrite = |list: &mut Vec<NodeId>| {
        let mut out: Vec<NodeId> = Vec::with_capacity(list.len());
        for &t in list.iter() {
            match map(t) {
                Some(repl) => out.extend(repl),
                None => out.push(t),
            }
        }
        out.sort_unstable();
        out.dedup();
        *list = out;
    };
    for node in 0..nfsm.num_nodes() {
        rewrite(&mut nfsm.eps[node]);
        for sym in 0..nfsm.num_symbols {
            rewrite(&mut nfsm.edges[node][sym]);
        }
    }
}

/// Drops nodes that are neither interesting nor referenced by any other
/// node (merge/replace leave such orphans behind).
fn compact_unreferenced(nfsm: Nfsm) -> Nfsm {
    let n = nfsm.num_nodes();
    let mut keep: Vec<bool> = nfsm
        .info
        .iter()
        .map(|i| i.interesting || i.produced)
        .collect();
    keep[0] = true;
    // Anything referenced from a kept node must stay; iterate since
    // reachability chains through artificial nodes.
    loop {
        let mut changed = false;
        #[allow(clippy::needless_range_loop)] // node indexes parallel tables
        for node in 0..n {
            if !keep[node] {
                continue;
            }
            for &t in nfsm.eps[node]
                .iter()
                .chain(nfsm.edges[node].iter().flatten())
            {
                if !keep[t as usize] {
                    keep[t as usize] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    nfsm.compact(&keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofw_catalog::AttrId;

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);
    const C: AttrId = AttrId(2);
    const D: AttrId = AttrId(3);

    fn o(ids: &[AttrId]) -> Ordering {
        Ordering::new(ids.to_vec())
    }

    fn running_example() -> (InputSpec, EqClasses) {
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[B]));
        spec.add_produced(o(&[A, B]));
        spec.add_tested(o(&[A, B, C]));
        spec.add_fd_set(vec![Fd::functional(&[B], C)]);
        spec.add_fd_set(vec![Fd::functional(&[B], D)]);
        let eq = EqClasses::new();
        (spec, eq)
    }

    #[test]
    fn fd_pruning_removes_b_to_d() {
        let (spec, eq) = running_example();
        let (sets, removed) = prune_fds(&spec, &eq, &PruneConfig::default());
        assert_eq!(removed, 1);
        assert_eq!(sets[0].len(), 1, "{{b→c}} must survive");
        assert!(sets[1].is_empty(), "{{b→d}} must be pruned");
    }

    #[test]
    fn fd_pruning_keeps_chains_conservatively() {
        // a→d then d→b: d is a determinant of another dependency, so the
        // quick relevance test must keep both (removals could in
        // principle round-trip through d). The leave-one-out phase also
        // keeps them — the orderings they derive, like (a,d,b), pass the
        // admission filter because d is strippable. This is deliberately
        // conservative: pruning here would need a proof that every
        // derivation is a no-op round-trip, and keeping a dependency is
        // always sound (the NFSM just carries a few extra nodes).
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[A]));
        spec.add_tested(o(&[A, B]));
        spec.add_fd_set(vec![Fd::functional(&[A], D)]);
        spec.add_fd_set(vec![Fd::functional(&[D], B)]);
        let eq = EqClasses::new();
        let (sets, removed) = prune_fds(&spec, &eq, &PruneConfig::default());
        let total: usize = sets.iter().map(FdSet::len).sum();
        assert_eq!(total, 2, "removed={removed}");
        // A dependency producing an attribute nobody consumes IS pruned.
        let mut spec2 = InputSpec::new();
        spec2.add_produced(o(&[A]));
        spec2.add_tested(o(&[A, B]));
        spec2.add_fd_set(vec![Fd::functional(&[A], D)]);
        let (sets2, removed2) = prune_fds(&spec2, &eq, &PruneConfig::default());
        assert_eq!(sets2.iter().map(FdSet::len).sum::<usize>(), 0);
        assert_eq!(removed2, 1);
    }

    #[test]
    fn fd_pruning_respects_equation_reachability() {
        // d = b makes a→d useful: (a) → (a,d) → substitute → (a,b).
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[A]));
        spec.add_tested(o(&[A, B]));
        spec.add_fd_set(vec![Fd::functional(&[A], D)]);
        spec.add_fd_set(vec![Fd::equation(D, B)]);
        let eq = EqClasses::from_fds(spec.fd_sets().iter().flat_map(|s| s.fds().iter()));
        let (sets, _) = prune_fds(&spec, &eq, &PruneConfig::default());
        assert_eq!(sets[0].len(), 1, "a→d must be kept");
        assert_eq!(sets[1].len(), 1, "d=b must be kept");
    }

    #[test]
    fn eps_replacement_removes_bc_node() {
        // Build the running example without the prefix filter so that
        // (b,c) exists (Fig. 5), then check ε-replacement removes it
        // (Fig. 6) after FD pruning removed {b→d}.
        let (spec, eq) = running_example();
        let mut config = PruneConfig {
            prefix_filter: false,
            ..PruneConfig::default()
        };
        config.merge_artificial = false;
        let (sets, _) = prune_fds(&spec, &eq, &config);
        let nfsm = Nfsm::build(&spec, &sets, &eq, &config).unwrap();
        assert!(nfsm.node_of(&o(&[B, C])).is_some(), "pre-pruning");
        let nfsm = prune_nfsm(nfsm, &config);
        assert!(nfsm.node_of(&o(&[B, C])).is_none(), "Fig. 6: (b,c) pruned");
        // Fig. 6 nodes: (a), (b), (a,b), (a,b,c) + ().
        assert_eq!(nfsm.num_nodes(), 5);
    }

    #[test]
    fn merge_collapses_identical_artificial_nodes() {
        // One operator with {a→b, a→c} and heuristics off creates the
        // artificial nodes (a,b)/(a,c) (identical behaviour: ε to (a),
        // same derivations) and (a,b,c)/(a,c,b) (identical after the
        // first merge) — the fixpoint merge must collapse both pairs.
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[A]));
        spec.add_fd_set(vec![Fd::functional(&[A], B), Fd::functional(&[A], C)]);
        let eq = EqClasses::new();
        let config = PruneConfig {
            prefix_filter: false,
            length_cutoff: false,
            prune_fds: false,
            eps_replace: false,
            ..PruneConfig::default()
        };
        let nfsm = Nfsm::build(&spec, spec.fd_sets(), &eq, &config).unwrap();
        // (), (a), (a,b), (a,c), (a,b,c), (a,c,b).
        assert_eq!(nfsm.num_nodes(), 6);
        let nfsm = prune_nfsm(nfsm, &config);
        assert_eq!(
            nfsm.num_nodes(),
            4,
            "both artificial pairs must merge (fixpoint iteration)"
        );
        // The produced interesting node (a) must survive.
        assert!(nfsm.node_of(&o(&[A])).is_some());
    }
}
