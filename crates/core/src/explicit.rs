//! The naive explicit-set implementation of `LogicalOrderings` (paper §2,
//! "the intuitive approach").
//!
//! Maintains the full, prefix-closed set of logical orderings a stream
//! satisfies and recomputes the closure on every inference. The paper
//! dismisses it for production use (the set grows quadratically with
//! every `v = const` predicate), but it is the perfect *test oracle*: it
//! applies the derivation rules of §2 directly, with no NFSM, no
//! determinization, and no §5.7 heuristics. Our property tests check the
//! DFSM framework agrees with it on every interesting order after every
//! operator sequence.

use crate::derive::DeriveCtx;
use crate::eqclass::EqClasses;
use crate::fd::FdSet;
use crate::filter::PrefixFilter;
use crate::ordering::Ordering;
use ofw_common::FxHashSet;

/// Explicitly materialized, prefix-closed set of logical orderings.
#[derive(Clone, Debug)]
pub struct ExplicitOrderings {
    set: FxHashSet<Ordering>,
}

impl ExplicitOrderings {
    /// A stream with no ordering (satisfies only `()`).
    pub fn unordered() -> Self {
        let mut set = FxHashSet::default();
        set.insert(Ordering::empty());
        ExplicitOrderings { set }
    }

    /// A stream physically ordered by `o` (satisfies `o` and prefixes).
    pub fn from_physical(o: &Ordering) -> Self {
        let mut e = Self::unordered();
        e.set.insert(o.clone());
        for p in o.proper_prefixes() {
            e.set.insert(p);
        }
        e
    }

    /// `contains`: exact membership in the closed set.
    pub fn contains(&self, o: &Ordering) -> bool {
        self.set.contains(o)
    }

    /// `inferNewLogicalOrderings`: closes the set under `fd_set`,
    /// unbounded (no §5.7 heuristics — this is the ground truth for the
    /// paper's *sequential* semantics, where each operator's FD set is
    /// applied exactly once, at the operator).
    pub fn infer(&mut self, fd_set: &FdSet) {
        self.close_under(fd_set.fds());
    }

    /// Closes the set under an arbitrary dependency list. Feeding the
    /// *accumulated* dependencies of all operators applied so far models
    /// the stronger persistent-FD semantics (dependencies keep holding
    /// for the stream): Simmen's environment-based `contains` exploits
    /// that, the FSM framework deliberately does not (§5.6 applies each
    /// edge once).
    pub fn close_under(&mut self, fds: &[crate::fd::Fd]) {
        let eq = EqClasses::new(); // unused by an unfiltered context
        let filter = PrefixFilter::new(std::iter::empty(), &[], &eq, false);
        let ctx = DeriveCtx {
            eq: &eq,
            filter: &filter,
            max_len: usize::MAX,
        };
        let snapshot: Vec<Ordering> = self.set.iter().cloned().collect();
        for o in snapshot {
            for d in ctx.closure(&o, fds) {
                for p in d.proper_prefixes() {
                    self.set.insert(p);
                }
                self.set.insert(d);
            }
        }
    }

    /// Number of orderings currently materialized — the quantity whose
    /// quadratic growth motivates the paper (§2).
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Always at least `()`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates the materialized orderings.
    pub fn iter(&self) -> impl Iterator<Item = &Ordering> {
        self.set.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::Fd;
    use ofw_catalog::AttrId;

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);
    const C: AttrId = AttrId(2);
    const X: AttrId = AttrId(3);

    fn o(ids: &[AttrId]) -> Ordering {
        Ordering::new(ids.to_vec())
    }

    #[test]
    fn physical_ordering_implies_prefixes() {
        let e = ExplicitOrderings::from_physical(&o(&[A, B, C]));
        assert!(e.contains(&o(&[A])));
        assert!(e.contains(&o(&[A, B])));
        assert!(e.contains(&o(&[A, B, C])));
        assert!(e.contains(&Ordering::empty()));
        assert!(!e.contains(&o(&[B])));
    }

    #[test]
    fn section_2_intro_example() {
        // §2: sort by (a,b), then selection x = const gives
        // {(x,a,b),(a,x,b),(a,b,x),(x,a),(a,x),(x)} plus the originals.
        let mut e = ExplicitOrderings::from_physical(&o(&[A, B]));
        e.infer(&FdSet::new(vec![Fd::constant(X)]));
        for expect in [
            o(&[X, A, B]),
            o(&[A, X, B]),
            o(&[A, B, X]),
            o(&[X, A]),
            o(&[A, X]),
            o(&[X]),
            o(&[A, B]),
            o(&[A]),
        ] {
            assert!(e.contains(&expect), "missing {expect:?}");
        }
        assert!(!e.contains(&o(&[B])));
        // (), (a), (a,b) + 6 new = 9.
        assert_eq!(e.len(), 9);
    }

    #[test]
    fn quadratic_growth_with_constants() {
        // Each additional v = const predicate multiplies the set.
        let mut e = ExplicitOrderings::from_physical(&o(&[A]));
        let sizes: Vec<usize> = (1..=3)
            .map(|i| {
                e.infer(&FdSet::new(vec![Fd::constant(AttrId(10 + i))]));
                e.len()
            })
            .collect();
        assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2]);
        assert!(sizes[2] > 20, "3 constants blow the set up: {sizes:?}");
    }

    #[test]
    fn inference_is_cumulative() {
        let mut e = ExplicitOrderings::from_physical(&o(&[A]));
        e.infer(&FdSet::new(vec![Fd::functional(&[A], B)]));
        assert!(e.contains(&o(&[A, B])));
        e.infer(&FdSet::new(vec![Fd::functional(&[B], C)]));
        assert!(e.contains(&o(&[A, B, C])));
        // Old orderings survive.
        assert!(e.contains(&o(&[A])));
    }

    #[test]
    fn equation_substitution_ground_truth() {
        let mut e = ExplicitOrderings::from_physical(&o(&[A]));
        e.infer(&FdSet::new(vec![Fd::equation(A, B)]));
        assert!(e.contains(&o(&[B])));
        assert!(e.contains(&o(&[A, B])));
        assert!(e.contains(&o(&[B, A])));
    }
}
