//! The naive explicit-set implementation of `LogicalOrderings` (paper §2,
//! "the intuitive approach"), extended to groupings.
//!
//! Maintains the full, prefix-closed set of logical orderings a stream
//! satisfies — plus the set of groupings — and recomputes the closure on
//! every inference. The paper dismisses it for production use (the set
//! grows quadratically with every `v = const` predicate), but it is the
//! perfect *test oracle*: it applies the derivation rules of §2 (and the
//! VLDB'04 set rules for groupings) directly, with no NFSM, no
//! determinization, and no §5.7 heuristics. Our property tests check the
//! DFSM framework agrees with it on every interesting property after
//! every operator sequence.
//!
//! Grouping ground truth: a stream sorted by `o` is grouped by the
//! attribute *set* of every prefix of `o`; a hash-grouped stream is
//! grouped by exactly its key (and the empty set). Each inference closes
//! the ordering set first, reseeds groupings from all orderings' prefix
//! sets, then closes the grouping set under the operator's dependencies.

use crate::derive::{apply_fd_grouping, apply_fd_grouping_tails, apply_fd_head_tail, DeriveCtx};
use crate::eqclass::EqClasses;
use crate::fd::FdSet;
use crate::filter::PrefixFilter;
use crate::ordering::Ordering;
use crate::property::{Grouping, HeadTail, LogicalProperty};
use ofw_common::FxHashSet;

/// Explicitly materialized, prefix-closed set of logical orderings plus
/// the sets of satisfied groupings and head/tail pairs.
#[derive(Clone, Debug)]
pub struct ExplicitOrderings {
    set: FxHashSet<Ordering>,
    groups: FxHashSet<Grouping>,
    pairs: FxHashSet<HeadTail>,
}

impl ExplicitOrderings {
    /// A stream with no ordering (satisfies only `()` and `{}`).
    pub fn unordered() -> Self {
        let mut set = FxHashSet::default();
        set.insert(Ordering::empty());
        ExplicitOrderings {
            set,
            groups: FxHashSet::default(),
            pairs: FxHashSet::default(),
        }
    }

    /// A stream physically ordered by `o` (satisfies `o`, its prefixes,
    /// the grouping of every prefix's attribute set, and every
    /// (prefix set, continuation) head/tail decomposition).
    pub fn from_physical(o: &Ordering) -> Self {
        let mut e = Self::unordered();
        e.set.insert(o.clone());
        for p in o.proper_prefixes() {
            e.set.insert(p);
        }
        e.reseed_groups_from_orderings();
        e.reseed_pairs_from_orderings();
        e
    }

    /// A stream physically *grouped* by `g` (hash aggregation output):
    /// satisfies the grouping `g` and no ordering but `()`.
    pub fn from_grouping(g: &Grouping) -> Self {
        let mut e = Self::unordered();
        if !g.is_empty() {
            e.groups.insert(g.clone());
        }
        e
    }

    /// A stream physically shaped as the head/tail pair `h` (partial
    /// sort output): satisfies the pair, every sub-decomposition it
    /// implies, and no ordering but `()`.
    pub fn from_head_tail(h: &HeadTail) -> Self {
        let mut e = Self::unordered();
        e.pairs.insert(h.clone());
        for implied in h.implications() {
            match implied {
                LogicalProperty::HeadTail(p) => {
                    e.pairs.insert(p);
                }
                LogicalProperty::Grouping(g) => {
                    e.groups.insert(g);
                }
                LogicalProperty::Ordering(_) => unreachable!("pairs never imply orderings"),
            }
        }
        e
    }

    /// `contains`: exact membership in the closed ordering set.
    pub fn contains(&self, o: &Ordering) -> bool {
        self.set.contains(o)
    }

    /// `contains` for groupings: exact membership (the empty grouping
    /// holds for every stream).
    pub fn contains_grouping(&self, g: &Grouping) -> bool {
        g.is_empty() || self.groups.contains(g)
    }

    /// `contains` for head/tail pairs: exact membership in the closed
    /// pair set.
    pub fn contains_head_tail(&self, h: &HeadTail) -> bool {
        self.pairs.contains(h)
    }

    /// `inferNewLogicalOrderings`: closes all sets under `fd_set`,
    /// unbounded (no §5.7 heuristics — this is the ground truth for the
    /// paper's *sequential* semantics, where each operator's FD set is
    /// applied exactly once, at the operator).
    pub fn infer(&mut self, fd_set: &FdSet) {
        self.close_under(fd_set.fds());
    }

    /// Closes the sets under an arbitrary dependency list. Feeding the
    /// *accumulated* dependencies of all operators applied so far models
    /// the stronger persistent-FD semantics (dependencies keep holding
    /// for the stream): Simmen's environment-based `contains` exploits
    /// that, the FSM framework deliberately does not (§5.6 applies each
    /// edge once).
    ///
    /// The three kinds close together to a joint fixpoint: orderings
    /// imply groupings and pairs (decompositions), groupings derive
    /// pairs (a determined attribute is a trivial within-group tail),
    /// and pair derivation can degenerate back into plain groupings
    /// (empty tail). Pairs never derive orderings: head removal
    /// deliberately keeps heads non-empty (see
    /// [`apply_fd_head_tail`]) — the one sound derivation all three
    /// oracle arms refuse in lockstep, because the pair-free pipeline
    /// could not mirror it.
    pub fn close_under(&mut self, fds: &[crate::fd::Fd]) {
        let eq = EqClasses::new(); // unused by an unfiltered context
        let filter = PrefixFilter::new(std::iter::empty(), &[], &eq, false);
        let ctx = DeriveCtx {
            eq: &eq,
            filter: &filter,
            max_len: usize::MAX,
        };
        loop {
            let mut grew = false;
            // Orderings: bounded-free positional closure.
            let snapshot: Vec<Ordering> = self.set.iter().cloned().collect();
            for o in snapshot {
                for d in ctx.closure(&o, fds) {
                    for p in d.proper_prefixes() {
                        grew |= self.set.insert(p);
                    }
                    grew |= self.set.insert(d);
                }
            }
            // Implications: sorted ⇒ grouped by prefix sets ⇒ every
            // decomposition pair.
            grew |= self.reseed_groups_from_orderings();
            grew |= self.reseed_pairs_from_orderings();
            // Groupings close under the set rules, and spawn pairs via
            // the trivial-tail rule.
            let mut mixed: Vec<LogicalProperty> = Vec::new();
            let mut work: Vec<Grouping> = self.groups.iter().cloned().collect();
            let mut buf: Vec<Grouping> = Vec::new();
            while let Some(cur) = work.pop() {
                for fd in fds {
                    buf.clear();
                    apply_fd_grouping(&cur, fd, &mut buf);
                    apply_fd_grouping_tails(&cur, fd, &mut mixed);
                    for d in buf.drain(..) {
                        if !d.is_empty() && self.groups.insert(d.clone()) {
                            grew = true;
                            work.push(d);
                        }
                    }
                }
            }
            // Pairs close under the pair rules; derivations may be of
            // any kind and sub-decomposition implications are expanded
            // in place.
            let mut pair_work: Vec<HeadTail> = self.pairs.iter().cloned().collect();
            loop {
                for cur in std::mem::take(&mut pair_work) {
                    for fd in fds {
                        apply_fd_head_tail(&cur, fd, &mut mixed);
                    }
                }
                for d in std::mem::take(&mut mixed) {
                    match d {
                        LogicalProperty::HeadTail(h) => {
                            if self.pairs.contains(&h) {
                                continue;
                            }
                            grew = true;
                            mixed.extend(h.implications());
                            self.pairs.insert(h.clone());
                            pair_work.push(h);
                        }
                        LogicalProperty::Grouping(g) => {
                            if !g.is_empty() {
                                grew |= self.groups.insert(g);
                            }
                        }
                        LogicalProperty::Ordering(_) => {
                            unreachable!("pairs never derive orderings (heads stay non-empty)")
                        }
                    }
                }
                if pair_work.is_empty() && mixed.is_empty() {
                    break;
                }
            }
            if !grew {
                return;
            }
        }
    }

    /// Every prefix attribute set of every satisfied ordering is a
    /// satisfied grouping (sorted ⇒ grouped). Returns whether the
    /// grouping set grew.
    fn reseed_groups_from_orderings(&mut self) -> bool {
        let seeds: Vec<Grouping> = self
            .set
            .iter()
            .flat_map(|o| (1..=o.len()).map(|l| Grouping::new(o.attrs()[..l].to_vec())))
            .collect();
        let before = self.groups.len();
        self.groups.extend(seeds);
        self.groups.len() > before
    }

    /// Every (prefix set, continuation) decomposition of every satisfied
    /// ordering is a satisfied pair (sorted ⇒ grouped by the prefix set,
    /// sorted by the continuation within each group). Returns whether
    /// the pair set grew.
    fn reseed_pairs_from_orderings(&mut self) -> bool {
        let seeds: Vec<HeadTail> = self.set.iter().flat_map(HeadTail::decompositions).collect();
        let before = self.pairs.len();
        self.pairs.extend(seeds);
        self.pairs.len() > before
    }

    /// Number of orderings currently materialized — the quantity whose
    /// quadratic growth motivates the paper (§2).
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Number of groupings currently materialized.
    pub fn num_groupings(&self) -> usize {
        self.groups.len()
    }

    /// Number of head/tail pairs currently materialized.
    pub fn num_head_tails(&self) -> usize {
        self.pairs.len()
    }

    /// Always at least `()`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates the materialized orderings.
    pub fn iter(&self) -> impl Iterator<Item = &Ordering> {
        self.set.iter()
    }

    /// Iterates the materialized groupings.
    pub fn iter_groupings(&self) -> impl Iterator<Item = &Grouping> {
        self.groups.iter()
    }

    /// Iterates the materialized head/tail pairs.
    pub fn iter_head_tails(&self) -> impl Iterator<Item = &HeadTail> {
        self.pairs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::Fd;
    use ofw_catalog::AttrId;

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);
    const C: AttrId = AttrId(2);
    const X: AttrId = AttrId(3);

    fn o(ids: &[AttrId]) -> Ordering {
        Ordering::new(ids.to_vec())
    }

    fn g(ids: &[AttrId]) -> Grouping {
        Grouping::new(ids.to_vec())
    }

    #[test]
    fn physical_ordering_implies_prefixes() {
        let e = ExplicitOrderings::from_physical(&o(&[A, B, C]));
        assert!(e.contains(&o(&[A])));
        assert!(e.contains(&o(&[A, B])));
        assert!(e.contains(&o(&[A, B, C])));
        assert!(e.contains(&Ordering::empty()));
        assert!(!e.contains(&o(&[B])));
    }

    #[test]
    fn physical_ordering_implies_prefix_set_groupings() {
        let e = ExplicitOrderings::from_physical(&o(&[B, A]));
        assert!(e.contains_grouping(&g(&[B])));
        assert!(e.contains_grouping(&g(&[A, B])), "sets ignore position");
        assert!(!e.contains_grouping(&g(&[A])), "{{a}} needs a-adjacency");
        assert!(e.contains_grouping(&Grouping::empty()));
    }

    #[test]
    fn grouped_stream_satisfies_only_its_grouping() {
        let e = ExplicitOrderings::from_grouping(&g(&[A, B]));
        assert!(e.contains_grouping(&g(&[A, B])));
        assert!(!e.contains_grouping(&g(&[A])));
        assert!(!e.contains(&o(&[A])));
        assert!(e.contains(&Ordering::empty()));
    }

    #[test]
    fn grouping_closure_under_fds() {
        // Grouped by {a}, then an operator induces a→b: grouped by
        // {a,b} too; with b = const even {a,b}∖{b} round-trips.
        let mut e = ExplicitOrderings::from_grouping(&g(&[A]));
        e.infer(&FdSet::new(vec![Fd::functional(&[A], B)]));
        assert!(e.contains_grouping(&g(&[A, B])));
        assert!(!e.contains_grouping(&g(&[B])));
        let mut e2 = ExplicitOrderings::from_grouping(&g(&[A, X]));
        e2.infer(&FdSet::new(vec![Fd::constant(X)]));
        assert!(e2.contains_grouping(&g(&[A])), "constants are removable");
    }

    #[test]
    fn section_2_intro_example() {
        // §2: sort by (a,b), then selection x = const gives
        // {(x,a,b),(a,x,b),(a,b,x),(x,a),(a,x),(x)} plus the originals.
        let mut e = ExplicitOrderings::from_physical(&o(&[A, B]));
        e.infer(&FdSet::new(vec![Fd::constant(X)]));
        for expect in [
            o(&[X, A, B]),
            o(&[A, X, B]),
            o(&[A, B, X]),
            o(&[X, A]),
            o(&[A, X]),
            o(&[X]),
            o(&[A, B]),
            o(&[A]),
        ] {
            assert!(e.contains(&expect), "missing {expect:?}");
        }
        assert!(!e.contains(&o(&[B])));
        // (), (a), (a,b) + 6 new = 9.
        assert_eq!(e.len(), 9);
    }

    #[test]
    fn quadratic_growth_with_constants() {
        // Each additional v = const predicate multiplies the set.
        let mut e = ExplicitOrderings::from_physical(&o(&[A]));
        let sizes: Vec<usize> = (1..=3)
            .map(|i| {
                e.infer(&FdSet::new(vec![Fd::constant(AttrId(10 + i))]));
                e.len()
            })
            .collect();
        assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2]);
        assert!(sizes[2] > 20, "3 constants blow the set up: {sizes:?}");
    }

    #[test]
    fn inference_is_cumulative() {
        let mut e = ExplicitOrderings::from_physical(&o(&[A]));
        e.infer(&FdSet::new(vec![Fd::functional(&[A], B)]));
        assert!(e.contains(&o(&[A, B])));
        e.infer(&FdSet::new(vec![Fd::functional(&[B], C)]));
        assert!(e.contains(&o(&[A, B, C])));
        // Old orderings survive.
        assert!(e.contains(&o(&[A])));
        // And the groupings of all the new prefixes appeared.
        assert!(e.contains_grouping(&g(&[A, B, C])));
    }

    #[test]
    fn equation_substitution_ground_truth() {
        let mut e = ExplicitOrderings::from_physical(&o(&[A]));
        e.infer(&FdSet::new(vec![Fd::equation(A, B)]));
        assert!(e.contains(&o(&[B])));
        assert!(e.contains(&o(&[A, B])));
        assert!(e.contains(&o(&[B, A])));
        assert!(e.contains_grouping(&g(&[B])));
    }
}
