//! Equivalence classes induced by equations (paper §5.7).
//!
//! Equations `a = b` let derivations substitute attributes in the *prefix*
//! of an ordering, which defeats the naive prefix test of the §5.7
//! pruning heuristic. The paper's fix: pick a representative per
//! equivalence class and run the prefix test on representative-mapped
//! attributes. This module is a small union-find over attribute ids.

use ofw_catalog::AttrId;
use ofw_common::FxHashMap;

/// Union-find over the attributes mentioned in equations.
///
/// Attributes never mentioned in any equation are their own
/// representative and are not stored.
#[derive(Clone, Debug, Default)]
pub struct EqClasses {
    parent: FxHashMap<AttrId, AttrId>,
}

impl EqClasses {
    /// Creates the trivial partition (every attribute alone).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the partition from all equations in an iterator of FDs.
    pub fn from_fds<'a>(fds: impl Iterator<Item = &'a crate::fd::Fd>) -> Self {
        let mut eq = EqClasses::new();
        for fd in fds {
            if let crate::fd::Fd::Equation(a, b) = fd {
                eq.union(*a, *b);
            }
        }
        eq
    }

    /// Merges the classes of `a` and `b`.
    pub fn union(&mut self, a: AttrId, b: AttrId) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            // Deterministic representative: the smaller id wins, so the
            // mapping is stable independent of insertion order.
            let (keep, fold) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent.insert(fold, keep);
        }
    }

    /// The representative of `a`'s class.
    pub fn find(&self, a: AttrId) -> AttrId {
        let mut cur = a;
        while let Some(&p) = self.parent.get(&cur) {
            if p == cur {
                break;
            }
            cur = p;
        }
        cur
    }

    /// True if `a` and `b` are known equal.
    pub fn same(&self, a: AttrId, b: AttrId) -> bool {
        self.find(a) == self.find(b)
    }

    /// Maps every attribute of `attrs` to its representative.
    pub fn map_slice(&self, attrs: &[AttrId]) -> Vec<AttrId> {
        attrs.iter().map(|&a| self.find(a)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::Fd;

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);
    const C: AttrId = AttrId(2);
    const D: AttrId = AttrId(3);

    #[test]
    fn union_find_basics() {
        let mut eq = EqClasses::new();
        assert!(!eq.same(A, B));
        eq.union(A, B);
        eq.union(C, D);
        assert!(eq.same(A, B));
        assert!(eq.same(C, D));
        assert!(!eq.same(A, C));
        eq.union(B, C);
        assert!(eq.same(A, D));
    }

    #[test]
    fn representative_is_smallest_id() {
        let mut eq = EqClasses::new();
        eq.union(D, B);
        eq.union(B, C);
        assert_eq!(eq.find(D), B);
        assert_eq!(eq.find(C), B);
        assert_eq!(eq.find(A), A);
    }

    #[test]
    fn from_fds_only_uses_equations() {
        let fds = [Fd::equation(A, B), Fd::functional(&[C], D), Fd::constant(C)];
        let eq = EqClasses::from_fds(fds.iter());
        assert!(eq.same(A, B));
        assert!(!eq.same(C, D));
    }

    #[test]
    fn map_slice_normalizes() {
        let mut eq = EqClasses::new();
        eq.union(A, C);
        assert_eq!(eq.map_slice(&[C, B, A]), vec![A, B, A]);
    }
}
