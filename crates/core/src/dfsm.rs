//! NFSM → DFSM conversion (paper §5.4 and Appendix A) and the
//! precomputed tables of §5.5.
//!
//! The classic subset construction, lifted from automata to state
//! machines (no accepting states; instead we must know which interesting
//! orders each state implies). Two deviations worth calling out:
//!
//! * **ε-closure**: a DFSM state is always ε-closed, so a state holding
//!   `(a,b,c)` also holds `(a,b)` and `(a)` — that is how `contains` on
//!   prefixes works with a single bit probe.
//! * **self-retention**: logical orderings *survive* the application of
//!   an operator (`Ω` is monotone: `Ω_i ⊇ Ω_{i-1}`), so the successor of
//!   state `S` under symbol `f` is `ε-closure(S ∪ targets(S, f))`, i.e.
//!   every NFSM node implicitly carries a self-loop on every symbol.
//!   This matches Fig. 10, where state 1 = {(b)} stays in state 1 under
//!   `{b→c}` after the artificial node `(b,c)` has been pruned.
//!
//! After construction, two dense tables make the plan-generation ADT
//! O(1): a transition table (`state × symbol → state`) and a `contains`
//! bit matrix (`state × interesting order → bool`), together with a
//! start row mapping each *produced* order to its entry state (the `*`
//! row of Fig. 10).
//!
//! The construction itself is factored into a reusable engine
//! (`SubsetCtx` + `SubsetTables`) shared by three drivers that all
//! produce **identical state numbering**:
//!
//! * the eager serial build ([`Dfsm::build`]),
//! * the eager parallel-frontier build ([`Dfsm::build_with`]), which
//!   computes successor subsets for a whole BFS frontier on an executor
//!   but interns them serially in `(state, symbol)` order, and
//! * the lazy on-demand build (`LazyDfsm` in [`crate::lazy`]), which is
//!   simply the same BFS truncated at the highest state a probe has
//!   touched so far.
//!
//! Because every driver interns subsets in the same `(state, symbol)`
//! BFS order starting from the same entry states, state ids are a pure
//! function of the NFSM — lazy numbering is always a prefix of eager
//! numbering, which is what keeps plan tables byte-identical across
//! preparation modes and thread counts.

use crate::nfsm::{BuildError, Nfsm, NodeId};
use crate::property::LogicalProperty;
use crate::prune::PruneConfig;
use ofw_common::{BitMatrix, BitSet, FxHashMap, Interner, OrderedExecutor};

/// Object-safe executor seam for preparation parallelism.
///
/// [`OrderedExecutor::run_ordered`] is generic over the result type and
/// therefore not object-safe; preparation only ever fans out "compute
/// the successor subsets of one frontier state", so this narrows the
/// interface to that single shape and gains `dyn`-compatibility. Every
/// `OrderedExecutor` (the serial executor, the `ofw-parallel` pool) is a
/// `PrepExecutor` for free via the blanket impl.
pub trait PrepExecutor: Send + Sync {
    /// Runs `f(i)` for every `i in 0..n` and returns the results in
    /// index order; each result is one frontier state's successor
    /// subsets, one per symbol.
    fn run_subsets(&self, n: usize, f: &(dyn Fn(usize) -> Vec<BitSet> + Sync)) -> Vec<Vec<BitSet>>;
}

impl<E: OrderedExecutor + Send + Sync> PrepExecutor for E {
    fn run_subsets(&self, n: usize, f: &(dyn Fn(usize) -> Vec<BitSet> + Sync)) -> Vec<Vec<BitSet>> {
        self.run_ordered(n, f)
    }
}

/// Immutable context of one subset construction: everything derived
/// from the NFSM alone, shared by all drivers.
pub(crate) struct SubsetCtx {
    /// ε-closure per NFSM node (transitive; pruning may relink chains).
    eps_closure: Vec<BitSet>,
    pub(crate) num_symbols: usize,
    max_states: usize,
    /// Contains-column per NFSM node, `u32::MAX` when not interesting.
    col_of_node: Vec<u32>,
    pub(crate) num_cols: usize,
    /// `u64` words per contains row (≥ 1 so row addressing stays valid
    /// even with zero columns).
    pub(crate) words_per_row: usize,
}

/// Mutable tables of an in-progress subset construction. States below
/// `processed` have complete transition rows; states at or above it are
/// interned (their subset and contains row exist) but their outgoing
/// transitions are still `u32::MAX`.
pub(crate) struct SubsetTables {
    pub(crate) states: Interner<BitSet>,
    pub(crate) transitions: Vec<u32>,
    /// Flat contains rows, `words_per_row` words per state; filled the
    /// moment a state is interned (a probe may ask before the BFS
    /// processes the state).
    pub(crate) contains: Vec<u64>,
    pub(crate) processed: u32,
}

impl SubsetCtx {
    /// Derives the construction context and the interesting-property
    /// column map from an NFSM. Column indices follow `nfsm.props`
    /// insertion order, as ever.
    pub(crate) fn new(
        nfsm: &Nfsm,
        config: &PruneConfig,
    ) -> (SubsetCtx, FxHashMap<LogicalProperty, u32>) {
        let n = nfsm.num_nodes();
        let eps_closure: Vec<BitSet> = (0..n)
            .map(|v| {
                let mut set = BitSet::new(n);
                let mut work = vec![v as NodeId];
                set.insert(v);
                while let Some(u) = work.pop() {
                    for &p in &nfsm.eps[u as usize] {
                        if !set.contains(p as usize) {
                            set.insert(p as usize);
                            work.push(p);
                        }
                    }
                }
                set
            })
            .collect();

        let mut columns: FxHashMap<LogicalProperty, u32> = FxHashMap::default();
        let mut col_of_node: Vec<u32> = vec![u32::MAX; n];
        for (node, prop) in nfsm.props.iter() {
            if nfsm.info[node as usize].interesting {
                let col = columns.len() as u32;
                columns.insert(prop.clone(), col);
                col_of_node[node as usize] = col;
            }
        }
        let num_cols = columns.len();
        let ctx = SubsetCtx {
            eps_closure,
            num_symbols: nfsm.num_symbols,
            max_states: config.max_dfsm_states,
            col_of_node,
            num_cols,
            words_per_row: num_cols.div_ceil(64).max(1),
        };
        (ctx, columns)
    }

    /// Interns the entry states — the empty stream first, then one per
    /// produced property in `nfsm.props` insertion order. This fixed
    /// seeding order is the root of the cross-driver numbering contract.
    pub(crate) fn start_tables(
        &self,
        nfsm: &Nfsm,
    ) -> Result<(SubsetTables, u32, FxHashMap<LogicalProperty, u32>), BuildError> {
        let mut tables = SubsetTables {
            states: Interner::new(),
            transitions: Vec::new(),
            contains: Vec::new(),
            processed: 0,
        };
        let empty_state = self.intern(&mut tables, self.eps_closure[0].clone())?;
        let mut start: FxHashMap<LogicalProperty, u32> = FxHashMap::default();
        for (node, prop) in nfsm.props.iter() {
            if nfsm.info[node as usize].produced {
                let id = self.intern(&mut tables, self.eps_closure[node as usize].clone())?;
                start.insert(prop.clone(), id);
            }
        }
        Ok((tables, empty_state, start))
    }

    /// Interns a subset, extending the transition table with an
    /// unfilled row and materializing the contains row when it is new.
    fn intern(&self, t: &mut SubsetTables, set: BitSet) -> Result<u32, BuildError> {
        let before = t.states.len();
        let id = t.states.intern(set);
        if t.states.len() > before {
            if t.states.len() > self.max_states {
                return Err(BuildError::TooManyDfsmStates(self.max_states));
            }
            t.transitions
                .extend(std::iter::repeat_n(u32::MAX, self.num_symbols));
            let base = t.contains.len();
            t.contains
                .extend(std::iter::repeat_n(0u64, self.words_per_row));
            for v in t.states.resolve(id).iter() {
                let col = self.col_of_node[v];
                if col != u32::MAX {
                    t.contains[base + col as usize / 64] |= 1u64 << (col % 64);
                }
            }
        }
        Ok(id)
    }

    /// Successor subset of `subset` under `sym`: self-retention plus the
    /// ε-closures of all edge targets.
    fn successor(&self, nfsm: &Nfsm, subset: &BitSet, sym: usize) -> BitSet {
        let mut succ = subset.clone();
        for v in subset.iter() {
            for &t in &nfsm.edges[v][sym] {
                succ.union_with(&self.eps_closure[t as usize]);
            }
        }
        succ
    }

    /// Processes the next unprocessed state: computes and interns its
    /// successors in symbol order, filling its transition row.
    pub(crate) fn process_next(&self, nfsm: &Nfsm, t: &mut SubsetTables) -> Result<(), BuildError> {
        let state = t.processed;
        let subset = t.states.resolve(state).clone();
        for sym in 0..self.num_symbols {
            let succ = self.successor(nfsm, &subset, sym);
            let target = if succ == subset {
                state
            } else {
                self.intern(t, succ)?
            };
            t.transitions[state as usize * self.num_symbols + sym] = target;
        }
        t.processed += 1;
        Ok(())
    }

    /// Runs the BFS to the fixpoint serially.
    pub(crate) fn run_to_fixpoint(
        &self,
        nfsm: &Nfsm,
        t: &mut SubsetTables,
    ) -> Result<(), BuildError> {
        while (t.processed as usize) < t.states.len() {
            self.process_next(nfsm, t)?;
        }
        Ok(())
    }

    /// Runs the BFS to the fixpoint with frontier parallelism: each BFS
    /// wave's successor subsets are computed concurrently (pure reads),
    /// then interned serially in `(state, symbol)` order — the same
    /// splice discipline the DP drivers use, so state numbering is
    /// identical to the serial build regardless of thread count.
    pub(crate) fn run_to_fixpoint_with(
        &self,
        nfsm: &Nfsm,
        t: &mut SubsetTables,
        exec: &dyn PrepExecutor,
    ) -> Result<(), BuildError> {
        while (t.processed as usize) < t.states.len() {
            let lo = t.processed as usize;
            let hi = t.states.len();
            let frontier: Vec<BitSet> = (lo..hi)
                .map(|s| t.states.resolve(s as u32).clone())
                .collect();
            let rows = exec.run_subsets(hi - lo, &|i| {
                (0..self.num_symbols)
                    .map(|sym| self.successor(nfsm, &frontier[i], sym))
                    .collect()
            });
            for (i, row) in rows.into_iter().enumerate() {
                let state = (lo + i) as u32;
                for (sym, succ) in row.into_iter().enumerate() {
                    let target = if succ == frontier[i] {
                        state
                    } else {
                        self.intern(t, succ)?
                    };
                    t.transitions[state as usize * self.num_symbols + sym] = target;
                }
                t.processed += 1;
            }
        }
        Ok(())
    }

    /// Reads one bit of the flat contains rows.
    #[inline]
    pub(crate) fn contains_bit(&self, t: &SubsetTables, state: u32, col: u32) -> bool {
        let base = state as usize * self.words_per_row;
        t.contains[base + col as usize / 64] & (1u64 << (col % 64)) != 0
    }

    /// Runtime bytes of the tables built so far (mirrors
    /// [`Dfsm::precomputed_bytes`] for the lazy path).
    pub(crate) fn table_bytes(&self, t: &SubsetTables, num_start: usize) -> usize {
        t.transitions.len() * std::mem::size_of::<u32>()
            + t.contains.len() * std::mem::size_of::<u64>()
            + num_start * std::mem::size_of::<u32>()
    }
}

/// The deterministic FSM plus the §5.5 precomputed tables.
pub struct Dfsm {
    /// Subset of NFSM nodes per DFSM state (kept for introspection,
    /// examples, tests and on-demand dominance; after
    /// [`minimize`](Dfsm::minimize) each entry is the subset of the
    /// block's representative — its lowest-numbered member).
    pub states: Vec<BitSet>,
    /// Row-major transition table: `transitions[state * num_symbols + sym]`.
    pub transitions: Vec<u32>,
    /// Number of FD-set symbols.
    pub num_symbols: usize,
    /// Entry state for a tuple stream with no ordering (`()`).
    pub empty_state: u32,
    /// Entry states (`*` row): per *produced* interesting property
    /// (ordering or grouping), the state for a stream physically shaped
    /// that way (sorted, respectively hash-grouped).
    pub start: FxHashMap<LogicalProperty, u32>,
    /// `contains` bit matrix: rows = DFSM states, cols = interesting
    /// properties (orderings prefix-closed, groupings as-is), indexed by
    /// [`Dfsm::columns`] order.
    pub contains: BitMatrix,
    /// Column index per interesting property.
    pub columns: FxHashMap<LogicalProperty, u32>,
    /// Plan-domination matrix: bit (a, b) set iff state `a`'s NFSM node
    /// set is a superset of `b`'s. Node-set inclusion is *future-proof*:
    /// transitions are monotone w.r.t. set inclusion, so a dominating
    /// state keeps satisfying at least the same interesting orders under
    /// every subsequent FD application. (The weaker contains-row
    /// superset is NOT sound for pruning: an artificial node present in
    /// only one state can later derive an interesting order.)
    /// `None` when the DFSM is too large to precompute pairs; callers
    /// then compare the state subsets on demand.
    pub dominance: Option<BitMatrix>,
}

/// Above this state count the quadratic dominance matrix is skipped.
const DOMINANCE_STATE_LIMIT: usize = 1 << 12;

/// Pairwise subset-inclusion matrix over state subsets, when small
/// enough to precompute.
fn dominance_matrix(state_sets: &[BitSet]) -> Option<BitMatrix> {
    (state_sets.len() <= DOMINANCE_STATE_LIMIT).then(|| {
        let mut m = BitMatrix::new(state_sets.len(), state_sets.len());
        for (a, sa) in state_sets.iter().enumerate() {
            for (b, sb) in state_sets.iter().enumerate() {
                if sa.is_superset(sb) {
                    m.set(a, b);
                }
            }
        }
        m
    })
}

impl Dfsm {
    /// Runs the subset construction over `nfsm`, serially.
    pub fn build(nfsm: &Nfsm, config: &PruneConfig) -> Result<Dfsm, BuildError> {
        Self::build_with(nfsm, config, None)
    }

    /// Runs the subset construction, optionally fanning each BFS
    /// frontier out on an executor. Produces bit-identical tables with
    /// and without an executor, at any thread count.
    pub fn build_with(
        nfsm: &Nfsm,
        config: &PruneConfig,
        exec: Option<&dyn PrepExecutor>,
    ) -> Result<Dfsm, BuildError> {
        let (ctx, columns) = SubsetCtx::new(nfsm, config);
        let (mut tables, empty_state, start) = ctx.start_tables(nfsm)?;
        match exec {
            None => ctx.run_to_fixpoint(nfsm, &mut tables)?,
            Some(e) => ctx.run_to_fixpoint_with(nfsm, &mut tables, e)?,
        }
        Ok(Self::freeze(&ctx, tables, columns, empty_state, start))
    }

    /// Freezes completed subset-construction tables into the dense
    /// runtime representation.
    pub(crate) fn freeze(
        ctx: &SubsetCtx,
        tables: SubsetTables,
        columns: FxHashMap<LogicalProperty, u32>,
        empty_state: u32,
        start: FxHashMap<LogicalProperty, u32>,
    ) -> Dfsm {
        debug_assert_eq!(tables.processed as usize, tables.states.len());
        let n_states = tables.states.len();
        let state_sets: Vec<BitSet> = (0..n_states as u32)
            .map(|s| tables.states.resolve(s).clone())
            .collect();
        let mut contains = BitMatrix::new(n_states, ctx.num_cols);
        for (state, set) in state_sets.iter().enumerate() {
            for v in set.iter() {
                let col = ctx.col_of_node[v];
                if col != u32::MAX {
                    contains.set(state, col as usize);
                }
            }
        }
        let dominance = dominance_matrix(&state_sets);
        Dfsm {
            states: state_sets,
            transitions: tables.transitions,
            num_symbols: ctx.num_symbols,
            empty_state,
            start,
            contains,
            columns,
            dominance,
        }
    }

    /// Hopcroft-style partition refinement: merges states that are
    /// probe-equivalent (identical contains rows now and after every
    /// possible symbol sequence). Returns the state count *before*
    /// minimization.
    ///
    /// The initial partition groups states by contains row (the only
    /// observable output); each round refines blocks by their successor
    /// blocks per symbol until stable. Surviving blocks are renumbered
    /// by the lowest old state id they contain, so minimized ids are
    /// deterministic; each block keeps its representative's (lowest
    /// member's) NFSM subset for dominance, which stays *sound* —
    /// a representative-subset inclusion still witnesses future-proof
    /// domination — but may prune slightly less than the unminimized
    /// matrix, since merged states can lose incomparable subsets.
    ///
    /// Note that minimization changes `State` handle values, so a
    /// minimized framework is **not** byte-compatible with an
    /// unminimized one (it is probe-equivalent instead); the prepare
    /// surface keeps it opt-in for exactly that reason.
    pub fn minimize(&mut self) -> usize {
        let n = self.num_states();
        // Initial partition: states with equal contains rows share a
        // block. Block ids are assigned by first occurrence in state
        // order, an invariant maintained through every refinement round.
        let mut block_of: Vec<u32> = vec![0; n];
        let mut by_row: FxHashMap<Vec<usize>, u32> = FxHashMap::default();
        for (s, b) in block_of.iter_mut().enumerate() {
            let row: Vec<usize> = self.contains.row_iter(s).collect();
            let next = by_row.len() as u32;
            *b = *by_row.entry(row).or_insert(next);
        }
        let mut num_blocks = by_row.len();
        drop(by_row);
        loop {
            let mut by_sig: FxHashMap<(u32, Vec<u32>), u32> = FxHashMap::default();
            let mut new_block_of = vec![0u32; n];
            for s in 0..n {
                let succs: Vec<u32> = (0..self.num_symbols)
                    .map(|sym| block_of[self.step(s as u32, sym) as usize])
                    .collect();
                let next = by_sig.len() as u32;
                new_block_of[s] = *by_sig.entry((block_of[s], succs)).or_insert(next);
            }
            let refined = by_sig.len();
            block_of = new_block_of;
            if refined == num_blocks {
                break;
            }
            num_blocks = refined;
        }
        if num_blocks == n {
            return n;
        }

        // Representative of each block: its lowest-numbered member
        // (which, by the first-occurrence numbering, is also the state
        // that named the block).
        let mut repr: Vec<u32> = vec![u32::MAX; num_blocks];
        for (s, &b) in block_of.iter().enumerate() {
            if repr[b as usize] == u32::MAX {
                repr[b as usize] = s as u32;
            }
        }
        let mut transitions = vec![0u32; num_blocks * self.num_symbols];
        let mut contains = BitMatrix::new(num_blocks, self.contains.cols());
        let mut state_sets = Vec::with_capacity(num_blocks);
        for (b, &r) in repr.iter().enumerate() {
            for sym in 0..self.num_symbols {
                transitions[b * self.num_symbols + sym] = block_of[self.step(r, sym) as usize];
            }
            for col in self.contains.row_iter(r as usize) {
                contains.set(b, col);
            }
            state_sets.push(self.states[r as usize].clone());
        }
        self.empty_state = block_of[self.empty_state as usize];
        for s in self.start.values_mut() {
            *s = block_of[*s as usize];
        }
        self.dominance = dominance_matrix(&state_sets);
        self.states = state_sets;
        self.transitions = transitions;
        self.contains = contains;
        n
    }

    /// Number of DFSM states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Successor state under an FD-set symbol — one array lookup (§5.6).
    #[inline]
    pub fn step(&self, state: u32, sym: usize) -> u32 {
        self.transitions[state as usize * self.num_symbols + sym]
    }

    /// Bytes of the precomputed data a plan generator needs at runtime
    /// (transition table + contains matrix + start row). The state
    /// subsets are debugging metadata and excluded, matching the paper's
    /// "precomputed data" accounting in §6.2.
    pub fn precomputed_bytes(&self) -> usize {
        self.transitions.len() * std::mem::size_of::<u32>()
            + self.contains.heap_bytes()
            + self.start.len() * std::mem::size_of::<u32>()
            + self.dominance.as_ref().map_or(0, BitMatrix::heap_bytes)
    }

    /// Future-proof plan domination: `a`'s node set ⊇ `b`'s. Answered
    /// from the precomputed matrix when present, by an on-demand subset
    /// comparison otherwise — the same relation either way, so huge
    /// automata lose only the O(1) probe, never pruning power.
    #[inline]
    pub fn state_dominates(&self, a: u32, b: u32) -> bool {
        match &self.dominance {
            Some(m) => m.get(a as usize, b as usize),
            None => self.states[a as usize].is_superset(&self.states[b as usize]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eqclass::EqClasses;
    use crate::fd::Fd;
    use crate::ordering::Ordering;
    use crate::prune::{prune_fds, prune_nfsm};
    use crate::spec::InputSpec;
    use ofw_catalog::AttrId;
    use ofw_common::SerialExecutor;

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);
    const C: AttrId = AttrId(2);
    const D: AttrId = AttrId(3);

    fn o(ids: &[AttrId]) -> LogicalProperty {
        Ordering::new(ids.to_vec()).into()
    }

    /// Full §5 pipeline for the running example.
    fn running_example_dfsm(config: &PruneConfig) -> (Nfsm, Dfsm) {
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[B]));
        spec.add_produced(o(&[A, B]));
        spec.add_tested(o(&[A, B, C]));
        spec.add_fd_set(vec![Fd::functional(&[B], C)]);
        spec.add_fd_set(vec![Fd::functional(&[B], D)]);
        let eq = EqClasses::new();
        let (sets, _) = if config.prune_fds {
            prune_fds(&spec, &eq, config)
        } else {
            (spec.fd_sets().to_vec(), 0)
        };
        let nfsm = Nfsm::build(&spec, &sets, &eq, config).unwrap();
        let nfsm = prune_nfsm(nfsm, config);
        let dfsm = Dfsm::build(&nfsm, config).unwrap();
        (nfsm, dfsm)
    }

    /// Fig. 8: three states (plus our explicit empty-stream state).
    #[test]
    fn running_example_matches_fig8() {
        let (nfsm, dfsm) = running_example_dfsm(&PruneConfig::default());
        assert_eq!(dfsm.num_states(), 4, "3 states of Fig. 8 + empty");

        let state_with = |prop: &LogicalProperty| dfsm.start[prop];
        let s_b = state_with(&o(&[B]));
        let s_ab = state_with(&o(&[A, B]));
        assert_ne!(s_b, s_ab);

        // Fig. 9 contains matrix.
        let col = |prop: &LogicalProperty| dfsm.columns[prop] as usize;
        let probe = |s: u32, prop: &LogicalProperty| dfsm.contains.get(s as usize, col(prop));
        // State 1 = {(b)}.
        assert!(probe(s_b, &o(&[B])));
        assert!(!probe(s_b, &o(&[A])));
        // State 2 = {(a),(a,b)}.
        assert!(probe(s_ab, &o(&[A])));
        assert!(probe(s_ab, &o(&[A, B])));
        assert!(!probe(s_ab, &o(&[A, B, C])));
        assert!(!probe(s_ab, &o(&[B])));

        // Fig. 10 transitions on {b→c} (symbol 0).
        let s3 = dfsm.step(s_ab, 0);
        assert_ne!(s3, s_ab, "(a,b) advances to {{(a),(a,b),(a,b,c)}}");
        assert!(probe(s3, &o(&[A, B, C])));
        assert_eq!(dfsm.step(s3, 0), s3, "state 3 is a fixpoint");
        assert_eq!(dfsm.step(s_b, 0), s_b, "state 1 loops (Fig. 10 row 1)");
        // Pruned {b→d} (symbol 1) is the identity everywhere.
        for s in [s_b, s_ab, s3] {
            assert_eq!(dfsm.step(s, 1), s);
        }
        let _ = nfsm;
    }

    /// Without any pruning the DFSM still behaves identically on the
    /// interesting orders (pruning is behaviour-preserving).
    #[test]
    fn unpruned_dfsm_behaves_identically() {
        let (_, pruned) = running_example_dfsm(&PruneConfig::default());
        let (_, raw) = running_example_dfsm(&PruneConfig::none());
        assert!(raw.num_states() >= pruned.num_states());

        for start_order in [o(&[B]), o(&[A, B])] {
            for syms in [vec![], vec![0], vec![1], vec![0, 1], vec![1, 0]] {
                let mut sp = pruned.start[&start_order];
                let mut sr = raw.start[&start_order];
                for &sym in &syms {
                    sp = pruned.step(sp, sym);
                    sr = raw.step(sr, sym);
                }
                for ord in [o(&[A]), o(&[B]), o(&[A, B]), o(&[A, B, C])] {
                    let cp = pruned
                        .contains
                        .get(sp as usize, pruned.columns[&ord] as usize);
                    let cr = raw.contains.get(sr as usize, raw.columns[&ord] as usize);
                    assert_eq!(cp, cr, "order {ord:?} after {syms:?} from {start_order:?}");
                }
            }
        }
    }

    #[test]
    fn empty_state_with_constant_gains_ordering() {
        // Heap scan (no ordering) + selection x = const ⇒ stream is
        // logically ordered by (x).
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[A]));
        let f = spec.add_fd_set(vec![Fd::constant(A)]);
        let eq = EqClasses::new();
        let config = PruneConfig::default();
        let nfsm = Nfsm::build(&spec, spec.fd_sets(), &eq, &config).unwrap();
        let nfsm = prune_nfsm(nfsm, &config);
        let dfsm = Dfsm::build(&nfsm, &config).unwrap();
        let col = dfsm.columns[&o(&[A])] as usize;
        assert!(!dfsm.contains.get(dfsm.empty_state as usize, col));
        let s = dfsm.step(dfsm.empty_state, f.index());
        assert!(dfsm.contains.get(s as usize, col));
    }

    #[test]
    fn precomputed_bytes_counts_tables() {
        let (_, dfsm) = running_example_dfsm(&PruneConfig::default());
        let bytes = dfsm.precomputed_bytes();
        assert!(bytes >= dfsm.transitions.len() * 4);
        assert!(bytes < 16 * 1024, "tiny example must stay tiny: {bytes}");
    }

    /// The parallel-frontier build must be bit-identical to the serial
    /// one: same state numbering, transitions, contains rows and starts.
    #[test]
    fn frontier_build_matches_serial_build() {
        let config = PruneConfig::default();
        let (nfsm, serial) = running_example_dfsm(&config);
        let exec = SerialExecutor;
        let frontier = Dfsm::build_with(&nfsm, &config, Some(&exec)).unwrap();
        assert_eq!(frontier.states, serial.states);
        assert_eq!(frontier.transitions, serial.transitions);
        assert_eq!(frontier.start, serial.start);
        assert_eq!(frontier.empty_state, serial.empty_state);
        for s in 0..serial.num_states() {
            let a: Vec<usize> = serial.contains.row_iter(s).collect();
            let b: Vec<usize> = frontier.contains.row_iter(s).collect();
            assert_eq!(a, b);
        }
    }

    /// Minimization merges probe-equivalent states while preserving
    /// every probe answer along every symbol sequence. The *unpruned*
    /// running example is full of such redundancy: artificial nodes
    /// like (b,c) ride along in states whose interesting-order rows and
    /// futures are indistinguishable — NFSM pruning removes most of it
    /// up front, minimization mops up what determinization still
    /// duplicates.
    #[test]
    fn minimize_merges_equivalent_states_and_preserves_probes() {
        let config = PruneConfig::none();
        let (nfsm, full) = running_example_dfsm(&config);
        let mut min = Dfsm::build(&nfsm, &config).unwrap();
        let before = min.minimize();
        assert_eq!(before, full.num_states());
        assert!(
            min.num_states() < full.num_states(),
            "artificial-node redundancy must merge: {} vs {}",
            min.num_states(),
            full.num_states()
        );

        // Probe-equivalence along every symbol sequence up to length 3.
        let props: Vec<&LogicalProperty> = full.columns.keys().collect();
        for (prop, &s_full) in &full.start {
            for syms in [
                vec![],
                vec![0],
                vec![1],
                vec![0, 1],
                vec![1, 0],
                vec![0, 0, 1],
            ] {
                let mut sf = s_full;
                let mut sm = min.start[prop];
                for &sym in &syms {
                    sf = full.step(sf, sym);
                    sm = min.step(sm, sym);
                }
                for p in &props {
                    assert_eq!(
                        full.contains.get(sf as usize, full.columns[*p] as usize),
                        min.contains.get(sm as usize, min.columns[*p] as usize),
                        "probe {p:?} diverged after {syms:?} from start {prop:?}"
                    );
                }
            }
        }
    }

    /// A DFSM with nothing to merge reports the unchanged count.
    #[test]
    fn minimize_is_identity_on_distinct_states() {
        let (_, mut dfsm) = running_example_dfsm(&PruneConfig::default());
        let n = dfsm.num_states();
        assert_eq!(dfsm.minimize(), n);
        assert_eq!(dfsm.num_states(), n);
    }
}
