//! NFSM → DFSM conversion (paper §5.4 and Appendix A) and the
//! precomputed tables of §5.5.
//!
//! The classic subset construction, lifted from automata to state
//! machines (no accepting states; instead we must know which interesting
//! orders each state implies). Two deviations worth calling out:
//!
//! * **ε-closure**: a DFSM state is always ε-closed, so a state holding
//!   `(a,b,c)` also holds `(a,b)` and `(a)` — that is how `contains` on
//!   prefixes works with a single bit probe.
//! * **self-retention**: logical orderings *survive* the application of
//!   an operator (`Ω` is monotone: `Ω_i ⊇ Ω_{i-1}`), so the successor of
//!   state `S` under symbol `f` is `ε-closure(S ∪ targets(S, f))`, i.e.
//!   every NFSM node implicitly carries a self-loop on every symbol.
//!   This matches Fig. 10, where state 1 = {(b)} stays in state 1 under
//!   `{b→c}` after the artificial node `(b,c)` has been pruned.
//!
//! After construction, two dense tables make the plan-generation ADT
//! O(1): a transition table (`state × symbol → state`) and a `contains`
//! bit matrix (`state × interesting order → bool`), together with a
//! start row mapping each *produced* order to its entry state (the `*`
//! row of Fig. 10).

use crate::nfsm::{BuildError, Nfsm, NodeId};
use crate::property::LogicalProperty;
use crate::prune::PruneConfig;
use ofw_common::{BitMatrix, BitSet, FxHashMap, Interner};

/// The deterministic FSM plus the §5.5 precomputed tables.
pub struct Dfsm {
    /// Subset of NFSM nodes per DFSM state (kept for introspection,
    /// examples and tests; not needed during plan generation).
    pub states: Vec<BitSet>,
    /// Row-major transition table: `transitions[state * num_symbols + sym]`.
    pub transitions: Vec<u32>,
    /// Number of FD-set symbols.
    pub num_symbols: usize,
    /// Entry state for a tuple stream with no ordering (`()`).
    pub empty_state: u32,
    /// Entry states (`*` row): per *produced* interesting property
    /// (ordering or grouping), the state for a stream physically shaped
    /// that way (sorted, respectively hash-grouped).
    pub start: FxHashMap<LogicalProperty, u32>,
    /// `contains` bit matrix: rows = DFSM states, cols = interesting
    /// properties (orderings prefix-closed, groupings as-is), indexed by
    /// [`Dfsm::columns`] order.
    pub contains: BitMatrix,
    /// Column index per interesting property.
    pub columns: FxHashMap<LogicalProperty, u32>,
    /// Plan-domination matrix: bit (a, b) set iff state `a`'s NFSM node
    /// set is a superset of `b`'s. Node-set inclusion is *future-proof*:
    /// transitions are monotone w.r.t. set inclusion, so a dominating
    /// state keeps satisfying at least the same interesting orders under
    /// every subsequent FD application. (The weaker contains-row
    /// superset is NOT sound for pruning: an artificial node present in
    /// only one state can later derive an interesting order.)
    /// `None` when the DFSM is too large to precompute pairs; callers
    /// then fall back to state equality.
    pub dominance: Option<BitMatrix>,
}

/// Above this state count the quadratic dominance matrix is skipped.
const DOMINANCE_STATE_LIMIT: usize = 1 << 12;

impl Dfsm {
    /// Runs the subset construction over `nfsm`.
    pub fn build(nfsm: &Nfsm, config: &PruneConfig) -> Result<Dfsm, BuildError> {
        let n = nfsm.num_nodes();
        // ε-closures per node. ε-edge lists already point at *all*
        // proper prefixes, but pruning may have relinked chains, so
        // close transitively for safety.
        let eps_closure: Vec<BitSet> = (0..n)
            .map(|v| {
                let mut set = BitSet::new(n);
                let mut work = vec![v as NodeId];
                set.insert(v);
                while let Some(u) = work.pop() {
                    for &p in &nfsm.eps[u as usize] {
                        if !set.contains(p as usize) {
                            set.insert(p as usize);
                            work.push(p);
                        }
                    }
                }
                set
            })
            .collect();

        let mut states: Interner<BitSet> = Interner::new();
        let mut transitions: Vec<u32> = Vec::new();
        let num_symbols = nfsm.num_symbols;

        fn intern_state(
            states: &mut Interner<BitSet>,
            transitions: &mut Vec<u32>,
            num_symbols: usize,
            max_states: usize,
            set: BitSet,
        ) -> Result<u32, BuildError> {
            let before = states.len();
            let id = states.intern(set);
            if states.len() > before {
                if states.len() > max_states {
                    return Err(BuildError::TooManyDfsmStates(max_states));
                }
                transitions.extend(std::iter::repeat_n(u32::MAX, num_symbols));
            }
            Ok(id)
        }
        let max_states = config.max_dfsm_states;

        // Entry states: the empty stream and one per produced order.
        let empty_state = intern_state(
            &mut states,
            &mut transitions,
            num_symbols,
            max_states,
            eps_closure[0].clone(),
        )?;
        let mut start: FxHashMap<LogicalProperty, u32> = FxHashMap::default();
        for (node, prop) in nfsm.props.iter() {
            if nfsm.info[node as usize].produced {
                let id = intern_state(
                    &mut states,
                    &mut transitions,
                    num_symbols,
                    max_states,
                    eps_closure[node as usize].clone(),
                )?;
                start.insert(prop.clone(), id);
            }
        }

        // Breadth-first subset construction.
        let mut next = 0u32;
        while (next as usize) < states.len() {
            let state = next;
            next += 1;
            let subset = states.resolve(state).clone();
            for sym in 0..num_symbols {
                let mut succ = subset.clone();
                for v in subset.iter() {
                    for &t in &nfsm.edges[v][sym] {
                        succ.union_with(&eps_closure[t as usize]);
                    }
                }
                let target = if succ == subset {
                    state
                } else {
                    intern_state(&mut states, &mut transitions, num_symbols, max_states, succ)?
                };
                transitions[state as usize * num_symbols + sym] = target;
            }
        }

        // Precompute the contains matrix over interesting nodes.
        let mut columns: FxHashMap<LogicalProperty, u32> = FxHashMap::default();
        let mut col_of_node: Vec<Option<u32>> = vec![None; n];
        for (node, prop) in nfsm.props.iter() {
            if nfsm.info[node as usize].interesting {
                let col = columns.len() as u32;
                columns.insert(prop.clone(), col);
                col_of_node[node as usize] = Some(col);
            }
        }
        let mut contains = BitMatrix::new(states.len(), columns.len());
        for state in 0..states.len() {
            for v in states.resolve(state as u32).iter() {
                if let Some(col) = col_of_node[v] {
                    contains.set(state, col as usize);
                }
            }
        }

        let state_sets: Vec<BitSet> = (0..states.len() as u32)
            .map(|s| states.resolve(s).clone())
            .collect();
        let dominance = (state_sets.len() <= DOMINANCE_STATE_LIMIT).then(|| {
            let mut m = BitMatrix::new(state_sets.len(), state_sets.len());
            for (a, sa) in state_sets.iter().enumerate() {
                for (b, sb) in state_sets.iter().enumerate() {
                    if sa.is_superset(sb) {
                        m.set(a, b);
                    }
                }
            }
            m
        });

        Ok(Dfsm {
            states: state_sets,
            transitions,
            num_symbols,
            empty_state,
            start,
            contains,
            columns,
            dominance,
        })
    }

    /// Number of DFSM states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Successor state under an FD-set symbol — one array lookup (§5.6).
    #[inline]
    pub fn step(&self, state: u32, sym: usize) -> u32 {
        self.transitions[state as usize * self.num_symbols + sym]
    }

    /// Bytes of the precomputed data a plan generator needs at runtime
    /// (transition table + contains matrix + start row). The state
    /// subsets are debugging metadata and excluded, matching the paper's
    /// "precomputed data" accounting in §6.2.
    pub fn precomputed_bytes(&self) -> usize {
        self.transitions.len() * std::mem::size_of::<u32>()
            + self.contains.heap_bytes()
            + self.start.len() * std::mem::size_of::<u32>()
            + self.dominance.as_ref().map_or(0, BitMatrix::heap_bytes)
    }

    /// Future-proof plan domination: `a`'s node set ⊇ `b`'s (falls back
    /// to equality when the dominance matrix was not precomputed).
    #[inline]
    pub fn state_dominates(&self, a: u32, b: u32) -> bool {
        match &self.dominance {
            Some(m) => m.get(a as usize, b as usize),
            None => a == b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eqclass::EqClasses;
    use crate::fd::Fd;
    use crate::ordering::Ordering;
    use crate::prune::{prune_fds, prune_nfsm};
    use crate::spec::InputSpec;
    use ofw_catalog::AttrId;

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);
    const C: AttrId = AttrId(2);
    const D: AttrId = AttrId(3);

    fn o(ids: &[AttrId]) -> LogicalProperty {
        Ordering::new(ids.to_vec()).into()
    }

    /// Full §5 pipeline for the running example.
    fn running_example_dfsm(config: &PruneConfig) -> (Nfsm, Dfsm) {
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[B]));
        spec.add_produced(o(&[A, B]));
        spec.add_tested(o(&[A, B, C]));
        spec.add_fd_set(vec![Fd::functional(&[B], C)]);
        spec.add_fd_set(vec![Fd::functional(&[B], D)]);
        let eq = EqClasses::new();
        let (sets, _) = if config.prune_fds {
            prune_fds(&spec, &eq, config)
        } else {
            (spec.fd_sets().to_vec(), 0)
        };
        let nfsm = Nfsm::build(&spec, &sets, &eq, config).unwrap();
        let nfsm = prune_nfsm(nfsm, config);
        let dfsm = Dfsm::build(&nfsm, config).unwrap();
        (nfsm, dfsm)
    }

    /// Fig. 8: three states (plus our explicit empty-stream state).
    #[test]
    fn running_example_matches_fig8() {
        let (nfsm, dfsm) = running_example_dfsm(&PruneConfig::default());
        assert_eq!(dfsm.num_states(), 4, "3 states of Fig. 8 + empty");

        let state_with = |prop: &LogicalProperty| dfsm.start[prop];
        let s_b = state_with(&o(&[B]));
        let s_ab = state_with(&o(&[A, B]));
        assert_ne!(s_b, s_ab);

        // Fig. 9 contains matrix.
        let col = |prop: &LogicalProperty| dfsm.columns[prop] as usize;
        let probe = |s: u32, prop: &LogicalProperty| dfsm.contains.get(s as usize, col(prop));
        // State 1 = {(b)}.
        assert!(probe(s_b, &o(&[B])));
        assert!(!probe(s_b, &o(&[A])));
        // State 2 = {(a),(a,b)}.
        assert!(probe(s_ab, &o(&[A])));
        assert!(probe(s_ab, &o(&[A, B])));
        assert!(!probe(s_ab, &o(&[A, B, C])));
        assert!(!probe(s_ab, &o(&[B])));

        // Fig. 10 transitions on {b→c} (symbol 0).
        let s3 = dfsm.step(s_ab, 0);
        assert_ne!(s3, s_ab, "(a,b) advances to {{(a),(a,b),(a,b,c)}}");
        assert!(probe(s3, &o(&[A, B, C])));
        assert_eq!(dfsm.step(s3, 0), s3, "state 3 is a fixpoint");
        assert_eq!(dfsm.step(s_b, 0), s_b, "state 1 loops (Fig. 10 row 1)");
        // Pruned {b→d} (symbol 1) is the identity everywhere.
        for s in [s_b, s_ab, s3] {
            assert_eq!(dfsm.step(s, 1), s);
        }
        let _ = nfsm;
    }

    /// Without any pruning the DFSM still behaves identically on the
    /// interesting orders (pruning is behaviour-preserving).
    #[test]
    fn unpruned_dfsm_behaves_identically() {
        let (_, pruned) = running_example_dfsm(&PruneConfig::default());
        let (_, raw) = running_example_dfsm(&PruneConfig::none());
        assert!(raw.num_states() >= pruned.num_states());

        for start_order in [o(&[B]), o(&[A, B])] {
            for syms in [vec![], vec![0], vec![1], vec![0, 1], vec![1, 0]] {
                let mut sp = pruned.start[&start_order];
                let mut sr = raw.start[&start_order];
                for &sym in &syms {
                    sp = pruned.step(sp, sym);
                    sr = raw.step(sr, sym);
                }
                for ord in [o(&[A]), o(&[B]), o(&[A, B]), o(&[A, B, C])] {
                    let cp = pruned
                        .contains
                        .get(sp as usize, pruned.columns[&ord] as usize);
                    let cr = raw.contains.get(sr as usize, raw.columns[&ord] as usize);
                    assert_eq!(cp, cr, "order {ord:?} after {syms:?} from {start_order:?}");
                }
            }
        }
    }

    #[test]
    fn empty_state_with_constant_gains_ordering() {
        // Heap scan (no ordering) + selection x = const ⇒ stream is
        // logically ordered by (x).
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[A]));
        let f = spec.add_fd_set(vec![Fd::constant(A)]);
        let eq = EqClasses::new();
        let config = PruneConfig::default();
        let nfsm = Nfsm::build(&spec, spec.fd_sets(), &eq, &config).unwrap();
        let nfsm = prune_nfsm(nfsm, &config);
        let dfsm = Dfsm::build(&nfsm, &config).unwrap();
        let col = dfsm.columns[&o(&[A])] as usize;
        assert!(!dfsm.contains.get(dfsm.empty_state as usize, col));
        let s = dfsm.step(dfsm.empty_state, f.index());
        assert!(dfsm.contains.get(s as usize, col));
    }

    #[test]
    fn precomputed_bytes_counts_tables() {
        let (_, dfsm) = running_example_dfsm(&PruneConfig::default());
        let bytes = dfsm.precomputed_bytes();
        assert!(bytes >= dfsm.transitions.len() * 4);
        assert!(bytes < 16 * 1024, "tiny example must stay tiny: {bytes}");
    }
}
