//! The input to the preparation phase (paper §5.2, extended to the
//! combined ordering + grouping framework).
//!
//! Before plan generation, the optimizer determines (1) the interesting
//! *logical properties* — orderings and groupings, split into those
//! *produced* by some physical operator (`O_P`: sort, ordered index
//! scan, hash aggregation, …) and those only *tested for* (`O_T`) — and
//! (2) the set of sets of functional dependencies `F`, one [`FdSet`] per
//! operator that changes logical properties. [`InputSpec`] carries
//! exactly this.
//!
//! Registration is hash-indexed, so building a spec with many
//! interesting properties stays linear (the original `Vec::contains`
//! scans were quadratic).

use crate::fd::{Fd, FdSet, FdSetId};
use crate::ordering::Ordering;
use crate::property::{Grouping, HeadTail, LogicalProperty};
use ofw_common::{FxHashMap, FxHashSet};

/// Interesting orderings/groupings + FD sets extracted from one query.
#[derive(Clone, Debug, Default)]
pub struct InputSpec {
    produced: Vec<LogicalProperty>,
    tested: Vec<LogicalProperty>,
    fd_sets: Vec<FdSet>,
    produced_index: FxHashSet<LogicalProperty>,
    tested_index: FxHashSet<LogicalProperty>,
    fd_index: FxHashMap<FdSet, FdSetId>,
}

impl InputSpec {
    /// An empty specification.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an interesting property in `O_P`: producible by a
    /// physical operator (sort, index scan, hash aggregation, …) and
    /// therefore reachable through an artificial start edge. Produced
    /// properties are implicitly also testable. Duplicates are ignored
    /// (O(1) hash probe).
    pub fn add_produced(&mut self, p: impl Into<LogicalProperty>) {
        let p = p.into();
        assert!(!p.is_empty(), "the empty ordering/grouping is implicit");
        if self.produced_index.insert(p.clone()) {
            self.produced.push(p);
        }
    }

    /// Registers an interesting property in `O_T`: only tested for (e.g.
    /// a merge-join requirement no operator produces directly).
    pub fn add_tested(&mut self, p: impl Into<LogicalProperty>) {
        let p = p.into();
        assert!(!p.is_empty(), "the empty ordering/grouping is implicit");
        if self.produced_index.contains(&p) {
            return;
        }
        if self.tested_index.insert(p.clone()) {
            self.tested.push(p);
        }
    }

    /// Registers the FD set of one operator and returns its handle — the
    /// value the plan generator later feeds to
    /// [`OrderingFramework::infer`](crate::OrderingFramework::infer).
    /// Identical sets share a handle (O(1) hash probe).
    pub fn add_fd_set(&mut self, fds: Vec<Fd>) -> FdSetId {
        let set = FdSet::new(fds);
        if let Some(&id) = self.fd_index.get(&set) {
            return id;
        }
        let id = FdSetId(self.fd_sets.len() as u32);
        self.fd_index.insert(set.clone(), id);
        self.fd_sets.push(set);
        id
    }

    /// `O_P` — produced interesting properties, in registration order.
    pub fn produced(&self) -> &[LogicalProperty] {
        &self.produced
    }

    /// `O_T` — tested-only interesting properties.
    pub fn tested(&self) -> &[LogicalProperty] {
        &self.tested
    }

    /// All interesting properties `O_I = O_P ∪ O_T` (produced first).
    pub fn interesting(&self) -> impl Iterator<Item = &LogicalProperty> {
        self.produced.iter().chain(self.tested.iter())
    }

    /// The interesting *orderings* only.
    pub fn interesting_orderings(&self) -> impl Iterator<Item = &Ordering> {
        self.interesting().filter_map(LogicalProperty::as_ordering)
    }

    /// The interesting *groupings* only.
    pub fn interesting_groupings(&self) -> impl Iterator<Item = &Grouping> {
        self.interesting().filter_map(LogicalProperty::as_grouping)
    }

    /// The interesting *head/tail pairs* only.
    pub fn interesting_head_tails(&self) -> impl Iterator<Item = &HeadTail> {
        self.interesting().filter_map(LogicalProperty::as_head_tail)
    }

    /// Whether any interesting grouping was registered — when false the
    /// pipeline behaves exactly like the pure ordering framework.
    pub fn has_groupings(&self) -> bool {
        self.interesting().any(LogicalProperty::is_grouping)
    }

    /// Whether any interesting head/tail pair was registered — when
    /// false no pair node is ever materialized and the pipeline behaves
    /// exactly like the ordering + grouping framework.
    pub fn has_head_tails(&self) -> bool {
        self.interesting().any(LogicalProperty::is_head_tail)
    }

    /// The registered FD sets, indexable by [`FdSetId`].
    pub fn fd_sets(&self) -> &[FdSet] {
        &self.fd_sets
    }

    /// The interesting properties with the ordering prefix closure
    /// applied, deduplicated in first-seen order, each paired with
    /// whether it is producible: produced properties, then tested-only
    /// ones, with every interesting ordering's proper prefixes folded in
    /// as non-producible. Both baseline frameworks (Simmen, explicit
    /// oracle) register their key spaces from this single list, so the
    /// arms cannot diverge on which properties resolve.
    pub fn interesting_closure(&self) -> Vec<(LogicalProperty, bool)> {
        let mut out: Vec<(LogicalProperty, bool)> = Vec::new();
        let mut index: FxHashMap<LogicalProperty, usize> = FxHashMap::default();
        let mut add = |p: LogicalProperty, prod: bool, out: &mut Vec<(LogicalProperty, bool)>| {
            if let Some(&i) = index.get(&p) {
                out[i].1 = out[i].1 || prod;
                return;
            }
            index.insert(p.clone(), out.len());
            out.push((p, prod));
        };
        for (list, prod) in [(&self.produced, true), (&self.tested, false)] {
            for p in list {
                add(p.clone(), prod, &mut out);
                if let LogicalProperty::Ordering(o) = p {
                    for prefix in o.proper_prefixes() {
                        add(prefix.into(), false, &mut out);
                    }
                }
            }
        }
        out
    }

    /// Length of the longest interesting *ordering* — the global cutoff
    /// used by the §5.7 heuristics (groupings are set-bounded by their
    /// own admission filter and do not participate).
    pub fn max_interesting_len(&self) -> usize {
        self.interesting_orderings()
            .map(Ordering::len)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofw_catalog::AttrId;

    fn o(ids: &[u32]) -> Ordering {
        Ordering::new(ids.iter().map(|&i| AttrId(i)).collect())
    }

    fn g(ids: &[u32]) -> Grouping {
        Grouping::new(ids.iter().map(|&i| AttrId(i)).collect())
    }

    #[test]
    fn produced_wins_over_tested() {
        let mut s = InputSpec::new();
        s.add_produced(o(&[1]));
        s.add_tested(o(&[1]));
        assert_eq!(s.produced().len(), 1);
        assert_eq!(s.tested().len(), 0);
    }

    #[test]
    fn orderings_and_groupings_are_distinct_properties() {
        let mut s = InputSpec::new();
        s.add_produced(o(&[1, 2]));
        s.add_produced(g(&[1, 2]));
        s.add_produced(g(&[2, 1])); // canonical duplicate of {1,2}
        assert_eq!(s.produced().len(), 2);
        assert_eq!(s.interesting_orderings().count(), 1);
        assert_eq!(s.interesting_groupings().count(), 1);
        assert!(s.has_groupings());
    }

    #[test]
    fn dedup_is_hash_backed_and_order_preserving() {
        let mut s = InputSpec::new();
        for i in 0..100u32 {
            s.add_produced(o(&[i % 10]));
            s.add_tested(o(&[i % 10, 10]));
        }
        assert_eq!(s.produced().len(), 10);
        assert_eq!(s.tested().len(), 10);
        assert_eq!(s.produced()[0], o(&[0]).into());
        assert_eq!(s.produced()[9], o(&[9]).into());
    }

    #[test]
    fn interesting_closure_expands_ordering_prefixes() {
        let mut s = InputSpec::new();
        s.add_produced(o(&[1, 2]));
        s.add_tested(o(&[1]));
        s.add_tested(g(&[1, 2]));
        let closure = s.interesting_closure();
        // (1,2) produced, (1) its non-producible prefix (the later
        // tested registration merges into it), {1,2} tested; groupings
        // have no prefixes.
        assert_eq!(
            closure,
            vec![
                (o(&[1, 2]).into(), true),
                (o(&[1]).into(), false),
                (g(&[1, 2]).into(), false),
            ]
        );
    }

    #[test]
    fn fd_sets_dedup_to_same_handle() {
        let mut s = InputSpec::new();
        let f1 = s.add_fd_set(vec![Fd::equation(AttrId(0), AttrId(1))]);
        let f2 = s.add_fd_set(vec![Fd::equation(AttrId(1), AttrId(0))]);
        let f3 = s.add_fd_set(vec![Fd::constant(AttrId(2))]);
        assert_eq!(f1, f2);
        assert_ne!(f1, f3);
        assert_eq!(s.fd_sets().len(), 2);
    }

    #[test]
    fn max_interesting_len() {
        let mut s = InputSpec::new();
        assert_eq!(s.max_interesting_len(), 0);
        s.add_produced(o(&[1]));
        s.add_tested(o(&[2, 3, 4]));
        s.add_tested(g(&[1, 2, 3, 4, 5]));
        assert_eq!(s.max_interesting_len(), 3, "groupings do not count");
    }

    #[test]
    #[should_panic(expected = "empty ordering")]
    fn empty_interesting_order_rejected() {
        let mut s = InputSpec::new();
        s.add_produced(Ordering::empty());
    }

    #[test]
    #[should_panic(expected = "empty ordering")]
    fn empty_interesting_grouping_rejected() {
        let mut s = InputSpec::new();
        s.add_produced(Grouping::empty());
    }
}
