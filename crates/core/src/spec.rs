//! The input to the preparation phase (paper §5.2).
//!
//! Before plan generation, the optimizer determines (1) the interesting
//! orders — split into those *produced* by some physical operator (`O_P`)
//! and those only *tested for* (`O_T`) — and (2) the set of sets of
//! functional dependencies `F`, one [`FdSet`] per operator that changes
//! logical orderings. [`InputSpec`] carries exactly this.

use crate::fd::{Fd, FdSet, FdSetId};
use crate::ordering::Ordering;

/// Interesting orders + FD sets extracted from one query.
#[derive(Clone, Debug, Default)]
pub struct InputSpec {
    produced: Vec<Ordering>,
    tested: Vec<Ordering>,
    fd_sets: Vec<FdSet>,
}

impl InputSpec {
    /// An empty specification.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an interesting order in `O_P`: producible by a physical
    /// operator (sort, index scan, …) and therefore reachable through an
    /// artificial start edge. Produced orders are implicitly also
    /// testable. Duplicates are ignored.
    pub fn add_produced(&mut self, o: Ordering) {
        assert!(!o.is_empty(), "the empty ordering is implicit");
        if !self.produced.contains(&o) {
            self.produced.push(o);
        }
    }

    /// Registers an interesting order in `O_T`: only tested for (e.g. a
    /// merge-join requirement no operator produces directly).
    pub fn add_tested(&mut self, o: Ordering) {
        assert!(!o.is_empty(), "the empty ordering is implicit");
        if !self.tested.contains(&o) && !self.produced.contains(&o) {
            self.tested.push(o);
        }
    }

    /// Registers the FD set of one operator and returns its handle — the
    /// value the plan generator later feeds to
    /// [`OrderingFramework::infer`](crate::OrderingFramework::infer).
    /// Identical sets share a handle.
    pub fn add_fd_set(&mut self, fds: Vec<Fd>) -> FdSetId {
        let set = FdSet::new(fds);
        if let Some(pos) = self.fd_sets.iter().position(|s| *s == set) {
            return FdSetId(pos as u32);
        }
        let id = FdSetId(self.fd_sets.len() as u32);
        self.fd_sets.push(set);
        id
    }

    /// `O_P` — produced interesting orders.
    pub fn produced(&self) -> &[Ordering] {
        &self.produced
    }

    /// `O_T` — tested-only interesting orders.
    pub fn tested(&self) -> &[Ordering] {
        &self.tested
    }

    /// All interesting orders `O_I = O_P ∪ O_T` (produced first).
    pub fn interesting(&self) -> impl Iterator<Item = &Ordering> {
        self.produced.iter().chain(self.tested.iter())
    }

    /// The registered FD sets, indexable by [`FdSetId`].
    pub fn fd_sets(&self) -> &[FdSet] {
        &self.fd_sets
    }

    /// Length of the longest interesting order — the global cutoff used by
    /// the §5.7 heuristics.
    pub fn max_interesting_len(&self) -> usize {
        self.interesting().map(Ordering::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofw_catalog::AttrId;

    fn o(ids: &[u32]) -> Ordering {
        Ordering::new(ids.iter().map(|&i| AttrId(i)).collect())
    }

    #[test]
    fn produced_wins_over_tested() {
        let mut s = InputSpec::new();
        s.add_produced(o(&[1]));
        s.add_tested(o(&[1]));
        assert_eq!(s.produced().len(), 1);
        assert_eq!(s.tested().len(), 0);
    }

    #[test]
    fn fd_sets_dedup_to_same_handle() {
        let mut s = InputSpec::new();
        let f1 = s.add_fd_set(vec![Fd::equation(AttrId(0), AttrId(1))]);
        let f2 = s.add_fd_set(vec![Fd::equation(AttrId(1), AttrId(0))]);
        let f3 = s.add_fd_set(vec![Fd::constant(AttrId(2))]);
        assert_eq!(f1, f2);
        assert_ne!(f1, f3);
        assert_eq!(s.fd_sets().len(), 2);
    }

    #[test]
    fn max_interesting_len() {
        let mut s = InputSpec::new();
        assert_eq!(s.max_interesting_len(), 0);
        s.add_produced(o(&[1]));
        s.add_tested(o(&[2, 3, 4]));
        assert_eq!(s.max_interesting_len(), 3);
    }

    #[test]
    #[should_panic(expected = "empty ordering")]
    fn empty_interesting_order_rejected() {
        let mut s = InputSpec::new();
        s.add_produced(Ordering::empty());
    }
}
