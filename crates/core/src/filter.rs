//! The prefix-filter heuristic of §5.7, strengthened for completeness.
//!
//! During closure computation, the candidate space of derived orderings
//! explodes combinatorially (the paper's example: three single-attribute
//! interesting orders plus four FDs yield *all permutations* of three
//! attributes). Two observations bound it:
//!
//! 1. positions beyond the longest interesting order can never be tested,
//!    so derived orderings may be **cut off** at that length;
//! 2. a derived ordering is only worth materializing if some interesting
//!    order can still be *completed* from it by later derivations.
//!
//! The paper's formulation of (2) — "check if there is an interesting
//! order with the prefix `(o₁..o_{i-1}, b)`", modulo equivalence-class
//! representatives — is *incomplete*: later dependencies can insert
//! attributes **to the left** (a constant lands anywhere; an FD's
//! right-hand side lands anywhere after its left-hand side) and can
//! *remove* attributes (constants and functionally determined
//! attributes never decide comparisons). Example: with interesting
//! order `(x, a)` and `x = const`, the candidate `(a)` must be kept — a
//! later selection inserts `x` in front; with interesting order `(a)`
//! and `x = const`, the candidate `(x, a)` must be kept — `x` is
//! removable.
//!
//! [`PrefixFilter::admitted_len`] therefore solves a tiny alignment
//! problem per interesting order: walk the candidate and the interesting
//! order simultaneously where a step may **match** (equal
//! representatives), **skip** an interesting-order position whose
//! attribute is derivable from what the candidate already provides
//! (constant closure), or **strip** a candidate attribute that is
//! removable (a constant, a duplicate representative, or an FD rhs whose
//! determinants precede it). Because match/strip can conflict, this is a
//! small reachability DP, not a greedy scan — candidates are at most as
//! long as the longest interesting order, so the state space is tiny.

use crate::eqclass::EqClasses;
use crate::fd::Fd;
use crate::ordering::Ordering;
use crate::property::{Grouping, HeadTail};
use ofw_catalog::AttrId;
use ofw_common::FxHashSet;

/// One dependency in representative space.
#[derive(Debug)]
struct RepFd {
    lhs: Vec<AttrId>,
    rhs: AttrId,
}

/// Bounded-derivation filter over the interesting orders.
#[derive(Debug)]
pub struct PrefixFilter {
    /// Representative-mapped interesting orders.
    orders: Vec<Vec<AttrId>>,
    /// Representatives of constant-bound attributes.
    const_reps: FxHashSet<AttrId>,
    /// Representative-space FDs.
    rep_fds: Vec<RepFd>,
    /// Classes (representatives) participating in a *multi-attribute*
    /// left-hand side. Derivation matches left-hand sides on concrete
    /// attributes, so an ordering may need several equal-by-equation
    /// attributes present at once — e.g. `[a,b] → c` with `a = b` fires
    /// only from orderings containing both `a` and `b`, which in
    /// representative space look like useless duplicates.
    multi_lhs_reps: FxHashSet<AttrId>,
    enabled: bool,
}

impl PrefixFilter {
    /// Builds the filter. `fds` must be (a superset of) the dependencies
    /// the closure will apply — they determine which gaps are fillable
    /// and which candidate attributes are removable. When `enabled` is
    /// false every query permissively allows everything (the paper's
    /// "w/o pruning" configuration).
    pub fn new<'a>(
        interesting: impl Iterator<Item = &'a Ordering>,
        fds: &[Fd],
        eq: &EqClasses,
        enabled: bool,
    ) -> Self {
        let orders: Vec<Vec<AttrId>> = interesting.map(|o| eq.map_slice(o.attrs())).collect();
        let mut const_reps = FxHashSet::default();
        let mut rep_fds = Vec::new();
        let mut multi_lhs_reps = FxHashSet::default();
        for fd in fds {
            match fd {
                Fd::Constant(a) => {
                    const_reps.insert(eq.find(*a));
                }
                Fd::Functional { lhs, rhs } => {
                    if lhs.len() >= 2 {
                        for &l in lhs.iter() {
                            multi_lhs_reps.insert(eq.find(l));
                        }
                    }
                    let lhs: Vec<AttrId> = lhs.iter().map(|&a| eq.find(a)).collect();
                    let rhs = eq.find(*rhs);
                    if !lhs.contains(&rhs) {
                        rep_fds.push(RepFd { lhs, rhs });
                    }
                }
                // In representative space an equation is the identity.
                Fd::Equation(_, _) => {}
            }
        }
        PrefixFilter {
            orders,
            const_reps,
            rep_fds,
            multi_lhs_reps,
            enabled,
        }
    }

    /// How much of `candidate` is worth keeping, at most `cap` long?
    /// Returns the longest useful prefix length not exceeding `cap`
    /// (0 = the candidate serves no interesting order at all). A useful
    /// prefix always ends in an attribute that *matches* an interesting-
    /// order position — trailing strippable attributes are dead weight
    /// and cut. Returns `cap` itself when the filter is disabled.
    pub fn admitted_len(&self, candidate: &[AttrId], eq: &EqClasses, cap: usize) -> usize {
        if !self.enabled {
            return cap;
        }
        let cand: Vec<AttrId> = candidate.iter().map(|&a| eq.find(a)).collect();

        // avail[i]: constant closure of the candidate's first i attrs —
        // everything insertable *somewhere after position i*.
        let mut avail: Vec<FxHashSet<AttrId>> = Vec::with_capacity(cand.len() + 1);
        let mut cur: FxHashSet<AttrId> = self.const_reps.clone();
        self.close(&mut cur);
        avail.push(cur.clone());
        for &c in &cand {
            cur.insert(c);
            self.close(&mut cur);
            avail.push(cur.clone());
        }

        // strippable[i]: candidate attr i is removable given what
        // precedes it.
        let prefix_reps = |i: usize| -> FxHashSet<AttrId> { cand[..i].iter().copied().collect() };
        let strippable: Vec<bool> = cand
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let before = prefix_reps(i);
                if self.const_reps.contains(&c) || before.contains(&c) {
                    return true;
                }
                self.rep_fds
                    .iter()
                    .any(|fd| fd.rhs == c && fd.lhs.iter().all(|l| before.contains(l)))
            })
            .collect();

        let mut best = 0usize;
        for io in &self.orders {
            best = best.max(self.align(&cand, io, &avail, &strippable, cap));
            if best >= cand.len().min(cap) {
                break;
            }
        }
        // Multi-attribute-lhs enablers: a duplicate class member right
        // after the useful prefix is kept if its class participates in a
        // multi-attribute left-hand side — the concrete derivation needs
        // both equal attributes physically present.
        while best > 0 && best < cand.len() && best < cap {
            let r = cand[best];
            if self.multi_lhs_reps.contains(&r) && cand[..best].contains(&r) {
                best += 1;
            } else {
                break;
            }
        }
        best
    }

    /// Reachability DP over (candidate index, io index). Returns the
    /// largest candidate index ≤ `cap` reached by a *match* move.
    fn align(
        &self,
        cand: &[AttrId],
        io: &[AttrId],
        avail: &[FxHashSet<AttrId>],
        strippable: &[bool],
        cap: usize,
    ) -> usize {
        let nc = cand.len();
        let ni = io.len();
        let mut reach = vec![false; (nc + 1) * (ni + 1)];
        let idx = |ci: usize, ii: usize| ci * (ni + 1) + ii;
        reach[idx(0, 0)] = true;
        let mut best = 0usize;
        // All moves increase ci or ii, so row-major order is topological.
        for ci in 0..=nc {
            for ii in 0..=ni {
                if !reach[idx(ci, ii)] || ci == nc {
                    continue;
                }
                // Strip cand[ci] (removable later). While the io still
                // has open positions, the stripped attribute may be the
                // *enabler* of a later fill (inserted, used as a
                // determinant, removed again), so it extends the useful
                // prefix; once the io is exhausted it is dead weight.
                if strippable[ci] {
                    reach[idx(ci + 1, ii)] = true;
                    if ii < ni && ci < cap {
                        best = best.max(ci + 1);
                    }
                }
                if ii < ni {
                    // Match equal representatives.
                    if io[ii] == cand[ci] {
                        reach[idx(ci + 1, ii + 1)] = true;
                        if ci < cap {
                            best = best.max(ci + 1);
                        }
                    }
                    // Skip a fillable io position.
                    if avail[ci].contains(&io[ii]) {
                        reach[idx(ci, ii + 1)] = true;
                    }
                }
            }
        }
        best
    }

    fn close(&self, set: &mut FxHashSet<AttrId>) {
        loop {
            let mut grew = false;
            for fd in &self.rep_fds {
                if !set.contains(&fd.rhs) && fd.lhs.iter().all(|l| set.contains(l)) {
                    set.insert(fd.rhs);
                    grew = true;
                }
            }
            if !grew {
                return;
            }
        }
    }

    /// Whether the filter is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

/// Admission filter for derived *groupings* — the set analogue of
/// [`PrefixFilter`], and much simpler because sets have no positions.
///
/// A derived grouping `g` is only worth materializing if some
/// interesting grouping `i` can still be reached from it. Every grouping
/// reachable from `g` lies (in representative space) inside the FD
/// closure of `reps(g) ∪ const_reps` — insertions only ever add
/// attributes from that closure, removals only shrink the set — so the
/// sound admission test is: some interesting grouping's representative
/// set is a subset of that closure. Over-admission is harmless (the
/// actual derivation rules decide satisfaction); under-admission would
/// lose completeness, so the test is deliberately permissive.
#[derive(Debug)]
pub struct GroupingFilter {
    /// Representative sets of the interesting groupings.
    interesting: Vec<FxHashSet<AttrId>>,
    /// Representatives of constant-bound attributes.
    const_reps: FxHashSet<AttrId>,
    /// Representative-space FDs (for the closure).
    rep_fds: Vec<(Vec<AttrId>, AttrId)>,
    /// Equivalence classes (candidates are mapped on the fly).
    eq: EqClasses,
    enabled: bool,
}

impl GroupingFilter {
    /// Builds the filter over the interesting groupings. `fds` must be
    /// (a superset of) the dependencies the closure will apply. With
    /// `enabled` false everything is admitted (the "w/o pruning"
    /// configuration).
    pub fn new<'a>(
        interesting: impl Iterator<Item = &'a Grouping>,
        fds: &[Fd],
        eq: &EqClasses,
        enabled: bool,
    ) -> Self {
        let interesting: Vec<FxHashSet<AttrId>> = interesting
            .map(|g| g.attrs().iter().map(|&a| eq.find(a)).collect())
            .collect();
        let mut const_reps = FxHashSet::default();
        let mut rep_fds = Vec::new();
        for fd in fds {
            match fd {
                Fd::Constant(a) => {
                    const_reps.insert(eq.find(*a));
                }
                Fd::Functional { lhs, rhs } => {
                    let lhs: Vec<AttrId> = lhs.iter().map(|&a| eq.find(a)).collect();
                    let rhs = eq.find(*rhs);
                    if !lhs.contains(&rhs) {
                        rep_fds.push((lhs, rhs));
                    }
                }
                // Identity in representative space.
                Fd::Equation(_, _) => {}
            }
        }
        GroupingFilter {
            interesting,
            const_reps,
            rep_fds,
            eq: eq.clone(),
            enabled,
        }
    }

    /// A filter admitting everything (no interesting groupings known).
    pub fn permissive() -> Self {
        GroupingFilter {
            interesting: Vec::new(),
            const_reps: FxHashSet::default(),
            rep_fds: Vec::new(),
            eq: EqClasses::new(),
            enabled: false,
        }
    }

    /// Whether some interesting grouping is still reachable from `g`.
    pub fn admits(&self, g: &Grouping) -> bool {
        if !self.enabled {
            return true;
        }
        let mut closure: FxHashSet<AttrId> = g.attrs().iter().map(|&a| self.eq.find(a)).collect();
        closure.extend(self.const_reps.iter().copied());
        loop {
            let mut grew = false;
            for (lhs, rhs) in &self.rep_fds {
                if !closure.contains(rhs) && lhs.iter().all(|l| closure.contains(l)) {
                    closure.insert(*rhs);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        self.interesting
            .iter()
            .any(|i| i.iter().all(|a| closure.contains(a)))
    }

    /// Whether the filter is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

/// Admission filter for derived *head/tail pairs* — a thin wrapper
/// delegating to [`GroupingFilter`], because the reachability argument
/// is literally the same one over the pair's attribute *footprint*:
/// every pair reachable from `(H, T)` (by FD derivation *or* by the
/// ε-implications absorbing tail prefixes into the head) draws its
/// attributes from the FD closure of `reps(H ∪ T) ∪ const_reps` —
/// insertions only ever add closure members, removals only shrink — so
/// a derived pair is worth keeping iff some interesting pair's full
/// footprint lies inside that closure. Over-admission is harmless (the
/// derivation rules decide satisfaction); under-admission would lose
/// completeness. Tails stay naturally bounded: a tail is duplicate-free
/// and disjoint from its head, so no pair outgrows the closure.
#[derive(Debug)]
pub struct HeadTailFilter(GroupingFilter);

impl HeadTailFilter {
    /// Builds the filter over the interesting pairs (each contributing
    /// its footprint `H ∪ T` as a reachability target). `fds` must be
    /// (a superset of) the dependencies the closure will apply. With
    /// `enabled` false everything is admitted (the "w/o pruning"
    /// configuration).
    pub fn new<'a>(
        interesting: impl Iterator<Item = &'a HeadTail>,
        fds: &[Fd],
        eq: &EqClasses,
        enabled: bool,
    ) -> Self {
        let footprints: Vec<Grouping> = interesting
            .map(|h| Grouping::new(h.attrs().to_vec()))
            .collect();
        HeadTailFilter(GroupingFilter::new(footprints.iter(), fds, eq, enabled))
    }

    /// A filter admitting everything (no interesting pairs known).
    pub fn permissive() -> Self {
        HeadTailFilter(GroupingFilter::permissive())
    }

    /// Whether some interesting pair is still reachable from `h`.
    pub fn admits(&self, h: &HeadTail) -> bool {
        if !self.0.is_enabled() {
            return true;
        }
        self.0.admits(&Grouping::new(h.attrs().to_vec()))
    }

    /// Whether the filter is active.
    pub fn is_enabled(&self) -> bool {
        self.0.is_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);
    const C: AttrId = AttrId(2);
    const D: AttrId = AttrId(3);
    const X: AttrId = AttrId(4);

    fn o(ids: &[AttrId]) -> Ordering {
        Ordering::new(ids.to_vec())
    }

    fn filter(orders: &[Ordering], fds: &[Fd], eq: &EqClasses) -> PrefixFilter {
        PrefixFilter::new(orders.iter(), fds, eq, true)
    }

    /// Shorthand: admitted length with no cap.
    fn admit(f: &PrefixFilter, cand: &[AttrId], eq: &EqClasses) -> usize {
        f.admitted_len(cand, eq, usize::MAX)
    }

    #[test]
    fn admits_prefixes_of_interesting_orders() {
        let eq = EqClasses::new();
        let f = filter(&[o(&[A, B, C]), o(&[B])], &[], &eq);
        assert_eq!(admit(&f, &[A], &eq), 1);
        assert_eq!(admit(&f, &[A, B], &eq), 2);
        assert_eq!(admit(&f, &[A, B, C], &eq), 3);
        assert_eq!(admit(&f, &[B], &eq), 1);
        // (b,c) is useless: nothing can ever put an `a` before `b`.
        assert_eq!(admit(&f, &[B, C], &eq), 1);
        assert_eq!(admit(&f, &[C], &eq), 0);
    }

    #[test]
    fn constants_fill_gaps_on_the_left() {
        // Interesting (x, a) with x = const: candidate (a) is useful —
        // a later selection inserts x in front.
        let eq = EqClasses::new();
        let f = filter(&[o(&[X, A])], &[Fd::constant(X)], &eq);
        assert_eq!(admit(&f, &[A], &eq), 1);
        // Without the constant it is dead.
        let g = filter(&[o(&[X, A])], &[], &eq);
        assert_eq!(admit(&g, &[A], &eq), 0);
    }

    #[test]
    fn constants_are_strippable_from_the_candidate() {
        // Interesting (a); candidate (x, a) with x = const is useful —
        // x is removable, leaving (a).
        let eq = EqClasses::new();
        let f = filter(&[o(&[A])], &[Fd::constant(X)], &eq);
        assert_eq!(admit(&f, &[X, A], &eq), 2);
        let g = filter(&[o(&[A])], &[], &eq);
        assert_eq!(admit(&g, &[X, A], &eq), 0);
    }

    #[test]
    fn strip_vs_match_requires_search() {
        // Interesting (a2, a0) with a0 = const and a0→a2: candidate
        // (a0, a2) must be fully admitted — strip the constant a0, match
        // a2, refill a0 later. A greedy matcher that binds the leading
        // a0 to the io's trailing a0 would reject this.
        let eq = EqClasses::new();
        let f = filter(
            &[o(&[C, A])],
            &[Fd::constant(A), Fd::functional(&[A], C)],
            &eq,
        );
        assert_eq!(admit(&f, &[A, C], &eq), 2);
    }

    #[test]
    fn fd_rhs_gaps_are_fillable_after_lhs() {
        // Interesting (a, y, c) with a→y: candidate (a, c) is useful.
        let eq = EqClasses::new();
        let f = filter(&[o(&[A, X, C])], &[Fd::functional(&[A], X)], &eq);
        assert_eq!(admit(&f, &[A, C], &eq), 2);
        // But (c, …) is dead: nothing fills the leading a.
        assert_eq!(admit(&f, &[C], &eq), 0);
    }

    #[test]
    fn determined_candidate_attrs_are_strippable() {
        // Interesting (a, c) with a→b: candidate (a, b, c) is useful —
        // b is removable after a.
        let eq = EqClasses::new();
        let f = filter(&[o(&[A, C])], &[Fd::functional(&[A], B)], &eq);
        assert_eq!(admit(&f, &[A, B, C], &eq), 3);
        // Without the FD, only the (a) prefix helps.
        let g = filter(&[o(&[A, C])], &[], &eq);
        assert_eq!(admit(&g, &[A, B, C], &eq), 1);
    }

    #[test]
    fn equivalence_classes_widen_the_filter() {
        // With a = d, the candidate (d, b) matches interesting (a, b).
        let mut eq = EqClasses::new();
        eq.union(A, D);
        let f = filter(&[o(&[A, B])], &[Fd::equation(A, D)], &eq);
        assert_eq!(admit(&f, &[D, B], &eq), 2);
        assert_eq!(admit(&f, &[A, B], &eq), 2);
        assert_eq!(admit(&f, &[B, A], &eq), 0, "nothing fills a leading a");
    }

    #[test]
    fn duplicate_representatives_are_strippable() {
        // a = x: candidate (a, x, c) — the second class member never
        // decides, so it matches interesting (a, c).
        let mut eq = EqClasses::new();
        eq.union(A, X);
        let f = filter(&[o(&[A, C])], &[Fd::equation(A, X)], &eq);
        assert_eq!(admit(&f, &[A, X, C], &eq), 3);
    }

    #[test]
    fn bound_is_longest_useful_prefix() {
        let eq = EqClasses::new();
        let f = filter(&[o(&[A, B]), o(&[A, B, C, D])], &[], &eq);
        assert_eq!(admit(&f, &[A, B, C], &eq), 3);
        assert_eq!(admit(&f, &[A, B, D], &eq), 2, "d only fits after c");
    }

    #[test]
    fn transitive_fd_fills() {
        // (a, y, z, c) with a→y, y→z: both gaps fillable from a.
        let eq = EqClasses::new();
        let f = filter(
            &[o(&[A, X, D, C])],
            &[Fd::functional(&[A], X), Fd::functional(&[X], D)],
            &eq,
        );
        assert_eq!(admit(&f, &[A, C], &eq), 2);
        // Without y→z the z gap is not fillable.
        let g = filter(&[o(&[A, X, D, C])], &[Fd::functional(&[A], X)], &eq);
        assert_eq!(admit(&g, &[A, C], &eq), 1);
    }

    #[test]
    fn disabled_filter_allows_everything() {
        let eq = EqClasses::new();
        let f = PrefixFilter::new([o(&[A])].iter(), &[], &eq, false);
        assert_eq!(
            f.admitted_len(&[C, D], &eq, 7),
            7,
            "disabled filter returns the cap"
        );
    }

    fn g(ids: &[AttrId]) -> Grouping {
        Grouping::new(ids.to_vec())
    }

    #[test]
    fn grouping_filter_reachability() {
        let eq = EqClasses::new();
        // Interesting {a,b}; FD c→b.
        let fds = [Fd::functional(&[C], B)];
        let f = GroupingFilter::new([g(&[A, B])].iter(), &fds, &eq, true);
        assert!(f.admits(&g(&[A, B])), "interesting groupings self-admit");
        assert!(f.admits(&g(&[A, C])), "b is derivable from c");
        assert!(f.admits(&g(&[A, B, C])), "supersets may shed attrs");
        assert!(!f.admits(&g(&[B, C])), "nothing produces a");
        // Constants fill gaps.
        let f = GroupingFilter::new([g(&[A, D])].iter(), &[Fd::constant(D)], &eq, true);
        assert!(f.admits(&g(&[A])));
        assert!(!f.admits(&g(&[D])));
    }

    #[test]
    fn grouping_filter_uses_equivalence_classes() {
        let mut eq = EqClasses::new();
        eq.union(A, D);
        let f = GroupingFilter::new([g(&[A, B])].iter(), &[], &eq, true);
        assert!(f.admits(&g(&[D, B])), "d ≡ a");
    }

    #[test]
    fn aggregation_keys_survive_admission() {
        // Aggregation placement registers subset keys like {fk, g} as
        // interesting groupings and relies on derivation chains through
        // schema FDs (key → attribute) and join equations. The
        // admission filter must keep every link of those chains alive:
        // from the probe-side key {a} (≈ join attribute), the chain
        // a = b (join edge), b → c (schema FD of the build side) must
        // reach the group key {c} registered as interesting.
        let eq = {
            let mut eq = EqClasses::new();
            eq.union(A, B);
            eq
        };
        let fds = [Fd::equation(A, B), Fd::functional(&[B], C)];
        let f = GroupingFilter::new([g(&[C]), g(&[A, D])].iter(), &fds, &eq, true);
        assert!(f.admits(&g(&[A])), "the probe-side aggregation key");
        assert!(f.admits(&g(&[A, B])), "after the join equation");
        assert!(f.admits(&g(&[B, C])), "after the schema FD");
        assert!(f.admits(&g(&[C])), "the group key itself");
        // But a key that can never complete any interesting grouping
        // (nothing derives d) stays out.
        assert!(!f.admits(&g(&[X])));
    }

    #[test]
    fn permissive_grouping_filter_admits_all() {
        let f = GroupingFilter::permissive();
        assert!(f.admits(&g(&[C, D])));
        assert!(!f.is_enabled());
    }
}
