//! # ofw-core — the paper's contribution
//!
//! An implementation of *Neumann & Moerkotte, "An Efficient Framework for
//! Order Optimization"* (ICDE 2004). The framework answers the two
//! questions a plan generator asks millions of times:
//!
//! 1. `contains` — does the output of a subplan satisfy a required logical
//!    ordering?
//! 2. `inferNewLogicalOrderings` — how does the set of logical orderings
//!    change when an operator introduces functional dependencies?
//!
//! Both are answered in **O(1)** after a one-time preparation step, and a
//! plan node's entire order annotation is a 4-byte [`State`].
//!
//! ## Pipeline (paper Fig. 3)
//!
//! ```text
//! 1. input: interesting orders (produced O_P / tested O_T) + FD sets  [spec]
//! 2. construct the NFSM                                               [nfsm]
//!    (b) filter functional dependencies                               [prune]
//!    (d) prune/merge artificial nodes                                 [prune]
//! 3. convert the NFSM into a DFSM (powerset construction)             [dfsm]
//! 4. precompute contains matrix + transition table                    [dfsm]
//! ```
//!
//! The public entry point is [`OrderingFramework::prepare`], which runs the
//! whole pipeline and exposes the O(1) ADT of §5.6.
//!
//! ## Example (the paper's running example, §5)
//!
//! ```
//! use ofw_core::{Fd, InputSpec, Ordering, OrderingFramework, PruneConfig};
//! use ofw_catalog::AttrId;
//!
//! let [a, b, c, d] = [AttrId(0), AttrId(1), AttrId(2), AttrId(3)];
//! let mut spec = InputSpec::new();
//! spec.add_produced(Ordering::new(vec![b]));
//! spec.add_produced(Ordering::new(vec![a, b]));
//! spec.add_tested(Ordering::new(vec![a, b, c]));
//! let f_bc = spec.add_fd_set(vec![Fd::functional(&[b], c)]);
//! let _f_bd = spec.add_fd_set(vec![Fd::functional(&[b], d)]);
//!
//! let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
//! let ab = fw.handle(&Ordering::new(vec![a, b])).unwrap();
//! let abc = fw.handle(&Ordering::new(vec![a, b, c])).unwrap();
//!
//! // sort by (a,b):
//! let s = fw.produce(ab);
//! assert!(fw.satisfies(s, ab));
//! assert!(!fw.satisfies(s, abc));
//! // apply an operator inducing b -> c:
//! let s = fw.infer(s, f_bc);
//! assert!(fw.satisfies(s, abc)); // now satisfied, via one table lookup
//! ```

pub mod derive;
pub mod dfsm;
pub mod eqclass;
pub mod explicit;
pub mod fd;
pub mod filter;
pub mod framework;
pub mod nfsm;
pub mod ordering;
pub mod prune;
pub mod spec;

pub use dfsm::Dfsm;
pub use eqclass::EqClasses;
pub use explicit::ExplicitOrderings;
pub use fd::{Fd, FdSet, FdSetId};
pub use framework::{OrderHandle, OrderingFramework, PrepStats, PrepareError, State};
pub use nfsm::Nfsm;
pub use ordering::Ordering;
pub use prune::PruneConfig;
pub use spec::InputSpec;
