//! # ofw-core — the paper's contribution
//!
//! An implementation of *Neumann & Moerkotte, "An Efficient Framework for
//! Order Optimization"* (ICDE 2004), extended to the combined ordering +
//! grouping framework of the companion paper (*"A Combined Framework for
//! Grouping and Order Optimization"*, VLDB 2004). The framework answers
//! the questions a plan generator asks millions of times:
//!
//! 1. `contains` — does the output of a subplan satisfy a required logical
//!    ordering ([`OrderingFramework::satisfies`]) or a required logical
//!    grouping ([`OrderingFramework::satisfies_grouping`])?
//! 2. `inferNewLogicalOrderings` — how does the set of logical properties
//!    change when an operator introduces functional dependencies?
//!
//! Both are answered in **O(1)** after a one-time preparation step, and a
//! plan node's entire order/grouping annotation is a 4-byte [`State`].
//! NFSM/DFSM states carry a generic [`LogicalProperty`] — an ordering
//! *or* a grouping (an unordered attribute set, as produced by hash
//! aggregation) — so grouping-aware plans cost nothing extra.
//!
//! ## Pipeline (paper Fig. 3)
//!
//! ```text
//! 1. input: interesting orders (produced O_P / tested O_T) + FD sets  [spec]
//! 2. construct the NFSM                                               [nfsm]
//!    (b) filter functional dependencies                               [prune]
//!    (d) prune/merge artificial nodes                                 [prune]
//! 3. convert the NFSM into a DFSM (powerset construction)             [dfsm]
//! 4. precompute contains matrix + transition table                    [dfsm]
//! ```
//!
//! The public entry point is [`OrderingFramework::prepare`], which runs the
//! whole pipeline and exposes the O(1) ADT of §5.6.
//!
//! ## This crate as an oracle arm
//!
//! `OrderingFramework` is one of three interchangeable implementations
//! of the plan generator's `OrderOracle` interface (the others live in
//! `ofw-simmen` and `ofw-plangen`). Its arm invariants:
//!
//! * **immutable after preparation** — probes contend on nothing, so
//!   the parallel DP driver runs it without locks;
//! * **sequential FD semantics** — `infer` applies an operator's FD set
//!   exactly once, at the operator (§5.6); enforcers must *replay* the
//!   FD sets holding below them onto freshly produced states;
//! * **exact agreement with the ground truth** — every
//!   `satisfies`/`satisfies_grouping`/`satisfies_head_tail` answer
//!   matches [`ExplicitOrderings`] after the same operator sequence
//!   (property-tested); derivations all three arms deliberately refuse
//!   (see `derive`) are refused here too.
//!
//! ## Example (the paper's running example, §5)
//!
//! ```
//! use ofw_core::{Fd, InputSpec, Ordering, OrderingFramework, PruneConfig};
//! use ofw_catalog::AttrId;
//!
//! let [a, b, c, d] = [AttrId(0), AttrId(1), AttrId(2), AttrId(3)];
//! let mut spec = InputSpec::new();
//! spec.add_produced(Ordering::new(vec![b]));
//! spec.add_produced(Ordering::new(vec![a, b]));
//! spec.add_tested(Ordering::new(vec![a, b, c]));
//! let f_bc = spec.add_fd_set(vec![Fd::functional(&[b], c)]);
//! let _f_bd = spec.add_fd_set(vec![Fd::functional(&[b], d)]);
//!
//! let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
//! let ab = fw.handle(&Ordering::new(vec![a, b])).unwrap();
//! let abc = fw.handle(&Ordering::new(vec![a, b, c])).unwrap();
//!
//! // sort by (a,b):
//! let s = fw.produce(ab);
//! assert!(fw.satisfies(s, ab));
//! assert!(!fw.satisfies(s, abc));
//! // apply an operator inducing b -> c:
//! let s = fw.infer(s, f_bc);
//! assert!(fw.satisfies(s, abc)); // now satisfied, via one table lookup
//! ```
//!
//! ## Groupings (the VLDB'04 extension)
//!
//! ```
//! use ofw_core::{Fd, Grouping, InputSpec, Ordering, OrderingFramework, PruneConfig};
//! use ofw_catalog::AttrId;
//!
//! let [a, b, c] = [AttrId(0), AttrId(1), AttrId(2)];
//! let mut spec = InputSpec::new();
//! spec.add_produced(Ordering::new(vec![a, b]));     // sort can produce
//! spec.add_produced(Grouping::new(vec![a, b]));     // hash-agg can produce
//! spec.add_tested(Grouping::new(vec![a, b, c]));
//! let f_bc = spec.add_fd_set(vec![Fd::functional(&[b], c)]);
//!
//! let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
//! let g_ab = fw.handle_grouping(&Grouping::new(vec![a, b])).unwrap();
//! let g_abc = fw.handle_grouping(&Grouping::new(vec![a, b, c])).unwrap();
//!
//! // A sorted stream is grouped by every prefix set…
//! let s = fw.produce(fw.handle(&Ordering::new(vec![a, b])).unwrap());
//! assert!(fw.satisfies_grouping(s, g_ab));
//! // …a hash-grouped stream satisfies its grouping but no ordering…
//! let s = fw.produce_grouping(g_ab);
//! assert!(fw.satisfies_grouping(s, g_ab));
//! // …and FDs extend groupings by set insertion, still in O(1).
//! assert!(fw.satisfies_grouping(fw.infer(s, f_bc), g_abc));
//! ```
//!
//! ## Head/tail pairs (the property lattice's middle rung)
//!
//! The third property kind — `{head}(tail)`, grouped by the head set and
//! sorted by the tail *within* each group — sits between orderings and
//! groupings: `Ordering (a,b) ⊑ HeadTail {a}(b) ⊑ Grouping {a}` (see
//! `ARCHITECTURE.md`). It is what makes grouped-but-unsorted streams
//! (hash-aggregate output) resumable toward a full ordering with a
//! *partial* sort, and its probe is the same one-bit `contains` lookup:
//!
//! ```
//! use ofw_core::{Fd, Grouping, HeadTail, InputSpec, Ordering, OrderingFramework, PruneConfig};
//! use ofw_catalog::AttrId;
//!
//! let [a, b] = [AttrId(0), AttrId(1)];
//! let mut spec = InputSpec::new();
//! spec.add_produced(Ordering::new(vec![a, b]));
//! spec.add_produced(Grouping::new(vec![a]));        // hash-agg output
//! let pair = HeadTail::new(Grouping::new(vec![a]), Ordering::new(vec![b]));
//! spec.add_tested(pair.clone());                    // partial sort probes it
//! let f_ab = spec.add_fd_set(vec![Fd::functional(&[a], b)]);
//!
//! let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
//! let h = fw.handle_head_tail(&pair).unwrap();
//!
//! // A sorted stream satisfies every decomposition of its prefixes…
//! let sorted = fw.produce(fw.handle(&Ordering::new(vec![a, b])).unwrap());
//! assert!(fw.satisfies_head_tail(sorted, h));
//! // …a merely grouped stream does not…
//! let grouped = fw.produce_grouping(fw.handle_grouping(&Grouping::new(vec![a])).unwrap());
//! assert!(!fw.satisfies_head_tail(grouped, h));
//! // …until a→b holds: b is constant inside every a-group, so the
//! // stream is trivially sorted by (b) within groups — one lookup.
//! assert!(fw.satisfies_head_tail(fw.infer(grouped, f_ab), h));
//! ```

pub mod derive;
pub mod dfsm;
pub mod eqclass;
pub mod explicit;
pub mod fd;
pub mod filter;
pub mod framework;
pub mod intern;
pub mod lazy;
pub mod nfsm;
pub mod ordering;
pub mod property;
pub mod prune;
pub mod spec;

pub use dfsm::{Dfsm, PrepExecutor};
pub use eqclass::EqClasses;
pub use explicit::ExplicitOrderings;
pub use fd::{Fd, FdSet, FdSetId};
pub use framework::{
    OrderHandle, OrderingFramework, PrepStats, PrepareError, PrepareMode, PrepareOptions, State,
    DEFAULT_AUTO_MATERIALIZE_THRESHOLD,
};
pub use intern::PreparedCache;
pub use lazy::LazyDfsm;
pub use nfsm::Nfsm;
pub use ordering::Ordering;
pub use property::{Grouping, HeadTail, LogicalProperty};
pub use prune::PruneConfig;
pub use spec::InputSpec;
