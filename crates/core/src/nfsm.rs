//! NFSM construction (paper §5.3, extended to groupings per VLDB'04).
//!
//! States are logical *properties* — orderings or groupings. `Q_I`
//! (interesting states) is the *prefix closure* of the interesting
//! orders — the paper's Fig. 9 has a `contains` column for `(a)` even
//! though only `(a,b)` and `(a,b,c)` were specified, because a prefix of
//! an interesting order is itself testable — plus the interesting
//! groupings (groupings have no prefixes: `{a,b}` does not imply `{a}`).
//! `Q_A` (artificial states) holds every other property the closure
//! reaches. Node 0 is the empty ordering `()`: every stream satisfies
//! it, every node has an ε-edge to it, and constants derive from it (a
//! scan with no ordering followed by `x = const` yields a stream
//! logically ordered by `(x)`).
//!
//! Edges:
//! * ε-edges from each ordering node to **all** of its proper prefixes
//!   (prefix closure; kept direct rather than chained so pruning a node
//!   never breaks reachability of the remaining prefixes) **and** to the
//!   grouping node of every prefix attribute *set* that exists — the
//!   ordering→grouping crossover (a sorted stream is grouped by every
//!   prefix set). Grouping nodes ε-step only to node 0.
//! * for each FD-set symbol `f`, edges to every property in the bounded
//!   transitive closure `Ω({p},{f})` — consuming one symbol reaches all
//!   transitively derivable properties, matching the paper's `D_FD`
//!   definition via `o ⊢_f o′`; grouping nodes use the set-derivation
//!   rules of [`crate::derive::apply_fd_grouping`].
//!
//! Grouping nodes are only materialized when the spec declares
//! interesting groupings — pure ordering queries build byte-identical
//! automata to the ICDE'04 pipeline. When groupings are present, every
//! ordering node seeds the grouping nodes of its prefix sets (subject to
//! the [`crate::filter::GroupingFilter`] admission test), which is
//! sufficient for completeness: any grouping derivable from a *derived*
//! ordering is also derivable, by the more permissive set rules, from a
//! prefix-set grouping of the source ordering.
//!
//! The artificial start node `q0` with its produced-property entry edges
//! is kept virtual; the DFSM construction materializes its row (`*` in
//! Fig. 10).

use crate::derive::{grouping_closure, mixed_closure, DeriveCtx};
use crate::eqclass::EqClasses;
use crate::fd::FdSet;
use crate::filter::{GroupingFilter, HeadTailFilter, PrefixFilter};
use crate::ordering::Ordering;
use crate::property::{Grouping, HeadTail, LogicalProperty};
use crate::prune::PruneConfig;
use crate::spec::InputSpec;
use ofw_common::Interner;

/// Index of an NFSM node.
pub type NodeId = u32;

/// Classification of an NFSM node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeInfo {
    /// Member of `Q_I`: contains() may be asked about it.
    pub interesting: bool,
    /// Member of `O_P`: some physical operator can produce it directly,
    /// so the start node has an artificial edge to it.
    pub produced: bool,
}

/// The non-deterministic FSM over logical properties.
pub struct Nfsm {
    /// Node id ↔ property (node 0 is the empty ordering).
    pub props: Interner<LogicalProperty>,
    /// Per-node classification.
    pub info: Vec<NodeInfo>,
    /// ε-edges: ordering node → proper prefixes and prefix-set
    /// groupings (incl. node 0).
    pub eps: Vec<Vec<NodeId>>,
    /// FD edges: `edges[node][fd_set_id]` → derivable nodes.
    pub edges: Vec<Vec<Vec<NodeId>>>,
    /// Number of FD-set symbols (fixed for the query).
    pub num_symbols: usize,
}

/// Construction failure: the state space exceeded a configured cap
/// (only plausible with pruning disabled on adversarial inputs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// More NFSM nodes than `PruneConfig::max_nodes`.
    TooManyNodes(usize),
    /// More DFSM states than `PruneConfig::max_dfsm_states`.
    TooManyDfsmStates(usize),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::TooManyNodes(n) => {
                write!(f, "NFSM exceeded the configured node limit ({n})")
            }
            BuildError::TooManyDfsmStates(n) => {
                write!(f, "DFSM exceeded the configured state limit ({n})")
            }
        }
    }
}

impl std::error::Error for BuildError {}

impl Nfsm {
    /// Builds the NFSM for `spec` (steps 2(a)–2(c) of Fig. 3). FD
    /// filtering and node pruning (steps 2(b), 2(d)) live in
    /// [`crate::prune`] and are orchestrated by
    /// [`OrderingFramework::prepare`](crate::OrderingFramework::prepare);
    /// this function takes the (possibly already filtered) FD sets.
    pub fn build(
        spec: &InputSpec,
        fd_sets: &[FdSet],
        eq: &EqClasses,
        config: &PruneConfig,
    ) -> Result<Nfsm, BuildError> {
        let all_fds: Vec<crate::fd::Fd> = fd_sets
            .iter()
            .flat_map(|s| s.fds().iter().cloned())
            .collect();
        let filter = PrefixFilter::new(
            spec.interesting_orderings(),
            &all_fds,
            eq,
            config.prefix_filter,
        );
        // Groupings only enter the automaton when the query declares
        // interesting groupings — otherwise the build is identical to
        // the pure ordering pipeline. Head/tail pairs are gated the same
        // way one level up: without interesting pairs the build is
        // identical to the ordering + grouping pipeline.
        let headtail_mode = spec.has_head_tails();
        let grouping_mode = spec.has_groupings() || headtail_mode;
        // Interesting pairs make their implied groupings (head plus any
        // absorbed tail prefix) reachability targets for the grouping
        // admission too — a grouping that can complete into an
        // interesting pair's head must stay alive.
        let pair_groupings: Vec<Grouping> = spec
            .interesting_head_tails()
            .flat_map(HeadTail::absorbed_heads)
            .collect();
        let gfilter = GroupingFilter::new(
            spec.interesting_groupings().chain(pair_groupings.iter()),
            &all_fds,
            eq,
            config.prefix_filter,
        );
        let hfilter = HeadTailFilter::new(
            spec.interesting_head_tails(),
            &all_fds,
            eq,
            config.prefix_filter,
        );
        // The blanket length cutoff only applies when the admission
        // filter is off: the filter computes a per-candidate bound that
        // generalizes it (useful orderings can exceed the longest
        // interesting order by removable attributes, e.g. a constant
        // prefix that a later removal strips away).
        let max_len = if !config.prefix_filter && config.length_cutoff {
            spec.max_interesting_len()
        } else {
            usize::MAX
        };
        let ctx = DeriveCtx {
            eq,
            filter: &filter,
            max_len,
        };

        let mut nfsm = Nfsm {
            props: Interner::new(),
            info: Vec::new(),
            eps: Vec::new(),
            edges: Vec::new(),
            num_symbols: fd_sets.len(),
        };
        // Node 0: the empty ordering.
        let root = nfsm.add_node(Ordering::empty().into(), config)?;
        debug_assert_eq!(root, 0);

        // Interesting nodes: prefix closure of the interesting orderings
        // plus the interesting groupings as-is.
        for p in spec.interesting() {
            let id = nfsm.add_node(p.clone(), config)?;
            nfsm.info[id as usize].interesting = true;
            if let LogicalProperty::Ordering(o) = p {
                for prefix in o.proper_prefixes() {
                    let pid = nfsm.add_node(prefix.into(), config)?;
                    nfsm.info[pid as usize].interesting = true;
                }
            }
        }
        for p in spec.produced() {
            let id = nfsm.add_node(p.clone(), config)?;
            nfsm.info[id as usize].produced = true;
        }

        // Worklist closure: compute FD edges, materializing new nodes
        // (and, for orderings, their prefixes and prefix-set groupings)
        // as they appear.
        let mut next: u32 = 0;
        while (next as usize) < nfsm.props.len() {
            let node = next;
            next += 1;
            let prop = nfsm.props.resolve(node).clone();
            match &prop {
                LogicalProperty::Ordering(ordering) => {
                    if grouping_mode && node != 0 {
                        // Seed the grouping nodes this ordering implies
                        // (its prefix attribute sets) — the crossover
                        // sources for grouping derivation.
                        for len in 1..=ordering.len() {
                            let g = Grouping::new(ordering.attrs()[..len].to_vec());
                            if gfilter.admits(&g) {
                                nfsm.add_node(g.into(), config)?;
                            }
                        }
                    }
                    if headtail_mode && node != 0 {
                        // Seed the pair nodes this ordering implies —
                        // every (prefix set, continuation) decomposition
                        // — so pair derivation has its crossover sources
                        // (a pair can reach properties the positional
                        // ordering rules cannot, e.g. inserting a
                        // head-determined attribute at the tail front).
                        for pair in HeadTail::decompositions(ordering) {
                            if hfilter.admits(&pair) {
                                nfsm.add_node(pair.into(), config)?;
                            }
                        }
                    }
                    for (sym, fd_set) in fd_sets.iter().enumerate() {
                        if fd_set.is_empty() {
                            continue;
                        }
                        let derived = ctx.closure(ordering, fd_set.fds());
                        let mut targets: Vec<NodeId> = Vec::with_capacity(derived.len());
                        for d in derived {
                            // Materialize the target and its prefixes.
                            for p in d.proper_prefixes() {
                                nfsm.add_node(p.into(), config)?;
                            }
                            targets.push(nfsm.add_node(d.into(), config)?);
                        }
                        targets.sort_unstable();
                        targets.dedup();
                        nfsm.edges[node as usize][sym] = targets;
                    }
                }
                LogicalProperty::Grouping(_) | LogicalProperty::HeadTail(_) => {
                    for (sym, fd_set) in fd_sets.iter().enumerate() {
                        if fd_set.is_empty() {
                            continue;
                        }
                        // Pure grouping pipeline: the set rules alone.
                        // With pairs in play, groupings additionally
                        // derive pairs (within-group constants become
                        // one-attribute tails) and pairs derive across
                        // both components — the mixed closure.
                        let derived: Vec<LogicalProperty> = if headtail_mode {
                            mixed_closure(&prop, fd_set.fds(), &ctx, &gfilter, &hfilter)
                        } else {
                            let g = prop.as_grouping().expect("pair without headtail_mode");
                            grouping_closure(g, fd_set.fds(), &gfilter)
                                .into_iter()
                                .map(LogicalProperty::Grouping)
                                .collect()
                        };
                        let mut targets: Vec<NodeId> = Vec::with_capacity(derived.len());
                        for d in derived {
                            if let LogicalProperty::Ordering(o) = &d {
                                for p in o.proper_prefixes() {
                                    nfsm.add_node(p.into(), config)?;
                                }
                            }
                            targets.push(nfsm.add_node(d, config)?);
                        }
                        targets.sort_unstable();
                        targets.dedup();
                        nfsm.edges[node as usize][sym] = targets;
                    }
                }
            }
        }
        // ε-edges: node 0, every existing proper prefix, (for orderings)
        // every existing prefix-set grouping node and — with pairs in
        // play — every existing decomposition node: an ordering implies
        // each (prefix set, continuation) pair, and a pair implies each
        // of its sub-decompositions (tail prefix truncated and/or
        // absorbed into the head).
        for node in 0..nfsm.props.len() as u32 {
            let prop = nfsm.props.resolve(node).clone();
            let mut eps: Vec<NodeId> = Vec::new();
            if node != 0 {
                eps.push(0);
            }
            match &prop {
                LogicalProperty::Ordering(ordering) => {
                    for p in ordering.proper_prefixes() {
                        if let Some(pid) = nfsm.props.get(&p.into()) {
                            eps.push(pid);
                        }
                    }
                    if grouping_mode {
                        for len in 1..=ordering.len() {
                            let g = Grouping::new(ordering.attrs()[..len].to_vec());
                            if let Some(gid) = nfsm.props.get(&g.into()) {
                                eps.push(gid);
                            }
                        }
                    }
                    if headtail_mode {
                        for pair in HeadTail::decompositions(ordering) {
                            if let Some(pid) = nfsm.props.get(&pair.into()) {
                                eps.push(pid);
                            }
                        }
                    }
                }
                LogicalProperty::HeadTail(ht) => {
                    for implied in ht.implications() {
                        if let Some(pid) = nfsm.props.get(&implied) {
                            eps.push(pid);
                        }
                    }
                }
                LogicalProperty::Grouping(_) => {}
            }
            eps.sort_unstable();
            eps.dedup();
            nfsm.eps[node as usize] = eps;
        }
        Ok(nfsm)
    }

    /// Interns `p` as a node, growing the side tables; errors out past
    /// the configured cap.
    fn add_node(&mut self, p: LogicalProperty, config: &PruneConfig) -> Result<NodeId, BuildError> {
        let before = self.props.len();
        let id = self.props.intern(p);
        if self.props.len() > before {
            if self.props.len() > config.max_nodes {
                return Err(BuildError::TooManyNodes(config.max_nodes));
            }
            self.info.push(NodeInfo::default());
            self.eps.push(Vec::new());
            self.edges.push(vec![Vec::new(); self.num_symbols]);
        }
        Ok(id)
    }

    /// Number of nodes, counting the implicit empty-ordering node.
    pub fn num_nodes(&self) -> usize {
        self.props.len()
    }

    /// Total FD-edge count (each target counted once).
    pub fn num_edges(&self) -> usize {
        self.edges
            .iter()
            .map(|per_sym| per_sym.iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Node lookup by ordering.
    pub fn node_of(&self, o: &Ordering) -> Option<NodeId> {
        self.props.get(&o.clone().into())
    }

    /// Node lookup by grouping.
    pub fn node_of_grouping(&self, g: &Grouping) -> Option<NodeId> {
        self.props.get(&g.clone().into())
    }

    /// Node lookup by head/tail pair.
    pub fn node_of_head_tail(&self, h: &HeadTail) -> Option<NodeId> {
        self.props.get(&h.clone().into())
    }

    /// Node lookup by property.
    pub fn node_of_prop(&self, p: &LogicalProperty) -> Option<NodeId> {
        self.props.get(p)
    }

    /// Rebuilds the NFSM keeping only nodes with `keep[node] == true`,
    /// renumbering densely. Edge targets pointing at dropped nodes must
    /// already have been redirected by the caller. Node 0 must be kept.
    pub(crate) fn compact(self, keep: &[bool]) -> Nfsm {
        assert!(keep[0], "the empty-ordering node is permanent");
        let mut remap: Vec<Option<NodeId>> = vec![None; self.props.len()];
        let mut props = Interner::new();
        let mut info = Vec::new();
        for (old, p) in self.props.iter() {
            if keep[old as usize] {
                let new = props.intern(p.clone());
                remap[old as usize] = Some(new);
                info.push(self.info[old as usize]);
            }
        }
        let map_list = |list: &[NodeId]| -> Vec<NodeId> {
            let mut v: Vec<NodeId> = list.iter().filter_map(|&t| remap[t as usize]).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let mut eps = vec![Vec::new(); props.len()];
        let mut edges = vec![vec![Vec::new(); self.num_symbols]; props.len()];
        #[allow(clippy::needless_range_loop)] // old indexes three parallel tables
        for old in 0..self.props.len() {
            let Some(new) = remap[old] else { continue };
            eps[new as usize] = map_list(&self.eps[old]);
            for sym in 0..self.num_symbols {
                edges[new as usize][sym] = map_list(&self.edges[old][sym]);
            }
        }
        Nfsm {
            props,
            info,
            eps,
            edges,
            num_symbols: self.num_symbols,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::Fd;

    use ofw_catalog::AttrId;

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);
    const C: AttrId = AttrId(2);
    const D: AttrId = AttrId(3);

    fn o(ids: &[AttrId]) -> Ordering {
        Ordering::new(ids.to_vec())
    }

    fn g(ids: &[AttrId]) -> Grouping {
        Grouping::new(ids.to_vec())
    }

    /// The paper's running example before pruning (Figs. 4–5): interesting
    /// orders (b), (a,b) produced and (a,b,c) tested; FDs {b→c}, {b→d}.
    fn running_example() -> (InputSpec, Vec<FdSet>, EqClasses) {
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[B]));
        spec.add_produced(o(&[A, B]));
        spec.add_tested(o(&[A, B, C]));
        spec.add_fd_set(vec![Fd::functional(&[B], C)]);
        spec.add_fd_set(vec![Fd::functional(&[B], D)]);
        let fd_sets = spec.fd_sets().to_vec();
        let eq = EqClasses::from_fds(fd_sets.iter().flat_map(|s| s.fds().iter()));
        (spec, fd_sets, eq)
    }

    #[test]
    fn running_example_with_filter_matches_fig7_nodes() {
        // Fig. 7 is the NFSM *after* step 2(b) removed {b→d}; with the
        // dependency still present the admission filter keeps the
        // removable-d orderings (a,b,d,c)/(a,b,d) alive, as it must.
        let (spec, _, eq) = running_example();
        let (fd_sets, removed) = crate::prune::prune_fds(&spec, &eq, &PruneConfig::default());
        assert_eq!(removed, 1);
        let nfsm = Nfsm::build(&spec, &fd_sets, &eq, &PruneConfig::default()).unwrap();
        // Fig. 7 nodes: (a), (b), (a,b), (a,b,c)  — plus our explicit ().
        // (b,c) and anything with d is kept out by the prefix filter
        // (d never occurs in an interesting order, (b,c) extends nothing).
        let expected = [o(&[A]), o(&[B]), o(&[A, B]), o(&[A, B, C])];
        assert_eq!(nfsm.num_nodes(), expected.len() + 1);
        for e in &expected {
            assert!(nfsm.node_of(e).is_some(), "missing node {e:?}");
        }
        // The {b→c} edge from (a,b) to (a,b,c) of Fig. 7.
        let ab = nfsm.node_of(&o(&[A, B])).unwrap();
        let abc = nfsm.node_of(&o(&[A, B, C])).unwrap();
        assert_eq!(nfsm.edges[ab as usize][0], vec![abc]);
        // No {b→d} edges anywhere.
        for n in 0..nfsm.num_nodes() {
            assert!(nfsm.edges[n][1].is_empty());
        }
    }

    #[test]
    fn running_example_without_heuristics_matches_fig5_nodes() {
        let (spec, fd_sets, eq) = running_example();
        let nfsm = Nfsm::build(&spec, &fd_sets, &eq, &PruneConfig::none()).unwrap();
        // Fig. 5 draws (a), (b), (b,c), (a,b), (a,b,c) (d-orderings exist
        // too since {b→d} has not been filtered in step 2(b) yet).
        for e in [o(&[A]), o(&[B]), o(&[B, C]), o(&[A, B]), o(&[A, B, C])] {
            assert!(nfsm.node_of(&e).is_some(), "missing node {e:?}");
        }
        // (b) --{b→c}--> (b,c) edge of Fig. 5.
        let b = nfsm.node_of(&o(&[B])).unwrap();
        let bc = nfsm.node_of(&o(&[B, C])).unwrap();
        assert!(nfsm.edges[b as usize][0].contains(&bc));
        // {b→d} creates d-orderings, e.g. (a,b,d).
        assert!(nfsm.node_of(&o(&[A, B, D])).is_some());
    }

    #[test]
    fn no_grouping_nodes_without_interesting_groupings() {
        let (spec, fd_sets, eq) = running_example();
        let nfsm = Nfsm::build(&spec, &fd_sets, &eq, &PruneConfig::none()).unwrap();
        for node in 0..nfsm.num_nodes() as u32 {
            assert!(
                nfsm.props.resolve(node).as_grouping().is_none(),
                "pure ordering spec grew a grouping node"
            );
        }
    }

    #[test]
    fn interesting_grouping_gets_node_and_eps_from_orderings() {
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[A, B]));
        spec.add_tested(g(&[A, B]));
        spec.add_fd_set(vec![Fd::functional(&[B], C)]);
        let fd_sets = spec.fd_sets().to_vec();
        let eq = EqClasses::new();
        let nfsm = Nfsm::build(&spec, &fd_sets, &eq, &PruneConfig::default()).unwrap();
        let gid = nfsm.node_of_grouping(&g(&[A, B])).unwrap();
        assert!(nfsm.info[gid as usize].interesting);
        // The ordering (a,b) ε-steps into its full-prefix-set grouping.
        let ab = nfsm.node_of(&o(&[A, B])).unwrap();
        assert!(nfsm.eps[ab as usize].contains(&gid));
        // The grouping node itself only ε-steps to node 0.
        assert_eq!(nfsm.eps[gid as usize], vec![0]);
    }

    #[test]
    fn grouping_edges_use_set_rules() {
        // Interesting grouping {a,b}, produced ordering (a), FD a→b:
        // the grouping {a} (seeded from the ordering) must derive {a,b}
        // in one symbol — even though the *ordering* filter would drop
        // the ordering (a,b) as uninteresting.
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[A]));
        spec.add_tested(g(&[A, B]));
        spec.add_fd_set(vec![Fd::functional(&[A], B)]);
        let fd_sets = spec.fd_sets().to_vec();
        let eq = EqClasses::new();
        let nfsm = Nfsm::build(&spec, &fd_sets, &eq, &PruneConfig::default()).unwrap();
        let ga = nfsm.node_of_grouping(&g(&[A])).expect("seeded grouping");
        let gab = nfsm.node_of_grouping(&g(&[A, B])).unwrap();
        assert!(nfsm.edges[ga as usize][0].contains(&gab));
    }

    fn ht(head: &[AttrId], tail: &[AttrId]) -> HeadTail {
        HeadTail::new(Grouping::new(head.to_vec()), Ordering::new(tail.to_vec()))
    }

    #[test]
    fn no_pair_nodes_without_interesting_pairs() {
        // Ordering + grouping specs must build automata with no pair
        // node anywhere — the byte-identical guarantee for the two
        // established pipelines.
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[A, B]));
        spec.add_produced(g(&[A, B]));
        spec.add_tested(g(&[A, B, C]));
        spec.add_fd_set(vec![Fd::functional(&[B], C)]);
        let fd_sets = spec.fd_sets().to_vec();
        let eq = EqClasses::new();
        for config in [PruneConfig::default(), PruneConfig::none()] {
            let nfsm = Nfsm::build(&spec, &fd_sets, &eq, &config).unwrap();
            for node in 0..nfsm.num_nodes() as u32 {
                assert!(
                    nfsm.props.resolve(node).as_head_tail().is_none(),
                    "pair node materialized without interesting pairs"
                );
            }
        }
    }

    #[test]
    fn interesting_pair_reached_from_ordering_and_grouping() {
        // Interesting pair {a}(b): a stream sorted by (a,b) implies it
        // (ε through the decomposition), and a stream grouped by {a}
        // derives it under a→b (the grouping-tails crossover).
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[A, B]));
        spec.add_produced(g(&[A]));
        spec.add_tested(ht(&[A], &[B]));
        spec.add_fd_set(vec![Fd::functional(&[A], B)]);
        let fd_sets = spec.fd_sets().to_vec();
        let eq = EqClasses::new();
        let nfsm = Nfsm::build(&spec, &fd_sets, &eq, &PruneConfig::default()).unwrap();
        let pair = nfsm.node_of_head_tail(&ht(&[A], &[B])).unwrap();
        assert!(nfsm.info[pair as usize].interesting);
        // ε: (a,b) implies its decomposition {a}(b).
        let ab = nfsm.node_of(&o(&[A, B])).unwrap();
        assert!(nfsm.eps[ab as usize].contains(&pair));
        // FD edge: {a} --{a→b}--> {a}(b).
        let ga = nfsm.node_of_grouping(&g(&[A])).unwrap();
        assert!(nfsm.edges[ga as usize][0].contains(&pair));
        // The pair's own ε covers node 0 and its head grouping (plus
        // any materialized absorbed-prefix grouping) — never an
        // ordering node.
        assert!(nfsm.eps[pair as usize].contains(&0));
        assert!(nfsm.eps[pair as usize].contains(&ga));
        for &t in &nfsm.eps[pair as usize] {
            assert!(
                nfsm.props.resolve(t).as_ordering().is_none() || t == 0,
                "a pair must not imply an ordering"
            );
        }
    }

    #[test]
    fn pair_eps_cover_sub_decompositions() {
        // {a}(b,c) implies {a}(b), {a,b}(c), {a,b} and {a,b,c}.
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[A, B, C]));
        spec.add_tested(ht(&[A], &[B, C]));
        spec.add_tested(ht(&[A], &[B]));
        spec.add_tested(ht(&[A, B], &[C]));
        spec.add_tested(g(&[A, B, C]));
        spec.add_fd_set(vec![Fd::functional(&[B], C)]);
        let fd_sets = spec.fd_sets().to_vec();
        let eq = EqClasses::new();
        let nfsm = Nfsm::build(&spec, &fd_sets, &eq, &PruneConfig::default()).unwrap();
        let pair = nfsm.node_of_head_tail(&ht(&[A], &[B, C])).unwrap();
        for implied in [
            nfsm.node_of_head_tail(&ht(&[A], &[B])).unwrap(),
            nfsm.node_of_head_tail(&ht(&[A, B], &[C])).unwrap(),
            nfsm.node_of_grouping(&g(&[A, B, C])).unwrap(),
        ] {
            assert!(
                nfsm.eps[pair as usize].contains(&implied),
                "missing ε to node {implied}"
            );
        }
    }

    #[test]
    fn eps_edges_point_to_all_prefixes() {
        let (spec, fd_sets, eq) = running_example();
        let nfsm = Nfsm::build(&spec, &fd_sets, &eq, &PruneConfig::default()).unwrap();
        let abc = nfsm.node_of(&o(&[A, B, C])).unwrap();
        let ab = nfsm.node_of(&o(&[A, B])).unwrap();
        let a = nfsm.node_of(&o(&[A])).unwrap();
        let mut eps = nfsm.eps[abc as usize].clone();
        eps.sort_unstable();
        let mut expect = vec![0, a, ab];
        expect.sort_unstable();
        assert_eq!(eps, expect);
    }

    #[test]
    fn interesting_prefix_closure_is_marked() {
        let (spec, fd_sets, eq) = running_example();
        let nfsm = Nfsm::build(&spec, &fd_sets, &eq, &PruneConfig::default()).unwrap();
        // (a) is interesting (prefix of (a,b)) but not produced.
        let a = nfsm.node_of(&o(&[A])).unwrap();
        assert!(nfsm.info[a as usize].interesting);
        assert!(!nfsm.info[a as usize].produced);
        let b = nfsm.node_of(&o(&[B])).unwrap();
        assert!(nfsm.info[b as usize].produced);
    }

    #[test]
    fn node_cap_is_enforced() {
        let (spec, fd_sets, eq) = running_example();
        let config = PruneConfig {
            max_nodes: 3,
            ..PruneConfig::default()
        };
        match Nfsm::build(&spec, &fd_sets, &eq, &config) {
            Err(BuildError::TooManyNodes(3)) => {}
            Err(e) => panic!("wrong error: {e}"),
            Ok(_) => panic!("expected the node cap to trip"),
        }
    }

    #[test]
    fn transitive_edges_within_one_symbol() {
        // One operator introducing {a→b, b→c} must reach (a,b,c) in a
        // single transition.
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[A]));
        spec.add_tested(o(&[A, B, C]));
        spec.add_fd_set(vec![Fd::functional(&[A], B), Fd::functional(&[B], C)]);
        let fd_sets = spec.fd_sets().to_vec();
        let eq = EqClasses::new();
        let nfsm = Nfsm::build(&spec, &fd_sets, &eq, &PruneConfig::default()).unwrap();
        let a = nfsm.node_of(&o(&[A])).unwrap();
        let abc = nfsm.node_of(&o(&[A, B, C])).unwrap();
        assert!(nfsm.edges[a as usize][0].contains(&abc));
    }
}
