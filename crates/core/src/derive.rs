//! Ordering derivation: the `o ⊢_f O′` relation of §2 and its transitive,
//! heuristically bounded closure `Ω` of §5.7.
//!
//! Given an ordering `o` and a dependency `f`:
//!
//! * `lhs → rhs`: `rhs` may be inserted at any position after the last
//!   occurrence of the `lhs` attributes (all of which must occur in `o`);
//! * `a = b`: behaves like `{a→b, b→a}` *plus* in-place substitution of
//!   `a` by `b` and vice versa (the paper notes `a = b` is stronger than
//!   the FD pair — e.g. the `(id) → (jobid)` edge in Fig. 11);
//! * `∅ → a`: `a` may be inserted at any position.
//!
//! Derived orderings stay duplicate-free (inserting an attribute that is
//! already present adds no information), and the §5.7 heuristics bound the
//! result: a global length cutoff at the longest interesting order, and a
//! prefix filter that discards insertions no interesting order can ever
//! profit from (with truncation to the longest matching interesting
//! order). Both heuristics are toggleable so the paper's "without
//! pruning" configuration can be measured.

use crate::eqclass::EqClasses;
use crate::fd::Fd;
use crate::filter::{GroupingFilter, HeadTailFilter, PrefixFilter};
use crate::ordering::Ordering;
use crate::property::{Grouping, HeadTail, LogicalProperty};
use ofw_common::FxHashSet;

/// Shared context for derivation: equivalence classes, the prefix filter,
/// and the global length cutoff.
pub struct DeriveCtx<'a> {
    /// Equivalence classes from all equations of the query.
    pub eq: &'a EqClasses,
    /// Prefix filter over the interesting orders (§5.7).
    pub filter: &'a PrefixFilter,
    /// Global cutoff: derived orderings longer than this are truncated
    /// (`usize::MAX` disables the cutoff).
    pub max_len: usize,
}

impl<'a> DeriveCtx<'a> {
    /// Applies a single dependency to `o` once, appending each derived
    /// ordering to `out`. Results never equal `o`.
    ///
    /// Besides the paper's insertion and substitution rules, we derive
    /// *removals*: an occurrence of a functionally determined attribute
    /// whose determinants all precede it never decides a lexicographic
    /// comparison (when the comparison reaches it, the determinants are
    /// tied, so it is tied too), and the same holds for constants
    /// anywhere. This matches the power of Simmen's reduction — e.g.
    /// `(a,b,c)` under `a→b` also satisfies `(a,c)`.
    pub fn apply_fd(&self, o: &Ordering, fd: &Fd, out: &mut Vec<Ordering>) {
        match fd {
            Fd::Functional { lhs, rhs } => {
                if let Some(p) = o.position(*rhs) {
                    let implied = lhs.iter().all(|&l| o.position(l).is_some_and(|q| q < p));
                    if implied {
                        out.push(o.remove_at(p));
                    }
                } else {
                    self.insertions(o, lhs, *rhs, out);
                }
            }
            Fd::Constant(a) => {
                if let Some(p) = o.position(*a) {
                    out.push(o.remove_at(p));
                } else {
                    self.insertions(o, &[], *a, out);
                }
            }
            Fd::Equation(a, b) => {
                self.insertions(o, std::slice::from_ref(a), *b, out);
                self.insertions(o, std::slice::from_ref(b), *a, out);
                self.substitutions(o, *a, *b, out);
                self.substitutions(o, *b, *a, out);
            }
        }
    }

    /// Insertion rule: add `rhs` at any position after all of `lhs`.
    fn insertions(
        &self,
        o: &Ordering,
        lhs: &[ofw_catalog::AttrId],
        rhs: ofw_catalog::AttrId,
        out: &mut Vec<Ordering>,
    ) {
        if o.contains_attr(rhs) {
            return;
        }
        // Earliest legal insert position: one past the last lhs attribute.
        let mut first = 0usize;
        for &l in lhs {
            match o.position(l) {
                Some(p) => first = first.max(p + 1),
                None => return, // lhs not satisfied by o
            }
        }
        let last = o.len().min(self.max_len.saturating_sub(1));
        for pos in first..=last {
            let candidate = o.insert_at(pos, rhs);
            let allowed = self
                .filter
                .admitted_len(candidate.attrs(), self.eq, self.max_len);
            // The inserted attribute itself must survive the truncation,
            // otherwise the result carries no new information.
            if allowed > pos {
                let derived = candidate.truncate(allowed);
                debug_assert!(derived.contains_attr(rhs));
                out.push(derived);
            }
        }
    }

    /// Substitution rule for equations: replace an occurrence of `from`
    /// by `to` in place. When *both* attributes occur, the later one can
    /// never decide a lexicographic comparison (the earlier occurrence
    /// of its equal partner already tied), so it may be dropped — e.g.
    /// `(a,b)` under `a = b` also satisfies `(a)`, and transitively
    /// `(b)` and `(b,a)`.
    fn substitutions(
        &self,
        o: &Ordering,
        from: ofw_catalog::AttrId,
        to: ofw_catalog::AttrId,
        out: &mut Vec<Ordering>,
    ) {
        let Some(pos) = o.position(from) else {
            return;
        };
        if let Some(to_pos) = o.position(to) {
            // `from` is redundant only if `to` precedes it; the
            // symmetric substitution call covers the other orientation.
            if to_pos < pos {
                out.push(o.remove_at(pos));
            }
            return;
        }
        if pos >= self.max_len {
            return;
        }
        let candidate = o.replace_at(pos, to);
        let allowed = self
            .filter
            .admitted_len(candidate.attrs(), self.eq, self.max_len);
        if allowed > pos {
            out.push(candidate.truncate(allowed));
        }
    }

    /// The bounded transitive closure `Ω({o}, fds) \ prefix-closure(o)`:
    /// every ordering reachable from `o` (or from prefixes of derived
    /// orderings) by repeatedly applying any of `fds`.
    ///
    /// Prefixes of derived orderings participate as derivation *sources*
    /// (the paper's `Ω` is prefix-closed at every step) but only actually
    /// derived orderings are reported — in the NFSM, prefixes are separate
    /// nodes reached by ε-edges.
    pub fn closure(&self, o: &Ordering, fds: &[Fd]) -> Vec<Ordering> {
        let mut seen: FxHashSet<Ordering> = FxHashSet::default();
        let mut result: Vec<Ordering> = Vec::new();
        let mut work: Vec<Ordering> = vec![o.clone()];
        seen.insert(o.clone());
        // Prefixes of o are separate NFSM nodes with their own edges, but
        // mark them seen so we do not re-derive and report them.
        for p in o.proper_prefixes() {
            seen.insert(p.clone());
            work.push(p);
        }
        let mut buf: Vec<Ordering> = Vec::new();
        while let Some(cur) = work.pop() {
            for fd in fds {
                buf.clear();
                self.apply_fd(&cur, fd, &mut buf);
                for d in buf.drain(..) {
                    if seen.insert(d.clone()) {
                        // Report the derivation and recurse both into it
                        // and into its prefixes (prefix closure of Ω).
                        for p in d.proper_prefixes() {
                            if seen.insert(p.clone()) {
                                work.push(p.clone());
                                result.push(p);
                            }
                        }
                        work.push(d.clone());
                        result.push(d);
                    }
                }
            }
        }
        // Everything reported must be genuinely new (not o, not a prefix
        // of o) — guaranteed because those were pre-seeded into `seen`,
        // except prefixes of derived orderings that happen to be prefixes
        // of o; filter those.
        result.retain(|r| !(r.is_prefix_of(o)));
        result
    }
}

/// Applies one dependency to a *grouping* once, appending each derived
/// grouping to `out` (VLDB'04 set rules — strictly more permissive than
/// the positional ordering rules, since a set has no positions):
///
/// * `lhs → rhs`: if `lhs ⊆ g`, then `g ∪ {rhs}` is a grouping (rows
///   equal on `g` are equal on `rhs` too); conversely if `rhs ∈ g` and
///   `lhs ⊆ g \ {rhs}`, then `g \ {rhs}` is a grouping (the determined
///   attribute never splits a group);
/// * `a = b`: behaves like the FD pair `{a→b, b→a}` — set substitution
///   is insertion followed by removal;
/// * `∅ → a`: `a` may be added to or removed from any grouping.
///
/// Results never equal `g`.
pub fn apply_fd_grouping(g: &Grouping, fd: &Fd, out: &mut Vec<Grouping>) {
    let functional = |g: &Grouping, lhs: &[ofw_catalog::AttrId], rhs, out: &mut Vec<Grouping>| {
        if g.contains_attr(rhs) {
            let rest = g.without(rhs);
            if lhs.iter().all(|&l| rest.contains_attr(l)) {
                out.push(rest);
            }
        } else if lhs.iter().all(|&l| g.contains_attr(l)) {
            out.push(g.with(rhs));
        }
    };
    match fd {
        Fd::Functional { lhs, rhs } => functional(g, lhs, *rhs, out),
        Fd::Constant(a) => {
            if g.contains_attr(*a) {
                out.push(g.without(*a));
            } else {
                out.push(g.with(*a));
            }
        }
        Fd::Equation(a, b) => {
            functional(g, std::slice::from_ref(a), *b, out);
            functional(g, std::slice::from_ref(b), *a, out);
        }
    }
}

/// The classical attribute closure `seed⁺` under `fds`: every attribute
/// functionally determined by `seed`. Equations count in both
/// directions; constants are determined by anything (including the
/// empty set).
pub fn attr_closure(seed: &[ofw_catalog::AttrId], fds: &[Fd]) -> FxHashSet<ofw_catalog::AttrId> {
    let mut set: FxHashSet<ofw_catalog::AttrId> = seed.iter().copied().collect();
    loop {
        let mut grew = false;
        for fd in fds {
            let derived = match fd {
                Fd::Functional { lhs, rhs } => lhs
                    .iter()
                    .all(|l| set.contains(l))
                    .then_some(*rhs)
                    .filter(|r| !set.contains(r)),
                Fd::Constant(a) => (!set.contains(a)).then_some(*a),
                Fd::Equation(a, b) => {
                    if set.contains(a) && !set.contains(b) {
                        Some(*b)
                    } else if set.contains(b) && !set.contains(a) {
                        Some(*a)
                    } else {
                        None
                    }
                }
            };
            if let Some(d) = derived {
                set.insert(d);
                grew = true;
            }
        }
        if !grew {
            return set;
        }
    }
}

/// Whether `key` functionally determines every attribute of `targets`
/// under `fds` — the admission test behind group-join ("the join key
/// functionally determines the group") and eager aggregation keys.
pub fn determines(
    key: &[ofw_catalog::AttrId],
    targets: &[ofw_catalog::AttrId],
    fds: &[Fd],
) -> bool {
    let closure = attr_closure(key, fds);
    targets.iter().all(|t| closure.contains(t))
}

/// Minimizes an aggregation-key grouping under `fds`: drops every
/// attribute functionally determined by the remaining ones (rows equal
/// on the rest are equal on it too, so it neither splits groups nor
/// changes the group count). Deterministic — attributes are examined in
/// ascending id order — so extraction and the plan generator derive the
/// *same* canonical key for the same subset and the grouping registered
/// as interesting is the grouping the partial aggregate produces.
pub fn minimize_grouping_key(key: &Grouping, fds: &[Fd]) -> Grouping {
    let mut attrs: Vec<ofw_catalog::AttrId> = key.attrs().to_vec();
    let mut i = 0;
    while i < attrs.len() {
        let rest: Vec<ofw_catalog::AttrId> = attrs
            .iter()
            .enumerate()
            .filter_map(|(j, &a)| (j != i).then_some(a))
            .collect();
        if determines(&rest, &[attrs[i]], fds) {
            attrs.remove(i);
        } else {
            i += 1;
        }
    }
    Grouping::new(attrs)
}

/// Applies one dependency to a *head/tail pair* once, appending each
/// derived property to `out`. The two components react to a dependency
/// independently — that is the pair's derivation signature:
///
/// * the **head** follows the grouping *set* rules of
///   [`apply_fd_grouping`] (insert a determined attribute, remove a
///   determined member, toggle constants) — the head groups are
///   untouched by any of these, so the tail ordering inside them
///   survives verbatim;
/// * the **tail** follows the positional *ordering* rules of
///   [`DeriveCtx::apply_fd`], with one extra power: inside a head group
///   every head attribute is constant, so head members act as
///   always-satisfied determinants — a dependency whose left-hand side
///   sits (partly) in the head can insert its right-hand side at *any*
///   tail position, and a tail attribute determined by head members
///   alone is removable anywhere.
///
/// Results may degenerate: removing the last head member (a constant
/// head) yields the plain tail [`Ordering`] — the whole stream is one
/// group — and removing the last tail attribute yields the plain head
/// [`Grouping`]. Results never equal the input pair.
pub fn apply_fd_head_tail(ht: &HeadTail, fd: &Fd, out: &mut Vec<LogicalProperty>) {
    let head = ht.head();
    let tail = ht.tail();
    // Head component: set insertion / removal, tail unchanged. A
    // removal that would empty the head is dropped: the degenerate
    // consequence (a constant head collapses the stream into one group,
    // so the tail becomes a plain ordering) is sound, but it is a power
    // the pair-free pipeline cannot mirror — deriving it would make
    // `contains` answers depend on whether pair nodes happen to be
    // materialized. All three oracle arms share this rule set, so the
    // conservative choice keeps them in exact agreement.
    let mut head_buf: Vec<Grouping> = Vec::new();
    apply_fd_grouping(&head, fd, &mut head_buf);
    for h in head_buf {
        if !h.is_empty() {
            out.push(LogicalProperty::head_tail(h, tail.clone()));
        }
    }
    // Tail component: positional rules with the head as an ambient
    // constant set.
    let functional =
        |lhs: &[ofw_catalog::AttrId], rhs: ofw_catalog::AttrId, out: &mut Vec<LogicalProperty>| {
            if head.contains_attr(rhs) {
                return; // constant inside a group: adds no tail information
            }
            if let Some(p) = tail.position(rhs) {
                // Removal: every determinant is a head member (constant in
                // the group) or precedes the occurrence in the tail.
                let implied = lhs
                    .iter()
                    .all(|&l| head.contains_attr(l) || tail.position(l).is_some_and(|q| q < p));
                if implied {
                    out.push(LogicalProperty::head_tail(head.clone(), tail.remove_at(p)));
                }
            } else {
                // Insertion: head determinants impose no position, tail
                // determinants must precede.
                let mut first = 0usize;
                for &l in lhs {
                    if head.contains_attr(l) {
                        continue;
                    }
                    match tail.position(l) {
                        Some(p) => first = first.max(p + 1),
                        None => return, // lhs satisfied by neither component
                    }
                }
                for pos in first..=tail.len() {
                    out.push(LogicalProperty::head_tail(
                        head.clone(),
                        tail.insert_at(pos, rhs),
                    ));
                }
            }
        };
    match fd {
        Fd::Functional { lhs, rhs } => functional(lhs, *rhs, out),
        Fd::Constant(a) => functional(&[], *a, out),
        Fd::Equation(a, b) => {
            functional(std::slice::from_ref(a), *b, out);
            functional(std::slice::from_ref(b), *a, out);
            // In-place tail substitution (the equation's extra power
            // over the FD pair, as for plain orderings).
            for (from, to) in [(*a, *b), (*b, *a)] {
                let Some(pos) = tail.position(from) else {
                    continue;
                };
                if head.contains_attr(to) {
                    // `from` equals a within-group constant: removable.
                    out.push(LogicalProperty::head_tail(
                        head.clone(),
                        tail.remove_at(pos),
                    ));
                } else if let Some(to_pos) = tail.position(to) {
                    if to_pos < pos {
                        out.push(LogicalProperty::head_tail(
                            head.clone(),
                            tail.remove_at(pos),
                        ));
                    }
                } else {
                    out.push(LogicalProperty::head_tail(
                        head.clone(),
                        tail.replace_at(pos, to),
                    ));
                }
            }
        }
    }
}

/// Applies one dependency to a *grouping* to derive head/tail pairs:
/// an attribute functionally determined by head members alone (or bound
/// to a constant) is constant inside every group, so the grouped stream
/// is trivially sorted by it within each group — `{a} + a→b ⊢ {a}(b)`.
/// This is the crossover that lets grouped-but-unsorted streams (hash
/// aggregation output) start accumulating within-group order.
pub fn apply_fd_grouping_tails(g: &Grouping, fd: &Fd, out: &mut Vec<LogicalProperty>) {
    let mut push = |rhs: ofw_catalog::AttrId| {
        if !g.contains_attr(rhs) {
            out.push(LogicalProperty::head_tail(
                g.clone(),
                Ordering::new(vec![rhs]),
            ));
        }
    };
    match fd {
        Fd::Functional { lhs, rhs } => {
            if lhs.iter().all(|&l| g.contains_attr(l)) {
                push(*rhs);
            }
        }
        Fd::Constant(a) => push(*a),
        Fd::Equation(a, b) => {
            if g.contains_attr(*a) {
                push(*b);
            }
            if g.contains_attr(*b) {
                push(*a);
            }
        }
    }
}

/// The transitive closure of *mixed* property derivation from a pair or
/// grouping source: every property reachable by repeatedly applying any
/// of `fds` under the pair rules ([`apply_fd_head_tail`]) and the
/// grouping set rules ([`apply_fd_grouping`],
/// [`apply_fd_grouping_tails`]). Each admission filter bounds its own
/// kind; the source itself is not reported.
///
/// The `Ordering` arms exist for totality over the public
/// `LogicalProperty` input (an ordering *source* chases the positional
/// rules of `ctx`), but the current rule set never *derives* an
/// ordering from a pair or grouping — head removal deliberately keeps
/// heads non-empty (see [`apply_fd_head_tail`]), so with a pair or
/// grouping source the ordering branches stay cold. They are kept, not
/// `unreachable!`, so a future property kind whose rules do emit
/// orderings degrades gracefully instead of aborting.
pub fn mixed_closure(
    src: &LogicalProperty,
    fds: &[Fd],
    ctx: &DeriveCtx,
    gfilter: &GroupingFilter,
    hfilter: &HeadTailFilter,
) -> Vec<LogicalProperty> {
    let mut seen: FxHashSet<LogicalProperty> = FxHashSet::default();
    let mut result: Vec<LogicalProperty> = Vec::new();
    let mut work: Vec<LogicalProperty> = vec![src.clone()];
    seen.insert(src.clone());
    let mut buf: Vec<LogicalProperty> = Vec::new();
    while let Some(cur) = work.pop() {
        buf.clear();
        match &cur {
            LogicalProperty::HeadTail(ht) => {
                for fd in fds {
                    apply_fd_head_tail(ht, fd, &mut buf);
                }
            }
            LogicalProperty::Grouping(g) => {
                let mut gbuf: Vec<Grouping> = Vec::new();
                for fd in fds {
                    apply_fd_grouping(g, fd, &mut gbuf);
                    apply_fd_grouping_tails(g, fd, &mut buf);
                }
                buf.extend(gbuf.into_iter().map(LogicalProperty::Grouping));
            }
            LogicalProperty::Ordering(o) => {
                // Orderings only ever derive orderings; the bounded
                // ordering closure is transitive already, so report its
                // results without re-queueing them.
                for d in ctx.closure(o, fds) {
                    let p = LogicalProperty::Ordering(d);
                    if seen.insert(p.clone()) {
                        result.push(p);
                    }
                }
                continue;
            }
        }
        for d in buf.drain(..) {
            let admitted = match &d {
                LogicalProperty::HeadTail(h) => hfilter.admits(h),
                LogicalProperty::Grouping(g) => !g.is_empty() && gfilter.admits(g),
                LogicalProperty::Ordering(o) => {
                    !o.is_empty() && ctx.filter.admitted_len(o.attrs(), ctx.eq, ctx.max_len) > 0
                }
            };
            if admitted && seen.insert(d.clone()) {
                work.push(d.clone());
                result.push(d);
            }
        }
    }
    result
}

/// The transitive closure of grouping derivation: every grouping
/// reachable from `g` by repeatedly applying any of `fds`, bounded by
/// the admission `filter` (a derived grouping no interesting grouping
/// can ever be completed from is dropped). `g` itself is not reported.
pub fn grouping_closure(g: &Grouping, fds: &[Fd], filter: &GroupingFilter) -> Vec<Grouping> {
    let mut seen: FxHashSet<Grouping> = FxHashSet::default();
    let mut result: Vec<Grouping> = Vec::new();
    let mut work: Vec<Grouping> = vec![g.clone()];
    seen.insert(g.clone());
    let mut buf: Vec<Grouping> = Vec::new();
    while let Some(cur) = work.pop() {
        for fd in fds {
            buf.clear();
            apply_fd_grouping(&cur, fd, &mut buf);
            for d in buf.drain(..) {
                if d.is_empty() || !filter.admits(&d) {
                    continue;
                }
                if seen.insert(d.clone()) {
                    work.push(d.clone());
                    result.push(d);
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofw_catalog::AttrId;

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);
    const C: AttrId = AttrId(2);
    const D: AttrId = AttrId(3);

    fn o(ids: &[AttrId]) -> Ordering {
        Ordering::new(ids.to_vec())
    }

    /// Context with all heuristics disabled (unbounded derivation).
    fn open_ctx<'a>(eq: &'a EqClasses, filter: &'a PrefixFilter) -> DeriveCtx<'a> {
        DeriveCtx {
            eq,
            filter,
            max_len: usize::MAX,
        }
    }

    fn unbounded(orderings: &Ordering, fds: &[Fd]) -> Vec<Ordering> {
        let eq = EqClasses::from_fds(fds.iter());
        let filter = PrefixFilter::new(std::iter::empty(), &[], &eq, false);
        let ctx = open_ctx(&eq, &filter);
        let mut r = ctx.closure(orderings, fds);
        r.sort();
        r
    }

    #[test]
    fn functional_insertion_positions() {
        // (a,b) + b→c: c goes after b: (a,b,c).
        let r = unbounded(&o(&[A, B]), &[Fd::functional(&[B], C)]);
        assert_eq!(r, vec![o(&[A, B, C])]);
        // (b,a) + b→c: c can go between or after: (b,c,a), (b,a,c)
        // plus the prefix (b,c) of (b,c,a).
        let r = unbounded(&o(&[B, A]), &[Fd::functional(&[B], C)]);
        assert_eq!(r, vec![o(&[B, A, C]), o(&[B, C]), o(&[B, C, A])]);
    }

    #[test]
    fn functional_requires_lhs_present() {
        let r = unbounded(&o(&[A]), &[Fd::functional(&[B], C)]);
        assert!(r.is_empty());
        // Multi-attribute lhs: both must precede.
        let r = unbounded(&o(&[A, B]), &[Fd::functional(&[A, B], C)]);
        assert_eq!(r, vec![o(&[A, B, C])]);
        let r = unbounded(&o(&[A]), &[Fd::functional(&[A, B], C)]);
        assert!(r.is_empty());
    }

    #[test]
    fn rhs_already_present_is_noop() {
        let r = unbounded(&o(&[B, C]), &[Fd::functional(&[B], C)]);
        assert!(r.is_empty());
    }

    #[test]
    fn constants_insert_anywhere() {
        // §2 intro example: (a,b) + x = const yields all interleavings.
        let x = D;
        let mut r = unbounded(&o(&[A, B]), &[Fd::constant(x)]);
        r.sort();
        let mut expect = vec![
            o(&[x, A, B]),
            o(&[A, x, B]),
            o(&[A, B, x]),
            o(&[x, A]), // prefix of (x,a,b)
            o(&[A, x]), // prefix of (a,x,b)
            o(&[x]),    // prefix of (x,a)
        ];
        expect.sort();
        assert_eq!(r, expect);
    }

    #[test]
    fn equation_substitutes_in_place() {
        // (a) + a=b: (a,b), (b,a), (b) — substitution reaches (b) directly.
        let r = unbounded(&o(&[A]), &[Fd::equation(A, B)]);
        assert_eq!(r, vec![o(&[A, B]), o(&[B]), o(&[B, A])]);
    }

    #[test]
    fn transitive_closure_chains_fds() {
        // (a) + {a→b, b→c}: reaches (a,b,c) in two steps, and then
        // (a,c) by dropping the functionally determined b (b is fixed
        // once a is tied, so it never decides a comparison).
        let r = unbounded(
            &o(&[A]),
            &[Fd::functional(&[A], B), Fd::functional(&[B], C)],
        );
        assert!(r.contains(&o(&[A, B])));
        assert!(r.contains(&o(&[A, B, C])));
        assert!(r.contains(&o(&[A, C])));
        // But (c,…) stays out: nothing ever orders by c first.
        assert!(!r.iter().any(|d| d.attrs().first() == Some(&C)));
    }

    #[test]
    fn removal_of_determined_attributes() {
        // (a,b,c) + a→b satisfies (a,c) — Simmen's reduction agrees.
        let r = unbounded(&o(&[A, B, C]), &[Fd::functional(&[A], B)]);
        assert!(r.contains(&o(&[A, C])));
        // Constants are removable anywhere: (a,x,b) + x=const ⊢ (a,b).
        let x = D;
        let r = unbounded(&o(&[A, x, B]), &[Fd::constant(x)]);
        assert!(r.contains(&o(&[A, B])));
        // Equation duplicates: (a,b) + a=b ⊢ (b), (b,a) — and (a) via
        // prefix closure, which `closure` leaves to the ε-edges.
        let r = unbounded(&o(&[A, B]), &[Fd::equation(A, B)]);
        assert!(r.contains(&o(&[B])));
        assert!(r.contains(&o(&[B, A])));
    }

    #[test]
    fn prefix_filter_blocks_useless_insertions() {
        // Interesting order (a,b); from (b), inserting c is useless.
        let fds = [Fd::functional(&[B], C)];
        let eq = EqClasses::new();
        let interesting = [o(&[A, B])];
        let filter = PrefixFilter::new(interesting.iter(), &fds, &eq, true);
        let ctx = DeriveCtx {
            eq: &eq,
            filter: &filter,
            max_len: 2,
        };
        assert!(ctx.closure(&o(&[B]), &fds).is_empty());
    }

    #[test]
    fn truncation_to_longest_matching_interesting_order() {
        // Interesting order (a,b), FD a→c, cap 2: inserting c at the
        // tail of (a,b) is pointless (it would only rebuild (a,b)) and
        // is dropped. The middle insertion survives as (a,c) — c is
        // strippable after a, so the admission DP keeps it as a
        // potential enabler (a deliberate, sound over-admission).
        let fds = [Fd::functional(&[A], C)];
        let eq = EqClasses::new();
        let interesting = [o(&[A, B])];
        let filter = PrefixFilter::new(interesting.iter(), &fds, &eq, true);
        let ctx = DeriveCtx {
            eq: &eq,
            filter: &filter,
            max_len: 2,
        };
        let r = ctx.closure(&o(&[A, B]), &fds);
        assert_eq!(r, vec![o(&[A, C])], "only the enabler candidate remains");
    }

    #[test]
    fn closure_never_reports_prefixes_of_source() {
        let r = unbounded(&o(&[A, B, C]), &[Fd::functional(&[A], D)]);
        for d in &r {
            assert!(!d.is_prefix_of(&o(&[A, B, C])), "{d:?}");
        }
    }

    fn g(ids: &[AttrId]) -> Grouping {
        Grouping::new(ids.to_vec())
    }

    fn unbounded_groups(src: &Grouping, fds: &[Fd]) -> Vec<Grouping> {
        let filter = GroupingFilter::permissive();
        let mut r = grouping_closure(src, fds, &filter);
        r.sort();
        r
    }

    #[test]
    fn grouping_functional_insert_and_remove() {
        // {a,b} + b→c: sets have no positions, so {a,b,c} is the only
        // derivation regardless of where c "goes".
        let r = unbounded_groups(&g(&[A, B]), &[Fd::functional(&[B], C)]);
        assert_eq!(r, vec![g(&[A, B, C])]);
        // {a,b,c} + b→c: c is determined by b ⊆ {a,b}, so it can be
        // dropped (and re-added — both members of the closure).
        let r = unbounded_groups(&g(&[A, B, C]), &[Fd::functional(&[B], C)]);
        assert_eq!(r, vec![g(&[A, B])]);
        // lhs must be inside the set.
        let r = unbounded_groups(&g(&[A]), &[Fd::functional(&[B], C)]);
        assert!(r.is_empty());
    }

    #[test]
    fn grouping_constants_and_equations() {
        // Constants toggle membership freely.
        let r = unbounded_groups(&g(&[A]), &[Fd::constant(C)]);
        assert_eq!(r, vec![g(&[A, C])]);
        let r = unbounded_groups(&g(&[A, C]), &[Fd::constant(C)]);
        assert_eq!(r, vec![g(&[A])]);
        // a = b: {a} reaches {a,b} and {b} (substitution via the set
        // rules: insert b, then a is determined by b and drops).
        let r = unbounded_groups(&g(&[A]), &[Fd::equation(A, B)]);
        assert_eq!(r, vec![g(&[A, B]), g(&[B])]);
    }

    #[test]
    fn grouping_closure_is_transitive() {
        // {a} + {a→b, b→c} reaches {a,b}, then {a,b,c}, then {a,c}:
        // b is determined by a (a→b with a ∈ {a,c}), so b may be
        // dropped from {a,b,c} even though c stays.
        let r = unbounded_groups(
            &g(&[A]),
            &[Fd::functional(&[A], B), Fd::functional(&[B], C)],
        );
        assert!(r.contains(&g(&[A, B])));
        assert!(r.contains(&g(&[A, B, C])));
        assert!(r.contains(&g(&[A, C])));
        assert!(!r.contains(&g(&[C])), "a is not removable");
    }

    #[test]
    fn attr_closure_and_determines() {
        let fds = [Fd::functional(&[A], B), Fd::equation(B, C), Fd::constant(D)];
        let closure = attr_closure(&[A], &fds);
        for x in [A, B, C, D] {
            assert!(closure.contains(&x), "{x:?}");
        }
        assert!(determines(&[A], &[B, C, D], &fds));
        assert!(determines(&[], &[D], &fds), "constants come for free");
        assert!(!determines(&[B], &[A], &fds), "FDs are directional");
        assert!(determines(&[C], &[B], &fds), "equations go both ways");
    }

    #[test]
    fn key_minimization_drops_determined_attributes() {
        // A key column determines its siblings: {a, b, c} with a→b and
        // b=c minimizes to {a}.
        let fds = [Fd::functional(&[A], B), Fd::equation(B, C)];
        assert_eq!(minimize_grouping_key(&g(&[A, B, C]), &fds), g(&[A]));
        // Nothing removable without dependencies.
        assert_eq!(minimize_grouping_key(&g(&[A, B]), &[]), g(&[A, B]));
        // Constants always drop.
        assert_eq!(
            minimize_grouping_key(&g(&[A, D]), &[Fd::constant(D)]),
            g(&[A])
        );
        // Mutual determination keeps exactly one representative (the
        // ascending scan drops the first removable attribute first).
        let fds = [Fd::equation(A, B)];
        assert_eq!(minimize_grouping_key(&g(&[A, B]), &fds), g(&[B]));
    }

    fn ht(head: &[AttrId], tail: &[AttrId]) -> HeadTail {
        HeadTail::new(Grouping::new(head.to_vec()), Ordering::new(tail.to_vec()))
    }

    fn pair_derive(src: &HeadTail, fds: &[Fd]) -> Vec<LogicalProperty> {
        let mut out = Vec::new();
        for fd in fds {
            apply_fd_head_tail(src, fd, &mut out);
        }
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn head_tail_head_follows_set_rules() {
        // {a}(c) + a→b: b joins the head (rows equal on a are equal on
        // b, so the groups are unchanged) — and the head rule never
        // touches the tail.
        let r = pair_derive(&ht(&[A], &[C]), &[Fd::functional(&[A], B)]);
        assert!(r.contains(&ht(&[A, B], &[C]).into()));
        // {a,b}(c) + a→b: b is determined by the rest of the head, so it
        // may leave; the head never empties ({a}(c) + ∅→a keeps {a}).
        let r = pair_derive(&ht(&[A, B], &[C]), &[Fd::functional(&[A], B)]);
        assert!(r.contains(&ht(&[A], &[C]).into()));
        let r = pair_derive(&ht(&[A], &[C]), &[Fd::constant(A)]);
        assert!(r.iter().all(|p| p.is_head_tail()), "no degeneration: {r:?}");
    }

    #[test]
    fn head_tail_tail_rules_use_head_as_constants() {
        // {a}(b) + a→c: inside a group a is constant, so c is insertable
        // at *any* tail position — including the front, which the
        // positional ordering rules could never do.
        let r = pair_derive(&ht(&[A], &[B]), &[Fd::functional(&[A], C)]);
        assert!(r.contains(&ht(&[A], &[C, B]).into()));
        assert!(r.contains(&ht(&[A], &[B, C]).into()));
        // {a}(b,c) + b→c: c is determined by the preceding tail — it may
        // leave; {a}(c,b) + b→c: it may not (b comes later).
        let r = pair_derive(&ht(&[A], &[B, C]), &[Fd::functional(&[B], C)]);
        assert!(r.contains(&ht(&[A], &[B]).into()));
        let r = pair_derive(&ht(&[A], &[C, B]), &[Fd::functional(&[B], C)]);
        assert!(!r.contains(&ht(&[A], &[B]).into()));
        // {a}(b,c) + a→c: c is determined by the head alone — removable
        // anywhere, leaving {a}(b).
        let r = pair_derive(&ht(&[A], &[B, C]), &[Fd::functional(&[A], C)]);
        assert!(r.contains(&ht(&[A], &[B]).into()));
    }

    #[test]
    fn head_tail_tail_removal_can_degenerate_to_grouping() {
        // {a}(b) + a→b: the only tail attribute is head-determined;
        // removing it leaves the plain head grouping.
        let r = pair_derive(&ht(&[A], &[B]), &[Fd::functional(&[A], B)]);
        assert!(r.contains(&g(&[A]).into()));
    }

    #[test]
    fn head_tail_equation_substitutes_in_the_tail() {
        // {a}(b) + b=c: c substitutes in place; and since a=b puts b
        // equal to a head member, b becomes removable.
        let r = pair_derive(&ht(&[A], &[B]), &[Fd::equation(B, C)]);
        assert!(r.contains(&ht(&[A], &[C]).into()));
        let r = pair_derive(&ht(&[A], &[B]), &[Fd::equation(A, B)]);
        assert!(r.contains(&g(&[A]).into()), "b ≡ head member ⇒ removable");
    }

    #[test]
    fn grouping_tails_rule_spawns_pairs() {
        // {a} + a→b: b is constant inside every a-group, so the grouped
        // stream is trivially sorted by (b) within groups.
        let mut out = Vec::new();
        apply_fd_grouping_tails(&g(&[A]), &Fd::functional(&[A], B), &mut out);
        assert_eq!(out, vec![ht(&[A], &[B]).into()]);
        // Constants qualify with no determinant at all.
        out.clear();
        apply_fd_grouping_tails(&g(&[A]), &Fd::constant(C), &mut out);
        assert_eq!(out, vec![ht(&[A], &[C]).into()]);
        // Attributes already in the set do not (no information).
        out.clear();
        apply_fd_grouping_tails(&g(&[A]), &Fd::constant(A), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn mixed_closure_chains_kinds() {
        // From the grouping {a}: a→b spawns the pair {a}(b), and b→c
        // extends its tail to {a}(b,c) — transitive across kinds within
        // one symbol, exactly what the NFSM edge needs.
        let fds = [Fd::functional(&[A], B), Fd::functional(&[B], C)];
        let eq = EqClasses::new();
        let filter = PrefixFilter::new(std::iter::empty(), &[], &eq, false);
        let ctx = open_ctx(&eq, &filter);
        let gfilter = GroupingFilter::permissive();
        let hfilter = crate::filter::HeadTailFilter::permissive();
        let r = mixed_closure(&g(&[A]).into(), &fds, &ctx, &gfilter, &hfilter);
        assert!(r.contains(&ht(&[A], &[B]).into()));
        assert!(r.contains(&ht(&[A], &[B, C]).into()));
        assert!(r.contains(&g(&[A, B]).into()));
        assert!(r.contains(&g(&[A, B, C]).into()));
        assert!(!r.iter().any(|p| p.as_ordering().is_some()));
    }

    #[test]
    fn grouping_filter_bounds_the_closure() {
        // Interesting grouping {a,b}: from {a}, inserting d is useless —
        // nothing can ever produce the missing b from {a,d}.
        let fds = [Fd::functional(&[A], D)];
        let eq = EqClasses::new();
        let interesting = [g(&[A, B])];
        let filter = GroupingFilter::new(interesting.iter(), &fds, &eq, true);
        assert!(grouping_closure(&g(&[A]), &fds, &filter).is_empty());
        // With a→b in play, {a,d} stays admitted (b is still derivable
        // from it — the filter is deliberately permissive) and {a,b} is
        // reached.
        let fds = [Fd::functional(&[A], D), Fd::functional(&[A], B)];
        let filter = GroupingFilter::new(interesting.iter(), &fds, &eq, true);
        let mut r = grouping_closure(&g(&[A]), &fds, &filter);
        r.sort();
        assert_eq!(r, vec![g(&[A, B]), g(&[A, B, D]), g(&[A, D])]);
    }
}
