//! Logical orderings.
//!
//! An ordering `o = (A_{o1}, …, A_{om})` is a duplicate-free sequence of
//! attributes (paper §2). A tuple stream *satisfies* `o` if it is sorted
//! lexicographically by that attribute sequence (ascending, as in the
//! paper). The empty ordering is satisfied by every stream and serves as
//! the entry state for unordered scans.

use ofw_catalog::AttrId;

/// A duplicate-free sequence of attributes, the unit the whole framework
/// reasons about.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ordering {
    attrs: Box<[AttrId]>,
}

impl Ordering {
    /// Creates an ordering. Panics (debug) if `attrs` contains duplicates:
    /// a repeated attribute adds no ordering information (all tuples agree
    /// on it once the earlier occurrence ties), so duplicate-free is an
    /// invariant everywhere.
    pub fn new(attrs: Vec<AttrId>) -> Self {
        debug_assert!(
            {
                let mut seen = attrs.clone();
                seen.sort_unstable();
                seen.windows(2).all(|w| w[0] != w[1])
            },
            "ordering must be duplicate-free: {attrs:?}"
        );
        Ordering {
            attrs: attrs.into_boxed_slice(),
        }
    }

    /// The empty ordering `()` — satisfied by every tuple stream.
    pub fn empty() -> Self {
        Ordering {
            attrs: Box::new([]),
        }
    }

    /// The attribute sequence.
    #[inline]
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Number of attributes.
    #[inline]
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True for the empty ordering.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// True if `self` is a prefix of `other` (including equality).
    pub fn is_prefix_of(&self, other: &Ordering) -> bool {
        other.attrs.starts_with(&self.attrs)
    }

    /// The prefix of the first `len` attributes.
    pub fn prefix(&self, len: usize) -> Ordering {
        Ordering {
            attrs: self.attrs[..len].to_vec().into_boxed_slice(),
        }
    }

    /// All *proper* non-empty prefixes, shortest first.
    pub fn proper_prefixes(&self) -> impl Iterator<Item = Ordering> + '_ {
        (1..self.len()).map(|l| self.prefix(l))
    }

    /// Whether `attr` occurs in the ordering.
    pub fn contains_attr(&self, attr: AttrId) -> bool {
        self.attrs.contains(&attr)
    }

    /// Position of `attr`, if present.
    pub fn position(&self, attr: AttrId) -> Option<usize> {
        self.attrs.iter().position(|&a| a == attr)
    }

    /// Returns a copy with `attr` inserted at `pos` (0-based).
    pub fn insert_at(&self, pos: usize, attr: AttrId) -> Ordering {
        debug_assert!(!self.contains_attr(attr));
        let mut v = Vec::with_capacity(self.len() + 1);
        v.extend_from_slice(&self.attrs[..pos]);
        v.push(attr);
        v.extend_from_slice(&self.attrs[pos..]);
        Ordering {
            attrs: v.into_boxed_slice(),
        }
    }

    /// Returns a copy with the attribute at `pos` replaced by `attr`.
    pub fn replace_at(&self, pos: usize, attr: AttrId) -> Ordering {
        debug_assert!(!self.contains_attr(attr));
        let mut v = self.attrs.to_vec();
        v[pos] = attr;
        Ordering {
            attrs: v.into_boxed_slice(),
        }
    }

    /// Returns a copy with the attribute at `pos` removed.
    pub fn remove_at(&self, pos: usize) -> Ordering {
        let mut v = self.attrs.to_vec();
        v.remove(pos);
        Ordering {
            attrs: v.into_boxed_slice(),
        }
    }

    /// Returns a copy truncated to at most `len` attributes.
    pub fn truncate(&self, len: usize) -> Ordering {
        if len >= self.len() {
            self.clone()
        } else {
            self.prefix(len)
        }
    }

    /// Heap bytes held by this ordering (for memory accounting).
    pub fn heap_bytes(&self) -> usize {
        self.attrs.len() * std::mem::size_of::<AttrId>()
    }
}

impl std::fmt::Debug for Ordering {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a:?}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<AttrId>> for Ordering {
    fn from(v: Vec<AttrId>) -> Self {
        Ordering::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(ids: &[u32]) -> Ordering {
        Ordering::new(ids.iter().map(|&i| AttrId(i)).collect())
    }

    #[test]
    fn prefix_relation() {
        assert!(o(&[1]).is_prefix_of(&o(&[1, 2, 3])));
        assert!(o(&[1, 2, 3]).is_prefix_of(&o(&[1, 2, 3])));
        assert!(!o(&[2]).is_prefix_of(&o(&[1, 2])));
        assert!(Ordering::empty().is_prefix_of(&o(&[1])));
    }

    #[test]
    fn proper_prefixes_shortest_first() {
        let p: Vec<Ordering> = o(&[1, 2, 3]).proper_prefixes().collect();
        assert_eq!(p, vec![o(&[1]), o(&[1, 2])]);
        assert_eq!(o(&[1]).proper_prefixes().count(), 0);
    }

    #[test]
    fn insert_and_replace() {
        let base = o(&[1, 3]);
        assert_eq!(base.insert_at(1, AttrId(2)), o(&[1, 2, 3]));
        assert_eq!(base.insert_at(0, AttrId(0)), o(&[0, 1, 3]));
        assert_eq!(base.insert_at(2, AttrId(9)), o(&[1, 3, 9]));
        assert_eq!(base.replace_at(1, AttrId(7)), o(&[1, 7]));
    }

    #[test]
    fn truncate_clamps() {
        assert_eq!(o(&[1, 2, 3]).truncate(2), o(&[1, 2]));
        assert_eq!(o(&[1, 2]).truncate(5), o(&[1, 2]));
        assert_eq!(o(&[1]).truncate(0), Ordering::empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicate-free")]
    fn duplicates_rejected() {
        let _ = o(&[1, 2, 1]);
    }

    #[test]
    fn debug_render() {
        assert_eq!(format!("{:?}", o(&[0, 2])), "(a0,a2)");
        assert_eq!(format!("{:?}", Ordering::empty()), "()");
    }
}
