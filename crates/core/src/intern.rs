//! Spec canonicalization and the prepared-automaton interning cache.
//!
//! Two queries rarely share attribute *ids*, but they constantly share
//! property-spec *shape*: "two produced orderings of length 2 over
//! disjoint attributes, one FD set linking them" prepares to the exact
//! same NFSM/DFSM no matter which attributes play the roles. The cache
//! exploits this by renaming attributes to canonical ids in first-
//! occurrence order over a deterministic traversal of the spec
//! (produced properties, then tested ones, then FD sets): structurally
//! identical specs canonicalize to equal keys, and a warm
//! [`OrderingFramework::prepare_cached`](crate::OrderingFramework::prepare_cached)
//! is a canonicalization pass plus one hash lookup instead of a full
//! determinization.
//!
//! Canonicalization is *sound, not complete*: a renaming can reorder
//! set-valued properties (groupings store attributes sorted by id), so
//! some equivalent specs hash to different keys — they just miss the
//! cache and prepare normally. A hit, on the other hand, is always
//! exact: the canonical spec preserves property identity, FD-set ids
//! and producibility, and the per-query handle maps are translated back
//! through the inverse renaming.

use crate::fd::Fd;
use crate::framework::{PrepareError, Prepared};
use crate::property::LogicalProperty;
use crate::prune::PruneConfig;
use crate::spec::InputSpec;
use ofw_catalog::AttrId;
use ofw_common::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};

/// Bijective attribute renaming between a query's attribute space and
/// the canonical (first-occurrence) space.
pub(crate) struct AttrCanonMap {
    to_canon: FxHashMap<AttrId, AttrId>,
    /// Indexed by canonical id: the original attribute.
    from_canon: Vec<AttrId>,
}

impl AttrCanonMap {
    fn new() -> Self {
        AttrCanonMap {
            to_canon: FxHashMap::default(),
            from_canon: Vec::new(),
        }
    }

    /// Canonical id of `a`, assigned at first sight.
    fn map(&mut self, a: AttrId) -> AttrId {
        if let Some(&c) = self.to_canon.get(&a) {
            return c;
        }
        let c = AttrId(self.from_canon.len() as u32);
        self.to_canon.insert(a, c);
        self.from_canon.push(a);
        c
    }

    /// Translates a canonical-space property back into the original
    /// attribute space.
    pub(crate) fn prop_to_original(&self, p: &LogicalProperty) -> LogicalProperty {
        remap_prop(p, &mut |a| self.from_canon[a.0 as usize])
    }
}

/// Rebuilds a property with every attribute passed through `f`,
/// re-running the type's own canonicalization (groupings re-sort,
/// head/tail pairs re-collapse degenerate shapes — a bijective rename
/// preserves degeneracy, so the variant never changes).
fn remap_prop(p: &LogicalProperty, f: &mut impl FnMut(AttrId) -> AttrId) -> LogicalProperty {
    use crate::ordering::Ordering;
    use crate::property::Grouping;
    match p {
        LogicalProperty::Ordering(o) => {
            LogicalProperty::Ordering(Ordering::new(o.attrs().iter().map(|&a| f(a)).collect()))
        }
        LogicalProperty::Grouping(g) => {
            LogicalProperty::Grouping(Grouping::new(g.attrs().iter().map(|&a| f(a)).collect()))
        }
        LogicalProperty::HeadTail(h) => LogicalProperty::head_tail(
            Grouping::new(h.head_attrs().iter().map(|&a| f(a)).collect()),
            Ordering::new(h.tail_attrs().iter().map(|&a| f(a)).collect()),
        ),
    }
}

/// Rebuilds an FD with every attribute passed through `f`.
fn remap_fd(fd: &Fd, f: &mut impl FnMut(AttrId) -> AttrId) -> Fd {
    match fd {
        Fd::Functional { lhs, rhs } => {
            let lhs: Vec<AttrId> = lhs.iter().map(|&a| f(a)).collect();
            Fd::functional(&lhs, f(*rhs))
        }
        Fd::Equation(a, b) => Fd::equation(f(*a), f(*b)),
        Fd::Constant(a) => Fd::constant(f(*a)),
    }
}

/// Renames a spec's attributes to canonical first-occurrence ids.
/// Returns the canonical spec (property and FD-set registration order,
/// and therefore every `FdSetId`, preserved — the renaming is injective,
/// so distinct sets stay distinct and dedup cannot merge them) plus the
/// renaming for translating results back.
pub(crate) fn canonicalize(spec: &InputSpec) -> (InputSpec, AttrCanonMap) {
    let mut map = AttrCanonMap::new();
    let mut canon = InputSpec::new();
    for p in spec.produced() {
        canon.add_produced(remap_prop(p, &mut |a| map.map(a)));
    }
    for p in spec.tested() {
        canon.add_tested(remap_prop(p, &mut |a| map.map(a)));
    }
    for set in spec.fd_sets() {
        let fds: Vec<Fd> = set
            .fds()
            .iter()
            .map(|fd| remap_fd(fd, &mut |a| map.map(a)))
            .collect();
        canon.add_fd_set(fds);
    }
    debug_assert_eq!(canon.fd_sets().len(), spec.fd_sets().len());
    (canon, map)
}

/// Cache key: the canonicalized spec shape plus every preparation knob
/// that changes the resulting automaton.
#[derive(PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    produced: Vec<LogicalProperty>,
    tested: Vec<LogicalProperty>,
    fd_sets: Vec<crate::fd::FdSet>,
    /// `PruneConfig` fields, flattened (the struct itself keeps no `Eq`).
    config: (bool, bool, bool, bool, bool, usize, usize),
    minimize: bool,
}

impl CacheKey {
    pub(crate) fn new(canon_spec: &InputSpec, config: &PruneConfig, minimize: bool) -> Self {
        CacheKey {
            produced: canon_spec.produced().to_vec(),
            tested: canon_spec.tested().to_vec(),
            fd_sets: canon_spec.fd_sets().to_vec(),
            config: (
                config.prune_fds,
                config.merge_artificial,
                config.eps_replace,
                config.prefix_filter,
                config.length_cutoff,
                config.max_nodes,
                config.max_dfsm_states,
            ),
            minimize,
        }
    }
}

/// Process-wide interning cache of prepared automata, keyed by
/// canonicalized spec shape. Thread-safe; share one instance across
/// queries (e.g. one per optimizer) and pass it to
/// [`OrderingFramework::prepare_cached`](crate::OrderingFramework::prepare_cached).
#[derive(Default)]
pub struct PreparedCache {
    entries: Mutex<FxHashMap<CacheKey, Arc<Prepared>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PreparedCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Warm lookups served so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(AtomicOrdering::Relaxed)
    }

    /// Cold preparations performed so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(AtomicOrdering::Relaxed)
    }

    /// Distinct spec shapes currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached automata (counters keep running).
    pub fn clear(&self) {
        self.entries.lock().unwrap().clear();
    }

    /// Returns the cached automaton for `key`, building and inserting
    /// it on a miss. The build runs outside the lock; a concurrent
    /// builder of the same shape may win the insert race, in which case
    /// the first-inserted entry is shared and the duplicate dropped.
    pub(crate) fn get_or_build(
        &self,
        key: CacheKey,
        build: impl FnOnce() -> Result<Prepared, PrepareError>,
    ) -> Result<(Arc<Prepared>, bool), PrepareError> {
        if let Some(entry) = self.entries.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, AtomicOrdering::Relaxed);
            return Ok((Arc::clone(entry), true));
        }
        let built = Arc::new(build()?);
        self.misses.fetch_add(1, AtomicOrdering::Relaxed);
        let mut entries = self.entries.lock().unwrap();
        let entry = entries.entry(key).or_insert(built);
        Ok((Arc::clone(entry), false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{OrderingFramework, PrepareOptions};
    use crate::ordering::Ordering;

    fn o(ids: &[u32]) -> Ordering {
        Ordering::new(ids.iter().map(|&i| AttrId(i)).collect())
    }

    fn shifted_spec(base: u32) -> InputSpec {
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[base + 1]));
        spec.add_produced(o(&[base, base + 1]));
        spec.add_tested(o(&[base, base + 1, base + 2]));
        spec.add_fd_set(vec![Fd::functional(&[AttrId(base + 1)], AttrId(base + 2))]);
        spec
    }

    /// Attribute-shifted copies of one shape canonicalize to the same
    /// key and share one prepared automaton.
    #[test]
    fn shifted_shapes_share_one_automaton() {
        let cache = PreparedCache::new();
        let options = PrepareOptions::eager();
        let cfg = PruneConfig::default;
        let first =
            OrderingFramework::prepare_cached(&shifted_spec(0), cfg(), &options, &cache).unwrap();
        assert!(!first.stats().interned_hit);
        for base in [10u32, 100, 7] {
            let fw =
                OrderingFramework::prepare_cached(&shifted_spec(base), cfg(), &options, &cache)
                    .unwrap();
            assert!(fw.stats().interned_hit, "shape base={base} must hit");
            // The shared automaton answers in the shifted attr space.
            let h = fw.handle(&o(&[base, base + 1])).unwrap();
            let s = fw.produce(h);
            assert!(fw.satisfies(s, fw.handle(&o(&[base])).unwrap()));
            assert!(!fw.satisfies(s, fw.handle(&o(&[base + 1])).unwrap()));
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 1);
    }

    /// A cached framework gives the same probe answers as an uncached
    /// prepare of the same spec (handles may be numbered differently).
    #[test]
    fn cached_prepare_is_probe_equivalent_to_uncached() {
        let cache = PreparedCache::new();
        let spec = shifted_spec(3);
        // Warm the cache with a different base so the second query hits.
        let _ = OrderingFramework::prepare_cached(
            &shifted_spec(0),
            PruneConfig::default(),
            &PrepareOptions::eager(),
            &cache,
        )
        .unwrap();
        let cached = OrderingFramework::prepare_cached(
            &spec,
            PruneConfig::default(),
            &PrepareOptions::eager(),
            &cache,
        )
        .unwrap();
        assert!(cached.stats().interned_hit);
        let plain = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
        let f0 = crate::fd::FdSetId(0);
        for (p, hp) in plain.properties() {
            let hc = cached.handle_property(p).expect("same handle space");
            if !plain.is_producible(hp) {
                assert!(!cached.is_producible(hc));
                continue;
            }
            let (sp, sc) = (plain.produce(hp), cached.produce(hc));
            for (q, hq) in plain.properties() {
                let hqc = cached.handle_property(q).unwrap();
                assert_eq!(plain.satisfies(sp, hq), cached.satisfies(sc, hqc));
                assert_eq!(
                    plain.satisfies(plain.infer(sp, f0), hq),
                    cached.satisfies(cached.infer(sc, f0), hqc)
                );
            }
        }
    }

    /// Different shapes, configs and minimize flags get distinct
    /// entries.
    #[test]
    fn distinct_shapes_do_not_collide() {
        let cache = PreparedCache::new();
        let options = PrepareOptions::eager();
        let a = shifted_spec(0);
        let mut b = shifted_spec(0);
        b.add_tested(o(&[5]));
        let _ = OrderingFramework::prepare_cached(&a, PruneConfig::default(), &options, &cache);
        let fw_b = OrderingFramework::prepare_cached(&b, PruneConfig::default(), &options, &cache)
            .unwrap();
        assert!(!fw_b.stats().interned_hit);
        let fw_min = OrderingFramework::prepare_cached(
            &a,
            PruneConfig::default(),
            &options.clone().minimize(true),
            &cache,
        )
        .unwrap();
        assert!(!fw_min.stats().interned_hit, "minimize is part of the key");
        let fw_cfg =
            OrderingFramework::prepare_cached(&a, PruneConfig::none(), &options, &cache).unwrap();
        assert!(!fw_cfg.stats().interned_hit, "config is part of the key");
        assert_eq!(cache.len(), 4);
    }
}
