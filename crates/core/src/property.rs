//! Logical properties: orderings *and* groupings.
//!
//! The ICDE'04 framework tracks logical *orderings*; its companion
//! (Neumann & Moerkotte, "A Combined Framework for Grouping and Order
//! Optimization", VLDB 2004) observes that the same NFSM/DFSM machinery
//! can track *groupings* — unordered attribute sets, as produced by
//! hash-based operators and exploited by aggregation — at the same O(1)
//! per-plan-node cost. [`LogicalProperty`] is the sum type the whole
//! pipeline is generic over:
//!
//! * an **ordering** `(a, b, c)` — tuples sorted lexicographically;
//! * a **grouping** `{a, b}` — tuples with equal values on `{a, b}`
//!   appear consecutively, with no order among or inside the groups.
//!
//! The two interact asymmetrically: a stream ordered by `(a, b)` is also
//! grouped by `{a}` and `{a, b}` (every prefix's attribute *set* is a
//! grouping), but a grouping implies no ordering, and — unlike ordering
//! prefixes — a grouping `{a, b}` does **not** imply the sub-grouping
//! `{a}` (rows with equal `a` may be separated by different `b` groups).

use crate::ordering::Ordering;
use ofw_catalog::AttrId;

/// A grouping: a non-positional, duplicate-free attribute *set*, stored
/// sorted so equal sets compare equal.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Grouping {
    attrs: Box<[AttrId]>,
}

impl Grouping {
    /// Creates a grouping from any attribute list (sorted, deduplicated).
    pub fn new(mut attrs: Vec<AttrId>) -> Self {
        attrs.sort_unstable();
        attrs.dedup();
        Grouping {
            attrs: attrs.into_boxed_slice(),
        }
    }

    /// The empty grouping `{}` — satisfied by every stream.
    pub fn empty() -> Self {
        Grouping {
            attrs: Box::new([]),
        }
    }

    /// The attribute set, ascending.
    #[inline]
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Number of attributes.
    #[inline]
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True for the empty grouping.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Set membership.
    pub fn contains_attr(&self, attr: AttrId) -> bool {
        self.attrs.binary_search(&attr).is_ok()
    }

    /// True if every attribute of `self` occurs in `other`.
    pub fn is_subset_of(&self, other: &Grouping) -> bool {
        self.attrs.iter().all(|&a| other.contains_attr(a))
    }

    /// The grouping with `attr` added (no-op if present).
    pub fn with(&self, attr: AttrId) -> Grouping {
        if self.contains_attr(attr) {
            return self.clone();
        }
        let mut v = self.attrs.to_vec();
        let pos = v.partition_point(|&a| a < attr);
        v.insert(pos, attr);
        Grouping {
            attrs: v.into_boxed_slice(),
        }
    }

    /// The grouping with `attr` removed (no-op if absent).
    pub fn without(&self, attr: AttrId) -> Grouping {
        match self.attrs.binary_search(&attr) {
            Ok(pos) => {
                let mut v = self.attrs.to_vec();
                v.remove(pos);
                Grouping {
                    attrs: v.into_boxed_slice(),
                }
            }
            Err(_) => self.clone(),
        }
    }

    /// Heap bytes held by this grouping (memory accounting).
    pub fn heap_bytes(&self) -> usize {
        self.attrs.len() * std::mem::size_of::<AttrId>()
    }
}

impl std::fmt::Debug for Grouping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a:?}")?;
        }
        write!(f, "}}")
    }
}

impl From<Vec<AttrId>> for Grouping {
    fn from(v: Vec<AttrId>) -> Self {
        Grouping::new(v)
    }
}

/// The generic logical property the NFSM/DFSM states carry.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LogicalProperty {
    /// A logical ordering (lexicographic attribute sequence).
    Ordering(Ordering),
    /// A logical grouping (unordered attribute set).
    Grouping(Grouping),
}

impl LogicalProperty {
    /// The attribute list (positional for orderings, sorted for
    /// groupings).
    pub fn attrs(&self) -> &[AttrId] {
        match self {
            LogicalProperty::Ordering(o) => o.attrs(),
            LogicalProperty::Grouping(g) => g.attrs(),
        }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs().len()
    }

    /// True for the empty ordering/grouping.
    pub fn is_empty(&self) -> bool {
        self.attrs().is_empty()
    }

    /// The ordering, if this is one.
    pub fn as_ordering(&self) -> Option<&Ordering> {
        match self {
            LogicalProperty::Ordering(o) => Some(o),
            LogicalProperty::Grouping(_) => None,
        }
    }

    /// The grouping, if this is one.
    pub fn as_grouping(&self) -> Option<&Grouping> {
        match self {
            LogicalProperty::Ordering(_) => None,
            LogicalProperty::Grouping(g) => Some(g),
        }
    }

    /// True for the grouping variant.
    pub fn is_grouping(&self) -> bool {
        matches!(self, LogicalProperty::Grouping(_))
    }

    /// Heap bytes (memory accounting).
    pub fn heap_bytes(&self) -> usize {
        match self {
            LogicalProperty::Ordering(o) => o.heap_bytes(),
            LogicalProperty::Grouping(g) => g.heap_bytes(),
        }
    }
}

impl std::fmt::Debug for LogicalProperty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogicalProperty::Ordering(o) => write!(f, "{o:?}"),
            LogicalProperty::Grouping(g) => write!(f, "{g:?}"),
        }
    }
}

impl From<Ordering> for LogicalProperty {
    fn from(o: Ordering) -> Self {
        LogicalProperty::Ordering(o)
    }
}

impl From<Grouping> for LogicalProperty {
    fn from(g: Grouping) -> Self {
        LogicalProperty::Grouping(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);
    const C: AttrId = AttrId(2);

    #[test]
    fn grouping_is_canonical() {
        assert_eq!(Grouping::new(vec![B, A]), Grouping::new(vec![A, B, A]));
        assert_ne!(Grouping::new(vec![A]), Grouping::new(vec![A, B]));
    }

    #[test]
    fn grouping_set_ops() {
        let g = Grouping::new(vec![C, A]);
        assert!(g.contains_attr(A) && g.contains_attr(C) && !g.contains_attr(B));
        assert_eq!(g.with(B).attrs(), &[A, B, C]);
        assert_eq!(g.with(A), g);
        assert_eq!(g.without(C).attrs(), &[A]);
        assert_eq!(g.without(B), g);
        assert!(Grouping::new(vec![A]).is_subset_of(&g));
        assert!(!g.is_subset_of(&Grouping::new(vec![A])));
    }

    #[test]
    fn property_dispatch() {
        let o: LogicalProperty = Ordering::new(vec![B, A]).into();
        let g: LogicalProperty = Grouping::new(vec![B, A]).into();
        assert_ne!(o, g, "an ordering is never equal to a grouping");
        assert_eq!(o.attrs(), &[B, A], "orderings keep position");
        assert_eq!(g.attrs(), &[A, B], "groupings are canonical sets");
        assert!(o.as_ordering().is_some() && o.as_grouping().is_none());
        assert!(g.as_grouping().is_some() && !o.is_grouping());
    }

    #[test]
    fn debug_render() {
        let g: LogicalProperty = Grouping::new(vec![B, A]).into();
        assert_eq!(format!("{g:?}"), "{a0,a1}");
        assert_eq!(format!("{:?}", Grouping::empty()), "{}");
    }
}
