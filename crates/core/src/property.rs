//! Logical properties: orderings, groupings, *and head/tail pairs*.
//!
//! The ICDE'04 framework tracks logical *orderings*; its companion
//! (Neumann & Moerkotte, "A Combined Framework for Grouping and Order
//! Optimization", VLDB 2004) observes that the same NFSM/DFSM machinery
//! can track *groupings* — unordered attribute sets, as produced by
//! hash-based operators and exploited by aggregation — at the same O(1)
//! per-plan-node cost. [`LogicalProperty`] is the sum type the whole
//! pipeline is generic over:
//!
//! * an **ordering** `(a, b, c)` — tuples sorted lexicographically;
//! * a **grouping** `{a, b}` — tuples with equal values on `{a, b}`
//!   appear consecutively, with no order among or inside the groups;
//! * a **head/tail pair** `{a}(b, c)` — tuples grouped by the *head*
//!   set `{a}`, and *within* each head group sorted lexicographically
//!   by the *tail* sequence `(b, c)`. The group blocks themselves are
//!   in no particular order.
//!
//! The three form a lattice of ordering strength:
//! `Ordering (a,b) ⊑ HeadTail {a}(b) ⊑ Grouping {a}` — a fully sorted
//! stream satisfies every head/tail decomposition of its prefix sets,
//! and every head/tail pair satisfies its head grouping; the converses
//! do not hold. The pair is what a *partial sort* produces (sorting
//! inside already-adjacent groups without ordering the groups) and what
//! makes grouped-but-unsorted streams — hash-aggregate output —
//! resumable toward a full ordering at `O(n · log(n/groups))` instead
//! of a full `O(n · log n)` sort.
//!
//! Orderings and groupings interact asymmetrically: a stream ordered by
//! `(a, b)` is also grouped by `{a}` and `{a, b}` (every prefix's
//! attribute *set* is a grouping), but a grouping implies no ordering,
//! and — unlike ordering prefixes — a grouping `{a, b}` does **not**
//! imply the sub-grouping `{a}` (rows with equal `a` may be separated
//! by different `b` groups). Head/tail pairs inherit both behaviours:
//! `{a}(b, c)` implies `{a}(b)` (tail prefixes), `{a, b}(c)` (absorbing
//! a tail prefix into the head) and `{a, b, c}` (absorbing everything),
//! but never any ordering and never a *smaller* head.

use crate::ordering::Ordering;
use ofw_catalog::AttrId;

/// A grouping: a non-positional, duplicate-free attribute *set*, stored
/// sorted so equal sets compare equal.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Grouping {
    attrs: Box<[AttrId]>,
}

impl Grouping {
    /// Creates a grouping from any attribute list (sorted, deduplicated).
    pub fn new(mut attrs: Vec<AttrId>) -> Self {
        attrs.sort_unstable();
        attrs.dedup();
        Grouping {
            attrs: attrs.into_boxed_slice(),
        }
    }

    /// The empty grouping `{}` — satisfied by every stream.
    pub fn empty() -> Self {
        Grouping {
            attrs: Box::new([]),
        }
    }

    /// The attribute set, ascending.
    #[inline]
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Number of attributes.
    #[inline]
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True for the empty grouping.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Set membership.
    pub fn contains_attr(&self, attr: AttrId) -> bool {
        self.attrs.binary_search(&attr).is_ok()
    }

    /// True if every attribute of `self` occurs in `other`.
    pub fn is_subset_of(&self, other: &Grouping) -> bool {
        self.attrs.iter().all(|&a| other.contains_attr(a))
    }

    /// The grouping with `attr` added (no-op if present).
    pub fn with(&self, attr: AttrId) -> Grouping {
        if self.contains_attr(attr) {
            return self.clone();
        }
        let mut v = self.attrs.to_vec();
        let pos = v.partition_point(|&a| a < attr);
        v.insert(pos, attr);
        Grouping {
            attrs: v.into_boxed_slice(),
        }
    }

    /// The grouping with `attr` removed (no-op if absent).
    pub fn without(&self, attr: AttrId) -> Grouping {
        match self.attrs.binary_search(&attr) {
            Ok(pos) => {
                let mut v = self.attrs.to_vec();
                v.remove(pos);
                Grouping {
                    attrs: v.into_boxed_slice(),
                }
            }
            Err(_) => self.clone(),
        }
    }

    /// Heap bytes held by this grouping (memory accounting).
    pub fn heap_bytes(&self) -> usize {
        self.attrs.len() * std::mem::size_of::<AttrId>()
    }
}

impl std::fmt::Debug for Grouping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a:?}")?;
        }
        write!(f, "}}")
    }
}

impl From<Vec<AttrId>> for Grouping {
    fn from(v: Vec<AttrId>) -> Self {
        Grouping::new(v)
    }
}

/// A head/tail pair: grouped by the `head` attribute set, and sorted by
/// the `tail` attribute sequence *within* each head group.
///
/// Canonical invariants (enforced by [`HeadTail::new`]):
///
/// * the head is a non-empty canonical set (sorted, deduplicated);
/// * the tail is non-empty and contains no head attribute — inside one
///   head group every head attribute is constant, so a head member in
///   the tail could never decide a within-group comparison.
///
/// Degenerate pairs are represented by the plain variants instead: an
/// empty tail is just the head [`Grouping`], an empty head is just the
/// tail [`Ordering`] (one all-encompassing group). Use
/// [`LogicalProperty::head_tail`] when a construction may degenerate.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HeadTail {
    /// Head set (sorted) followed by the tail sequence.
    attrs: Box<[AttrId]>,
    /// Length of the head prefix inside `attrs`.
    head_len: u32,
}

impl HeadTail {
    /// Creates a pair from a head set and a tail sequence, canonicalizing
    /// the tail (head members dropped). Panics (debug) if either side is
    /// empty after canonicalization — use [`LogicalProperty::head_tail`]
    /// for possibly-degenerate constructions.
    pub fn new(head: Grouping, tail: Ordering) -> Self {
        let tail: Vec<AttrId> = tail
            .attrs()
            .iter()
            .copied()
            .filter(|&a| !head.contains_attr(a))
            .collect();
        debug_assert!(!head.is_empty(), "degenerate pair: empty head");
        debug_assert!(!tail.is_empty(), "degenerate pair: empty tail");
        let head_len = head.len() as u32;
        let mut attrs = head.attrs().to_vec();
        attrs.extend(tail);
        HeadTail {
            attrs: attrs.into_boxed_slice(),
            head_len,
        }
    }

    /// The head attribute set, ascending.
    #[inline]
    pub fn head_attrs(&self) -> &[AttrId] {
        &self.attrs[..self.head_len as usize]
    }

    /// The tail attribute sequence (positional).
    #[inline]
    pub fn tail_attrs(&self) -> &[AttrId] {
        &self.attrs[self.head_len as usize..]
    }

    /// The head as a [`Grouping`].
    pub fn head(&self) -> Grouping {
        Grouping::new(self.head_attrs().to_vec())
    }

    /// The tail as an [`Ordering`].
    pub fn tail(&self) -> Ordering {
        Ordering::new(self.tail_attrs().to_vec())
    }

    /// Head and tail attributes, head first (the combined attribute
    /// footprint of the property).
    #[inline]
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Whether `attr` occurs in the head or the tail.
    pub fn contains_attr(&self, attr: AttrId) -> bool {
        self.attrs.contains(&attr)
    }

    /// Heap bytes held by this pair (memory accounting).
    pub fn heap_bytes(&self) -> usize {
        self.attrs.len() * std::mem::size_of::<AttrId>()
    }

    /// All (prefix set, continuation) decompositions of an ordering:
    /// `(o₁ … oₙ)` satisfies `{o₁…oₖ}(oₖ₊₁ … oⱼ)` for every
    /// `1 ≤ k < j ≤ n` — a sorted stream is grouped by each prefix's
    /// attribute set and sorted by the continuation within those
    /// groups. The single source of truth for this enumeration: the
    /// NFSM's pair seeding and ε-implications, the explicit oracle's
    /// reseeding, extraction's interesting-pair registration and the
    /// partial-sort probe lists all iterate it, so they can never
    /// drift apart.
    pub fn decompositions(o: &Ordering) -> Vec<HeadTail> {
        let mut out = Vec::new();
        for split in 1..o.len() {
            let head = Grouping::new(o.attrs()[..split].to_vec());
            for end in split + 1..=o.len() {
                out.push(HeadTail::new(
                    head.clone(),
                    Ordering::new(o.attrs()[split..end].to_vec()),
                ));
            }
        }
        out
    }

    /// The groupings this pair implies by absorbing within-group-sorted
    /// tail prefixes into the head: `{H}`, `{H ∪ {t₁}}`, …,
    /// `{H ∪ set(T)}`, shortest first.
    pub fn absorbed_heads(&self) -> Vec<Grouping> {
        let mut out = Vec::with_capacity(self.tail_attrs().len() + 1);
        let mut g = self.head();
        out.push(g.clone());
        for &a in self.tail_attrs() {
            g = g.with(a);
            out.push(g.clone());
        }
        out
    }

    /// Every weaker property this pair implies, itself excluded:
    /// absorbing a tail prefix into the head and/or truncating the tail
    /// — `{a}(b,c)` implies `{a}(b)`, `{a,b}(c)`, `{a,b}` and
    /// `{a,b,c}` (degenerate tails yield plain groupings; pairs never
    /// imply orderings). Sorted and deduplicated.
    pub fn implications(&self) -> Vec<LogicalProperty> {
        let tail = self.tail();
        let mut out = Vec::new();
        for (absorb, head) in self.absorbed_heads().into_iter().enumerate() {
            for cut in absorb..=tail.len() {
                if absorb == 0 && cut == tail.len() {
                    continue; // the pair itself
                }
                out.push(LogicalProperty::head_tail(
                    head.clone(),
                    Ordering::new(tail.attrs()[absorb..cut].to_vec()),
                ));
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

impl std::fmt::Debug for HeadTail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.head_attrs().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a:?}")?;
        }
        write!(f, "}}(")?;
        for (i, a) in self.tail_attrs().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a:?}")?;
        }
        write!(f, ")")
    }
}

/// The generic logical property the NFSM/DFSM states carry.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LogicalProperty {
    /// A logical ordering (lexicographic attribute sequence).
    Ordering(Ordering),
    /// A logical grouping (unordered attribute set).
    Grouping(Grouping),
    /// A head/tail pair (grouped head, within-group tail ordering).
    HeadTail(HeadTail),
}

impl LogicalProperty {
    /// Canonicalizing pair constructor: degenerate pairs collapse to the
    /// plain variants — an empty (post-canonicalization) tail yields the
    /// head [`Grouping`], an empty head yields the tail [`Ordering`].
    pub fn head_tail(head: Grouping, tail: Ordering) -> LogicalProperty {
        let tail_attrs: Vec<AttrId> = tail
            .attrs()
            .iter()
            .copied()
            .filter(|&a| !head.contains_attr(a))
            .collect();
        if head.is_empty() {
            return LogicalProperty::Ordering(Ordering::new(tail_attrs));
        }
        if tail_attrs.is_empty() {
            return LogicalProperty::Grouping(head);
        }
        LogicalProperty::HeadTail(HeadTail::new(head, Ordering::new(tail_attrs)))
    }

    /// The attribute list (positional for orderings, sorted for
    /// groupings, head-then-tail for pairs).
    pub fn attrs(&self) -> &[AttrId] {
        match self {
            LogicalProperty::Ordering(o) => o.attrs(),
            LogicalProperty::Grouping(g) => g.attrs(),
            LogicalProperty::HeadTail(h) => h.attrs(),
        }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs().len()
    }

    /// True for the empty ordering/grouping.
    pub fn is_empty(&self) -> bool {
        self.attrs().is_empty()
    }

    /// The ordering, if this is one.
    pub fn as_ordering(&self) -> Option<&Ordering> {
        match self {
            LogicalProperty::Ordering(o) => Some(o),
            _ => None,
        }
    }

    /// The grouping, if this is one.
    pub fn as_grouping(&self) -> Option<&Grouping> {
        match self {
            LogicalProperty::Grouping(g) => Some(g),
            _ => None,
        }
    }

    /// The head/tail pair, if this is one.
    pub fn as_head_tail(&self) -> Option<&HeadTail> {
        match self {
            LogicalProperty::HeadTail(h) => Some(h),
            _ => None,
        }
    }

    /// True for the grouping variant.
    pub fn is_grouping(&self) -> bool {
        matches!(self, LogicalProperty::Grouping(_))
    }

    /// True for the head/tail variant.
    pub fn is_head_tail(&self) -> bool {
        matches!(self, LogicalProperty::HeadTail(_))
    }

    /// Heap bytes (memory accounting).
    pub fn heap_bytes(&self) -> usize {
        match self {
            LogicalProperty::Ordering(o) => o.heap_bytes(),
            LogicalProperty::Grouping(g) => g.heap_bytes(),
            LogicalProperty::HeadTail(h) => h.heap_bytes(),
        }
    }
}

impl std::fmt::Debug for LogicalProperty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogicalProperty::Ordering(o) => write!(f, "{o:?}"),
            LogicalProperty::Grouping(g) => write!(f, "{g:?}"),
            LogicalProperty::HeadTail(h) => write!(f, "{h:?}"),
        }
    }
}

impl From<Ordering> for LogicalProperty {
    fn from(o: Ordering) -> Self {
        LogicalProperty::Ordering(o)
    }
}

impl From<Grouping> for LogicalProperty {
    fn from(g: Grouping) -> Self {
        LogicalProperty::Grouping(g)
    }
}

impl From<HeadTail> for LogicalProperty {
    fn from(h: HeadTail) -> Self {
        LogicalProperty::HeadTail(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);
    const C: AttrId = AttrId(2);

    #[test]
    fn grouping_is_canonical() {
        assert_eq!(Grouping::new(vec![B, A]), Grouping::new(vec![A, B, A]));
        assert_ne!(Grouping::new(vec![A]), Grouping::new(vec![A, B]));
    }

    #[test]
    fn grouping_set_ops() {
        let g = Grouping::new(vec![C, A]);
        assert!(g.contains_attr(A) && g.contains_attr(C) && !g.contains_attr(B));
        assert_eq!(g.with(B).attrs(), &[A, B, C]);
        assert_eq!(g.with(A), g);
        assert_eq!(g.without(C).attrs(), &[A]);
        assert_eq!(g.without(B), g);
        assert!(Grouping::new(vec![A]).is_subset_of(&g));
        assert!(!g.is_subset_of(&Grouping::new(vec![A])));
    }

    #[test]
    fn property_dispatch() {
        let o: LogicalProperty = Ordering::new(vec![B, A]).into();
        let g: LogicalProperty = Grouping::new(vec![B, A]).into();
        assert_ne!(o, g, "an ordering is never equal to a grouping");
        assert_eq!(o.attrs(), &[B, A], "orderings keep position");
        assert_eq!(g.attrs(), &[A, B], "groupings are canonical sets");
        assert!(o.as_ordering().is_some() && o.as_grouping().is_none());
        assert!(g.as_grouping().is_some() && !o.is_grouping());
    }

    #[test]
    fn debug_render() {
        let g: LogicalProperty = Grouping::new(vec![B, A]).into();
        assert_eq!(format!("{g:?}"), "{a0,a1}");
        assert_eq!(format!("{:?}", Grouping::empty()), "{}");
    }

    const D: AttrId = AttrId(3);

    #[test]
    fn head_tail_is_canonical() {
        let h = HeadTail::new(Grouping::new(vec![B, A]), Ordering::new(vec![C, D]));
        assert_eq!(h.head_attrs(), &[A, B], "head is a canonical set");
        assert_eq!(h.tail_attrs(), &[C, D], "tail keeps position");
        assert_eq!(h.attrs(), &[A, B, C, D]);
        assert!(h.contains_attr(A) && h.contains_attr(D));
        assert_eq!(h.head(), Grouping::new(vec![A, B]));
        assert_eq!(h.tail(), Ordering::new(vec![C, D]));
        // Head members are stripped from the tail (constant inside a
        // head group — they never decide a within-group comparison).
        let h2 = HeadTail::new(Grouping::new(vec![A, B]), Ordering::new(vec![A, C, D]));
        assert_eq!(h2, h);
    }

    #[test]
    fn head_tail_smart_constructor_degenerates() {
        // Empty tail (after canonicalization) → the head grouping.
        let p = LogicalProperty::head_tail(Grouping::new(vec![A, B]), Ordering::new(vec![A]));
        assert_eq!(p, Grouping::new(vec![A, B]).into());
        // Empty head → the tail ordering.
        let p = LogicalProperty::head_tail(Grouping::empty(), Ordering::new(vec![C, A]));
        assert_eq!(p, Ordering::new(vec![C, A]).into());
        // Proper pair.
        let p = LogicalProperty::head_tail(Grouping::new(vec![A]), Ordering::new(vec![B]));
        assert!(p.is_head_tail());
        assert!(p.as_head_tail().is_some() && p.as_ordering().is_none());
        assert_eq!(format!("{p:?}"), "{a0}(a1)");
    }

    #[test]
    fn head_tail_never_equals_plain_kinds() {
        let pair: LogicalProperty =
            HeadTail::new(Grouping::new(vec![A]), Ordering::new(vec![B])).into();
        assert_ne!(pair, Ordering::new(vec![A, B]).into());
        assert_ne!(pair, Grouping::new(vec![A, B]).into());
        assert_eq!(pair.attrs(), &[A, B]);
        assert!(pair.heap_bytes() > 0);
    }
}
