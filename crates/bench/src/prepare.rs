//! The preparation experiment (PR1): cold eager NFSM→DFSM construction
//! vs lazy determinization under a DP-like probe load vs warm interned
//! preparation, swept into the hundreds of interesting properties.
//!
//! Each cell builds a family-structured spec
//! ([`ofw_workload::prep_spec`]), then measures three preparation
//! regimes over the *same* spec:
//!
//! 1. **cold eager** — `PrepareOptions::eager()`: the full subset
//!    construction up front; `cold` is the whole preparation wall time
//!    and `dfsm_states_total` the automaton size.
//! 2. **lazy + probe** — `PrepareOptions::lazy()`: preparation defers
//!    the subset construction; a DP-like probe sequence touching only
//!    the first `probe_families` families then forces exactly the
//!    states those probes need. `dfsm_states_materialized` after the
//!    probes over `dfsm_states_total` is the fraction a real query
//!    pays under lazy preparation.
//! 3. **warm interned** — `prepare_cached` over `warm_reps`
//!    attribute-shifted copies of the spec: the first build misses and
//!    pays the eager cost, every later one canonicalizes, hits the
//!    [`PreparedCache`] and only rebuilds the per-query handle maps.
//!
//! The probe sequence is pure index arithmetic over the spec, so every
//! counter in the emitted row (`nfsm_states`, `dfsm_states_*`,
//! `prep_interned_hits`, probe count) is deterministic and
//! trend-gated; only the wall times are machine-dependent.

use crate::json::Obj;
use ofw_catalog::AttrId;
use ofw_core::{LogicalProperty, OrderingFramework, PrepareOptions, PreparedCache, PruneConfig};
use ofw_workload::{prep_spec, PrepSpecConfig};
use std::time::{Duration, Instant};

/// One measured cell of the preparation sweep.
#[derive(Clone, Debug)]
pub struct PrepareRow {
    /// Property families in the spec.
    pub families: usize,
    /// Families the DP-like probe sequence touches.
    pub probe_families: usize,
    /// Interesting properties (produced + tested, deduplicated).
    pub interesting: usize,
    /// NFSM nodes after pruning.
    pub nfsm_states: usize,
    /// Full DFSM size (from the eager arm).
    pub dfsm_states_total: usize,
    /// States the lazy arm materialized to answer the probes.
    pub dfsm_states_materialized: usize,
    /// Probes answered (satisfies/infer calls; determinism checksum).
    pub probes: u64,
    /// Cache hits over the warm interning sweep.
    pub prep_interned_hits: u64,
    /// Cold eager preparation wall time.
    pub cold: Duration,
    /// Lazy preparation wall time (constructor only).
    pub lazy_prep: Duration,
    /// Probe-sequence wall time against the lazy automaton
    /// (materialization included).
    pub lazy_probe: Duration,
    /// The same probe sequence against the eager automaton.
    pub eager_probe: Duration,
    /// Average warm (cache-hit) preparation wall time.
    pub warm: Duration,
}

/// Runs a DP-like probe load against a prepared framework: for every
/// produced property of the first `probe_families` families, build its
/// state, chain the first `fd_depth` of its *own* family's FD sets
/// over it (one `infer` per join operator a plan would run the stream
/// through), and test every tested property of the probed families at
/// each step. This is the access pattern of a plan generator working
/// on a query that cares about a prefix of the catalog's interesting
/// orders and joins a few relations deep — under lazy preparation the
/// probe depth bounds how far the truncated subset-construction BFS
/// must advance, which is exactly why shallow real probes leave the
/// deep tail of the automaton unmaterialized. Returns the number of
/// probe calls (with the `true` count folded in, so arms are also
/// cross-checked against each other).
pub fn probe_prefix(
    fw: &OrderingFramework,
    config: &PrepSpecConfig,
    probe_families: usize,
    fd_depth: usize,
) -> u64 {
    let spec = prep_spec(config);
    let k = config.attrs_per_family.max(2);
    let base = config.attr_base;
    let cutoff = AttrId(base + (probe_families * k) as u32);
    let in_range = |p: &LogicalProperty| p.attrs().iter().all(|a| *a < cutoff);
    let tested: Vec<_> = spec
        .tested()
        .iter()
        .filter(|p| in_range(p))
        .map(|p| fw.handle_property(p).expect("tested property resolves"))
        .collect();
    let depth = fd_depth.min(config.fds_per_family);
    let mut probes = 0u64;
    for p in spec.produced().iter().filter(|p| in_range(p)) {
        let h = fw.handle_property(p).expect("produced property resolves");
        let mut s = if p.as_ordering().is_some() {
            fw.produce(h)
        } else {
            fw.produce_grouping(h)
        };
        let family = (p.attrs()[0].0 - base) as usize / k;
        for d in 0..depth {
            let f = family * config.fds_per_family + d;
            s = fw.infer(s, ofw_core::FdSetId(f as u32));
            for &t in &tested {
                probes += 1 + u64::from(fw.satisfies(s, t));
            }
        }
    }
    probes
}

/// How many of its family's FD sets each probe chain applies. The
/// lazy arm's truncated BFS only ever advances to the ids the probes
/// touch, so this — not the spec's chain depth — bounds how much of
/// the automaton materializes. One join deep matches the bench story:
/// the catalog's interesting-order chains are long, a given query's
/// pipelines are short.
pub const PROBE_FD_DEPTH: usize = 1;

/// Runs one cell of the preparation sweep: cold eager vs lazy+probe vs
/// warm interned, all over the same family-structured spec shape.
pub fn prepare_cell(
    config: &PrepSpecConfig,
    probe_families: usize,
    warm_reps: usize,
) -> PrepareRow {
    let spec = prep_spec(config);
    let prune = PruneConfig::default();

    // 1. Cold eager: the full subset construction.
    let t0 = Instant::now();
    let eager = OrderingFramework::prepare_opts(&spec, prune.clone(), &PrepareOptions::eager())
        .expect("eager preparation");
    let cold = t0.elapsed();
    let total = eager
        .dfsm_states_total()
        .expect("eager automata are complete");

    let t0 = Instant::now();
    let eager_probes = probe_prefix(&eager, config, probe_families, PROBE_FD_DEPTH);
    let eager_probe = t0.elapsed();

    // 2. Lazy: preparation defers, the probe load materializes.
    let t0 = Instant::now();
    let lazy = OrderingFramework::prepare_opts(&spec, prune.clone(), &PrepareOptions::lazy())
        .expect("lazy preparation");
    let lazy_prep = t0.elapsed();
    let t0 = Instant::now();
    let lazy_probes = probe_prefix(&lazy, config, probe_families, PROBE_FD_DEPTH);
    let lazy_probe = t0.elapsed();
    assert_eq!(
        lazy_probes, eager_probes,
        "lazy and eager preparation must answer probes identically"
    );
    let materialized = lazy.dfsm_states_materialized();
    assert!(materialized <= total);

    // 3. Warm interning: attribute-shifted copies of the same shape
    // share one cached automaton; only the first build is cold.
    let cache = PreparedCache::new();
    let stride = (config.families * config.attrs_per_family.max(2)) as u32 + 17;
    let mut warm = Duration::ZERO;
    for rep in 0..warm_reps.max(2) {
        let shifted = prep_spec(&config.clone().shifted(rep as u32 * stride));
        let t0 = Instant::now();
        let fw = OrderingFramework::prepare_cached(
            &shifted,
            prune.clone(),
            &PrepareOptions::eager(),
            &cache,
        )
        .expect("cached preparation");
        let elapsed = t0.elapsed();
        if rep > 0 {
            warm += elapsed;
            assert!(
                fw.stats().interned_hit,
                "repeated shapes must hit the cache"
            );
        }
        assert_eq!(fw.dfsm_states_total(), Some(total));
    }
    let warm = warm / (warm_reps.max(2) - 1) as u32;

    PrepareRow {
        families: config.families,
        probe_families,
        interesting: eager.properties().count(),
        nfsm_states: eager.stats().nfsm_nodes,
        dfsm_states_total: total,
        dfsm_states_materialized: materialized,
        probes: lazy_probes,
        prep_interned_hits: cache.hits(),
        cold,
        lazy_prep,
        lazy_probe,
        eager_probe,
        warm,
    }
}

/// A [`PrepareRow`] as a flat JSON object for `BENCH_prepare.json`.
pub fn prepare_row_json(row: &PrepareRow) -> Obj {
    Obj::new()
        .int("families", row.families)
        .int("probe_families", row.probe_families)
        .int("interesting", row.interesting)
        .int("nfsm_states", row.nfsm_states)
        .int("dfsm_states_total", row.dfsm_states_total)
        .int("dfsm_states_materialized", row.dfsm_states_materialized)
        .int("probes", row.probes as usize)
        .int("prep_interned_hits", row.prep_interned_hits as usize)
        .num("cold_ms", row.cold.as_secs_f64() * 1e3)
        .num("lazy_prep_ms", row.lazy_prep.as_secs_f64() * 1e3)
        .num("lazy_probe_ms", row.lazy_probe.as_secs_f64() * 1e3)
        .num("eager_probe_ms", row.eager_probe.as_secs_f64() * 1e3)
        .num("warm_ms", row.warm.as_secs_f64() * 1e3)
}

/// Renders one row for the stdout table.
pub fn prepare_row_line(row: &PrepareRow) -> String {
    format!(
        "{:>5} {:>6} {:>6} {:>6} {:>7} {:>8} {:>5.1}% | {:>9} {:>9} {:>9} {:>9} {:>9}",
        row.families,
        row.probe_families,
        row.interesting,
        row.nfsm_states,
        row.dfsm_states_total,
        row.dfsm_states_materialized,
        100.0 * row.dfsm_states_materialized as f64 / row.dfsm_states_total.max(1) as f64,
        crate::ms(row.cold),
        crate::ms(row.lazy_prep),
        crate::ms(row.lazy_probe),
        crate::ms(row.eager_probe),
        crate::ms(row.warm),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_cell_measures_all_three_regimes() {
        let config = PrepSpecConfig::with_families(12);
        let row = prepare_cell(&config, 2, 3);
        assert!(row.dfsm_states_total > 0);
        assert!(row.dfsm_states_materialized <= row.dfsm_states_total);
        assert!(row.probes > 0);
        assert_eq!(row.prep_interned_hits, 2, "two warm reps hit the cache");
        assert!(row.interesting >= 12 * 6, "{}", row.interesting);
    }

    /// The lazy showcase property the acceptance criteria gate on: a
    /// probe load touching a small prefix of the families materializes
    /// well under half the automaton.
    #[test]
    fn sparse_probes_materialize_a_minority_of_states() {
        let config = PrepSpecConfig::with_families(40);
        let row = prepare_cell(&config, 4, 2);
        assert!(
            2 * row.dfsm_states_materialized < row.dfsm_states_total,
            "materialized {}/{} is not a minority",
            row.dfsm_states_materialized,
            row.dfsm_states_total
        );
    }
}
