//! # ofw-bench — the experiment harness
//!
//! One reusable function per paper experiment; the `src/bin` binaries
//! print the corresponding table and the Criterion benches in `benches/`
//! time the hot paths. Experiment index (see DESIGN.md):
//!
//! | id | paper artifact | binary | function |
//! |----|----------------|--------|----------|
//! | E5 | §6.2 preparation table | `table_prep_q8` | [`prep_q8`] |
//! | E6 | §7 Q8 plan-generation table | `table_q8_plangen` | [`q8_plangen`] |
//! | E7 | Fig. 13 join-graph sweep | `table_fig13` | [`sweep_cell`] |
//! | E8 | Fig. 14 memory table | `table_fig14` | [`sweep_cell`] |
//! | A1 | pruning ablation | `table_ablation_pruning` | [`prep_q8_with`] |
//! | G1 | grouping workload sweep (VLDB'04 extension) | `table_grouping` | [`grouping_cell`] |
//! | P1 | thread-scaling sweep (parallel DP) | `table_parallel` | [`parallel_cell`] |
//! | GJ1 | aggregation-placement sweep (group-join + eager push-down) | `table_groupjoin` | [`groupjoin_cell`] |
//! | PS1 | partial-sort sweep (head/tail properties, `GROUP BY k ORDER BY k`) | `table_partialsort` | [`partialsort_cell`] |
//! | H1 | enumerator sweep (DPhyp vs DPsize + budgeted linearized fallback) | `table_hypergraph` | [`hypergraph_cell`] |
//! | PR1 | preparation sweep (lazy / minimized / interned automata) | `table_prepare` | [`prepare_cell`] |
//! | TR1 | observability overhead (disabled vs recording trace sink) | `table_trace` | [`trace_cell`] |
//!
//! Every table binary also emits its rows as machine-readable
//! `BENCH_<name>.json` (see [`json`]) next to the stdout table, so the
//! perf trajectory can be tracked across commits —
//! `scripts/bench_trend.py` compares the smoke runs against the
//! baselines committed under `baselines/` and fails CI on large
//! plan-time regressions.

/// Process-global counting allocator: every table binary and Criterion
/// bench linking this crate counts allocations, so [`json::BenchSink`]
/// can stamp each row with an `allocs` column (allocation-pressure
/// delta since the previous row) for the trend gate.
#[global_allocator]
static ALLOC: ofw_common::alloc::CountingAlloc = ofw_common::alloc::CountingAlloc;

use ofw_catalog::Catalog;
use ofw_core::{OrderingFramework, PrepStats, PruneConfig};
use ofw_plangen::{ExplicitOracle, OrderOracle, PlanGen, PlanGenResult, PlanGenStats};
use ofw_query::extract::ExtractOptions;
use ofw_query::{ExtractedQuery, Query};
use ofw_simmen::SimmenFramework;
use ofw_workload::{
    grouping_query, q8_query, random_query, star_agg_query, GroupingQueryConfig, RandomQueryConfig,
    StarAggConfig,
};
use std::time::{Duration, Instant};

pub mod hypergraph;
pub mod json;
pub mod parallel;
pub mod prepare;
pub mod trace;

pub use hypergraph::{hypergraph_cell, hypergraph_row_json, hypergraph_row_line, HypergraphRow};
pub use parallel::{parallel_cell, parallel_row_json, parallel_row_line, ParallelRow};
pub use prepare::{prepare_cell, prepare_row_json, prepare_row_line, PrepareRow};
pub use trace::{trace_cell, trace_row_json, trace_row_line, TraceRow};

/// One row of the §6.2 preparation table.
#[derive(Clone, Debug)]
pub struct PrepRow {
    /// Label ("w/o pruning" / "with pruning" / ablation variant).
    pub label: String,
    /// NFSM nodes before step 2(d).
    pub nfsm_nodes_before: usize,
    /// NFSM nodes after pruning.
    pub nfsm_nodes: usize,
    /// DFSM states.
    pub dfsm_nodes: usize,
    /// Whole preparation wall time.
    pub total_time: Duration,
    /// Precomputed table bytes.
    pub precomputed_bytes: usize,
}

/// Runs the Q8 preparation step under `config` (E5/A1).
pub fn prep_q8_with(label: &str, config: PruneConfig) -> PrepRow {
    let (catalog, query) = q8_query();
    let ex = ofw_query::extract(&catalog, &query, &ExtractOptions::default());
    let fw = OrderingFramework::prepare(&ex.spec, config).expect("Q8 preparation");
    let s: &PrepStats = fw.stats();
    PrepRow {
        label: label.to_string(),
        nfsm_nodes_before: s.nfsm_nodes_before_prune,
        nfsm_nodes: s.nfsm_nodes,
        dfsm_nodes: s.dfsm_states,
        total_time: s.prep_time,
        precomputed_bytes: s.precomputed_bytes,
    }
}

/// The §6.2 table: preparation with and without pruning (E5).
pub fn prep_q8() -> (PrepRow, PrepRow) {
    (
        prep_q8_with("w/o pruning", PruneConfig::none()),
        prep_q8_with("with pruning", PruneConfig::default()),
    )
}

/// One measured plan-generation run.
#[derive(Clone, Debug)]
pub struct PlanRow {
    /// Framework name.
    pub framework: &'static str,
    /// Total plan-generation time (including framework preparation).
    pub time: Duration,
    /// Subplans generated.
    pub plans: usize,
    /// Time per subplan.
    pub time_per_plan: Duration,
    /// Order-annotation memory bytes.
    pub memory_bytes: usize,
    /// Cost of the winning plan (for cross-checking both arms agree).
    pub best_cost: f64,
    /// csg-cmp pairs emitted by the enumerator (deterministic).
    pub pairs: u64,
    /// Connected subsets planned beyond the base relations
    /// (deterministic).
    pub unions: u64,
    /// Did the `Auto` enumerator fall back to linearization?
    pub fallback: bool,
    /// Plans that survived Pareto pruning, over all comparability
    /// classes (deterministic).
    pub pruned_kept: u64,
    /// Candidate plans killed by Pareto domination (deterministic).
    pub pruned_dominated: u64,
    /// Order-oracle probes made by the DP — produce + infer +
    /// satisfies + dominates (deterministic).
    pub oracle_probes: u64,
    /// Enforcer candidates admitted into a Pareto set (deterministic).
    pub enforcers_admitted: u64,
    /// Enforcer candidates that survived insertion (deterministic).
    pub enforcers_won: u64,
}

/// Runs plan generation for a query with the DFSM framework,
/// preparation time included (as the paper does).
pub fn run_ours(catalog: &Catalog, query: &Query, ex: &ExtractedQuery) -> PlanRow {
    let t0 = Instant::now();
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).expect("prepare");
    let result = PlanGen::new(catalog, query, ex, &fw).run();
    finish_row(&fw, t0, result.stats, result.cost)
}

/// Runs plan generation with the Simmen baseline.
pub fn run_simmen(catalog: &Catalog, query: &Query, ex: &ExtractedQuery) -> PlanRow {
    let t0 = Instant::now();
    let fw = SimmenFramework::prepare(&ex.spec);
    let result = PlanGen::new(catalog, query, ex, &fw).run();
    finish_row(&fw, t0, result.stats, result.cost)
}

/// Runs plan generation with the naive explicit-set oracle (the §2
/// "intuitive approach") — the correctness arm for cross-checks.
pub fn run_explicit(catalog: &Catalog, query: &Query, ex: &ExtractedQuery) -> PlanRow {
    let t0 = Instant::now();
    let fw = ExplicitOracle::prepare(&ex.spec);
    let result = PlanGen::new(catalog, query, ex, &fw).run();
    finish_row(&fw, t0, result.stats, result.cost)
}

/// A [`PlanRow`] as a flat JSON object for `BENCH_*.json` files.
pub fn plan_row_json(row: &PlanRow) -> json::Obj {
    json::Obj::new()
        .str("framework", row.framework)
        .num("time_ms", row.time.as_secs_f64() * 1e3)
        .int("plans", row.plans)
        .num("time_per_plan_us", row.time_per_plan.as_secs_f64() * 1e6)
        .int("memory_bytes", row.memory_bytes)
        .num("best_cost", row.best_cost)
        .int("pairs", row.pairs as usize)
        .int("unions", row.unions as usize)
        .int("fallback", usize::from(row.fallback))
        .int("pruned_kept", row.pruned_kept as usize)
        .int("pruned_dominated", row.pruned_dominated as usize)
        .int("oracle_probes", row.oracle_probes as usize)
        .int("enforcers_admitted", row.enforcers_admitted as usize)
        .int("enforcers_won", row.enforcers_won as usize)
}

/// A [`PrepRow`] as a flat JSON object for `BENCH_*.json` files.
pub fn prep_row_json(row: &PrepRow) -> json::Obj {
    json::Obj::new()
        .str("label", &row.label)
        .int("nfsm_nodes_before", row.nfsm_nodes_before)
        .int("nfsm_nodes", row.nfsm_nodes)
        .int("dfsm_nodes", row.dfsm_nodes)
        .num("total_time_ms", row.total_time.as_secs_f64() * 1e3)
        .int("precomputed_bytes", row.precomputed_bytes)
}

fn finish_row<O: OrderOracle>(fw: &O, t0: Instant, stats: PlanGenStats, best_cost: f64) -> PlanRow {
    let time = t0.elapsed();
    let d = &stats.decisions;
    PlanRow {
        framework: fw.name(),
        time,
        plans: stats.plans,
        time_per_plan: if stats.plans > 0 {
            time / stats.plans as u32
        } else {
            Duration::ZERO
        },
        memory_bytes: stats.memory_bytes,
        best_cost,
        pairs: stats.pairs_emitted,
        unions: stats.unions,
        fallback: stats.fallback,
        pruned_kept: d.pruning.kept_total(),
        pruned_dominated: d.pruning.dominated_total(),
        oracle_probes: d.probes.total(),
        enforcers_admitted: d.enforcers.admitted_total(),
        enforcers_won: d.enforcers.won_total(),
    }
}

/// E6: the §7 Q8 comparison (Simmen vs ours).
pub fn q8_plangen() -> (PlanRow, PlanRow) {
    let (catalog, query) = q8_query();
    let ex = ofw_query::extract(&catalog, &query, &ExtractOptions::default());
    let simmen = run_simmen(&catalog, &query, &ex);
    let ours = run_ours(&catalog, &query, &ex);
    assert_costs_agree(&simmen, &ours);
    (simmen, ours)
}

/// Verifies both arms picked equally cheap plans (§7: "both order
/// optimization algorithms produced the same optimal plan").
pub fn assert_costs_agree(a: &PlanRow, b: &PlanRow) {
    let rel = (a.best_cost - b.best_cost).abs() / a.best_cost.max(1.0);
    assert!(
        rel < 1e-9,
        "optimal cost mismatch: {} vs {}",
        a.best_cost,
        b.best_cost
    );
}

/// One averaged cell of Fig. 13 / Fig. 14: `n` relations, `n-1+extra`
/// edges, `queries` random queries starting at `seed0`.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// Relation count.
    pub n: usize,
    /// Extra edges beyond the chain.
    pub extra: usize,
    /// Averaged Simmen row.
    pub simmen: PlanRow,
    /// Averaged DFSM row.
    pub ours: PlanRow,
    /// Average DFSM precomputed bytes (Fig. 14's last column).
    pub dfsm_bytes: usize,
}

/// Runs and averages one sweep cell (E7/E8).
pub fn sweep_cell(n: usize, extra: usize, queries: usize, seed0: u64) -> SweepCell {
    let mut acc_s = ZeroRow::new("simmen");
    let mut acc_o = ZeroRow::new("nfsm/dfsm (ours)");
    let mut dfsm_bytes = 0usize;
    for q in 0..queries {
        let config = RandomQueryConfig {
            num_relations: n,
            extra_edges: extra,
            seed: seed0 + q as u64,
        };
        let (catalog, query) = random_query(&config);
        let ex = ofw_query::extract(&catalog, &query, &ExtractOptions::default());
        let simmen = run_simmen(&catalog, &query, &ex);
        let ours = run_ours(&catalog, &query, &ex);
        assert_costs_agree(&simmen, &ours);
        acc_s.add(&simmen);
        acc_o.add(&ours);
        let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
        dfsm_bytes += fw.stats().precomputed_bytes;
    }
    SweepCell {
        n,
        extra,
        simmen: acc_s.avg(queries),
        ours: acc_o.avg(queries),
        dfsm_bytes: dfsm_bytes / queries,
    }
}

/// One averaged cell of the grouping-workload sweep (G1): `n`
/// relations, `queries` random grouping queries starting at `seed0`,
/// DFSM framework vs Simmen baseline. With `check_explicit`, every
/// query is additionally planned with the naive explicit-set oracle and
/// all three optima are asserted equal (slow — meant for small `n`).
pub fn grouping_cell(
    n: usize,
    extra: usize,
    queries: usize,
    seed0: u64,
    check_explicit: bool,
) -> SweepCell {
    let mut acc_s = ZeroRow::new("simmen");
    let mut acc_o = ZeroRow::new("nfsm/dfsm (ours)");
    let mut dfsm_bytes = 0usize;
    for q in 0..queries {
        let config = GroupingQueryConfig {
            num_relations: n,
            extra_edges: extra,
            seed: seed0 + q as u64,
        };
        let (catalog, query) = grouping_query(&config);
        let ex = ofw_query::extract(&catalog, &query, &ExtractOptions::default());
        let simmen = run_simmen(&catalog, &query, &ex);
        let ours = run_ours(&catalog, &query, &ex);
        assert_costs_agree(&simmen, &ours);
        if check_explicit {
            let explicit = run_explicit(&catalog, &query, &ex);
            assert_costs_agree(&ours, &explicit);
        }
        acc_s.add(&simmen);
        acc_o.add(&ours);
        let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
        dfsm_bytes += fw.stats().precomputed_bytes;
    }
    SweepCell {
        n,
        extra,
        simmen: acc_s.avg(queries),
        ours: acc_o.avg(queries),
        dfsm_bytes: dfsm_bytes / queries,
    }
}

/// One averaged cell of the aggregation-placement sweep (GJ1): star
/// queries with `dimensions` dimension tables, planned twice with the
/// DFSM arm — aggregation placement enabled vs root-only aggregation —
/// plus the placement win statistics.
#[derive(Clone, Debug)]
pub struct PlacementCell {
    /// Dimension-table count (relations = `dimensions + 1`).
    pub dimensions: usize,
    /// Averaged DFSM row with placement disabled (root-only ceiling).
    pub root_only: PlanRow,
    /// Averaged DFSM row with placement enabled.
    pub placed: PlanRow,
    /// Largest per-query win (`root-only cost / placed cost`).
    pub max_win: f64,
    /// Queries where placement found a strictly cheaper plan.
    pub wins: usize,
    /// Queries in the cell.
    pub queries: usize,
}

/// Runs plan generation with the DFSM framework and an explicit
/// aggregation-placement switch (preparation time included).
pub fn run_ours_placement(
    catalog: &Catalog,
    query: &Query,
    ex: &ExtractedQuery,
    placement: bool,
) -> PlanRow {
    let t0 = Instant::now();
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).expect("prepare");
    let result = PlanGen::new(catalog, query, ex, &fw)
        .aggregation_placement(placement)
        .run();
    finish_row(&fw, t0, result.stats, result.cost)
}

/// Runs one cell of the aggregation-placement sweep. Every query is
/// planned with placement on and off; placement must never be costlier
/// (asserted). With `check_arms`, the placed optimum is additionally
/// cross-checked against the Simmen and explicit-set arms (slow — meant
/// for small cells).
pub fn groupjoin_cell(
    dimensions: usize,
    queries: usize,
    seed0: u64,
    check_arms: bool,
) -> PlacementCell {
    let mut acc_root = ZeroRow::new("nfsm/dfsm (ours)");
    let mut acc_placed = ZeroRow::new("nfsm/dfsm (ours)");
    let mut max_win = 1.0f64;
    let mut wins = 0usize;
    for q in 0..queries {
        let (catalog, query) = star_agg_query(&StarAggConfig {
            dimensions,
            seed: seed0 + q as u64,
        });
        let ex = ofw_query::extract(&catalog, &query, &ExtractOptions::default());
        let placed = run_ours_placement(&catalog, &query, &ex, true);
        let root_only = run_ours_placement(&catalog, &query, &ex, false);
        assert!(
            placed.best_cost <= root_only.best_cost * (1.0 + 1e-9),
            "placement can never be costlier: {} vs {}",
            placed.best_cost,
            root_only.best_cost
        );
        if placed.best_cost < root_only.best_cost * (1.0 - 1e-9) {
            wins += 1;
        }
        max_win = max_win.max(root_only.best_cost / placed.best_cost);
        if check_arms {
            let simmen = run_simmen(&catalog, &query, &ex);
            assert_costs_agree(&placed, &simmen);
            let explicit = run_explicit(&catalog, &query, &ex);
            assert_costs_agree(&placed, &explicit);
        }
        acc_root.add(&root_only);
        acc_placed.add(&placed);
    }
    PlacementCell {
        dimensions,
        root_only: acc_root.avg(queries),
        placed: acc_placed.avg(queries),
        max_win,
        wins,
        queries,
    }
}

/// One averaged cell of the partial-sort sweep (PS1): `GROUP BY k
/// ORDER BY k` star queries planned twice with the DFSM arm — the
/// partial-sort enforcer enabled vs the sort-only ceiling.
#[derive(Clone, Debug)]
pub struct PartialSortCell {
    /// Dimension-table count (relations = `dimensions + 1`).
    pub dimensions: usize,
    /// Averaged DFSM row with the partial-sort enforcer disabled (the
    /// full-sort ceiling).
    pub sort_only: PlanRow,
    /// Averaged DFSM row with the partial-sort enforcer enabled.
    pub partial: PlanRow,
    /// Largest per-query win (`sort-only cost / partial cost`).
    pub max_win: f64,
    /// Queries where the partial sort found a strictly cheaper plan.
    pub wins: usize,
    /// Queries whose winning plan contains a `PartialSort` operator.
    pub partial_sort_plans: usize,
    /// Queries in the cell.
    pub queries: usize,
}

/// Runs plan generation with the DFSM framework and an explicit
/// partial-sort switch (preparation time included). Returns the
/// measured row together with the prepared framework and the full
/// result, so callers can walk the winning plan or reuse the run as a
/// determinism baseline without re-planning.
pub fn run_ours_partial_sort(
    catalog: &Catalog,
    query: &Query,
    ex: &ExtractedQuery,
    partial_sort: bool,
) -> (PlanRow, OrderingFramework, PlanGenResult<ofw_core::State>) {
    let t0 = Instant::now();
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).expect("prepare");
    let result = PlanGen::new(catalog, query, ex, &fw)
        .partial_sort(partial_sort)
        .run();
    let row = finish_row(&fw, t0, result.stats.clone(), result.cost);
    (row, fw, result)
}

/// Runs one cell of the partial-sort sweep over ordered star-schema
/// aggregation queries. Every query is planned with the enforcer on and
/// off; the partial-sort search must never be costlier (asserted). With
/// `check_arms`, the partial-sort optimum is additionally cross-checked
/// against the Simmen and explicit-set arms *and* re-planned under the
/// work-stealing pool at 1, 2 and 8 threads with identical cost and
/// plan count required (slow — meant for small cells).
pub fn partialsort_cell(
    dimensions: usize,
    queries: usize,
    seed0: u64,
    check_arms: bool,
) -> PartialSortCell {
    let mut acc_sort = ZeroRow::new("nfsm/dfsm (ours)");
    let mut acc_partial = ZeroRow::new("nfsm/dfsm (ours)");
    let mut max_win = 1.0f64;
    let mut wins = 0usize;
    let mut partial_sort_plans = 0usize;
    for q in 0..queries {
        let (catalog, query) = ofw_workload::star_agg_query_ordered(&StarAggConfig {
            dimensions,
            seed: seed0 + q as u64,
        });
        let ex = ofw_query::extract(&catalog, &query, &ExtractOptions::default());
        // One prepared framework and one DP run per arm; the enabled
        // run's result is reused below for the enforcer-usage walk and
        // as the serial baseline of the thread-determinism check.
        let (partial, fw, partial_result) = run_ours_partial_sort(&catalog, &query, &ex, true);
        let (sort_only, _, _) = run_ours_partial_sort(&catalog, &query, &ex, false);
        assert!(
            partial.best_cost <= sort_only.best_cost * (1.0 + 1e-9),
            "the partial-sort search can never be costlier: {} vs {}",
            partial.best_cost,
            sort_only.best_cost
        );
        if partial.best_cost < sort_only.best_cost * (1.0 - 1e-9) {
            wins += 1;
        }
        max_win = max_win.max(sort_only.best_cost / partial.best_cost);
        // Does the winner actually use the enforcer?
        {
            let mut stack = vec![partial_result.best];
            let mut found = false;
            while let Some(p) = stack.pop() {
                let op = &partial_result.arena.node(p).op;
                found |= matches!(op, ofw_plangen::PlanOp::PartialSort { .. });
                stack.extend(op.inputs());
            }
            partial_sort_plans += usize::from(found);
        }
        if check_arms {
            let simmen = run_simmen(&catalog, &query, &ex);
            assert_costs_agree(&partial, &simmen);
            let explicit = run_explicit(&catalog, &query, &ex);
            assert_costs_agree(&partial, &explicit);
            // Thread-count determinism: the same prepared oracle must
            // reach the same partial-sort optimum under the
            // work-stealing pool at 1, 2 and 8 threads.
            for threads in [1usize, 2, 8] {
                let pool = ofw_parallel::ThreadPool::new(threads);
                let parallel = PlanGen::new(&catalog, &query, &ex, &fw).run_with(&pool);
                assert!(
                    (parallel.cost - partial_result.cost).abs() < 1e-9
                        && parallel.stats.plans == partial_result.stats.plans
                        && parallel.best == partial_result.best,
                    "thread count {threads} changed the partial-sort plan"
                );
            }
        }
        acc_sort.add(&sort_only);
        acc_partial.add(&partial);
    }
    PartialSortCell {
        dimensions,
        sort_only: acc_sort.avg(queries),
        partial: acc_partial.avg(queries),
        max_win,
        wins,
        partial_sort_plans,
        queries,
    }
}

/// A [`PartialSortCell`] as a flat JSON object for
/// `BENCH_partialsort.json`.
pub fn partialsort_cell_json(cell: &PartialSortCell) -> json::Obj {
    json::Obj::new()
        .int("dimensions", cell.dimensions)
        .int("queries", cell.queries)
        .int("wins", cell.wins)
        .int("partial_sort_plans", cell.partial_sort_plans)
        .num("max_win", cell.max_win)
        .raw("sort_only", plan_row_json(&cell.sort_only).build())
        .raw("partial", plan_row_json(&cell.partial).build())
}

/// A [`PlacementCell`] as a flat JSON object for `BENCH_groupjoin.json`.
pub fn placement_cell_json(cell: &PlacementCell) -> json::Obj {
    json::Obj::new()
        .int("dimensions", cell.dimensions)
        .int("queries", cell.queries)
        .int("wins", cell.wins)
        .num("max_win", cell.max_win)
        .raw("root_only", plan_row_json(&cell.root_only).build())
        .raw("placed", plan_row_json(&cell.placed).build())
}

struct ZeroRow {
    framework: &'static str,
    time: Duration,
    plans: usize,
    memory: usize,
    cost: f64,
    pairs: u64,
    unions: u64,
    fallback: bool,
    pruned_kept: u64,
    pruned_dominated: u64,
    oracle_probes: u64,
    enforcers_admitted: u64,
    enforcers_won: u64,
}

impl ZeroRow {
    fn new(framework: &'static str) -> Self {
        ZeroRow {
            framework,
            time: Duration::ZERO,
            plans: 0,
            memory: 0,
            cost: 0.0,
            pairs: 0,
            unions: 0,
            fallback: false,
            pruned_kept: 0,
            pruned_dominated: 0,
            oracle_probes: 0,
            enforcers_admitted: 0,
            enforcers_won: 0,
        }
    }

    fn add(&mut self, row: &PlanRow) {
        self.time += row.time;
        self.plans += row.plans;
        self.memory += row.memory_bytes;
        self.cost += row.best_cost;
        self.pairs += row.pairs;
        self.unions += row.unions;
        self.fallback |= row.fallback;
        self.pruned_kept += row.pruned_kept;
        self.pruned_dominated += row.pruned_dominated;
        self.oracle_probes += row.oracle_probes;
        self.enforcers_admitted += row.enforcers_admitted;
        self.enforcers_won += row.enforcers_won;
    }

    fn avg(&self, k: usize) -> PlanRow {
        let plans = self.plans / k;
        let time = self.time / k as u32;
        PlanRow {
            framework: self.framework,
            time,
            plans,
            time_per_plan: if plans > 0 {
                time / plans as u32
            } else {
                Duration::ZERO
            },
            memory_bytes: self.memory / k,
            best_cost: self.cost / k as f64,
            pairs: self.pairs / k as u64,
            unions: self.unions / k as u64,
            fallback: self.fallback,
            pruned_kept: self.pruned_kept / k as u64,
            pruned_dominated: self.pruned_dominated / k as u64,
            oracle_probes: self.oracle_probes / k as u64,
            enforcers_admitted: self.enforcers_admitted / k as u64,
            enforcers_won: self.enforcers_won / k as u64,
        }
    }
}

/// Formats a duration as fractional milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Formats a duration as fractional microseconds.
pub fn us(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e6)
}

/// Formats bytes as KB with one decimal.
pub fn kb(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q8_preparation_shapes_match_the_paper() {
        let (without, with) = prep_q8();
        // §6.2: pruning shrinks the NFSM (376 → 38) and the DFSM
        // (80 → 24) by large factors; exact counts depend on modeling
        // details, but the direction and rough magnitude must hold.
        assert!(
            without.nfsm_nodes >= 2 * with.nfsm_nodes,
            "NFSM: {} vs {}",
            without.nfsm_nodes,
            with.nfsm_nodes
        );
        assert!(
            without.dfsm_nodes >= with.dfsm_nodes,
            "DFSM: {} vs {}",
            without.dfsm_nodes,
            with.dfsm_nodes
        );
        assert!(without.precomputed_bytes > with.precomputed_bytes);
    }

    #[test]
    fn q8_plangen_shape_matches_the_paper() {
        let (simmen, ours) = q8_plangen();
        // §7 Q8 table: ours generates fewer plans and is faster per plan.
        assert!(
            ours.plans <= simmen.plans,
            "plans: ours={} simmen={}",
            ours.plans,
            simmen.plans
        );
        assert!(ours.plans > 100, "Q8 must be a non-trivial search");
    }

    #[test]
    fn small_sweep_cell_runs() {
        let cell = sweep_cell(5, 0, 2, 1000);
        assert!(cell.simmen.plans > 0 && cell.ours.plans > 0);
        assert!(cell.ours.plans <= cell.simmen.plans);
    }

    #[test]
    fn small_grouping_cell_agrees_with_the_explicit_oracle() {
        // The assertion work happens inside: DFSM == Simmen == explicit
        // optimum for every grouping query in the cell.
        let cell = grouping_cell(4, 0, 3, 2000, true);
        assert!(cell.simmen.plans > 0 && cell.ours.plans > 0);
        assert!(cell.ours.plans <= cell.simmen.plans);
    }

    #[test]
    fn small_groupjoin_cell_wins_and_agrees_across_arms() {
        let cell = groupjoin_cell(2, 3, 77, true);
        assert!(cell.placed.plans > 0 && cell.root_only.plans > 0);
        assert!(cell.placed.best_cost <= cell.root_only.best_cost);
        assert!(cell.wins >= 1, "placement should win somewhere in the cell");
        assert!(cell.max_win >= 1.0);
    }

    #[test]
    fn small_partialsort_cell_wins_and_agrees_across_arms_and_threads() {
        let cell = partialsort_cell(2, 3, 4242, true);
        assert!(cell.partial.plans > 0 && cell.sort_only.plans > 0);
        assert!(cell.partial.best_cost <= cell.sort_only.best_cost);
        assert!(
            cell.partial_sort_plans >= 1,
            "some winner must carry a PartialSort"
        );
        assert!(cell.max_win >= 1.0);
    }

    #[test]
    fn q13_style_query_uses_the_hash_group_enforcer() {
        // The G1 acceptance scenario: a TPC-H-style aggregation query
        // plans with early hash-grouping + streaming aggregation.
        let (catalog, query) = ofw_workload::q13_style_query();
        let ex = ofw_query::extract(&catalog, &query, &ExtractOptions::default());
        let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
        let r = PlanGen::new(&catalog, &query, &ex, &fw).run();
        let mut found_hash_group = false;
        let mut found_streaming = false;
        let mut stack = vec![r.best];
        while let Some(p) = stack.pop() {
            let op = &r.arena.node(p).op;
            found_hash_group |= matches!(op, ofw_plangen::PlanOp::HashGroup { .. });
            found_streaming |= matches!(op, ofw_plangen::PlanOp::StreamAgg { partial: false, .. });
            stack.extend(op.inputs());
        }
        assert!(
            found_hash_group && found_streaming,
            "expected hash-group + streaming aggregate:\n{}",
            r.arena.render(r.best, &|i| catalog
                .relation(query.relations[i])
                .name
                .clone())
        );
        // Simmen finds the same optimum through the same DP.
        let s = run_simmen(&catalog, &query, &ex);
        let o = run_ours(&catalog, &query, &ex);
        assert_costs_agree(&s, &o);
    }
}
