//! The enumerator sweep (H1): DPsize vs DPhyp vs the budgeted
//! linearized fallback, over the large chain/cycle/star/clique
//! topologies.
//!
//! The experiment behind the enumerator seam: the two exhaustive
//! enumerators must find **the same plans at the same cost** wherever
//! both run (`pairs` equal, cost ratio exactly 1 — asserted), while
//! `pairs_considered` exposes the rejected-candidate work DPsize pays
//! and DPhyp skips. Past the enumeration budget the `Auto` strategy
//! flips to the linearized window DP, which is what lets a 100-relation
//! clique plan end to end in milliseconds — at a recorded, bounded cost
//! ratio instead of a crash or a multi-hour enumeration.

use crate::json;
use ofw_core::{OrderingFramework, PruneConfig};
use ofw_plangen::{Enumerator, PlanGen};
use ofw_query::extract::ExtractOptions;
use ofw_workload::{large_query, LargeQueryConfig, Topology};
use std::time::{Duration, Instant};

/// One measured run of the enumerator sweep.
#[derive(Clone, Debug)]
pub struct HypergraphRow {
    /// Join-graph shape.
    pub topology: &'static str,
    /// Relation count.
    pub n: usize,
    /// Lean extraction (no per-join interesting orders)?
    pub lean: bool,
    /// Requested enumeration strategy.
    pub enumerator: &'static str,
    /// Strategy that actually ran (differs from `enumerator` only for
    /// `auto`, which resolves to `dphyp` or `linearized`).
    pub resolved: &'static str,
    /// Did `Auto` fall back to linearization?
    pub fallback: bool,
    /// Wall-clock plan-generation time (preparation excluded; for
    /// `auto`, includes any budget-tripped partial enumeration).
    pub time: Duration,
    /// Subplans generated.
    pub plans: usize,
    /// csg-cmp pairs emitted (deterministic).
    pub pairs: u64,
    /// Candidate pairs examined (deterministic; `== pairs` for the
    /// neighborhood-driven enumerators, `>= pairs` for DPsize).
    pub pairs_considered: u64,
    /// Connected subsets planned beyond the base relations.
    pub unions: u64,
    /// Winning plan cost.
    pub best_cost: f64,
    /// `best_cost / DPsize best_cost` — 1.0 for the exhaustive
    /// enumerators (asserted), the optimality price of the fallback
    /// otherwise; `NaN` (JSON `null`) where DPsize cannot run the cell.
    pub cost_ratio: f64,
    /// Plans surviving Pareto pruning (deterministic).
    pub pruned_kept: u64,
    /// Candidates killed by Pareto domination (deterministic).
    pub pruned_dominated: u64,
    /// Order-oracle probes made by the DP (deterministic).
    pub oracle_probes: u64,
    /// Candidates rejected by the cost upper bound before allocation
    /// (deterministic).
    pub bound_pruned: u64,
    /// Dominance checks answered by the per-union memo or by state
    /// equality instead of an oracle probe (deterministic).
    pub dominance_memo_hits: u64,
}

/// Runs one cell of the enumerator sweep: a `topology` query over `n`
/// relations, planned with the DFSM arm under each requested strategy.
/// When `Enumerator::DpSize` is among them, it is run first and every
/// exhaustive strategy is asserted to match its cost and plan count
/// exactly.
pub fn hypergraph_cell(
    topology: Topology,
    n: usize,
    seed: u64,
    lean: bool,
    enumerators: &[Enumerator],
    budget: Option<u64>,
) -> Vec<HypergraphRow> {
    let (catalog, query) = large_query(&LargeQueryConfig {
        topology,
        num_relations: n,
        seed,
    });
    let options = if lean {
        ExtractOptions::lean()
    } else {
        ExtractOptions::default()
    };
    let ex = ofw_query::extract(&catalog, &query, &options);
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).expect("prepare");

    let mut rows: Vec<HypergraphRow> = Vec::new();
    let mut reference: Option<(f64, usize, u64)> = None;
    for &e in enumerators {
        let mut pg = PlanGen::new(&catalog, &query, &ex, &fw).enumerator(e);
        if let Some(b) = budget {
            pg = pg.enumeration_budget(b);
        }
        let t0 = Instant::now();
        let r = pg.run();
        let time = t0.elapsed();
        if e == Enumerator::DpSize {
            reference = Some((r.cost, r.stats.plans, r.stats.pairs_emitted));
        }
        let cost_ratio = match reference {
            Some((cost, plans, pairs)) => {
                if !r.stats.fallback {
                    // Exhaustive strategies must reproduce DPsize bit
                    // for bit — same plans, same pairs, same optimum.
                    assert_eq!(r.stats.plans, plans, "{}/{n}: plan count", e.name());
                    assert_eq!(r.stats.pairs_emitted, pairs, "{}/{n}: pair count", e.name());
                    assert_eq!(r.cost.to_bits(), cost.to_bits(), "{}/{n}: cost", e.name());
                }
                r.cost / cost
            }
            None => f64::NAN,
        };
        rows.push(HypergraphRow {
            topology: topology.name(),
            n,
            lean,
            enumerator: e.name(),
            resolved: r.stats.enumerator,
            fallback: r.stats.fallback,
            time,
            plans: r.stats.plans,
            pairs: r.stats.pairs_emitted,
            pairs_considered: r.stats.pairs_considered,
            unions: r.stats.unions,
            best_cost: r.cost,
            cost_ratio,
            pruned_kept: r.stats.decisions.pruning.kept_total(),
            pruned_dominated: r.stats.decisions.pruning.dominated_total(),
            oracle_probes: r.stats.decisions.probes.total(),
            bound_pruned: r.stats.decisions.pruning.bound_pruned,
            dominance_memo_hits: r.stats.decisions.probes.dominance_memo_hits,
        });
    }
    rows
}

/// A [`HypergraphRow`] as a flat JSON object for
/// `BENCH_hypergraph.json`.
pub fn hypergraph_row_json(row: &HypergraphRow) -> json::Obj {
    json::Obj::new()
        .str("topology", row.topology)
        .int("n", row.n)
        .int("lean", usize::from(row.lean))
        .str("enumerator", row.enumerator)
        .str("resolved", row.resolved)
        .int("fallback", usize::from(row.fallback))
        .num("time_ms", row.time.as_secs_f64() * 1e3)
        .int("plans", row.plans)
        .int("pairs", row.pairs as usize)
        .int("pairs_considered", row.pairs_considered as usize)
        .int("unions", row.unions as usize)
        .num("best_cost", row.best_cost)
        .num("cost_ratio", row.cost_ratio)
        .int("pruned_kept", row.pruned_kept as usize)
        .int("pruned_dominated", row.pruned_dominated as usize)
        .int("oracle_probes", row.oracle_probes as usize)
        .int("bound_pruned", row.bound_pruned as usize)
        .int("dominance_memo_hits", row.dominance_memo_hits as usize)
}

/// Renders one row for the stdout table.
pub fn hypergraph_row_line(row: &HypergraphRow) -> String {
    format!(
        "{:>6} {:>4} {:>5} {:>10} {:>10} | {:>10} {:>9} {:>10} {:>12} {:>7} {:>8}",
        row.topology,
        row.n,
        if row.lean { "lean" } else { "full" },
        row.enumerator,
        row.resolved,
        crate::ms(row.time),
        row.plans,
        row.pairs,
        row.pairs_considered,
        row.unions,
        if row.cost_ratio.is_nan() {
            "-".to_string()
        } else {
            format!("{:.3}", row.cost_ratio)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_enumerators_agree_and_dphyp_considers_less() {
        let rows = hypergraph_cell(
            Topology::Cycle,
            10,
            7,
            false,
            &[Enumerator::DpSize, Enumerator::DpHyp, Enumerator::Auto],
            None,
        );
        assert_eq!(rows.len(), 3);
        let (dpsize, dphyp, auto) = (&rows[0], &rows[1], &rows[2]);
        assert_eq!(dpsize.resolved, "dpsize");
        assert_eq!(dphyp.resolved, "dphyp");
        assert_eq!(auto.resolved, "dphyp");
        assert!(!auto.fallback, "a 10-cycle fits any sane budget");
        assert_eq!(dphyp.cost_ratio, 1.0);
        assert_eq!(dphyp.pairs, dpsize.pairs);
        assert!(dphyp.pairs_considered < dpsize.pairs_considered);
        assert_eq!(dphyp.pairs_considered, dphyp.pairs);
    }

    #[test]
    fn tight_budget_forces_the_fallback() {
        let rows = hypergraph_cell(
            Topology::Clique,
            10,
            7,
            false,
            &[Enumerator::Auto],
            Some(500),
        );
        assert_eq!(rows[0].resolved, "linearized");
        assert!(rows[0].fallback);
        assert!(rows[0].best_cost.is_finite());
        assert!(rows[0].cost_ratio.is_nan(), "no DPsize reference was run");
    }
}
