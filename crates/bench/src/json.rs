//! Minimal hand-rolled JSON emission for the table binaries.
//!
//! Every `table_*` binary prints a human-readable table to stdout *and*
//! writes the same rows as `BENCH_<name>.json` into the current
//! directory, so CI and scripts can track the perf trajectory without
//! scraping the tables. No serde — the workspace is offline, and the
//! payloads are flat.

use std::io::Write;
use std::path::PathBuf;

/// Escapes a string for a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Builder for one flat JSON object (insertion order preserved).
#[derive(Default)]
pub struct Obj {
    parts: Vec<String>,
}

impl Obj {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.parts
            .push(format!("\"{}\":\"{}\"", escape(key), escape(value)));
        self
    }

    /// Adds a numeric field (finite floats; integers pass through
    /// losslessly up to 2^53).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.parts.push(format!("\"{}\":{rendered}", escape(key)));
        self
    }

    /// Adds an unsigned integer field.
    pub fn int(mut self, key: &str, value: usize) -> Self {
        self.parts.push(format!("\"{}\":{value}", escape(key)));
        self
    }

    /// Adds a pre-rendered JSON value (nested object/array).
    pub fn raw(mut self, key: &str, value: String) -> Self {
        self.parts.push(format!("\"{}\":{value}", escape(key)));
        self
    }

    /// Renders the object.
    pub fn build(self) -> String {
        format!("{{{}}}", self.parts.join(","))
    }
}

/// Renders a JSON array from pre-rendered values.
pub fn array(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

/// The standard leading meta row: marks the payload and records a
/// machine proxy (`avail_threads`) so `scripts/bench_trend.py` can tell
/// same-machine time regressions from cross-hardware noise.
pub fn machine_meta_row() -> Obj {
    Obj::new().int("meta", 1).int(
        "avail_threads",
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    )
}

/// Writes `BENCH_<name>.json` with `{"bench": name, "rows": rows}` into
/// `dir` and returns the path.
pub fn write_bench_in(
    dir: &std::path::Path,
    name: &str,
    rows: Vec<String>,
) -> std::io::Result<PathBuf> {
    let payload = Obj::new()
        .str("bench", name)
        .raw("rows", array(&rows))
        .build();
    let path = dir.join(format!("BENCH_{name}.json"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(payload.as_bytes())?;
    f.write_all(b"\n")?;
    Ok(path)
}

/// [`write_bench_in`] targeting the current directory (what the table
/// binaries use).
pub fn write_bench(name: &str, rows: Vec<String>) -> std::io::Result<PathBuf> {
    write_bench_in(std::path::Path::new("."), name, rows)
}

/// The one way a table binary emits its machine-readable rows: starts
/// with the standard machine-proxy meta row, collects data rows, and on
/// [`finish`](Self::finish) writes `BENCH_<name>.json` and prints the
/// standard `machine-readable: <path>` trailer. Replaces the
/// copy-pasted meta-row + `write_bench` + `println!` boilerplate every
/// binary used to carry.
pub struct BenchSink {
    name: String,
    rows: Vec<String>,
    allocs_mark: u64,
}

impl BenchSink {
    /// A sink for `BENCH_<name>.json`, meta row included.
    pub fn new(name: &str) -> Self {
        Self::with_meta(name, |meta| meta)
    }

    /// Like [`new`](Self::new), with extra fields appended to the meta
    /// row (e.g. the run mode).
    pub fn with_meta(name: &str, extend: impl FnOnce(Obj) -> Obj) -> Self {
        BenchSink {
            name: name.to_string(),
            rows: vec![extend(machine_meta_row()).build()],
            allocs_mark: ofw_common::alloc::allocation_count(),
        }
    }

    /// Appends one data row, stamped with an `allocs` column: the
    /// process-wide allocation count since the previous row (or since
    /// the sink was created). Because each table binary builds one row
    /// right after measuring its cell, the delta is a deterministic
    /// allocation-pressure proxy for that cell's work, trend-gated as a
    /// counter next to `plans` and `oracle_probes`.
    pub fn push(&mut self, row: Obj) {
        let now = ofw_common::alloc::allocation_count();
        let delta = now - self.allocs_mark;
        self.allocs_mark = now;
        self.rows.push(row.int("allocs", delta as usize).build());
    }

    /// Writes the file into the current directory and prints the
    /// standard trailer. Panics on IO failure, like every table binary
    /// did individually.
    pub fn finish(self) -> PathBuf {
        let path = write_bench(&self.name, self.rows).expect("write BENCH json");
        println!("machine-readable: {}", path.display());
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_and_nesting() {
        let obj = Obj::new()
            .str("name", "a \"quoted\"\nvalue")
            .num("x", 1.5)
            .int("n", 42)
            .raw("inner", array(&[Obj::new().int("k", 1).build()]))
            .build();
        assert_eq!(
            obj,
            r#"{"name":"a \"quoted\"\nvalue","x":1.5,"n":42,"inner":[{"k":1}]}"#
        );
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Obj::new().num("x", f64::NAN).build(), r#"{"x":null}"#);
    }

    #[test]
    fn bench_sink_prepends_the_meta_row() {
        let mut sink = BenchSink::with_meta("sink_unit_test", |m| m.str("mode", "smoke"));
        sink.push(Obj::new().int("a", 1));
        assert_eq!(sink.rows.len(), 2);
        assert!(sink.rows[0].contains("\"meta\":1"));
        assert!(sink.rows[0].contains("\"avail_threads\":"));
        assert!(sink.rows[0].contains("\"mode\":\"smoke\""));
        assert!(
            sink.rows[1].starts_with(r#"{"a":1,"allocs":"#),
            "{}",
            sink.rows[1]
        );
    }

    #[test]
    fn write_bench_creates_the_file() {
        let dir = std::env::temp_dir().join("ofw_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = write_bench_in(&dir, "unit_test", vec![Obj::new().int("a", 1).build()]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.trim(), r#"{"bench":"unit_test","rows":[{"a":1}]}"#);
        let _ = std::fs::remove_file(path);
    }
}
