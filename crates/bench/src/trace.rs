//! The observability-overhead experiment (TR1): plan generation with
//! the trace sink disabled vs recording, per workload.
//!
//! Two claims are measured and enforced:
//!
//! * **zero-cost when off** — the disabled sink is one pointer check
//!   per phase boundary, so the untraced runs here are the same hot
//!   path every other table binary times; the `overhead_pct` column
//!   records what *enabling* the sink costs (span records + labels),
//!   which must stay small enough to leave plans usable for profiling;
//! * **byte-identical when on** — the recording run's full arena
//!   fingerprint (states included) is asserted equal to the untraced
//!   run's before any timing is reported. A trace that perturbs the
//!   plan table is worthless; this is the cheap always-on guard behind
//!   the exhaustive property test in `ofw-plangen`.
//!
//! Each row also reports the per-phase wall-time shares from the
//! always-on [`PhaseStats`](ofw_plangen::PlanGenStats::phases) ledger
//! (prefixed `share_`, suffixed `_pct` — volatile for the trend gate,
//! like every wall-clock field) and the deterministic decision
//! counters, which the gate *does* compare across commits.

use crate::json;
use ofw_catalog::Catalog;
use ofw_common::FxHasher;
use ofw_core::{OrderingFramework, PruneConfig};
use ofw_obs::Trace;
use ofw_plangen::{Enumerator, PlanGen, PlanGenResult};
use ofw_query::{ExtractedQuery, Query};
use std::fmt::Debug;
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// One workload's disabled-vs-recording measurement.
#[derive(Clone, Debug)]
pub struct TraceRow {
    /// Workload label (`q8` / `grouping` / `clique20`).
    pub workload: &'static str,
    /// Interleaved repetitions per side behind the two minima.
    pub reps: usize,
    /// Minimum plan-generation time with the sink disabled.
    pub untraced_ms: f64,
    /// Minimum plan-generation time with a recording sink attached.
    pub traced_ms: f64,
    /// `(traced - untraced) / untraced`, percent. Wall-clock noise —
    /// volatile for the trend gate.
    pub overhead_pct: f64,
    /// Span records the recording run captured (deterministic).
    pub spans: u64,
    /// Subplans generated (deterministic; identical in both runs).
    pub plans: usize,
    /// csg-cmp pairs emitted (deterministic).
    pub pairs: u64,
    /// Connected subsets beyond the base relations (deterministic).
    pub unions: u64,
    /// Plans surviving Pareto pruning (deterministic).
    pub pruned_kept: u64,
    /// Candidates killed by Pareto domination (deterministic).
    pub pruned_dominated: u64,
    /// Order-oracle probes made by the DP (deterministic).
    pub oracle_probes: u64,
    /// Enforcer candidates admitted (deterministic).
    pub enforcers_admitted: u64,
    /// Enforcer candidates that won their insertion (deterministic).
    pub enforcers_won: u64,
    /// Per-phase share of the untraced run's phase-ledger time, percent
    /// (phase name, share); layer phases are folded into one `dp`
    /// entry so the row shape is size-independent.
    pub phase_shares: Vec<(&'static str, f64)>,
}

/// Order-sensitive fingerprint of the full arena (states included) —
/// the same construction as the thread-scaling sweep's.
fn fingerprint<S: Copy + Debug>(r: &PlanGenResult<S>) -> u64 {
    let mut h = FxHasher::default();
    for n in r.arena.nodes() {
        format!("{:?}", n.op).hash(&mut h);
        n.cost.to_bits().hash(&mut h);
        n.card.to_bits().hash(&mut h);
        n.agg.hash(&mut h);
        for b in n.mask.iter() {
            b.hash(&mut h);
        }
        for f in n.applied_fds.iter() {
            f.hash(&mut h);
        }
        format!("{:?}", n.state).hash(&mut h);
    }
    format!("{:?}", r.best).hash(&mut h);
    r.cost.to_bits().hash(&mut h);
    (r.stats.plans as u64).hash(&mut h);
    h.finish()
}

/// Runs one workload cell: `reps` interleaved untraced/recording run
/// pairs (minimum time per side), every recording run asserted
/// byte-identical to the untraced reference. Returns the row and the
/// last recording run's trace for export.
pub fn trace_cell(
    workload: &'static str,
    catalog: &Catalog,
    query: &Query,
    ex: &ExtractedQuery,
    enumerator: Enumerator,
    reps: usize,
) -> (TraceRow, Trace) {
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).expect("prepare");

    // One untimed warm-up run first (allocator, lazy DFSM, page cache):
    // it becomes the byte-identity reference, and keeps cold-start cost
    // out of the timings the overhead is computed from.
    let ref_result = PlanGen::new(catalog, query, ex, &fw)
        .enumerator(enumerator)
        .run();
    let ref_fp = fingerprint(&ref_result);

    // Untraced and recording runs *alternate*, and each side reports
    // its minimum: successive runs keep getting faster (allocator page
    // reuse), so timing all untraced runs first and the recording run
    // last would systematically flatter the sink. Min-vs-min over
    // interleaved runs cancels that drift.
    let mut untraced_min = f64::INFINITY;
    let mut traced_min = f64::INFINITY;
    let mut trace = Trace::disabled();
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let r = PlanGen::new(catalog, query, ex, &fw)
            .enumerator(enumerator)
            .run();
        untraced_min = untraced_min.min(t0.elapsed().as_secs_f64());
        assert_eq!(fingerprint(&r), ref_fp, "{workload}: untraced run diverged");

        let t = Trace::recording();
        let t0 = Instant::now();
        let traced = PlanGen::new(catalog, query, ex, &fw)
            .enumerator(enumerator)
            .trace(&t)
            .run();
        traced_min = traced_min.min(t0.elapsed().as_secs_f64());
        assert_eq!(
            fingerprint(&traced),
            ref_fp,
            "{workload}: the recording sink changed the plan table"
        );
        trace = t;
    }
    let untraced_ms = untraced_min * 1e3;
    let traced_ms = traced_min * 1e3;

    // Phase shares from the untraced reference — the production path's
    // own ledger, not something the sink added.
    let phases = &ref_result.stats.phases;
    let total: f64 = phases.iter().map(|p| p.time.as_secs_f64()).sum();
    let share = |pred: &dyn Fn(&str) -> bool| -> f64 {
        if total <= 0.0 {
            return 0.0;
        }
        phases
            .iter()
            .filter(|p| pred(&p.name))
            .map(|p| p.time.as_secs_f64())
            .sum::<f64>()
            / total
            * 100.0
    };
    let phase_shares = vec![
        ("bound", share(&|n| n == "bound")),
        ("base", share(&|n| n == "base")),
        ("enumerate", share(&|n| n == "enumerate")),
        ("dp", share(&|n| n.starts_with("layer "))),
        ("finalize", share(&|n| n == "finalize")),
        ("pick_final", share(&|n| n == "pick_final")),
    ];

    let d = &ref_result.stats.decisions;
    let row = TraceRow {
        workload,
        reps: reps.max(1),
        untraced_ms,
        traced_ms,
        overhead_pct: if untraced_ms > 0.0 {
            (traced_ms - untraced_ms) / untraced_ms * 100.0
        } else {
            0.0
        },
        spans: trace.records().len() as u64,
        plans: ref_result.stats.plans,
        pairs: ref_result.stats.pairs_emitted,
        unions: ref_result.stats.unions,
        pruned_kept: d.pruning.kept_total(),
        pruned_dominated: d.pruning.dominated_total(),
        oracle_probes: d.probes.total(),
        enforcers_admitted: d.enforcers.admitted_total(),
        enforcers_won: d.enforcers.won_total(),
        phase_shares,
    };
    (row, trace)
}

/// A [`TraceRow`] as a flat JSON object for `BENCH_trace.json`. Phase
/// shares become `share_<phase>_pct` fields — the `_pct` suffix marks
/// them volatile for `scripts/bench_trend.py`, alongside the explicit
/// `overhead_pct`.
pub fn trace_row_json(row: &TraceRow) -> json::Obj {
    let mut obj = json::Obj::new()
        .str("workload", row.workload)
        .int("reps", row.reps)
        .num("untraced_ms", row.untraced_ms)
        .num("traced_ms", row.traced_ms)
        .num("overhead_pct", row.overhead_pct)
        .int("spans", row.spans as usize)
        .int("plans", row.plans)
        .int("pairs", row.pairs as usize)
        .int("unions", row.unions as usize)
        .int("pruned_kept", row.pruned_kept as usize)
        .int("pruned_dominated", row.pruned_dominated as usize)
        .int("oracle_probes", row.oracle_probes as usize)
        .int("enforcers_admitted", row.enforcers_admitted as usize)
        .int("enforcers_won", row.enforcers_won as usize);
    for (name, pct) in &row.phase_shares {
        obj = obj.num(&format!("share_{name}_pct"), *pct);
    }
    obj
}

/// Renders one row for the stdout table.
pub fn trace_row_line(row: &TraceRow) -> String {
    let dp_share = row
        .phase_shares
        .iter()
        .find(|(n, _)| *n == "dp")
        .map_or(0.0, |(_, s)| *s);
    format!(
        "{:>9} {:>5} | {:>11.3} {:>11.3} {:>9.1} | {:>7} {:>9} {:>8} {:>10} {:>7.1}",
        row.workload,
        row.reps,
        row.untraced_ms,
        row.traced_ms,
        row.overhead_pct,
        row.spans,
        row.plans,
        row.pairs,
        row.oracle_probes,
        dp_share,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofw_query::extract::ExtractOptions;
    use ofw_workload::{grouping_query, GroupingQueryConfig};

    #[test]
    fn trace_cell_is_byte_identical_and_reports_shares() {
        let (catalog, query) = grouping_query(&GroupingQueryConfig {
            num_relations: 5,
            extra_edges: 1,
            seed: 11,
        });
        let ex = ofw_query::extract(&catalog, &query, &ExtractOptions::default());
        // The byte-identity assertion runs inside.
        let (row, trace) = trace_cell("unit", &catalog, &query, &ex, Enumerator::Auto, 2);
        assert!(row.spans > 0);
        assert!(!trace.records().is_empty());
        assert!(row.plans > 0 && row.oracle_probes > 0);
        let sum: f64 = row.phase_shares.iter().map(|(_, s)| s).sum();
        assert!(
            (sum - 100.0).abs() < 1.0,
            "phase shares should cover the ledger: {sum}"
        );
        // The Chrome export is well-formed enough to hand to a parser.
        let json = trace.chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
    }
}
