//! The thread-scaling experiment (P1): serial DP vs the work-stealing
//! parallel driver, per oracle arm, across the large chain/star/clique
//! topologies.
//!
//! Every parallel run is checked **byte-identical** to the serial run
//! (full arena fingerprint, oracle states included) — the sweep measures
//! speed, never different answers. Arms that cannot reach a cell's size
//! are skipped by the caller: the Simmen baseline's weak dominance
//! inflates Pareto widths until wide queries are out of reach (that
//! asymmetry *is* the paper's result), and the explicit-set oracle is
//! Ω(2ⁿ) by construction.

use crate::ms;
use ofw_catalog::Catalog;
use ofw_common::FxHasher;
use ofw_core::{OrderingFramework, PruneConfig};
use ofw_parallel::ThreadPool;
use ofw_plangen::{ExplicitOracle, OrderOracle, PlanGen, PlanGenResult};
use ofw_query::extract::ExtractOptions;
use ofw_query::{ExtractedQuery, Query};
use ofw_simmen::SimmenFramework;
use ofw_workload::{large_query, LargeQueryConfig, Topology};
use std::fmt::Debug;
use std::hash::{Hash, Hasher};
use std::time::{Duration, Instant};

/// One measured run of the thread-scaling sweep. `threads == 0` is the
/// serial reference driver; `threads >= 1` is the pool driver.
#[derive(Clone, Debug)]
pub struct ParallelRow {
    /// Join-graph shape.
    pub topology: &'static str,
    /// Relation count.
    pub n: usize,
    /// Lean extraction (no per-join interesting orders)?
    pub lean: bool,
    /// Oracle arm.
    pub framework: &'static str,
    /// Pool threads (0 = serial driver).
    pub threads: usize,
    /// Wall-clock plan-generation time (preparation excluded — it is
    /// shared, read-mostly state across all thread counts).
    pub time: Duration,
    /// Subplans generated.
    pub plans: usize,
    /// Winning plan cost.
    pub best_cost: f64,
    /// Serial time / this time.
    pub speedup: f64,
    /// Arena byte-identical to the serial driver's?
    pub identical: bool,
    /// csg-cmp pairs emitted by the enumerator (deterministic).
    pub pairs: u64,
    /// Connected subsets planned beyond the base relations
    /// (deterministic).
    pub unions: u64,
    /// Did the `Auto` enumerator fall back to linearization?
    pub fallback: bool,
    /// The machine cannot actually run this row's threads in parallel
    /// (single hardware thread, or the pool oversubscribes the
    /// machine): its time and speedup measure scheduling overhead, not
    /// scaling, so the trend gate skips time comparisons for it.
    pub degraded: bool,
}

/// Order-*sensitive* 64-bit fingerprint of the full plan arena (nodes
/// folded in allocation order — the splice order is part of the
/// guarantee): operator tree, exact cost/card bit patterns, masks,
/// applied FDs, oracle states, winner. Any schedule leak in the
/// parallel driver changes it. Comparisons are valid because
/// [`run_arm`] runs serial-first on one shared oracle instance, which
/// pins even the memoizing oracles' interned state ids.
fn fingerprint<S: Copy + Debug>(r: &PlanGenResult<S>) -> u64 {
    let mut h = FxHasher::default();
    for n in r.arena.nodes() {
        format!("{:?}", n.op).hash(&mut h);
        n.cost.to_bits().hash(&mut h);
        n.card.to_bits().hash(&mut h);
        n.agg.hash(&mut h);
        for b in n.mask.iter() {
            b.hash(&mut h);
        }
        for f in n.applied_fds.iter() {
            f.hash(&mut h);
        }
        format!("{:?}", n.state).hash(&mut h);
    }
    format!("{:?}", r.best).hash(&mut h);
    r.cost.to_bits().hash(&mut h);
    (r.stats.plans as u64).hash(&mut h);
    h.finish()
}

/// One cell's fixed context: the query, its extraction, and the cell's
/// identity fields.
struct CellCtx<'a> {
    topology: Topology,
    n: usize,
    lean: bool,
    catalog: &'a Catalog,
    query: &'a Query,
    ex: &'a ExtractedQuery,
}

/// Runs one oracle arm: the serial driver once, then the pool driver at
/// each thread count, all against the same prepared (shared, read-
/// mostly) framework. With `warm_up`, an untimed serial run precedes
/// the timed one — required for the memoizing oracles, whose first run
/// pays all reduction/closure/interning memoization: without it the
/// timed serial run is cold while every pool run enjoys the warmed
/// caches, overstating the parallel speedups. The DFSM arm precomputes
/// everything before the DP, so it skips the extra run (its big cells
/// are the expensive ones).
fn run_arm<O>(cell: &CellCtx<'_>, oracle: &O, threads: &[usize], warm_up: bool) -> Vec<ParallelRow>
where
    O: OrderOracle + Sync,
    O::Key: Sync,
    O::State: Send + Sync + Debug,
{
    let avail = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut rows = Vec::new();
    if warm_up {
        let _ = PlanGen::new(cell.catalog, cell.query, cell.ex, oracle).run();
    }
    let t0 = Instant::now();
    let serial = PlanGen::new(cell.catalog, cell.query, cell.ex, oracle).run();
    let serial_time = t0.elapsed();
    let reference = fingerprint(&serial);
    rows.push(ParallelRow {
        topology: cell.topology.name(),
        n: cell.n,
        lean: cell.lean,
        framework: oracle.name(),
        threads: 0,
        time: serial_time,
        plans: serial.stats.plans,
        best_cost: serial.cost,
        speedup: 1.0,
        identical: true,
        pairs: serial.stats.pairs_emitted,
        unions: serial.stats.unions,
        fallback: serial.stats.fallback,
        degraded: false,
    });
    for &t in threads {
        let pool = ThreadPool::new(t);
        let t0 = Instant::now();
        let r = PlanGen::new(cell.catalog, cell.query, cell.ex, oracle).run_with(&pool);
        let time = t0.elapsed();
        rows.push(ParallelRow {
            topology: cell.topology.name(),
            n: cell.n,
            lean: cell.lean,
            framework: oracle.name(),
            threads: t,
            time,
            plans: r.stats.plans,
            best_cost: r.cost,
            speedup: serial_time.as_secs_f64() / time.as_secs_f64().max(1e-12),
            identical: fingerprint(&r) == reference,
            pairs: r.stats.pairs_emitted,
            unions: r.stats.unions,
            fallback: r.stats.fallback,
            degraded: avail == 1 || t > avail,
        });
    }
    rows
}

/// One cell of the thread-scaling sweep (P1): a `topology` query over
/// `n` relations, planned serially and at each of `threads` pool sizes,
/// for the DFSM arm plus (where the cell is within their reach) the
/// Simmen and explicit-set arms.
pub fn parallel_cell(
    topology: Topology,
    n: usize,
    seed: u64,
    lean: bool,
    threads: &[usize],
    with_simmen: bool,
    with_explicit: bool,
) -> Vec<ParallelRow> {
    let (catalog, query) = large_query(&LargeQueryConfig {
        topology,
        num_relations: n,
        seed,
    });
    let options = if lean {
        ExtractOptions::lean()
    } else {
        ExtractOptions::default()
    };
    let ex = ofw_query::extract(&catalog, &query, &options);
    let cell = CellCtx {
        topology,
        n,
        lean,
        catalog: &catalog,
        query: &query,
        ex: &ex,
    };
    let mut rows = Vec::new();

    let dfsm = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).expect("prepare");
    rows.extend(run_arm(&cell, &dfsm, threads, false));
    if with_simmen {
        let simmen = SimmenFramework::prepare(&ex.spec);
        rows.extend(run_arm(&cell, &simmen, threads, true));
    }
    if with_explicit {
        let explicit = ExplicitOracle::prepare(&ex.spec);
        rows.extend(run_arm(&cell, &explicit, threads, true));
    }

    // Cross-arm agreement: every arm found an equally cheap plan.
    let reference = rows[0].best_cost;
    for row in &rows {
        let rel = (row.best_cost - reference).abs() / reference.max(1.0);
        assert!(
            rel < 1e-9,
            "optimal cost mismatch in {}/{n}: {} vs {}",
            row.topology,
            row.best_cost,
            reference
        );
        assert!(
            row.identical,
            "{}/{n} at {} threads diverged from the serial driver",
            row.framework, row.threads
        );
    }
    rows
}

/// A [`ParallelRow`] as a flat JSON object for `BENCH_parallel.json`.
pub fn parallel_row_json(row: &ParallelRow) -> crate::json::Obj {
    crate::json::Obj::new()
        .str("topology", row.topology)
        .int("n", row.n)
        .int("lean", usize::from(row.lean))
        .str("framework", row.framework)
        .int("threads", row.threads)
        .num("time_ms", row.time.as_secs_f64() * 1e3)
        .int("plans", row.plans)
        .num("best_cost", row.best_cost)
        .num("speedup", row.speedup)
        .int("identical", usize::from(row.identical))
        .int("pairs", row.pairs as usize)
        .int("unions", row.unions as usize)
        .int("fallback", usize::from(row.fallback))
        .int("degraded", usize::from(row.degraded))
}

/// Renders one row for the stdout table.
pub fn parallel_row_line(row: &ParallelRow) -> String {
    let driver = if row.threads == 0 {
        "serial".to_string()
    } else {
        format!("{}T", row.threads)
    };
    format!(
        "{:>6} {:>4} {:>5} {:>22} {:>7} | {:>10} {:>9} {:>7.2}x {:>9}{}",
        row.topology,
        row.n,
        if row.lean { "lean" } else { "full" },
        row.framework,
        driver,
        ms(row.time),
        row.plans,
        row.speedup,
        if row.identical {
            "identical"
        } else {
            "DIVERGED"
        },
        if row.degraded { " (degraded)" } else { "" },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_parallel_cell_is_identical_across_drivers() {
        let rows = parallel_cell(Topology::Chain, 6, 42, false, &[1, 2], true, true);
        // 3 arms × (serial + 2 thread counts).
        assert_eq!(rows.len(), 9);
        assert!(rows.iter().all(|r| r.identical));
        assert!(rows.iter().all(|r| r.plans > 0));
        // The same arm allocates the same number of plans everywhere.
        for arm in ["nfsm/dfsm (ours)", "simmen", "explicit set (oracle)"] {
            let plans: Vec<usize> = rows
                .iter()
                .filter(|r| r.framework == arm)
                .map(|r| r.plans)
                .collect();
            assert!(plans.windows(2).all(|w| w[0] == w[1]), "{arm}: {plans:?}");
        }
    }

    #[test]
    fn star_and_clique_cells_run() {
        for topology in [Topology::Star, Topology::Clique] {
            let rows = parallel_cell(topology, 5, 7, false, &[2], true, false);
            assert!(rows.iter().all(|r| r.identical));
        }
    }
}
