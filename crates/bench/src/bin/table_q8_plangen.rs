//! E6 — regenerates the §7 TPC-R Query 8 plan-generation table:
//! total time, number of subplans, time per subplan and memory for
//! Simmen's algorithm vs the DFSM framework.
//!
//! Paper reference values:
//! ```text
//!              Simmen    ours
//! t (ms)       262       52
//! #Plans       200536    123954
//! t/plan (µs)  1.31      0.42
//! Memory (KB)  329       136
//! ```

fn main() {
    let (simmen, ours) = ofw_bench::q8_plangen();
    println!("TPC-R Query 8 — plan generation (paper §7)");
    println!();
    println!("{:<14} {:>12} {:>16}", "", simmen.framework, ours.framework);
    println!(
        "{:<14} {:>12} {:>16}",
        "t (ms)",
        ofw_bench::ms(simmen.time),
        ofw_bench::ms(ours.time)
    );
    println!("{:<14} {:>12} {:>16}", "#Plans", simmen.plans, ours.plans);
    println!(
        "{:<14} {:>12} {:>16}",
        "t/plan (us)",
        ofw_bench::us(simmen.time_per_plan),
        ofw_bench::us(ours.time_per_plan)
    );
    println!(
        "{:<14} {:>12} {:>16}",
        "Memory (KB)",
        ofw_bench::kb(simmen.memory_bytes),
        ofw_bench::kb(ours.memory_bytes)
    );
    println!();
    println!(
        "improvement: t x{:.2}, #Plans x{:.2}, t/plan x{:.2}, memory x{:.2}",
        simmen.time.as_secs_f64() / ours.time.as_secs_f64().max(1e-12),
        simmen.plans as f64 / ours.plans.max(1) as f64,
        simmen.time_per_plan.as_secs_f64() / ours.time_per_plan.as_secs_f64().max(1e-12),
        simmen.memory_bytes as f64 / ours.memory_bytes.max(1) as f64,
    );
    println!("paper: t 262->52 ms, #Plans 200536->123954, t/plan 1.31->0.42 us, mem 329->136 KB");
    let mut sink = ofw_bench::json::BenchSink::new("table_q8_plangen");
    sink.push(ofw_bench::plan_row_json(&simmen));
    sink.push(ofw_bench::plan_row_json(&ours));
    sink.finish();
}
