//! G1 — the grouping-workload table for the combined ordering +
//! grouping framework (the VLDB'04 extension): plan generation for
//! random join graphs with `group by` / `select distinct` requirements,
//! DFSM framework vs Simmen baseline, with the optimal cost
//! cross-checked against the naive explicit-set oracle on the small
//! cells, followed by the TPC-H-style early-grouping showcase plan.
//!
//! Usage: `table_grouping [queries_per_cell] [max_n]` (defaults 5, 8).
//! The explicit-oracle cross-check runs for n ≤ 5.

use ofw_core::{OrderingFramework, PruneConfig};
use ofw_plangen::PlanGen;
use ofw_query::extract::ExtractOptions;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let queries: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let max_n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);

    println!("Grouping workload — combined ordering + grouping framework ({queries} queries/cell)");
    println!();
    println!(
        "{:>2} {:>7} {:>8} | {:>9} {:>9} | {:>9} {:>9} | {:>6} {:>8}",
        "n", "#Edges", "oracle✓", "t(ms) S", "#Plans S", "t(ms) O", "#Plans O", "% t", "% #Plans"
    );
    let mut sink = ofw_bench::json::BenchSink::new("table_grouping");
    for extra in 0..=1usize {
        let edge_label = ["n-1", "n"][extra];
        for n in 4..=max_n {
            let check_explicit = n <= 5;
            let cell = ofw_bench::grouping_cell(
                n,
                extra,
                queries,
                0x6751 + (n * 10 + extra) as u64,
                check_explicit,
            );
            let s = &cell.simmen;
            let o = &cell.ours;
            println!(
                "{:>2} {:>7} {:>8} | {:>9} {:>9} | {:>9} {:>9} | {:>6.2} {:>8.2}",
                n,
                edge_label,
                if check_explicit { "yes" } else { "-" },
                ofw_bench::ms(s.time),
                s.plans,
                ofw_bench::ms(o.time),
                o.plans,
                s.time.as_secs_f64() / o.time.as_secs_f64().max(1e-12),
                s.plans as f64 / o.plans.max(1) as f64,
            );
            sink.push(
                ofw_bench::json::Obj::new()
                    .int("n", n)
                    .str("edges", edge_label)
                    .str("oracle_checked", if check_explicit { "yes" } else { "no" })
                    .raw("simmen", ofw_bench::plan_row_json(s).build())
                    .raw("ours", ofw_bench::plan_row_json(o).build()),
            );
        }
        println!();
    }
    println!("S = Simmen et al., O = ours; oracle✓ = optimum also cross-checked");
    println!("against the naive explicit-set oracle (all three arms agree).");
    println!();

    // The TPC-H-style showcase: early hash-grouping beats sorting and
    // whole-output hashing.
    let (catalog, query) = ofw_workload::q13_style_query();
    let ex = ofw_query::extract(&catalog, &query, &ExtractOptions::default());
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
    let r = PlanGen::new(&catalog, &query, &ex, &fw).run();
    println!("TPC-H-style \"customers per nation\" (group by n1_name), optimal plan:");
    print!(
        "{}",
        r.arena.render(r.best, &|i| catalog
            .relation(query.relations[i])
            .name
            .clone())
    );
    let simmen = ofw_bench::run_simmen(&catalog, &query, &ex);
    let ours = ofw_bench::run_ours(&catalog, &query, &ex);
    ofw_bench::assert_costs_agree(&simmen, &ours);
    println!();
    println!(
        "q13-style: t {} -> {} ms, #Plans {} -> {}",
        ofw_bench::ms(simmen.time),
        ofw_bench::ms(ours.time),
        simmen.plans,
        ours.plans
    );
    sink.push(
        ofw_bench::json::Obj::new()
            .str("query", "q13_style")
            .raw("simmen", ofw_bench::plan_row_json(&simmen).build())
            .raw("ours", ofw_bench::plan_row_json(&ours).build()),
    );
    sink.finish();
}
