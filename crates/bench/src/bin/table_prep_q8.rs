//! E5 — regenerates the §6.2 preparation table for TPC-R Query 8:
//! NFSM/DFSM sizes, preparation time and precomputed bytes, with and
//! without the §5.7 pruning techniques.
//!
//! Paper reference values (AMD Athlon XP 1800+, gcc 3.2):
//! ```text
//!                     w/o pruning   with pruning
//! NFSM size           376 nodes     38 nodes
//! DFSM size           80 nodes      24 nodes
//! total time          16 ms         0.2 ms
//! precomputed data    3040 bytes    912 bytes
//! ```

fn main() {
    let (without, with) = ofw_bench::prep_q8();
    println!("TPC-R Query 8 — preparation step (paper §6.2)");
    println!();
    println!("{:<22} {:>14} {:>14}", "", "w/o pruning", "with pruning");
    println!(
        "{:<22} {:>8} nodes {:>8} nodes",
        "NFSM size", without.nfsm_nodes, with.nfsm_nodes
    );
    println!(
        "{:<22} {:>8} nodes {:>8} nodes",
        "DFSM size", without.dfsm_nodes, with.dfsm_nodes
    );
    println!(
        "{:<22} {:>9} ms {:>10} ms",
        "total time",
        ofw_bench::ms(without.total_time),
        ofw_bench::ms(with.total_time)
    );
    println!(
        "{:<22} {:>8} bytes {:>8} bytes",
        "precomputed data", without.precomputed_bytes, with.precomputed_bytes
    );
    println!();
    println!("paper: NFSM 376 -> 38, DFSM 80 -> 24, time 16ms -> 0.2ms, bytes 3040 -> 912");
    let mut sink = ofw_bench::json::BenchSink::new("table_prep_q8");
    sink.push(ofw_bench::prep_row_json(&without));
    sink.push(ofw_bench::prep_row_json(&with));
    sink.finish();
}
