//! P1 — the thread-scaling table: serial DP driver vs the work-stealing
//! parallel driver (`ofw-parallel`), per oracle arm, over large
//! chain/star/clique join graphs.
//!
//! Usage: `table_parallel [--smoke | --full]`
//!
//! * `--smoke` — small cells, threads {1, 2}: the CI configuration
//!   (seconds, exercises every topology and the identity checks).
//! * default — the sweep up to 70-relation chains, threads {1, 2, 4}.
//! * `--full` — adds the 100-relation chain and denser cells, threads
//!   {1, 2, 4, 8}.
//!
//! Every parallel run is asserted byte-identical to the serial run.
//! Speedups are real wall-clock ratios on *this* machine: on a single
//! hardware thread the pool can only tie (scheduling overhead makes it
//! slightly worse); the `avail` field in `BENCH_parallel.json` records
//! what the machine offered.
//!
//! Arm coverage shrinks as cells grow, by necessity, and that is part
//! of the result: the Simmen baseline's weak dominance (it cannot see
//! that build-side FDs are irrelevant) inflates its Pareto widths until
//! ~16 relations are out of reach, and the explicit-set oracle is
//! Ω(2ⁿ) by design. Only the DFSM framework — O(1) probes on shared
//! read-mostly state — reaches the 70+-relation cells, serial or
//! parallel. A 40-relation *clique* is unreachable for every arm: the
//! exhaustive DP itself would need 2⁴⁰ table entries (Θ(3ⁿ) partition
//! visits), so the clique sweep stops where cells still fit in memory.

use ofw_bench::{parallel_cell, parallel_row_json, parallel_row_line};
use ofw_parallel::available_threads;
use ofw_workload::Topology;

struct Cell {
    topology: Topology,
    n: usize,
    /// Lean extraction (no per-join interesting orders) for the very
    /// wide cells.
    lean: bool,
    /// Run the Ω(n) Simmen baseline arm (small cells only).
    simmen: bool,
    /// Run the Ω(2ⁿ) explicit-set oracle arm (tiny cells only).
    explicit: bool,
}

fn cell(topology: Topology, n: usize, lean: bool, simmen: bool, explicit: bool) -> Cell {
    Cell {
        topology,
        n,
        lean,
        simmen,
        explicit,
    }
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let (label, threads, cells): (&str, Vec<usize>, Vec<Cell>) = match mode.as_str() {
        "--smoke" => (
            "smoke",
            vec![1, 2],
            vec![
                cell(Topology::Chain, 10, false, true, true),
                cell(Topology::Chain, 30, true, false, false),
                cell(Topology::Star, 8, false, true, false),
                cell(Topology::Clique, 6, false, true, false),
            ],
        ),
        "--full" => (
            "full",
            vec![1, 2, 4, 8],
            vec![
                cell(Topology::Chain, 10, false, true, true),
                cell(Topology::Chain, 20, false, false, false),
                cell(Topology::Chain, 30, false, false, false),
                cell(Topology::Chain, 40, false, false, false),
                cell(Topology::Chain, 70, true, false, false),
                cell(Topology::Chain, 100, true, false, false),
                cell(Topology::Star, 8, false, true, false),
                cell(Topology::Star, 12, false, false, false),
                cell(Topology::Star, 14, false, false, false),
                cell(Topology::Clique, 7, false, true, false),
                cell(Topology::Clique, 12, true, false, false),
                cell(Topology::Clique, 14, true, false, false),
            ],
        ),
        _ => (
            "default",
            vec![1, 2, 4],
            vec![
                cell(Topology::Chain, 10, false, true, true),
                cell(Topology::Chain, 20, false, false, false),
                cell(Topology::Chain, 30, false, false, false),
                cell(Topology::Chain, 50, true, false, false),
                cell(Topology::Chain, 70, true, false, false),
                cell(Topology::Star, 8, false, true, false),
                cell(Topology::Star, 12, false, false, false),
                cell(Topology::Clique, 7, false, true, false),
                cell(Topology::Clique, 10, true, false, false),
                cell(Topology::Clique, 12, true, false, false),
            ],
        ),
    };

    let avail = available_threads();
    println!("Parallel DP thread-scaling sweep ({label}; {avail} hardware thread(s) available)");
    println!();
    println!(
        "{:>6} {:>4} {:>5} {:>22} {:>7} | {:>10} {:>9} {:>8} {:>9}",
        "shape", "n", "extr", "framework", "driver", "t(ms)", "#Plans", "speedup", "plans=="
    );
    let mut sink = ofw_bench::json::BenchSink::with_meta("parallel", |m| m.str("mode", label));
    for c in &cells {
        let rows = parallel_cell(
            c.topology,
            c.n,
            0x9a11e1 + c.n as u64,
            c.lean,
            &threads,
            c.simmen,
            c.explicit,
        );
        for row in &rows {
            println!("{}", parallel_row_line(row));
            sink.push(parallel_row_json(row));
        }
        println!();
    }

    sink.finish();
}
