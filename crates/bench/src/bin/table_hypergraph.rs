//! H1 — the enumerator table: size-layered DPsize vs neighborhood-driven
//! DPhyp vs the budgeted linearized fallback, over large
//! chain/cycle/star/clique join graphs (DFSM arm).
//!
//! Usage: `table_hypergraph [--smoke | --full]`
//!
//! * `--smoke` — the CI configuration (seconds): identity cells where
//!   both exhaustive enumerators run, plus the 20/50/100-relation
//!   clique fallback cells under the default budget.
//! * default — adds wider exact cells (100-relation chain and
//!   50-relation cycle are exact under the default budget).
//! * `--full` — adds the near-budget 13-relation clique (the largest
//!   clique DPhyp finishes exactly under the default budget) and the
//!   denser star cells.
//!
//! Wherever DPsize runs, every exhaustive strategy is asserted to match
//! it exactly (same plans, same pairs, same cost — `ratio` 1.000); the
//! `#considered` column is the enumeration work actually done, which is
//! where DPhyp wins. `auto` rows with `resolved = linearized` crossed
//! the budget: their `ratio` (where a reference exists) is the
//! optimality price paid for planning a query no exhaustive enumerator
//! can touch.

use ofw_bench::{hypergraph_cell, hypergraph_row_json, hypergraph_row_line};
use ofw_plangen::{Enumerator, DEFAULT_ENUMERATION_BUDGET};
use ofw_workload::Topology;

struct Cell {
    topology: Topology,
    n: usize,
    lean: bool,
    enumerators: Vec<Enumerator>,
}

fn cell(topology: Topology, n: usize, lean: bool, enumerators: &[Enumerator]) -> Cell {
    Cell {
        topology,
        n,
        lean,
        enumerators: enumerators.to_vec(),
    }
}

fn main() {
    use Enumerator::{Auto, DpHyp, DpSize};
    let mode = std::env::args().nth(1).unwrap_or_default();
    // Identity cells (DpSize + DpHyp + Auto) and the clique fallback
    // ladder run in every mode — the 100-relation clique under the
    // default budget is the acceptance cell.
    let mut cells = vec![
        cell(Topology::Chain, 20, false, &[DpSize, DpHyp, Auto]),
        cell(Topology::Cycle, 12, false, &[DpSize, DpHyp, Auto]),
        cell(Topology::Star, 10, false, &[DpSize, DpHyp]),
        cell(Topology::Clique, 8, false, &[DpSize, DpHyp]),
        cell(Topology::Clique, 20, true, &[Auto]),
        cell(Topology::Clique, 50, true, &[Auto]),
        cell(Topology::Clique, 100, true, &[Auto]),
    ];
    let label = match mode.as_str() {
        "--smoke" => "smoke",
        "--full" => {
            cells.extend([
                cell(Topology::Chain, 50, true, &[DpHyp, Auto]),
                cell(Topology::Chain, 100, true, &[Auto]),
                cell(Topology::Cycle, 50, true, &[Auto]),
                cell(Topology::Cycle, 100, true, &[Auto]),
                cell(Topology::Star, 14, false, &[DpSize, DpHyp]),
                cell(Topology::Clique, 12, true, &[DpSize, DpHyp]),
                // The largest clique DPhyp finishes exactly under the
                // default 1M-pair budget (~789k pairs).
                cell(Topology::Clique, 13, true, &[DpHyp, Auto]),
            ]);
            "full"
        }
        _ => {
            cells.extend([
                cell(Topology::Chain, 50, true, &[DpHyp, Auto]),
                cell(Topology::Chain, 100, true, &[Auto]),
                cell(Topology::Cycle, 50, true, &[Auto]),
                cell(Topology::Clique, 12, true, &[DpSize, DpHyp]),
            ]);
            "default"
        }
    };

    println!(
        "Enumerator sweep ({label}; default budget = {} csg-cmp pairs)",
        DEFAULT_ENUMERATION_BUDGET
    );
    println!();
    println!(
        "{:>6} {:>4} {:>5} {:>10} {:>10} | {:>10} {:>9} {:>10} {:>12} {:>7} {:>8}",
        "shape",
        "n",
        "extr",
        "strategy",
        "resolved",
        "t(ms)",
        "#Plans",
        "#pairs",
        "#considered",
        "#unions",
        "ratio"
    );
    let mut sink = ofw_bench::json::BenchSink::with_meta("hypergraph", |m| m.str("mode", label));
    for c in &cells {
        let rows = hypergraph_cell(
            c.topology,
            c.n,
            0x4279_u64 + c.n as u64,
            c.lean,
            &c.enumerators,
            None,
        );
        for row in &rows {
            println!("{}", hypergraph_row_line(row));
            sink.push(hypergraph_row_json(row));
        }
        println!();
    }

    sink.finish();
}
