//! TR1 — the observability table: plan generation with the trace sink
//! disabled vs recording, over the canonical workloads (DFSM arm).
//!
//! Usage: `table_trace [--smoke | --full]`
//!
//! * `--smoke` — the CI configuration: 2 interleaved run pairs per
//!   workload;
//! * default — 5 run pairs;
//! * `--full` — 20 run pairs (tighter minima).
//!
//! Three workloads: TPC-R Q8 (the paper's §7 measurement), a 7-relation
//! grouping query (aggregation + enforcer traffic), and the 20-relation
//! clique under lean extraction (the `Auto` enumerator's linearized
//! fallback). Every recording run is asserted **byte-identical** to the
//! untraced run before its time is reported; `over%` is the cost of
//! *enabling* the sink (wall-clock — volatile for the trend gate, like
//! the `share_*_pct` phase columns), while the span/plan/probe counters
//! are deterministic and gated across commits.
//!
//! Each workload's Chrome trace-event export is written next to the
//! table as `TRACE_<workload>.json` — load it in `about:tracing` /
//! Perfetto, or validate with `scripts/check_trace.py`. The q8 span
//! tree is printed in full as the human-readable sample.

use ofw_bench::{trace_cell, trace_row_json, trace_row_line};
use ofw_plangen::Enumerator;
use ofw_query::extract::ExtractOptions;
use ofw_workload::{
    grouping_query, large_query, q8_query, GroupingQueryConfig, LargeQueryConfig, Topology,
};
use std::io::Write as _;

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let (label, reps) = match mode.as_str() {
        "--smoke" => ("smoke", 2),
        "--full" => ("full", 20),
        _ => ("default", 5),
    };

    println!("Observability overhead ({label}; {reps} interleaved run pairs per row)");
    println!();
    println!(
        "{:>9} {:>5} | {:>11} {:>11} {:>9} | {:>7} {:>9} {:>8} {:>10} {:>7}",
        "workload",
        "reps",
        "off t(ms)",
        "on t(ms)",
        "over%",
        "#spans",
        "#Plans",
        "#pairs",
        "#probes",
        "dp%",
    );

    let mut sink = ofw_bench::json::BenchSink::with_meta("trace", |m| m.str("mode", label));

    // q8: the paper's measurement query, default extraction.
    let (catalog, query) = q8_query();
    let ex = ofw_query::extract(&catalog, &query, &ExtractOptions::default());
    let (row, trace) = trace_cell("q8", &catalog, &query, &ex, Enumerator::Auto, reps);
    println!("{}", trace_row_line(&row));
    sink.push(trace_row_json(&row));
    write_chrome("q8", &trace);
    let q8_tree = trace.summary_tree();

    // grouping: aggregation placement + enforcer traffic.
    let (catalog, query) = grouping_query(&GroupingQueryConfig {
        num_relations: 7,
        extra_edges: 1,
        seed: 42,
    });
    let ex = ofw_query::extract(&catalog, &query, &ExtractOptions::default());
    let (row, trace) = trace_cell("grouping", &catalog, &query, &ex, Enumerator::Auto, reps);
    println!("{}", trace_row_line(&row));
    sink.push(trace_row_json(&row));
    write_chrome("grouping", &trace);

    // clique20: the linearized fallback under lean extraction.
    let (catalog, query) = large_query(&LargeQueryConfig {
        topology: Topology::Clique,
        num_relations: 20,
        seed: 7,
    });
    let ex = ofw_query::extract(&catalog, &query, &ExtractOptions::lean());
    let (row, trace) = trace_cell("clique20", &catalog, &query, &ex, Enumerator::Auto, reps);
    println!("{}", trace_row_line(&row));
    sink.push(trace_row_json(&row));
    write_chrome("clique20", &trace);

    println!();
    println!("q8 span tree (recording run):");
    print!("{q8_tree}");
    println!();
    sink.finish();
}

/// Writes one workload's Chrome trace-event export as
/// `TRACE_<name>.json` into the current directory.
fn write_chrome(name: &str, trace: &ofw_obs::Trace) {
    let path = format!("TRACE_{name}.json");
    let mut f = std::fs::File::create(&path).expect("create TRACE json");
    f.write_all(trace.chrome_json().as_bytes())
        .expect("write TRACE json");
    println!("chrome trace: {path}");
}
