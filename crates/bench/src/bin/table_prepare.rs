//! PR1 — the preparation table: cold eager NFSM→DFSM construction vs
//! lazy determinization under a DP-like probe load vs warm interned
//! preparation, over family-structured specs with interesting-property
//! counts into the hundreds.
//!
//! Usage: `table_prepare [--smoke | --full]`
//!
//! * `--smoke` — the CI configuration (seconds): two family counts,
//!   few warm repetitions.
//! * default — the sweep through 600 interesting properties.
//! * `--full` — adds the 200/400-family cells (1200/2400 properties).
//!
//! Reading the table: `cold` is the eager preparation wall time and
//! the price every query pays without this PR's machinery; `lazy` +
//! `probe` is what a query actually pays under lazy determinization
//! (`mat%` of the automaton materialized); `warm` is a repeat-shape
//! preparation through the interning cache. The `eager probe` column
//! shows the probe load is cheap against a hot automaton — in the
//! wide cells preparation dominates probing by orders of magnitude,
//! which is why making preparation near-free matters.

use ofw_bench::prepare::{prepare_cell, prepare_row_json, prepare_row_line};
use ofw_workload::PrepSpecConfig;

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let (label, family_counts, warm_reps): (&str, Vec<usize>, usize) = match mode.as_str() {
        "--smoke" => ("smoke", vec![10, 50], 3),
        "--full" => ("full", vec![10, 25, 50, 100, 200, 400], 8),
        _ => ("default", vec![10, 25, 50, 100], 5),
    };

    println!("Preparation sweep ({label}; cold eager vs lazy+probe vs warm interned)");
    println!();
    println!(
        "{:>5} {:>6} {:>6} {:>6} {:>7} {:>8} {:>6} | {:>9} {:>9} {:>9} {:>9} {:>9}",
        "fam",
        "probed",
        "props",
        "nfsm",
        "dfsm",
        "dfsm mat",
        "mat%",
        "cold(ms)",
        "lazy(ms)",
        "probe(ms)",
        "eprobe",
        "warm(ms)"
    );
    let mut sink = ofw_bench::json::BenchSink::with_meta("prepare", |m| m.str("mode", label));
    let (mut total_states, mut total_materialized, mut total_hits) = (0usize, 0usize, 0u64);
    for &families in &family_counts {
        let config = PrepSpecConfig::with_families(families);
        // A query rarely cares about more than a handful of the
        // catalog's interesting-order families: probe a ~10% prefix.
        let probe_families = (families / 10).max(1);
        let row = prepare_cell(&config, probe_families, warm_reps);
        println!("{}", prepare_row_line(&row));
        total_states += row.dfsm_states_total;
        total_materialized += row.dfsm_states_materialized;
        total_hits += row.prep_interned_hits;
        sink.push(prepare_row_json(&row));
    }
    println!();
    println!(
        "summary: lazy determinization materialized {}/{} DFSM states ({:.1}%) across the sweep; {} interned cache hits",
        total_materialized,
        total_states,
        total_materialized as f64 / total_states.max(1) as f64 * 100.0,
        total_hits,
    );
    sink.finish();
}
