//! GJ1 — the aggregation-placement table: star-schema aggregation
//! queries planned with the full placement search (eager/eager-count
//! partial aggregates per subset, fused group-joins at the root)
//! against the root-only-aggregation ceiling, DFSM arm, with the placed
//! optimum cross-checked against the Simmen and explicit-set arms on
//! the small cells. Ends with the "orders per customer" showcase whose
//! optimal plan is a fused group-join.
//!
//! Usage: `table_groupjoin [queries_per_cell] [max_dimensions]`
//! (defaults 5, 4). Arm cross-checks run for cells with ≤ 2 dimensions.

use ofw_core::{OrderingFramework, PruneConfig};
use ofw_plangen::{PlanGen, PlanOp};
use ofw_query::extract::ExtractOptions;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let queries: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let max_dims: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);

    println!("Aggregation placement — group-join + eager/lazy push-down ({queries} queries/cell)");
    println!();
    println!(
        "{:>2} {:>5} {:>6} | {:>9} {:>9} | {:>9} {:>9} | {:>5} {:>8} {:>8}",
        "d",
        "#Rels",
        "arms✓",
        "t(ms) R",
        "#Plans R",
        "t(ms) P",
        "#Plans P",
        "wins",
        "avg win",
        "max win"
    );
    let mut sink = ofw_bench::json::BenchSink::new("groupjoin");
    for dims in 1..=max_dims {
        let check_arms = dims <= 2;
        let cell = ofw_bench::groupjoin_cell(dims, queries, 0x6A01 + dims as u64 * 100, check_arms);
        println!(
            "{:>2} {:>5} {:>6} | {:>9} {:>9} | {:>9} {:>9} | {:>2}/{:<2} {:>8.2} {:>8.2}",
            dims,
            dims + 1,
            if check_arms { "yes" } else { "-" },
            ofw_bench::ms(cell.root_only.time),
            cell.root_only.plans,
            ofw_bench::ms(cell.placed.time),
            cell.placed.plans,
            cell.wins,
            cell.queries,
            cell.root_only.best_cost / cell.placed.best_cost,
            cell.max_win,
        );
        sink.push(ofw_bench::placement_cell_json(&cell));
    }
    println!();
    println!("R = root-only aggregation (ceiling), P = placement enabled;");
    println!("win = R cost / P cost; arms✓ = placed optimum cross-checked against");
    println!("the Simmen and explicit-set oracles (all three arms agree).");
    println!();

    // The group-join showcase: "orders per customer".
    let (catalog, query) = ofw_workload::groupjoin_showcase_query();
    let ex = ofw_query::extract(&catalog, &query, &ExtractOptions::default());
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
    let placed = PlanGen::new(&catalog, &query, &ex, &fw).run();
    let root_only = PlanGen::new(&catalog, &query, &ex, &fw)
        .aggregation_placement(false)
        .run();
    println!("\"orders per customer\" (group by c_custkey), optimal plan:");
    print!(
        "{}",
        placed.arena.render(placed.best, &|i| catalog
            .relation(query.relations[i])
            .name
            .clone())
    );
    let mut uses_group_join = false;
    let mut stack = vec![placed.best];
    while let Some(p) = stack.pop() {
        let op = &placed.arena.node(p).op;
        uses_group_join |= matches!(op, PlanOp::GroupJoin { .. });
        stack.extend(op.inputs());
    }
    assert!(uses_group_join, "the showcase optimum must be a group-join");
    assert!(placed.cost < root_only.cost);
    println!();
    println!(
        "showcase: cost {:.0} (root-only {:.0}, win {:.2}x), group-join: {}",
        placed.cost,
        root_only.cost,
        root_only.cost / placed.cost,
        uses_group_join,
    );
    // Nested rows keep the `plans` counters visible to the bench-trend
    // gate (it matches counter fields at any nesting depth).
    sink.push(
        ofw_bench::json::Obj::new()
            .str("query", "orders_per_customer")
            .int("uses_group_join", usize::from(uses_group_join))
            .raw(
                "placed",
                ofw_bench::json::Obj::new()
                    .num("best_cost", placed.cost)
                    .int("plans", placed.stats.plans)
                    .build(),
            )
            .raw(
                "root_only",
                ofw_bench::json::Obj::new()
                    .num("best_cost", root_only.cost)
                    .int("plans", root_only.stats.plans)
                    .build(),
            ),
    );
    sink.finish();
}
