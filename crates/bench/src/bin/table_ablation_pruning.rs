//! A1 — ablation of the §5.7 reduction techniques on TPC-R Query 8:
//! each pruning switch is disabled in isolation (and enabled in
//! isolation) to show where the NFSM/DFSM size reductions come from.

use ofw_core::PruneConfig;

fn main() {
    let all = PruneConfig::default();
    let none = PruneConfig::none();
    let variants: Vec<(&str, PruneConfig)> = vec![
        ("none", none.clone()),
        (
            "only fd-pruning",
            PruneConfig {
                prune_fds: true,
                ..none.clone()
            },
        ),
        (
            "only merge",
            PruneConfig {
                merge_artificial: true,
                ..none.clone()
            },
        ),
        (
            "only eps-replace",
            PruneConfig {
                eps_replace: true,
                ..none.clone()
            },
        ),
        (
            "only prefix-filter",
            PruneConfig {
                prefix_filter: true,
                ..none.clone()
            },
        ),
        (
            "only length-cutoff",
            PruneConfig {
                length_cutoff: true,
                ..none.clone()
            },
        ),
        (
            "all minus fd-pruning",
            PruneConfig {
                prune_fds: false,
                ..all.clone()
            },
        ),
        (
            "all minus merge",
            PruneConfig {
                merge_artificial: false,
                ..all.clone()
            },
        ),
        (
            "all minus eps-replace",
            PruneConfig {
                eps_replace: false,
                ..all.clone()
            },
        ),
        (
            "all minus prefix-filter",
            PruneConfig {
                prefix_filter: false,
                ..all.clone()
            },
        ),
        (
            "all minus length-cutoff",
            PruneConfig {
                length_cutoff: false,
                ..all.clone()
            },
        ),
        ("all", all),
    ];

    println!("Pruning ablation — TPC-R Query 8 preparation (paper §5.7 / §6.2)");
    println!();
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "configuration", "NFSM pre", "NFSM", "DFSM", "bytes", "time(ms)"
    );
    let mut sink = ofw_bench::json::BenchSink::new("table_ablation_pruning");
    for (label, config) in variants {
        let row = ofw_bench::prep_q8_with(label, config);
        println!(
            "{:<26} {:>10} {:>10} {:>10} {:>10} {:>10}",
            row.label,
            row.nfsm_nodes_before,
            row.nfsm_nodes,
            row.dfsm_nodes,
            row.precomputed_bytes,
            ofw_bench::ms(row.total_time)
        );
        sink.push(ofw_bench::prep_row_json(&row));
    }
    sink.finish();
}
