//! EX1 — the executor table: DP winners of the differential harness's
//! workload families *executed* by the morsel-driven vectorized engine
//! on statistics-shaped columns, serial and pooled, with execution
//! wall-clock and throughput printed next to the plan time the other
//! tables track. Each cell self-checks: the DP plan's result signature
//! must equal the canonical reference plan's, and the pooled run must
//! be byte-identical to the serial one.
//!
//! Ends with the cost-model calibration table: micro-plans that isolate
//! one operator each, timed over the same generator, so the measured
//! nanoseconds per cost unit show how uniform (or not) the abstract
//! cost model's currency is across operators.
//!
//! Usage: `table_exec [--smoke|--full]` (default: a mid-size sweep;
//! `--smoke` shrinks rows for CI, `--full` scales to 10^6..10^7-row
//! base relations).

use std::time::{Duration, Instant};

use ofw_catalog::Catalog;
use ofw_common::SerialExecutor;
use ofw_core::{OrderingFramework, PruneConfig};
use ofw_exec::{
    execute_plan, execute_serial, reference_plan, result_signature, ExecOptions, ExecStats,
};
use ofw_obs::Trace;
use ofw_parallel::ThreadPool;
use ofw_plangen::plan::AggMark;
use ofw_plangen::{cost, PlanArena, PlanGen, PlanId, PlanNode, PlanOp};
use ofw_query::extract::ExtractOptions;
use ofw_query::{AggCall, AggFunc, Query, QueryBuilder};
use ofw_workload::{
    generate_columns, grouping_query, random_query, star_agg_query, DataConfig,
    GroupingQueryConfig, RandomQueryConfig, StarAggConfig,
};

/// Run mode: how large the generated base relations are.
#[derive(Clone, Copy)]
struct Mode {
    name: &'static str,
    /// [`DataConfig`] shape for the workload cells.
    scale: f64,
    min_rows: usize,
    max_rows: usize,
    /// Base rows for the single-relation calibration micro-plans.
    calib_rows: usize,
    /// Rows per side for the join calibration micro-plans.
    calib_join_rows: usize,
    /// Rows per side for the nested-loop micro-plan (quadratic!).
    calib_nl_rows: usize,
}

const SMOKE: Mode = Mode {
    name: "smoke",
    scale: 0.02,
    min_rows: 2_000,
    max_rows: 20_000,
    calib_rows: 100_000,
    calib_join_rows: 50_000,
    calib_nl_rows: 1_000,
};
const DEFAULT: Mode = Mode {
    name: "default",
    scale: 0.2,
    min_rows: 20_000,
    max_rows: 200_000,
    calib_rows: 500_000,
    calib_join_rows: 200_000,
    calib_nl_rows: 3_000,
};
const FULL: Mode = Mode {
    name: "full",
    scale: 2.0,
    min_rows: 200_000,
    max_rows: 10_000_000,
    calib_rows: 2_000_000,
    calib_join_rows: 1_000_000,
    calib_nl_rows: 8_000,
};

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Total rows pushed through all operators — the engine's work measure.
fn processed_rows(stats: &ExecStats) -> u64 {
    stats.ops.values().map(|s| s.rows).sum()
}

/// One workload cell: plan with the DFSM arm, execute serial + pooled,
/// self-check against the reference plan, return the JSON row.
fn workload_cell(
    family: &str,
    catalog: &Catalog,
    query: &Query,
    mode: &Mode,
    data_seed: u64,
    pool: &ThreadPool,
) -> ofw_bench::json::Obj {
    let ex = ofw_query::extract(catalog, query, &ExtractOptions::default());
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
    let plan_start = Instant::now();
    let r = PlanGen::new(catalog, query, &ex, &fw).run();
    let plan_time = plan_start.elapsed();

    let data = generate_columns(
        catalog,
        query,
        &DataConfig {
            scale: mode.scale,
            min_rows: mode.min_rows,
            max_rows: mode.max_rows,
            domain_cap: None,
            seed: data_seed,
        },
    );
    let base_rows: usize = data.iter().map(|cols| cols[0].len()).sum();

    let opts = ExecOptions::default();
    let exec_start = Instant::now();
    let (out, stats) = execute_plan(
        &r.arena,
        r.best,
        catalog,
        query,
        &data,
        &SerialExecutor,
        &opts,
        &Trace::disabled(),
    )
    .unwrap_or_else(|e| panic!("{family}: serial execution failed: {e}"));
    let serial_time = exec_start.elapsed();

    let pool_start = Instant::now();
    let (pooled_out, pooled_stats) = execute_plan(
        &r.arena,
        r.best,
        catalog,
        query,
        &data,
        pool,
        &opts,
        &Trace::disabled(),
    )
    .unwrap_or_else(|e| panic!("{family}: pooled execution failed: {e}"));
    let pool_time = pool_start.elapsed();
    assert_eq!(
        pooled_out, out,
        "{family}: pooled output not byte-identical"
    );
    assert_eq!(pooled_stats, stats, "{family}: pooled counters diverge");

    // Differential self-check: the DP winner answers the query exactly
    // like the canonical reference plan.
    let (ref_arena, ref_root) = reference_plan(query);
    let (ref_out, _) = execute_serial(&ref_arena, ref_root, catalog, query, &data)
        .unwrap_or_else(|e| panic!("{family}: reference plan failed: {e}"));
    assert_eq!(
        result_signature(query, &out),
        result_signature(query, &ref_out),
        "{family}: DP plan result diverges from the reference plan"
    );

    let proc = processed_rows(&stats);
    let rows_per_sec = proc as f64 / serial_time.as_secs_f64();
    println!(
        "{:<14} {:>9} {:>9} | {:>8.2} | {:>9.2} {:>9.2} {:>7.1}M | {:>7} {:>6}",
        family,
        base_rows,
        stats.rows_out,
        ms(plan_time),
        ms(serial_time),
        ms(pool_time),
        rows_per_sec / 1e6,
        stats.morsels,
        stats.op_batches(),
    );
    ofw_bench::json::Obj::new()
        .str("family", family)
        .int("base_rows", base_rows)
        .int("rows_out", stats.rows_out as usize)
        .int("morsels", stats.morsels as usize)
        .int("op_batches", stats.op_batches() as usize)
        .num("plan_ms", ms(plan_time))
        .num("exec_serial_ms", ms(serial_time))
        .num("exec_pool_ms", ms(pool_time))
        .num("rows_per_sec", rows_per_sec)
}

/// A single-relation grouping fixture for the calibration micro-plans.
fn calib_single(rows: usize, seed: u64) -> (Catalog, Query, Vec<Vec<Vec<i64>>>) {
    let mut catalog = Catalog::new();
    let rel = catalog.add_relation("r0", rows as f64, &["g", "v"]);
    catalog.set_distinct_values(catalog.attr("r0.g"), (rows as f64 / 64.0).max(2.0));
    let mut query = Query::new();
    query.add_relation(&catalog, rel);
    query.group_by = vec![catalog.attr("r0.g")];
    query.aggregates = vec![
        AggCall {
            func: AggFunc::Sum,
            input: Some(catalog.attr("r0.v")),
        },
        AggCall {
            func: AggFunc::Count,
            input: None,
        },
    ];
    let data = generate_columns(
        &catalog,
        &query,
        &DataConfig {
            scale: 1.0,
            min_rows: rows,
            max_rows: rows,
            domain_cap: None,
            seed,
        },
    );
    (catalog, query, data)
}

/// A two-relation equi-join fixture (`r0.k = r1.k`), keys shaped so the
/// join output is a small multiple of the input.
fn calib_join(rows: usize, seed: u64) -> (Catalog, Query, Vec<Vec<Vec<i64>>>) {
    let mut catalog = Catalog::new();
    catalog.add_relation("r0", rows as f64, &["a", "k"]);
    catalog.add_relation("r1", rows as f64, &["k2", "b"]);
    let distinct = (rows as f64 / 4.0).max(2.0);
    catalog.set_distinct_values(catalog.attr("r0.k"), distinct);
    catalog.set_distinct_values(catalog.attr("r1.k2"), distinct);
    let query = QueryBuilder::new(&catalog)
        .relation("r0")
        .relation("r1")
        .join("r0.k", "r1.k2", 1.0 / distinct)
        .build();
    let data = generate_columns(
        &catalog,
        &query,
        &DataConfig {
            scale: 1.0,
            min_rows: rows,
            max_rows: rows,
            domain_cap: None,
            seed,
        },
    );
    (catalog, query, data)
}

/// Builds a tiny hand-rolled arena: each closure gets the ids pushed so
/// far and returns the next operator.
#[allow(clippy::type_complexity)]
fn micro_plan(query: &Query, ops: &[&dyn Fn(&[PlanId]) -> PlanOp]) -> (PlanArena<()>, PlanId) {
    let mut arena: PlanArena<()> = PlanArena::new();
    let mut ids: Vec<PlanId> = Vec::new();
    for op in ops {
        let op = op(&ids);
        let mask = match &op {
            PlanOp::Scan { qrel } | PlanOp::IndexScan { qrel, .. } => query.relation_set(*qrel),
            _ => query.all_relations_set(),
        };
        ids.push(arena.push(PlanNode {
            op,
            mask,
            cost: 0.0,
            card: 0.0,
            state: (),
            agg: AggMark::NONE,
            applied_fds: Default::default(),
        }));
    }
    let root = *ids.last().unwrap();
    (arena, root)
}

/// One calibration row: execute the micro-plan serially, compare the
/// measured wall-clock against the abstract cost units of the *whole*
/// plan (computed from actual cardinalities, like the cost model would
/// with perfect estimates).
fn calibration_row(
    op_name: &str,
    catalog: &Catalog,
    query: &Query,
    data: &[Vec<Vec<i64>>],
    arena: &PlanArena<()>,
    root: PlanId,
    units: &dyn Fn(u64) -> f64,
) -> ofw_bench::json::Obj {
    let rows_in: usize = data.iter().map(|cols| cols[0].len()).sum();
    let start = Instant::now();
    let (out, stats) = execute_serial(arena, root, catalog, query, data)
        .unwrap_or_else(|e| panic!("calibration {op_name}: {e}"));
    let time = start.elapsed();
    let cost_units = units(out.num_rows() as u64);
    let proc = processed_rows(&stats);
    let rows_per_sec = proc as f64 / time.as_secs_f64();
    let ns_per_unit = time.as_secs_f64() * 1e9 / cost_units;
    println!(
        "{:<12} {:>9} {:>9} | {:>12.0} {:>9.2} | {:>7.1}M {:>8.1}",
        op_name,
        rows_in,
        out.num_rows(),
        cost_units,
        ms(time),
        rows_per_sec / 1e6,
        ns_per_unit,
    );
    ofw_bench::json::Obj::new()
        .str("op", op_name)
        .int("rows_in", rows_in)
        .int("rows_out", out.num_rows())
        .int("morsels", stats.morsels as usize)
        .int("op_batches", stats.op_batches() as usize)
        .num("cost_units", cost_units)
        .num("exec_ms", ms(time))
        .num("rows_per_sec", rows_per_sec)
        .num("ns_per_unit", ns_per_unit)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mode = match args.get(1).map(String::as_str) {
        Some("--smoke") => SMOKE,
        Some("--full") => FULL,
        _ => DEFAULT,
    };
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8);
    let pool = ThreadPool::new(threads);
    println!(
        "Vectorized execution — morsel-driven DP winners, {} mode, pool of {threads}",
        mode.name
    );
    println!();
    println!(
        "{:<14} {:>9} {:>9} | {:>8} | {:>9} {:>9} {:>8} | {:>7} {:>6}",
        "family",
        "base rows",
        "rows out",
        "plan ms",
        "serial ms",
        "pool ms",
        "Mrows/s",
        "morsels",
        "batch"
    );
    let mut sink =
        ofw_bench::json::BenchSink::with_meta("exec", |meta| meta.str("mode", mode.name));

    let (catalog, query) = random_query(&RandomQueryConfig {
        num_relations: 4,
        extra_edges: 0,
        seed: 1,
    });
    sink.push(workload_cell(
        "chain-4", &catalog, &query, &mode, 101, &pool,
    ));
    let (catalog, query) = random_query(&RandomQueryConfig {
        num_relations: 5,
        extra_edges: 2,
        seed: 2,
    });
    sink.push(workload_cell(
        "cyclic-5", &catalog, &query, &mode, 102, &pool,
    ));
    let (catalog, query) = star_agg_query(&StarAggConfig {
        dimensions: 3,
        seed: 3,
    });
    sink.push(workload_cell(
        "star-agg-3",
        &catalog,
        &query,
        &mode,
        103,
        &pool,
    ));
    let (catalog, query) = grouping_query(&GroupingQueryConfig {
        num_relations: 4,
        extra_edges: 0,
        seed: 4,
    });
    sink.push(workload_cell(
        "grouping-4",
        &catalog,
        &query,
        &mode,
        104,
        &pool,
    ));
    println!();
    println!("serial/pool = vectorized execution wall-clock at 1/{threads} threads;");
    println!("Mrows/s = total operator-processed rows per serial second; every cell");
    println!("self-checks DP-vs-reference result signatures and pooled byte identity.");
    println!();

    // The calibration table: one isolated operator per micro-plan,
    // measured ns per abstract cost unit. A perfectly calibrated model
    // would show one constant down this column.
    println!("Cost-model calibration ({} mode):", mode.name);
    println!(
        "{:<12} {:>9} {:>9} | {:>12} {:>9} | {:>8} {:>8}",
        "operator", "rows in", "rows out", "cost units", "exec ms", "Mrows/s", "ns/unit"
    );
    let n = mode.calib_rows;
    let (catalog, query, data) = calib_single(n, 7);
    let key = query.group_by.clone();
    let nf = n as f64;
    let scan: &dyn Fn(&[PlanId]) -> PlanOp = &|_| PlanOp::Scan { qrel: 0 };
    for (name, ops, units) in [
        (
            "Scan",
            vec![scan],
            Box::new(move |_out| cost::scan(nf)) as Box<dyn Fn(u64) -> f64>,
        ),
        (
            "Sort",
            vec![scan, &|ids: &[PlanId]| PlanOp::Sort {
                input: ids[0],
                key: key.clone(),
            }],
            Box::new(move |_out| cost::scan(nf) + cost::sort(nf)),
        ),
        (
            "HashAgg",
            vec![scan, &|ids: &[PlanId]| PlanOp::HashAgg {
                input: ids[0],
                key: key.clone(),
                partial: false,
            }],
            Box::new(move |_out| cost::scan(nf) + cost::hash_aggregate(nf)),
        ),
        (
            "HashGroup",
            vec![scan, &|ids: &[PlanId]| PlanOp::HashGroup {
                input: ids[0],
                key: key.clone(),
            }],
            Box::new(move |_out| cost::scan(nf) + cost::hash_group(nf)),
        ),
        (
            "StreamAgg",
            vec![
                scan,
                &|ids: &[PlanId]| PlanOp::Sort {
                    input: ids[0],
                    key: key.clone(),
                },
                &|ids: &[PlanId]| PlanOp::StreamAgg {
                    input: ids[1],
                    key: key.clone(),
                    partial: false,
                },
            ],
            Box::new(move |_out| cost::scan(nf) + cost::sort(nf) + cost::streaming_aggregate(nf)),
        ),
    ] {
        let (arena, root) = micro_plan(&query, &ops);
        sink.push(calibration_row(
            name, &catalog, &query, &data, &arena, root, &units,
        ));
    }

    let jn = mode.calib_join_rows as f64;
    let (catalog, query, data) = calib_join(mode.calib_join_rows, 8);
    let join_key = vec![catalog.attr("r0.k")];
    let build_key = vec![catalog.attr("r1.k2")];
    let scan1: &dyn Fn(&[PlanId]) -> PlanOp = &|_| PlanOp::Scan { qrel: 1 };
    for (name, ops, units) in [
        (
            "HashJoin",
            vec![scan, scan1, &|ids: &[PlanId]| PlanOp::HashJoin {
                left: ids[0],
                right: ids[1],
                edge: 0,
            }],
            Box::new(move |out: u64| 2.0 * cost::scan(jn) + cost::hash_join(jn, jn, out as f64))
                as Box<dyn Fn(u64) -> f64>,
        ),
        (
            "MergeJoin",
            vec![
                scan,
                scan1,
                &|ids: &[PlanId]| PlanOp::Sort {
                    input: ids[0],
                    key: join_key.clone(),
                },
                &|ids: &[PlanId]| PlanOp::Sort {
                    input: ids[1],
                    key: build_key.clone(),
                },
                &|ids: &[PlanId]| PlanOp::MergeJoin {
                    left: ids[2],
                    right: ids[3],
                    edge: 0,
                },
            ],
            Box::new(move |out: u64| {
                2.0 * (cost::scan(jn) + cost::sort(jn)) + cost::merge_join(jn, jn, out as f64)
            }),
        ),
    ] {
        let (arena, root) = micro_plan(&query, &ops);
        sink.push(calibration_row(
            name, &catalog, &query, &data, &arena, root, &units,
        ));
    }

    let nl = mode.calib_nl_rows as f64;
    let (catalog, query, data) = calib_join(mode.calib_nl_rows, 9);
    let (arena, root) = micro_plan(
        &query,
        &[scan, scan1, &|ids: &[PlanId]| PlanOp::NestedLoopJoin {
            left: ids[0],
            right: ids[1],
        }],
    );
    let nl_units =
        move |out: u64| 2.0 * cost::scan(nl) + cost::nested_loop_join(nl, nl, out as f64);
    sink.push(calibration_row(
        "NestedLoop",
        &catalog,
        &query,
        &data,
        &arena,
        root,
        &nl_units,
    ));
    println!();
    println!("cost units = abstract model cost of the whole micro-plan at the *actual*");
    println!("cardinalities; ns/unit = measured serial wall-clock per unit — a flat");
    println!("column means the model's currency converts uniformly across operators.");

    sink.finish();
}
