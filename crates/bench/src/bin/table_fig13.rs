//! E7 — regenerates Fig. 13: plan generation for random join graphs with
//! n = 5..10 relations and n-1 / n / n+1 edges; Simmen's algorithm vs
//! ours, with improvement factors.
//!
//! Usage: `table_fig13 [queries_per_cell] [max_n]` (defaults 10 and 10;
//! the paper averaged 100 runs for small queries, 10 for large ones).

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let queries: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let max_n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(10);

    println!("Fig. 13 — plan generation for different join graphs ({queries} queries/cell)");
    println!();
    println!(
        "{:>2} {:>7} | {:>9} {:>9} {:>8} | {:>9} {:>9} {:>8} | {:>6} {:>8} {:>9}",
        "n",
        "#Edges",
        "t(ms) S",
        "#Plans S",
        "t/p S",
        "t(ms) O",
        "#Plans O",
        "t/p O",
        "% t",
        "% #Plans",
        "% t/plan"
    );
    let mut sink = ofw_bench::json::BenchSink::new("table_fig13");
    for extra in 0..=2usize {
        let edge_label = ["n-1", "n", "n+1"][extra];
        for n in 5..=max_n {
            let cell = ofw_bench::sweep_cell(n, extra, queries, 0xF13 + (n * 10 + extra) as u64);
            sink.push(
                ofw_bench::json::Obj::new()
                    .int("n", n)
                    .str("edges", edge_label)
                    .raw("simmen", ofw_bench::plan_row_json(&cell.simmen).build())
                    .raw("ours", ofw_bench::plan_row_json(&cell.ours).build()),
            );
            let s = &cell.simmen;
            let o = &cell.ours;
            println!(
                "{:>2} {:>7} | {:>9} {:>9} {:>8} | {:>9} {:>9} {:>8} | {:>6.2} {:>8.2} {:>9.2}",
                n,
                edge_label,
                ofw_bench::ms(s.time),
                s.plans,
                ofw_bench::us(s.time_per_plan),
                ofw_bench::ms(o.time),
                o.plans,
                ofw_bench::us(o.time_per_plan),
                s.time.as_secs_f64() / o.time.as_secs_f64().max(1e-12),
                s.plans as f64 / o.plans.max(1) as f64,
                s.time_per_plan.as_secs_f64() / o.time_per_plan.as_secs_f64().max(1e-12),
            );
        }
        println!();
    }
    println!("S = Simmen et al., O = ours; %x = Simmen / ours (higher = larger win)");
    sink.finish();
}
