//! E8 — regenerates Fig. 14: order-optimization memory consumption for
//! the same random join-graph sweep as Fig. 13, plus the DFSM size
//! (which is included in our total, as in the paper).
//!
//! Usage: `table_fig14 [queries_per_cell] [max_n]` (defaults 10, 10).

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let queries: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let max_n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(10);

    println!("Fig. 14 — memory consumption (KB, {queries} queries/cell)");
    println!();
    println!(
        "{:>2} {:>7} | {:>10} {:>14} {:>8}",
        "n", "#Edges", "Simmen", "Our Algorithm", "DFSM"
    );
    let mut sink = ofw_bench::json::BenchSink::new("table_fig14");
    for extra in 0..=2usize {
        let label = ["n-1", "n+0", "n+1"][extra];
        for n in 5..=max_n {
            // Same seeds as table_fig13 so the two tables describe the
            // same queries, as in the paper.
            let cell = ofw_bench::sweep_cell(n, extra, queries, 0xF13 + (n * 10 + extra) as u64);
            sink.push(
                ofw_bench::json::Obj::new()
                    .int("n", n)
                    .str("edges", label)
                    .int("simmen_memory_bytes", cell.simmen.memory_bytes)
                    .int("ours_memory_bytes", cell.ours.memory_bytes)
                    .int("dfsm_bytes", cell.dfsm_bytes),
            );
            println!(
                "{:>2} {:>7} | {:>10} {:>14} {:>8}",
                n,
                label,
                ofw_bench::kb(cell.simmen.memory_bytes),
                ofw_bench::kb(cell.ours.memory_bytes),
                ofw_bench::kb(cell.dfsm_bytes),
            );
        }
        println!();
    }
    println!("paper shape: our algorithm uses roughly half of Simmen's memory;");
    println!("the DFSM itself stays tiny (a few KB).");
    sink.finish();
}
