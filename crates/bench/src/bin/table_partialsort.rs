//! PS1 — the partial-sort table: `GROUP BY k ORDER BY k` star-schema
//! aggregation queries planned with the partial-sort enforcer (head/tail
//! properties) against the sort-only ceiling, DFSM arm, with the
//! partial-sort optimum cross-checked against the Simmen and explicit-
//! set arms and re-planned at 1/2/8 pool threads on the small cells.
//! Ends with the acceptance scenario: a hash aggregate whose grouped
//! output makes the root `ORDER BY` enforceable by a `PartialSort`
//! instead of a full `Sort`.
//!
//! Usage: `table_partialsort [queries_per_cell] [max_dimensions]`
//! (defaults 5, 4). Arm/thread cross-checks run for cells with ≤ 2
//! dimensions.

use ofw_core::{OrderingFramework, PruneConfig};
use ofw_plangen::{PlanGen, PlanOp};
use ofw_query::extract::ExtractOptions;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let queries: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let max_dims: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);

    println!("Partial sort — head/tail properties over grouped streams ({queries} queries/cell)");
    println!();
    println!(
        "{:>2} {:>5} {:>6} | {:>9} {:>9} | {:>9} {:>9} | {:>5} {:>5} {:>8} {:>8}",
        "d",
        "#Rels",
        "arms✓",
        "t(ms) S",
        "#Plans S",
        "t(ms) P",
        "#Plans P",
        "wins",
        "#PS",
        "avg win",
        "max win"
    );
    let mut sink = ofw_bench::json::BenchSink::new("partialsort");
    for dims in 1..=max_dims {
        let check_arms = dims <= 2;
        let cell =
            ofw_bench::partialsort_cell(dims, queries, 0x9501 + dims as u64 * 100, check_arms);
        println!(
            "{:>2} {:>5} {:>6} | {:>9} {:>9} | {:>9} {:>9} | {:>2}/{:<2} {:>2}/{:<2} {:>8.2} {:>8.2}",
            dims,
            dims + 1,
            if check_arms { "yes" } else { "-" },
            ofw_bench::ms(cell.sort_only.time),
            cell.sort_only.plans,
            ofw_bench::ms(cell.partial.time),
            cell.partial.plans,
            cell.wins,
            cell.queries,
            cell.partial_sort_plans,
            cell.queries,
            cell.sort_only.best_cost / cell.partial.best_cost,
            cell.max_win,
        );
        sink.push(ofw_bench::partialsort_cell_json(&cell));
    }
    println!();
    println!("S = sort-only enforcement (ceiling), P = partial-sort enforcer enabled;");
    println!("win = S cost / P cost; #PS = winners containing a PartialSort operator;");
    println!("arms✓ = partial-sort optimum cross-checked against the Simmen and");
    println!("explicit-set oracles and byte-stable at 1/2/8 pool threads.");
    println!();

    // The acceptance scenario: GROUP BY k ORDER BY k over a
    // 150 000-value key with no useful index — hash aggregation wins,
    // its grouped output turns the dominant root sort into a
    // PartialSort, and the win is visible in the *total* plan cost.
    let (catalog, query) = ofw_workload::partialsort_showcase_query();
    let ex = ofw_query::extract(&catalog, &query, &ExtractOptions::default());
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
    let partial = PlanGen::new(&catalog, &query, &ex, &fw).run();
    let sort_only = PlanGen::new(&catalog, &query, &ex, &fw)
        .partial_sort(false)
        .run();
    println!("\"orders per customer, listed by customer\" (group by + order by o_custkey):");
    print!(
        "{}",
        partial.arena.render(partial.best, &|i| catalog
            .relation(query.relations[i])
            .name
            .clone())
    );
    let mut uses_partial_sort = false;
    let mut stack = vec![partial.best];
    while let Some(p) = stack.pop() {
        let op = &partial.arena.node(p).op;
        uses_partial_sort |= matches!(op, PlanOp::PartialSort { .. });
        stack.extend(op.inputs());
    }
    assert!(
        uses_partial_sort,
        "the showcase optimum must use a partial sort"
    );
    assert!(partial.cost < sort_only.cost);
    println!();
    println!(
        "showcase: cost {:.0} (sort-only {:.0}, win {:.2}x), partial sort: {}",
        partial.cost,
        sort_only.cost,
        sort_only.cost / partial.cost,
        uses_partial_sort,
    );
    sink.push(
        ofw_bench::json::Obj::new()
            .str("query", "star_group_by_order_by")
            .int("uses_partial_sort", usize::from(uses_partial_sort))
            .raw(
                "partial",
                ofw_bench::json::Obj::new()
                    .num("best_cost", partial.cost)
                    .int("plans", partial.stats.plans)
                    .build(),
            )
            .raw(
                "sort_only",
                ofw_bench::json::Obj::new()
                    .num("best_cost", sort_only.cost)
                    .int("plans", sort_only.stats.plans)
                    .build(),
            ),
    );
    sink.finish();
}
