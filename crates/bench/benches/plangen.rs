//! E6/E7 (timing side) — end-to-end plan generation under each order
//! framework: TPC-R Query 8 and representative random join graphs.
//! Criterion's statistics complement the table binaries' single-shot
//! numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use ofw_catalog::Catalog;
use ofw_core::{OrderingFramework, PruneConfig};
use ofw_plangen::PlanGen;
use ofw_query::extract::ExtractOptions;
use ofw_query::{ExtractedQuery, Query};
use ofw_simmen::SimmenFramework;
use ofw_workload::{q8_query, random_query, RandomQueryConfig};

fn bench_pair(
    c: &mut Criterion,
    label: &str,
    catalog: &Catalog,
    query: &Query,
    ex: &ExtractedQuery,
) {
    c.bench_function(&format!("plangen/{label}/dfsm"), |b| {
        b.iter(|| {
            let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
            PlanGen::new(catalog, query, ex, &fw).run().cost
        })
    });
    c.bench_function(&format!("plangen/{label}/simmen"), |b| {
        b.iter(|| {
            let fw = SimmenFramework::prepare(&ex.spec);
            PlanGen::new(catalog, query, ex, &fw).run().cost
        })
    });
}

fn plangen(c: &mut Criterion) {
    let (catalog, query) = q8_query();
    let ex = ofw_query::extract(&catalog, &query, &ExtractOptions::default());
    bench_pair(c, "q8", &catalog, &query, &ex);

    for (n, extra, label) in [(5, 0, "chain5"), (7, 1, "n7+1"), (9, 2, "n9+2")] {
        let (catalog, query) = random_query(&RandomQueryConfig {
            num_relations: n,
            extra_edges: extra,
            seed: 4242,
        });
        let ex = ofw_query::extract(&catalog, &query, &ExtractOptions::default());
        bench_pair(c, label, &catalog, &query, &ex);
    }
}

criterion_group!(benches, plangen);
criterion_main!(benches);
