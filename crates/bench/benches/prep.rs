//! E5 (timing side) — the one-time preparation step (Fig. 3): NFSM
//! construction, pruning, determinization and precomputation for TPC-R
//! Query 8, with and without the §5.7 techniques, plus a random-query
//! preparation at several sizes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ofw_core::{OrderingFramework, PruneConfig};
use ofw_query::extract::ExtractOptions;
use ofw_workload::{q8_query, random_query, RandomQueryConfig};

fn prep(c: &mut Criterion) {
    let (catalog, query) = q8_query();
    let ex = ofw_query::extract(&catalog, &query, &ExtractOptions::default());

    c.bench_function("prep/q8/with-pruning", |b| {
        b.iter_batched(
            || ex.spec.clone(),
            |spec| OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap(),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("prep/q8/without-pruning", |b| {
        b.iter_batched(
            || ex.spec.clone(),
            |spec| OrderingFramework::prepare(&spec, PruneConfig::none()).unwrap(),
            BatchSize::SmallInput,
        )
    });

    for n in [5usize, 8, 10] {
        let (catalog, query) = random_query(&RandomQueryConfig {
            num_relations: n,
            extra_edges: 1,
            seed: 99,
        });
        let ex = ofw_query::extract(&catalog, &query, &ExtractOptions::default());
        c.bench_function(&format!("prep/random-n{n}"), |b| {
            b.iter_batched(
                || ex.spec.clone(),
                |spec| OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
}

criterion_group!(benches, prep);
criterion_main!(benches);
