//! A2 — microbenchmarks of the two hot ADT operations (`contains` and
//! `inferNewLogicalOrderings`) for both frameworks, on the TPC-R Query 8
//! input. This is the paper's core complexity claim made measurable:
//! O(1) table lookups vs Ω(n) reduction (even with Simmen's reduction
//! cache warm, it pays hash lookups instead of array indexing).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ofw_core::{OrderingFramework, PruneConfig};
use ofw_plangen::OrderOracle;
use ofw_query::extract::ExtractOptions;
use ofw_simmen::SimmenFramework;
use ofw_workload::q8_query;

fn setups() -> (OrderingFramework, SimmenFramework, ofw_core::InputSpec) {
    let (catalog, query) = q8_query();
    let ex = ofw_query::extract(&catalog, &query, &ExtractOptions::default());
    let ours = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
    let simmen = SimmenFramework::prepare(&ex.spec);
    (ours, simmen, ex.spec)
}

fn bench_oracle<O: OrderOracle>(
    c: &mut Criterion,
    label: &str,
    fw: &O,
    spec: &ofw_core::InputSpec,
) {
    let keys: Vec<O::Key> = spec
        .produced()
        .iter()
        .filter_map(|p| match p {
            ofw_core::LogicalProperty::Ordering(o) => fw.resolve(o),
            ofw_core::LogicalProperty::Grouping(g) => fw.resolve_grouping(g),
            ofw_core::LogicalProperty::HeadTail(h) => fw.resolve_head_tail(h),
        })
        .collect();
    let producible: Vec<O::Key> = keys
        .iter()
        .copied()
        .filter(|&k| fw.is_producible(k))
        .collect();
    let num_syms = spec.fd_sets().len();

    c.bench_function(&format!("{label}/infer"), |b| {
        let s0 = fw.produce(producible[0]);
        b.iter(|| {
            let mut s = s0;
            for f in 0..num_syms {
                s = fw.infer(s, ofw_core::FdSetId(f as u32));
            }
            black_box(s)
        })
    });

    c.bench_function(&format!("{label}/contains"), |b| {
        // Pre-walk to a state with many implied orderings.
        let mut s = fw.produce(producible[0]);
        for f in 0..num_syms {
            s = fw.infer(s, ofw_core::FdSetId(f as u32));
        }
        b.iter(|| {
            let mut hits = 0usize;
            for &k in &keys {
                if fw.satisfies(s, k) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });

    c.bench_function(&format!("{label}/produce"), |b| {
        b.iter(|| {
            for &k in &producible {
                black_box(fw.produce(k));
            }
        })
    });
}

fn adt_ops(c: &mut Criterion) {
    let (ours, simmen, spec) = setups();
    bench_oracle(c, "dfsm", &ours, &spec);
    bench_oracle(c, "simmen", &simmen, &spec);
}

criterion_group!(benches, adt_ops);
criterion_main!(benches);
