//! # ofw-parallel — parallel plan enumeration
//!
//! A dependency-free, deterministic work-stealing [`ThreadPool`]
//! ([`pool`]) and the parallel DP driver layered on it ([`driver`]).
//!
//! The pool implements `ofw_common::OrderedExecutor`, the seam the
//! plan generator's size-layered DP is written against: a layer is a
//! list of independent connected subsets, the pool runs them as chunks
//! on per-worker queues with back-stealing, and the layer barrier merges
//! the per-subset results in a fixed order. The final plan table —
//! operators, masks, costs, cardinalities, applied FDs, winner — is
//! **byte-identical to the serial driver at any thread count**, and so
//! are the per-node oracle state annotations whenever the oracle's
//! state handles are schedule-independent: unconditionally for the DFSM
//! framework (states precomputed before the DP), and for the memoizing
//! oracles (Simmen, explicit-set) once warmed by a serial run on the
//! same instance — cold, their content-addressed interners hand out
//! ids in schedule-dependent first-come order, so equal states can get
//! different numeric handles. See the determinism property tests in
//! `ofw-plangen` (which pin the warm-instance protocol).

pub mod driver;
pub mod pool;

pub use driver::plan_parallel;
pub use pool::{available_threads, ThreadPool};
