//! The parallel plan-generation driver: the DP of `ofw-plangen`
//! executed on the work-stealing pool.
//!
//! The DP core schedules work as **csg-cmp work-list batches**: each
//! enumerator ([`Enumerator`]) emits batches of union work items whose
//! input subsets are all committed by earlier batches — one batch per
//! subset size for the exhaustive enumerators, one per window×size for
//! the linearized fallback. Within a batch every item is independent,
//! so the driver hands the batch to the pool as chunks. Each chunk
//! builds its subsets' Pareto sets in a thread-local arena; the batch
//! barrier then merges the per-subset arenas into the global plan table
//! in the batch's deterministic item order. The result is byte-
//! identical to the serial driver regardless of thread count — the
//! entire schedule dependence is erased by the ordered merge.
//!
//! The oracle is shared read-mostly across workers (`O: Sync`), which is
//! exactly the property the paper's DFSM framework optimizes for: its
//! per-plan state is a 4-byte handle into precomputed, immutable tables,
//! so parallel probes contend on nothing. The Simmen baseline and the
//! explicit-set oracle keep their memoization caches behind a mutex and
//! pay for it — faithfully reproducing their cost profile at scale.

use crate::pool::ThreadPool;
use ofw_catalog::Catalog;
use ofw_obs::Trace;
use ofw_plangen::{Enumerator, OrderOracle, PlanGen, PlanGenResult};
use ofw_query::{ExtractedQuery, Query};

/// Plans `query` with the DP sharded across `pool`. Produces exactly the
/// plan table and winner the serial `PlanGen::run` produces — same
/// plans, same costs, same arena layout — just faster on multicore.
/// (Per-node oracle *state handles* are additionally bit-equal for the
/// DFSM framework, whose states are precomputed; the mutex-memoizing
/// oracles intern handles first-come, so bit-equality there needs the
/// oracle warmed by a serial run on the same instance — the states are
/// always semantically equal either way.)
pub fn plan_parallel<O>(
    catalog: &Catalog,
    query: &Query,
    ex: &ExtractedQuery,
    oracle: &O,
    pool: &ThreadPool,
) -> PlanGenResult<O::State>
where
    O: OrderOracle + Sync,
    O::Key: Sync,
    O::State: Send + Sync,
{
    PlanGen::new(catalog, query, ex, oracle).run_with(pool)
}

/// [`plan_parallel`] with an explicit enumeration strategy — the
/// parallel entry point for DPhyp runs and for `Auto`'s budgeted
/// fallback on queries too wide for exhaustive enumeration.
pub fn plan_parallel_with<O>(
    catalog: &Catalog,
    query: &Query,
    ex: &ExtractedQuery,
    oracle: &O,
    pool: &ThreadPool,
    enumerator: Enumerator,
) -> PlanGenResult<O::State>
where
    O: OrderOracle + Sync,
    O::Key: Sync,
    O::State: Send + Sync,
{
    PlanGen::new(catalog, query, ex, oracle)
        .enumerator(enumerator)
        .run_with(pool)
}

/// [`plan_parallel_with`] under a span sink: per-worker span buffers
/// are merged at each batch barrier in deterministic item order, so the
/// trace *skeleton* (names, labels, depths, counters) — like the plan
/// table itself — is identical at every thread count; only timestamps
/// and thread lanes differ.
pub fn plan_parallel_traced<O>(
    catalog: &Catalog,
    query: &Query,
    ex: &ExtractedQuery,
    oracle: &O,
    pool: &ThreadPool,
    enumerator: Enumerator,
    trace: &Trace,
) -> PlanGenResult<O::State>
where
    O: OrderOracle + Sync,
    O::Key: Sync,
    O::State: Send + Sync,
{
    PlanGen::new(catalog, query, ex, oracle)
        .enumerator(enumerator)
        .trace(trace)
        .run_with(pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofw_core::{OrderingFramework, PruneConfig};
    use ofw_query::extract::ExtractOptions;
    use ofw_query::QueryBuilder;

    #[test]
    fn parallel_driver_matches_serial_output() {
        let mut c = Catalog::new();
        c.add_relation("persons", 10_000.0, &["id", "name", "jobid"]);
        c.add_relation("jobs", 100.0, &["id", "salary"]);
        let jobs = c.relation_id("jobs").unwrap();
        let jid = c.attr("jobs.id");
        c.add_index(jobs, vec![jid], true);
        let q = QueryBuilder::new(&c)
            .relation("persons")
            .relation("jobs")
            .join("persons.jobid", "jobs.id", 0.01)
            .order_by(&["jobs.id", "persons.name"])
            .build();
        let ex = ofw_query::extract(&c, &q, &ExtractOptions::default());
        let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();

        let serial = PlanGen::new(&c, &q, &ex, &fw).run();
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            let par = plan_parallel(&c, &q, &ex, &fw, &pool);
            assert_eq!(par.best, serial.best, "threads={threads}");
            assert_eq!(par.cost.to_bits(), serial.cost.to_bits());
            assert_eq!(par.stats.plans, serial.stats.plans);
        }
    }

    /// DPhyp under the pool: same winner, cost and plan count as the
    /// serial size-layered DP, at every thread count.
    #[test]
    fn dphyp_under_the_pool_matches_serial_dpsize() {
        let (c, q) = ofw_workload::large_query(&ofw_workload::LargeQueryConfig {
            topology: ofw_workload::Topology::Cycle,
            num_relations: 10,
            seed: 42,
        });
        let ex = ofw_query::extract(&c, &q, &ExtractOptions::default());
        let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();

        let serial = PlanGen::new(&c, &q, &ex, &fw).run();
        assert_eq!(serial.stats.enumerator, "dpsize");
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            let par = plan_parallel_with(&c, &q, &ex, &fw, &pool, Enumerator::DpHyp);
            assert_eq!(par.stats.enumerator, "dphyp");
            assert_eq!(par.best, serial.best, "threads={threads}");
            assert_eq!(par.cost.to_bits(), serial.cost.to_bits());
            assert_eq!(par.stats.plans, serial.stats.plans);
            assert_eq!(par.stats.pairs_emitted, serial.stats.pairs_emitted);
            assert!(par.stats.pairs_considered < serial.stats.pairs_considered);
        }
    }
}
