//! A small, dependency-free, deterministic work-stealing thread pool.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** A job is `n` independent chunks `f(0) … f(n-1)`;
//!    the pool guarantees each chunk runs exactly once and returns the
//!    results *in chunk order*, so the caller cannot observe the
//!    schedule. Which thread ran which chunk is free to vary; what comes
//!    back is not.
//! 2. **Spawn-once.** Workers are OS threads spawned at pool creation
//!    and parked on a condvar between jobs — the DP driver submits one
//!    job per subset-size layer, and layer frequency is far too high to
//!    amortize a `thread::spawn` per layer.
//! 3. **Chunked queues + stealing.** Chunk indices are block-partitioned
//!    across per-worker deques ([`ofw_common::chunk_ranges`]); a worker
//!    pops from its own queue's front and steals from the *back* of the
//!    next busy worker's queue when it runs dry, so neighbors collide as
//!    little as possible. Mutexed `VecDeque`s, not lock-free deques: DP
//!    chunks are coarse (one connected subset each), so queue traffic is
//!    thousands of pops per job, not millions.
//! 4. **No dependencies.** `std` only, consistent with the offline
//!    `vendor/` policy (no rayon / crossbeam).
//!
//! The only `unsafe` is the lifetime erasure of the job closure: `run`
//! hands workers a raw pointer to a stack closure and blocks until every
//! chunk has finished (`remaining == 0`), so the pointer is never
//! dereferenced after `run` returns. Panics in chunks are caught,
//! forwarded, and re-raised on the submitting thread.

use ofw_common::{chunk_ranges, OrderedExecutor};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Locks ignoring poison: every mutex in this module guards data that
/// stays consistent across an unwinding chunk (panics are caught at the
/// chunk boundary and re-raised on the submitter), so a poisoned lock
/// carries no hazard — and the pool must stay usable after one.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A chunk task as the workers see it: lifetime-erased, side-effecting
/// (the result capture lives inside the closure).
type Task = dyn Fn(usize) + Sync;

/// Raw, lifetime-erased pointer to the current job's task. Only
/// dereferenced while the submitting `run` call is still blocked.
#[derive(Clone, Copy)]
struct TaskRef(*const Task);

/// Erases the borrow lifetime of a task pointer (fat-pointer layout is
/// lifetime-independent).
///
/// # Safety
/// The caller must guarantee the pointee outlives every dereference —
/// `run` does, by blocking until `remaining == 0`.
unsafe fn erase_task<'a>(t: *const (dyn Fn(usize) + Sync + 'a)) -> *const Task {
    std::mem::transmute(t)
}

// SAFETY: the pointee is `Sync` (shared calls are fine) and `run`
// outlives every dereference (see the module docs).
unsafe impl Send for TaskRef {}
unsafe impl Sync for TaskRef {}

/// One submitted job: the task, per-worker chunk queues, and the count
/// of chunks not yet finished.
#[derive(Clone)]
struct Job {
    task: TaskRef,
    queues: Arc<Vec<Mutex<VecDeque<usize>>>>,
    remaining: Arc<AtomicUsize>,
}

struct State {
    /// Bumped on every submission; workers use it to tell a fresh job
    /// from the one they just drained.
    epoch: u64,
    job: Option<Job>,
    shutdown: bool,
    /// First panic payload raised by a chunk, re-thrown by `run`.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for a new epoch.
    job_ready: Condvar,
    /// The submitter waits here for `remaining == 0`.
    job_done: Condvar,
}

/// The pool. See the module docs for the design.
pub struct ThreadPool {
    shared: Arc<Shared>,
    /// Serializes submissions (one job at a time — the DP driver is
    /// strictly layer-by-layer anyway).
    submit_gate: Mutex<()>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Creates a pool that uses `threads` OS threads in total: the
    /// submitting thread participates in every job, so `threads - 1`
    /// workers are spawned. `threads == 1` is the serial degenerate case
    /// (no workers, no locking, chunks run inline in order).
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a pool needs at least one thread");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                shutdown: false,
                panic: None,
            }),
            job_ready: Condvar::new(),
            job_done: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ofw-pool-{worker}"))
                    .spawn(move || worker_loop(&shared, worker))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            submit_gate: Mutex::new(()),
            handles,
            threads,
        }
    }

    /// A pool sized to the machine (`available_parallelism`, at least 1).
    pub fn with_available_parallelism() -> Self {
        Self::new(available_threads())
    }

    /// Total threads participating in jobs (workers + submitter).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `task(i)` exactly once for every `i in 0..chunks` across the
    /// pool and returns the results in chunk order. Blocks until the
    /// whole job is done; panics in chunks are re-raised here. Must not
    /// be called from inside a running chunk (single-job pool).
    pub fn run<R: Send>(&self, chunks: usize, task: &(dyn Fn(usize) -> R + Sync)) -> Vec<R> {
        if chunks == 0 {
            return Vec::new();
        }
        if self.handles.is_empty() {
            // Serial fast path: no queues, no locks, index order.
            return (0..chunks).map(task).collect();
        }
        let _gate = lock(&self.submit_gate);

        // Results are pushed in completion order and sorted back into
        // chunk order below — the determinism contract.
        let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(chunks));
        let capture = |idx: usize| {
            let r = task(idx);
            lock(&results).push((idx, r));
        };
        let capture_ref: &(dyn Fn(usize) + Sync) = &capture;

        // Block-partition the chunk indices over all threads.
        let mut queues: Vec<Mutex<VecDeque<usize>>> = (0..self.threads)
            .map(|_| Mutex::new(VecDeque::new()))
            .collect();
        for (q, range) in queues.iter_mut().zip(chunk_ranges(chunks, self.threads)) {
            *q.get_mut().unwrap() = range.collect();
        }
        let job = Job {
            // SAFETY: lifetime erasure only; `run` blocks on
            // `remaining == 0` before returning, and chunks never run
            // after that (see `work`).
            task: TaskRef(unsafe { erase_task(capture_ref) }),
            queues: Arc::new(queues),
            remaining: Arc::new(AtomicUsize::new(chunks)),
        };

        {
            let mut st = lock(&self.shared.state);
            st.epoch += 1;
            st.job = Some(job.clone());
            self.shared.job_ready.notify_all();
        }

        // The submitter is worker 0.
        work(&self.shared, 0, &job);

        let mut st = lock(&self.shared.state);
        while job.remaining.load(Ordering::Acquire) != 0 {
            st = self
                .shared
                .job_done
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        st.job = None;
        let panicked = st.panic.take();
        drop(st);
        if let Some(payload) = panicked {
            panic::resume_unwind(payload);
        }

        let mut out = results.into_inner().unwrap();
        out.sort_unstable_by_key(|&(idx, _)| idx);
        debug_assert_eq!(out.len(), chunks);
        out.into_iter().map(|(_, r)| r).collect()
    }
}

impl OrderedExecutor for ThreadPool {
    fn run_ordered<R: Send>(&self, n: usize, f: &(dyn Fn(usize) -> R + Sync)) -> Vec<R> {
        self.run(n, f)
    }

    fn thread_count(&self) -> usize {
        self.threads
    }

    fn label(&self) -> &'static str {
        "pool"
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            self.shared.job_ready.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// `available_parallelism` with a floor of 1 (cgroup-aware on Linux).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn worker_loop(shared: &Shared, me: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    if let Some(job) = st.job.clone() {
                        seen_epoch = st.epoch;
                        break job;
                    }
                }
                st = shared
                    .job_ready
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        work(shared, me, &job);
    }
}

/// Drains chunks: own queue front first, then steal from the back of the
/// other queues (scanning from the next worker up, deterministically).
/// Returns when no queue has work left.
fn work(shared: &Shared, me: usize, job: &Job) {
    let n = job.queues.len();
    loop {
        let mut chunk = lock(&job.queues[me]).pop_front();
        if chunk.is_none() {
            for distance in 1..n {
                let victim = (me + distance) % n;
                chunk = lock(&job.queues[victim]).pop_back();
                if chunk.is_some() {
                    break;
                }
            }
        }
        let Some(idx) = chunk else { return };
        // SAFETY: `remaining > 0` (this chunk is unfinished), so the
        // submitting `run` is still blocked and the closure is alive.
        let task = unsafe { &*job.task.0 };
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| task(idx))) {
            let mut st = lock(&shared.state);
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        if job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last chunk: wake the submitter. Lock to pair with its
            // check-then-wait, otherwise the notify could slip between.
            let _st = lock(&shared.state);
            shared.job_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_chunk_order() {
        for threads in [1, 2, 4, 8] {
            let pool = ThreadPool::new(threads);
            let out = pool.run(100, &|i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_chunk_runs_exactly_once() {
        let pool = ThreadPool::new(4);
        let counts: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        // Uneven chunk durations force stealing paths.
        pool.run(64, &|i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "chunk {i}");
        }
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = ThreadPool::new(3);
        for round in 0..20 {
            let out = pool.run(10, &|i| i + round);
            assert_eq!(out, (0..10).map(|i| i + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_chunks_is_a_noop() {
        let pool = ThreadPool::new(2);
        let out: Vec<usize> = pool.run(0, &|i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn chunk_panics_propagate_to_the_submitter() {
        let pool = ThreadPool::new(4);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, &|i| {
                assert!(i != 9, "chunk nine exploded");
            });
        }));
        assert!(caught.is_err());
        // The pool survives the panic and keeps working.
        assert_eq!(pool.run(3, &|i| i), vec![0, 1, 2]);
    }

    #[test]
    fn identical_results_for_every_thread_count() {
        // The determinism contract the DP driver relies on.
        let reference: Vec<u64> = (0..200u64).map(|i| i.wrapping_mul(0x9e3779b9)).collect();
        for threads in [1, 2, 3, 5, 8] {
            let pool = ThreadPool::new(threads);
            let out = pool.run(200, &|i| (i as u64).wrapping_mul(0x9e3779b9));
            assert_eq!(out, reference, "threads={threads}");
        }
    }

    #[test]
    fn morsel_execution_is_order_preserving_at_any_width() {
        // The vectorized executor's contract: partition rows into
        // fixed-size morsels (boundaries never depend on the pool),
        // process each morsel on whatever thread, and reassemble the
        // per-morsel results in morsel *index* order — so the
        // concatenated output is byte-identical to the serial run at
        // every pool width.
        let rows: Vec<i64> = (0..10_000).map(|i| (i * 37) % 101).collect();
        let ranges = ofw_common::morsel_ranges(rows.len(), 256);
        let per_morsel = |m: usize| -> Vec<i64> { rows[ranges[m].clone()].to_vec() };
        let serial = ofw_common::SerialExecutor.run_ordered(ranges.len(), &per_morsel);
        assert_eq!(serial.concat(), rows, "morsels cover the input in order");
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads);
            let pooled = pool.run_ordered(ranges.len(), &per_morsel);
            assert_eq!(pooled, serial, "threads={threads}");
        }
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
        assert!(ThreadPool::with_available_parallelism().threads() >= 1);
    }
}
