//! The canonical reference plan: the differential harness's third leg.
//!
//! [`reference_plan`] builds the plan a textbook non-optimizing executor
//! would run — a greedy left-deep chain of hash joins (nested-loop for
//! cross products), aggregation only at the root, a full sort for any
//! output order — with *none* of the order-framework machinery the DP
//! plans exploit (no merge joins, no partial sorts, no eager
//! aggregates, no group-joins). Executing both through the same engine
//! and comparing [`result_signature`]s checks the paper's central
//! soundness claim end to end: every reordering, interesting-order and
//! aggregation-placement trick the optimizer plays must leave the
//! query *result* (a multiset) unchanged.

use crate::batch::{ColRef, ColTable};
use ofw_common::{BitSet, SmallBitSet};
use ofw_plangen::plan::{AggMark, PlanArena};
use ofw_plangen::{PlanId, PlanNode, PlanOp};
use ofw_query::Query;

fn push(arena: &mut PlanArena<()>, op: PlanOp, mask: BitSet) -> PlanId {
    arena.push(PlanNode {
        op,
        mask,
        cost: 0.0,
        card: 0.0,
        state: (),
        agg: AggMark::NONE,
        applied_fds: SmallBitSet::new(),
    })
}

/// Builds the reference plan for `query`: left-deep greedy join chain
/// starting from query relation 0 (always the smallest-index connected
/// relation next, so the shape is deterministic), root-only hash
/// aggregation when the query groups or deduplicates — mirroring the
/// DP, which finalizes aggregation exactly when `effective_group_by()`
/// is non-empty — and a full root sort for any `order by`.
pub fn reference_plan(query: &Query) -> (PlanArena<()>, PlanId) {
    let mut arena: PlanArena<()> = PlanArena::new();
    let n = query.num_relations();
    assert!(n > 0, "reference plan needs at least one relation");

    let mut mask = query.relation_set(0);
    let mut plan = push(&mut arena, PlanOp::Scan { qrel: 0 }, mask.clone());
    let mut remaining: Vec<usize> = (1..n).collect();
    while !remaining.is_empty() {
        // Smallest-index relation joined to the current prefix by some
        // edge; if none, the query graph is disconnected and the
        // smallest remaining relation enters via a cross product.
        let pick = remaining
            .iter()
            .position(|&q| {
                query
                    .connecting_joins_set(&mask, &query.relation_set(q))
                    .next()
                    .is_some()
            })
            .unwrap_or(0);
        let q = remaining.remove(pick);
        let rmask = query.relation_set(q);
        let right = push(&mut arena, PlanOp::Scan { qrel: q }, rmask.clone());
        let edge = query.connecting_joins_set(&mask, &rmask).next();
        mask.union_with(&rmask);
        let op = match edge {
            Some(edge) => PlanOp::HashJoin {
                left: plan,
                right,
                edge,
            },
            None => PlanOp::NestedLoopJoin { left: plan, right },
        };
        plan = push(&mut arena, op, mask.clone());
    }

    if !query.effective_group_by().is_empty() {
        plan = push(
            &mut arena,
            PlanOp::HashAgg {
                input: plan,
                key: query.effective_group_by().to_vec(),
                partial: false,
            },
            mask.clone(),
        );
    }
    if !query.order_by.is_empty() {
        plan = push(
            &mut arena,
            PlanOp::Sort {
                input: plan,
                key: query.order_by.clone(),
            },
            mask,
        );
    }
    (arena, plan)
}

/// Projects an execution result onto the columns the *query* defines —
/// group-by keys plus one finalized accumulator per aggregate call for
/// aggregating queries, the grouping key alone for bare
/// group-by/distinct, every attribute (in `AttrId` order) otherwise —
/// and sorts the rows, yielding a canonical multiset signature. Two
/// plans compute the same query result iff their signatures are equal,
/// regardless of physical row order or which first-row group
/// representative an aggregate happened to keep.
pub fn result_signature(query: &Query, out: &ColTable) -> Vec<Vec<i64>> {
    let col = |what: ColRef| -> &[i64] {
        out.col(what).unwrap_or_else(|| {
            panic!(
                "result is missing column {what:?} (schema {:?})",
                out.schema
            )
        })
    };
    let mut proj: Vec<&[i64]> = Vec::new();
    if !query.effective_group_by().is_empty() {
        for &a in query.effective_group_by() {
            proj.push(col(ColRef::Attr(a)));
        }
        for call in 0..query.aggregates.len() {
            proj.push(col(ColRef::Acc(call)));
        }
    } else {
        let mut attrs = out.attr_ids();
        attrs.sort_unstable_by_key(|a| a.0);
        for a in attrs {
            proj.push(col(ColRef::Attr(a)));
        }
    }
    let mut rows: Vec<Vec<i64>> = (0..out.num_rows())
        .map(|r| proj.iter().map(|c| c[r]).collect())
        .collect();
    rows.sort_unstable();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_plan_is_left_deep_and_aggregates_at_the_root() {
        let (catalog, query) = ofw_workload::star_agg_query(&ofw_workload::StarAggConfig {
            dimensions: 3,
            seed: 7,
        });
        let (arena, root) = reference_plan(&query);
        // Root chain: optional Sort, then the aggregate (star_agg
        // queries group), then joins all the way down the left spine.
        let mut id = root;
        if let PlanOp::Sort { input, .. } = &arena.node(id).op {
            id = *input;
        }
        let PlanOp::HashAgg { input, partial, .. } = &arena.node(id).op else {
            panic!("reference root must aggregate: {:?}", arena.node(id).op);
        };
        assert!(!partial);
        let mut joins = 0;
        let mut id = *input;
        loop {
            match &arena.node(id).op {
                PlanOp::HashJoin { left, .. } | PlanOp::NestedLoopJoin { left, .. } => {
                    joins += 1;
                    // Right child of every join is a leaf scan.
                    id = *left;
                }
                PlanOp::Scan { qrel } => {
                    assert_eq!(*qrel, 0, "left spine bottoms out at relation 0");
                    break;
                }
                other => panic!("unexpected operator on the reference spine: {other:?}"),
            }
        }
        assert_eq!(joins, query.num_relations() - 1);
        let _ = catalog;
    }

    #[test]
    fn signature_projects_group_keys_and_accumulators() {
        let (_catalog, query) = ofw_workload::star_agg_query(&ofw_workload::StarAggConfig {
            dimensions: 2,
            seed: 3,
        });
        let key = query.effective_group_by().to_vec();
        assert!(!key.is_empty());
        let calls = query.aggregates.len();
        let mut schema: Vec<ColRef> = key.iter().map(|&a| ColRef::Attr(a)).collect();
        schema.extend((0..calls).map(ColRef::Acc));
        // Two "results" with the same logical content in different row
        // orders must collapse to the same signature.
        let width = schema.len();
        let a = ColTable::new(
            schema.clone(),
            (0..width).map(|c| vec![c as i64, 10 + c as i64]).collect(),
        );
        let b = ColTable::new(
            schema,
            (0..width).map(|c| vec![10 + c as i64, c as i64]).collect(),
        );
        assert_eq!(result_signature(&query, &a), result_signature(&query, &b));
    }
}
