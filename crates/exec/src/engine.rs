//! The morsel-driven vectorized engine.
//!
//! Every operator works vector-at-a-time over [`ColTable`] batches and
//! parallelizes by *morsel*: the input row range is cut into fixed-size
//! morsels ([`ofw_common::morsel_ranges`] — never a function of the
//! thread count), each morsel is processed as one task on an
//! [`OrderedExecutor`], and the per-morsel results are merged in morsel
//! index order. Scheduling freedom lives entirely below that seam, so
//! the output is **byte-identical at 1, 2 or 8 pool threads** — the
//! executor-level twin of the parallel DP's determinism story.
//!
//! Operator semantics replicate the legacy tuple-at-a-time oracle
//! (`ofw_plangen::exec`) exactly on the attribute columns — including
//! the hash aggregate's deliberate deterministic group-order scramble —
//! and extend it with real aggregate *values*: weight and accumulator
//! columns (see [`crate::batch`]) implement Yan/Larson eager aggregation
//! so a DP plan with partial aggregates below joins computes the same
//! sums, counts, mins and maxes as the canonical root-only-aggregation
//! reference plan.

use crate::batch::{ColRef, ColTable};
use ofw_catalog::{AttrId, Catalog};
use ofw_common::{morsel_ranges, FxHashMap, OrderedExecutor, SerialExecutor};
use ofw_obs::Trace;
use ofw_plangen::exec::CONST_VALUE;
use ofw_plangen::plan::PlanArena;
use ofw_plangen::{PlanId, PlanOp};
use ofw_query::{AggFunc, Query};
use std::collections::BTreeMap;
use std::ops::Range;

/// Default rows per morsel — the unit of parallel work. Fixed, so the
/// morsel partition (and therefore every merge order) is independent of
/// the thread count.
pub const MORSEL_ROWS: usize = 4096;

/// Execution tuning knobs.
#[derive(Clone, Debug)]
pub struct ExecOptions {
    /// Rows per morsel. Must not be derived from the thread count —
    /// that would break the byte-identical-across-threads contract.
    pub morsel_rows: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            morsel_rows: MORSEL_ROWS,
        }
    }
}

/// Deterministic per-operator counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpStat {
    /// Morsel batches the operator processed.
    pub batches: u64,
    /// Rows the operator produced.
    pub rows: u64,
}

/// Deterministic execution counters: identical at any thread count, so
/// the bench trend gate can treat them like `plans` or `allocs`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Total morsel batches across all operators.
    pub morsels: u64,
    /// Rows produced by the root operator.
    pub rows_out: u64,
    /// Per-operator batch/row counts, keyed by [`PlanOp::name`]
    /// (`BTreeMap` so iteration order is deterministic).
    pub ops: BTreeMap<&'static str, OpStat>,
}

impl ExecStats {
    fn record(&mut self, op: &'static str, batches: u64, rows: u64) {
        self.morsels += batches;
        let e = self.ops.entry(op).or_default();
        e.batches += batches;
        e.rows += rows;
    }

    /// Total batches across operators (equals [`ExecStats::morsels`]).
    pub fn op_batches(&self) -> u64 {
        self.ops.values().map(|s| s.batches).sum()
    }
}

/// Execution failure, located: the offending plan node, operator and
/// (when the failure is an attribute lookup) attribute — what a
/// differential-harness failure reports instead of aborting the whole
/// test binary.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecError {
    /// The plan node whose operator failed.
    pub plan: PlanId,
    /// The failing operator's display name.
    pub op: &'static str,
    /// The attribute that could not be resolved, if that is the cause.
    pub attr: Option<AttrId>,
    /// Human-readable description of the failure.
    pub detail: String,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "plan {:?} ({}): {}", self.plan, self.op, self.detail)?;
        if let Some(a) = self.attr {
            write!(f, " (attribute {a:?})")?;
        }
        Ok(())
    }
}

impl std::error::Error for ExecError {}

/// Executes the plan rooted at `plan` over per-relation base columns
/// (`data[qrel][attr][row]`, attributes in catalog declaration order),
/// morsel-parallel on `pool`. Returns the output batch and the
/// deterministic execution counters.
#[allow(clippy::too_many_arguments)]
pub fn execute_plan<S: Copy, E: OrderedExecutor>(
    arena: &PlanArena<S>,
    plan: PlanId,
    catalog: &Catalog,
    query: &Query,
    data: &[Vec<Vec<i64>>],
    pool: &E,
    opts: &ExecOptions,
    trace: &Trace,
) -> Result<(ColTable, ExecStats), ExecError> {
    let mut span = trace.span("execute");
    span.label(pool.label());
    let mut eng = Engine {
        arena,
        catalog,
        query,
        data,
        pool,
        morsel: opts.morsel_rows.max(1),
        stats: ExecStats::default(),
    };
    let out = eng.exec(plan)?;
    eng.stats.rows_out = out.num_rows() as u64;
    span.count("rows_out", eng.stats.rows_out);
    span.count("morsels", eng.stats.morsels);
    Ok((out, eng.stats))
}

/// [`execute_plan`] on the inline serial executor with default options
/// and no tracing — the convenience entry tests reach for.
pub fn execute_serial<S: Copy>(
    arena: &PlanArena<S>,
    plan: PlanId,
    catalog: &Catalog,
    query: &Query,
    data: &[Vec<Vec<i64>>],
) -> Result<(ColTable, ExecStats), ExecError> {
    execute_plan(
        arena,
        plan,
        catalog,
        query,
        data,
        &SerialExecutor,
        &ExecOptions::default(),
        &Trace::disabled(),
    )
}

/// The legacy hash-aggregate / hash-group scramble: reverse the list,
/// then interleave even and odd positions. Deterministic, order-
/// destroying — so no ordering claim can survive a hash operator by
/// luck — and replicated here exactly so vectorized output stays
/// byte-identical with the tuple-at-a-time oracle.
fn scramble_order(n: usize) -> Vec<usize> {
    let rev: Vec<usize> = (0..n).rev().collect();
    let mut out = Vec::with_capacity(n);
    out.extend(rev.iter().copied().step_by(2));
    out.extend(rev.iter().copied().skip(1).step_by(2));
    out
}

/// Cuts `0..len` into fixed-size morsels and runs `f` per morsel on the
/// pool; results come back in morsel index order (the determinism seam).
fn run_morsels<R: Send, E: OrderedExecutor>(
    pool: &E,
    len: usize,
    morsel: usize,
    f: &(dyn Fn(Range<usize>) -> R + Sync),
) -> (Vec<R>, u64) {
    let ranges = morsel_ranges(len, morsel);
    let n = ranges.len() as u64;
    let out = pool.run_ordered(ranges.len(), &|i| f(ranges[i].clone()));
    (out, n)
}

/// Concatenates per-morsel column chunks in morsel order.
fn concat_columns(schema: Vec<ColRef>, total: usize, chunks: Vec<Vec<Vec<i64>>>) -> ColTable {
    let mut cols: Vec<Vec<i64>> = schema.iter().map(|_| Vec::with_capacity(total)).collect();
    for chunk in chunks {
        for (i, c) in chunk.into_iter().enumerate() {
            cols[i].extend(c);
        }
    }
    ColTable::new(schema, cols)
}

/// Morsel-parallel row gather: `out[i] = t[idx[i]]`, all columns.
fn gather_par<E: OrderedExecutor>(
    pool: &E,
    morsel: usize,
    t: &ColTable,
    idx: &[u32],
) -> (ColTable, u64) {
    let (chunks, batches) = run_morsels(pool, idx.len(), morsel, &|r| {
        t.cols
            .iter()
            .map(|c| idx[r.clone()].iter().map(|&i| c[i as usize]).collect())
            .collect::<Vec<Vec<i64>>>()
    });
    (concat_columns(t.schema.clone(), idx.len(), chunks), batches)
}

/// Compares two rows on a column list.
fn cmp_rows(cols: &[&[i64]], a: u32, b: u32) -> std::cmp::Ordering {
    for c in cols {
        match c[a as usize].cmp(&c[b as usize]) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

/// Merges index runs, each sorted by `(key, index)`, into the global
/// stable sort order. Correct for *any* run partition of the input —
/// fixed morsels (full sort) or head-group blocks (partial sort).
fn merge_sorted_runs(cols: &[&[i64]], mut runs: Vec<Vec<u32>>) -> Vec<u32> {
    if runs.len() <= 1 {
        return runs.pop().unwrap_or_default();
    }
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let key = |i: u32| -> Vec<i64> { cols.iter().map(|c| c[i as usize]).collect() };
    let mut heap: BinaryHeap<Reverse<(Vec<i64>, u32, usize)>> = BinaryHeap::new();
    let mut pos = vec![0usize; runs.len()];
    for (r, run) in runs.iter().enumerate() {
        if let Some(&i) = run.first() {
            heap.push(Reverse((key(i), i, r)));
        }
    }
    let mut out = Vec::with_capacity(runs.iter().map(Vec::len).sum());
    while let Some(Reverse((_, i, r))) = heap.pop() {
        out.push(i);
        pos[r] += 1;
        if let Some(&j) = runs[r].get(pos[r]) {
            heap.push(Reverse((key(j), j, r)));
        }
    }
    out
}

/// Maximal consecutive runs of rows equal on `cols` — the blocks a
/// partial sort moves as units.
fn head_blocks(cols: &[&[i64]], n: usize) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let mut start = 0;
    for r in 1..n {
        if cols.iter().any(|c| c[r] != c[r - 1]) {
            out.push(start..r);
            start = r;
        }
    }
    if n > 0 {
        out.push(start..n);
    }
    out
}

/// What a join pair-list materialization writes into each output column.
enum OutSrc {
    /// Left input column, gathered by the pair's left index.
    L(usize),
    /// Right input column, gathered by the pair's right index.
    R(usize),
    /// Product of both sides' weights (an absent column means 1).
    Weight,
    /// Left accumulator column, optionally scaled by the right weight
    /// (`sum` accumulators scale; `min`/`max` pass through).
    AccL(usize, bool),
    /// Right accumulator column, optionally scaled by the left weight.
    AccR(usize, bool),
}

enum JoinKind {
    Merge(usize),
    Hash,
    NestedLoop,
}

/// How an aggregate emits one output accumulator column.
enum Emit {
    /// `count`: the group's weight sum *is* the value.
    FromWeight,
    /// A fold slot in the group state (`sum`/`min`/`max`).
    Fold(usize),
}

/// One fold slot: function plus where a row's contribution comes from.
struct FoldSpec {
    func: AggFunc,
    /// Input accumulator column for this call, if materialized below.
    acc: Option<usize>,
    /// Raw input attribute column, the fallback source.
    raw: Option<usize>,
}

/// Per-group aggregation state.
struct Group {
    /// Global row index of the group's first row (the attribute
    /// representative, mirroring the legacy first-row-per-group rule).
    first: u32,
    /// Σ weight — the number of logical tuples in the group.
    weight: i64,
    /// Fold values, parallel to the operator's `FoldSpec` list.
    folds: Vec<i64>,
}

struct Engine<'a, S, E: OrderedExecutor> {
    arena: &'a PlanArena<S>,
    catalog: &'a Catalog,
    query: &'a Query,
    data: &'a [Vec<Vec<i64>>],
    pool: &'a E,
    morsel: usize,
    stats: ExecStats,
}

impl<S: Copy, E: OrderedExecutor> Engine<'_, S, E> {
    fn err(
        &self,
        plan: PlanId,
        op: &'static str,
        attr: Option<AttrId>,
        detail: String,
    ) -> ExecError {
        ExecError {
            plan,
            op,
            attr,
            detail,
        }
    }

    fn attr_col(
        &self,
        plan: PlanId,
        op: &'static str,
        t: &ColTable,
        attr: AttrId,
    ) -> Result<usize, ExecError> {
        t.col_index(ColRef::Attr(attr)).ok_or_else(|| {
            self.err(
                plan,
                op,
                Some(attr),
                format!(
                    "attribute {} not in input schema {:?}",
                    self.catalog.attr_name(attr),
                    t.schema
                ),
            )
        })
    }

    fn exec(&mut self, plan: PlanId) -> Result<ColTable, ExecError> {
        let op = self.arena.node(plan).op.clone();
        match op {
            PlanOp::Scan { qrel } => self.scan(plan, qrel),
            PlanOp::IndexScan { qrel, index } => self.index_scan(plan, qrel, index),
            PlanOp::Sort { input, key } => {
                let t = self.exec(input)?;
                self.sort(plan, "Sort", t, &key, None)
            }
            PlanOp::PartialSort { input, key, head } => {
                let t = self.exec(input)?;
                self.sort(plan, "PartialSort", t, &key, Some(&head))
            }
            PlanOp::MergeJoin { left, right, edge } => {
                self.join(plan, "MergeJoin", left, right, JoinKind::Merge(edge))
            }
            PlanOp::HashJoin { left, right, .. } => {
                self.join(plan, "HashJoin", left, right, JoinKind::Hash)
            }
            PlanOp::NestedLoopJoin { left, right } => {
                self.join(plan, "NestedLoopJoin", left, right, JoinKind::NestedLoop)
            }
            PlanOp::GroupJoin { left, right, .. } => {
                let joined = self.join(plan, "GroupJoin", left, right, JoinKind::Hash)?;
                let key = self.query.effective_group_by().to_vec();
                self.aggregate(plan, "GroupJoin", joined, &key, false, false)
            }
            PlanOp::StreamAgg {
                input,
                key,
                partial,
            } => {
                let t = self.exec(input)?;
                self.aggregate(plan, "StreamAgg", t, &key, partial, false)
            }
            PlanOp::HashAgg {
                input,
                key,
                partial,
            } => {
                let t = self.exec(input)?;
                self.aggregate(plan, "HashAgg", t, &key, partial, true)
            }
            PlanOp::HashGroup { input, key } => {
                let t = self.exec(input)?;
                self.hash_group(plan, t, &key)
            }
        }
    }

    /// Heap scan: base columns in insertion order, then the relation's
    /// constant (`= CONST_VALUE`) and filter (`≤ 1`) predicates, applied
    /// vectorized per morsel.
    fn scan(&mut self, plan: PlanId, qrel: usize) -> Result<ColTable, ExecError> {
        let rel = self.query.relations[qrel];
        let attrs = self.catalog.relation(rel).attrs.clone();
        let base = &self.data[qrel];
        if base.len() != attrs.len() {
            return Err(self.err(
                plan,
                "Scan",
                None,
                format!(
                    "base data for relation {} has {} columns, catalog declares {}",
                    self.catalog.relation(rel).name,
                    base.len(),
                    attrs.len()
                ),
            ));
        }
        let schema: Vec<ColRef> = attrs.iter().map(|&a| ColRef::Attr(a)).collect();
        let t = ColTable::new(schema, base.clone());
        self.selections(plan, qrel, t, &attrs)
    }

    /// Index scan: stable sort by the index key, then the selections —
    /// the tuple order the planner models for an ordered scan.
    fn index_scan(
        &mut self,
        plan: PlanId,
        qrel: usize,
        index: usize,
    ) -> Result<ColTable, ExecError> {
        let rel = self.query.relations[qrel];
        let attrs = self.catalog.relation(rel).attrs.clone();
        let key = self.catalog.relation(rel).indexes[index].key.clone();
        let base = &self.data[qrel];
        let schema: Vec<ColRef> = attrs.iter().map(|&a| ColRef::Attr(a)).collect();
        let t = ColTable::new(schema, base.clone());
        let sorted = self.sort(plan, "IndexScan", t, &key, None)?;
        self.selections(plan, qrel, sorted, &attrs)
    }

    fn selections(
        &mut self,
        plan: PlanId,
        qrel: usize,
        t: ColTable,
        attrs: &[AttrId],
    ) -> Result<ColTable, ExecError> {
        // (column, is_constant): constants keep `== CONST_VALUE`,
        // filters keep `<= 1` — the legacy oracle's predicate stand-ins.
        let mut preds: Vec<(usize, bool)> = Vec::new();
        for c in &self.query.constants {
            if self.query.owner(c.attr) == qrel {
                preds.push((self.attr_col(plan, "Scan", &t, c.attr)?, true));
            }
        }
        for f in &self.query.filters {
            if self.query.owner(f.attr) == qrel {
                preds.push((self.attr_col(plan, "Scan", &t, f.attr)?, false));
            }
        }
        let _ = attrs;
        let n = t.num_rows();
        if preds.is_empty() {
            self.stats
                .record("Scan", morsel_ranges(n, self.morsel).len() as u64, n as u64);
            return Ok(t);
        }
        let (chunks, batches) = run_morsels(self.pool, n, self.morsel, &|range| {
            let mut keep: Vec<u32> = Vec::new();
            for r in range {
                let ok = preds.iter().all(|&(c, is_const)| {
                    let v = t.cols[c][r];
                    if is_const {
                        v == CONST_VALUE
                    } else {
                        v <= 1
                    }
                });
                if ok {
                    keep.push(r as u32);
                }
            }
            keep
        });
        let idx: Vec<u32> = chunks.concat();
        let (out, gb) = gather_par(self.pool, self.morsel, &t, &idx);
        self.stats
            .record("Scan", batches + gb, out.num_rows() as u64);
        Ok(out)
    }

    /// Stable sort by `key`. With `head` (the partial-sort enforcer) the
    /// initial runs are the input's already-adjacent head-group blocks —
    /// each block is tiny, so the per-run sort is the
    /// `O(n · log(n/groups))` work the cost model charges; without, the
    /// runs are fixed morsels. Either way the `(key, index)` merge of
    /// sorted runs reproduces exactly the global stable sort, which is
    /// how the partial strategy stays byte-identical with a full sort.
    fn sort(
        &mut self,
        plan: PlanId,
        op: &'static str,
        t: ColTable,
        key: &[AttrId],
        head: Option<&[AttrId]>,
    ) -> Result<ColTable, ExecError> {
        let mut key_cols: Vec<&[i64]> = Vec::with_capacity(key.len());
        for &a in key {
            let c = self.attr_col(plan, op, &t, a)?;
            key_cols.push(&t.cols[c]);
        }
        let n = t.num_rows();
        let runs: Vec<Range<usize>> = match head {
            Some(head_attrs) => {
                // The key prefix the input's blocks already group on.
                let k = key.iter().take_while(|a| head_attrs.contains(a)).count();
                if k == 0 {
                    morsel_ranges(n, self.morsel)
                } else {
                    head_blocks(&key_cols[..k], n)
                }
            }
            None => morsel_ranges(n, self.morsel),
        };
        let key_cols_ref = &key_cols;
        let sorted_runs: Vec<Vec<u32>> = self.pool.run_ordered(runs.len(), &|i| {
            let mut idx: Vec<u32> = (runs[i].start as u32..runs[i].end as u32).collect();
            idx.sort_unstable_by(|&a, &b| cmp_rows(key_cols_ref, a, b).then(a.cmp(&b)));
            idx
        });
        let batches = runs.len() as u64;
        let idx = merge_sorted_runs(&key_cols, sorted_runs);
        let (out, gb) = gather_par(self.pool, self.morsel, &t, &idx);
        self.stats.record(op, batches + gb, out.num_rows() as u64);
        Ok(out)
    }

    fn join(
        &mut self,
        plan: PlanId,
        op: &'static str,
        left: PlanId,
        right: PlanId,
        kind: JoinKind,
    ) -> Result<ColTable, ExecError> {
        let lt = self.exec(left)?;
        let rt = self.exec(right)?;
        let lmask = self.arena.node(left).mask.clone();
        let rmask = self.arena.node(right).mask.clone();

        // Resolve every connecting equi-join predicate's columns — the
        // planner applies them all at this operator, so the executor
        // must too.
        let mut edges: Vec<(usize, usize, usize)> = Vec::new(); // (edge, lcol, rcol)
        for e in self.query.connecting_joins_set(&lmask, &rmask) {
            let j = &self.query.joins[e];
            let (la, ra) = if lmask.contains(self.query.owner(j.left)) {
                (j.left, j.right)
            } else {
                (j.right, j.left)
            };
            let lc = self.attr_col(plan, op, &lt, la)?;
            let rc = self.attr_col(plan, op, &rt, ra)?;
            edges.push((e, lc, rc));
        }

        // Emit (left, right) row pairs in the legacy order: left rows
        // outer, matching right rows in right-table order.
        let (pair_chunks, batches) = match kind {
            JoinKind::Hash => {
                let key_of = |r: usize| -> Vec<i64> {
                    edges.iter().map(|&(_, _, rc)| rt.cols[rc][r]).collect()
                };
                let mut table: FxHashMap<Vec<i64>, Vec<u32>> = FxHashMap::default();
                for r in 0..rt.num_rows() {
                    table.entry(key_of(r)).or_default().push(r as u32);
                }
                run_morsels(self.pool, lt.num_rows(), self.morsel, &|range| {
                    let mut pairs: Vec<(u32, u32)> = Vec::new();
                    for l in range {
                        let key: Vec<i64> =
                            edges.iter().map(|&(_, lc, _)| lt.cols[lc][l]).collect();
                        if let Some(rs) = table.get(&key) {
                            pairs.extend(rs.iter().map(|&r| (l as u32, r)));
                        }
                    }
                    pairs
                })
            }
            JoinKind::Merge(edge) => {
                let &(_, plc, prc) =
                    edges.iter().find(|&&(e, _, _)| e == edge).ok_or_else(|| {
                        self.err(
                            plan,
                            op,
                            None,
                            format!("edge #{edge} does not connect the join's inputs"),
                        )
                    })?;
                let rcol: &[i64] = &rt.cols[prc];
                if rcol.windows(2).any(|w| w[0] > w[1]) {
                    return Err(self.err(
                        plan,
                        op,
                        None,
                        "merge join build side is not sorted on the join attribute".to_string(),
                    ));
                }
                let residual: Vec<(usize, usize)> = edges
                    .iter()
                    .filter(|&&(e, _, _)| e != edge)
                    .map(|&(_, lc, rc)| (lc, rc))
                    .collect();
                run_morsels(self.pool, lt.num_rows(), self.morsel, &|range| {
                    let mut pairs: Vec<(u32, u32)> = Vec::new();
                    for l in range {
                        let v = lt.cols[plc][l];
                        let lo = rcol.partition_point(|&x| x < v);
                        let hi = rcol.partition_point(|&x| x <= v);
                        for r in lo..hi {
                            if residual
                                .iter()
                                .all(|&(lc, rc)| lt.cols[lc][l] == rt.cols[rc][r])
                            {
                                pairs.push((l as u32, r as u32));
                            }
                        }
                    }
                    pairs
                })
            }
            JoinKind::NestedLoop => run_morsels(self.pool, lt.num_rows(), self.morsel, &|range| {
                let mut pairs: Vec<(u32, u32)> = Vec::new();
                for l in range {
                    for r in 0..rt.num_rows() {
                        if edges
                            .iter()
                            .all(|&(_, lc, rc)| lt.cols[lc][l] == rt.cols[rc][r])
                        {
                            pairs.push((l as u32, r as u32));
                        }
                    }
                }
                pairs
            }),
        };
        let pairs: Vec<(u32, u32)> = pair_chunks.concat();
        let (out, gb) = self.join_output(&lt, &rt, &pairs);
        self.stats.record(op, batches + gb, out.num_rows() as u64);
        Ok(out)
    }

    /// Materializes a join pair list: attribute columns concatenate
    /// (left then right, like the legacy row concat), weights multiply,
    /// and `sum` accumulators scale by the partner side's weight — the
    /// invariant that makes eager partial aggregates compose (see
    /// [`crate::batch`]).
    fn join_output(&self, lt: &ColTable, rt: &ColTable, pairs: &[(u32, u32)]) -> (ColTable, u64) {
        let lw = lt.col_index(ColRef::Weight);
        let rw = rt.col_index(ColRef::Weight);
        let mut schema: Vec<ColRef> = Vec::new();
        let mut srcs: Vec<OutSrc> = Vec::new();
        for (i, c) in lt.schema.iter().enumerate() {
            if let ColRef::Attr(a) = c {
                schema.push(ColRef::Attr(*a));
                srcs.push(OutSrc::L(i));
            }
        }
        for (i, c) in rt.schema.iter().enumerate() {
            if let ColRef::Attr(a) = c {
                schema.push(ColRef::Attr(*a));
                srcs.push(OutSrc::R(i));
            }
        }
        if lw.is_some() || rw.is_some() {
            schema.push(ColRef::Weight);
            srcs.push(OutSrc::Weight);
        }
        // Accumulators, merged across sides in call order.
        let mut accs: Vec<(usize, OutSrc)> = Vec::new();
        for (i, c) in lt.schema.iter().enumerate() {
            if let ColRef::Acc(call) = c {
                let scale = self.query.aggregates[*call].func == AggFunc::Sum && rw.is_some();
                accs.push((*call, OutSrc::AccL(i, scale)));
            }
        }
        for (i, c) in rt.schema.iter().enumerate() {
            if let ColRef::Acc(call) = c {
                let scale = self.query.aggregates[*call].func == AggFunc::Sum && lw.is_some();
                accs.push((*call, OutSrc::AccR(i, scale)));
            }
        }
        accs.sort_by_key(|&(call, _)| call);
        for (call, src) in accs {
            schema.push(ColRef::Acc(call));
            srcs.push(src);
        }

        let (chunks, batches) = run_morsels(self.pool, pairs.len(), self.morsel, &|range| {
            let slice = &pairs[range];
            srcs.iter()
                .map(|src| {
                    slice
                        .iter()
                        .map(|&(l, r)| {
                            let (l, r) = (l as usize, r as usize);
                            match *src {
                                OutSrc::L(c) => lt.cols[c][l],
                                OutSrc::R(c) => rt.cols[c][r],
                                OutSrc::Weight => {
                                    lw.map_or(1, |c| lt.cols[c][l])
                                        * rw.map_or(1, |c| rt.cols[c][r])
                                }
                                OutSrc::AccL(c, scale) => {
                                    let v = lt.cols[c][l];
                                    if scale {
                                        v * rw.map_or(1, |c| rt.cols[c][r])
                                    } else {
                                        v
                                    }
                                }
                                OutSrc::AccR(c, scale) => {
                                    let v = rt.cols[c][r];
                                    if scale {
                                        v * lw.map_or(1, |c| lt.cols[c][l])
                                    } else {
                                        v
                                    }
                                }
                            }
                        })
                        .collect::<Vec<i64>>()
                })
                .collect::<Vec<Vec<i64>>>()
        });
        (concat_columns(schema, pairs.len(), chunks), batches)
    }

    /// Group-by over `key`. Per-morsel first-seen group maps are merged
    /// serially in morsel order, which reproduces the legacy executor's
    /// single-pass first-seen group order exactly; a hash aggregate then
    /// applies the legacy scramble to the group order. A *partial*
    /// aggregate keeps all attribute columns (first row per group),
    /// materializes the weight column and one accumulator per aggregate
    /// call whose input it carries; the *final* aggregate emits one
    /// finalized accumulator per call and drops the weight.
    fn aggregate(
        &mut self,
        plan: PlanId,
        op: &'static str,
        t: ColTable,
        key: &[AttrId],
        partial: bool,
        scramble: bool,
    ) -> Result<ColTable, ExecError> {
        let mut key_cols: Vec<usize> = Vec::with_capacity(key.len());
        for &a in key {
            key_cols.push(self.attr_col(plan, op, &t, a)?);
        }
        let w_col = t.col_index(ColRef::Weight);

        // Which accumulator columns this aggregate emits, and where each
        // row's contribution comes from.
        let mut folds: Vec<FoldSpec> = Vec::new();
        let mut emits: Vec<(usize, Emit)> = Vec::new();
        for (call, agg) in self.query.aggregates.iter().enumerate() {
            let acc = t.col_index(ColRef::Acc(call));
            let raw = agg.input.and_then(|a| t.col_index(ColRef::Attr(a)));
            if agg.func == AggFunc::Count {
                if !partial {
                    emits.push((call, Emit::FromWeight));
                }
                // Partial counts live entirely in the weight column.
                continue;
            }
            if acc.is_none() && raw.is_none() {
                if partial {
                    // This side does not carry the call's input — an
                    // eager-count partial contributes weight only.
                    continue;
                }
                return Err(self.err(
                    plan,
                    op,
                    agg.input,
                    format!(
                        "final aggregate has neither an accumulator nor the raw input \
                         for {}(#{call})",
                        agg.func.name()
                    ),
                ));
            }
            emits.push((call, Emit::Fold(folds.len())));
            folds.push(FoldSpec {
                func: agg.func,
                acc,
                raw,
            });
        }

        // A row's contribution to fold slot `s`.
        let contrib = |s: &FoldSpec, r: usize| -> i64 {
            match s.func {
                AggFunc::Sum => match s.acc {
                    Some(c) => t.cols[c][r],
                    None => {
                        let w = w_col.map_or(1, |c| t.cols[c][r]);
                        t.cols[s.raw.expect("sum without source")][r] * w
                    }
                },
                AggFunc::Min | AggFunc::Max => {
                    let c = s.acc.or(s.raw).expect("min/max without source");
                    t.cols[c][r]
                }
                AggFunc::Count => unreachable!("count never folds"),
            }
        };
        let combine = |func: AggFunc, a: i64, b: i64| -> i64 {
            match func {
                AggFunc::Sum | AggFunc::Count => a + b,
                AggFunc::Min => a.min(b),
                AggFunc::Max => a.max(b),
            }
        };

        // Per-morsel local aggregation, merged serially in morsel order
        // (= the global first-seen order of a single pass).
        type LocalGroups = (Vec<(Vec<i64>, Group)>,);
        let (chunks, batches): (Vec<LocalGroups>, u64) =
            run_morsels(self.pool, t.num_rows(), self.morsel, &|range| {
                let mut index: FxHashMap<Vec<i64>, usize> = FxHashMap::default();
                let mut groups: Vec<(Vec<i64>, Group)> = Vec::new();
                for r in range {
                    let k: Vec<i64> = key_cols.iter().map(|&c| t.cols[c][r]).collect();
                    let w = w_col.map_or(1, |c| t.cols[c][r]);
                    match index.entry(k.clone()) {
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(groups.len());
                            groups.push((
                                k,
                                Group {
                                    first: r as u32,
                                    weight: w,
                                    folds: folds.iter().map(|s| contrib(s, r)).collect(),
                                },
                            ));
                        }
                        std::collections::hash_map::Entry::Occupied(e) => {
                            let g = &mut groups[*e.get()].1;
                            g.weight += w;
                            for (f, s) in g.folds.iter_mut().zip(&folds) {
                                *f = combine(s.func, *f, contrib(s, r));
                            }
                        }
                    }
                }
                (groups,)
            });
        let mut index: FxHashMap<Vec<i64>, usize> = FxHashMap::default();
        let mut groups: Vec<Group> = Vec::new();
        for (chunk,) in chunks {
            for (k, g) in chunk {
                match index.entry(k) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(groups.len());
                        groups.push(g);
                    }
                    std::collections::hash_map::Entry::Occupied(e) => {
                        let dst = &mut groups[*e.get()];
                        dst.weight += g.weight;
                        for (f, (s, v)) in dst.folds.iter_mut().zip(folds.iter().zip(g.folds)) {
                            *f = combine(s.func, *f, v);
                        }
                    }
                }
            }
        }

        let order: Vec<usize> = if scramble {
            scramble_order(groups.len())
        } else {
            (0..groups.len()).collect()
        };

        // Attribute columns: the group's first row, in output order.
        let first_rows: Vec<u32> = order.iter().map(|&g| groups[g].first).collect();
        let attr_keep: Vec<usize> = t
            .schema
            .iter()
            .enumerate()
            .filter_map(|(i, c)| matches!(c, ColRef::Attr(_)).then_some(i))
            .collect();
        let mut schema: Vec<ColRef> = attr_keep.iter().map(|&i| t.schema[i]).collect();
        let mut cols: Vec<Vec<i64>> = attr_keep
            .iter()
            .map(|&c| first_rows.iter().map(|&r| t.cols[c][r as usize]).collect())
            .collect();
        if partial {
            schema.push(ColRef::Weight);
            cols.push(order.iter().map(|&g| groups[g].weight).collect());
        }
        for (call, emit) in emits {
            schema.push(ColRef::Acc(call));
            cols.push(match emit {
                Emit::FromWeight => order.iter().map(|&g| groups[g].weight).collect(),
                Emit::Fold(slot) => order.iter().map(|&g| groups[g].folds[slot]).collect(),
            });
        }
        let out = ColTable::new(schema, cols);
        self.stats.record(op, batches, out.num_rows() as u64);
        Ok(out)
    }

    /// The hash-grouping enforcer: rows equal on `key` become adjacent.
    /// Blocks keep row order, block order is deterministically scrambled
    /// — byte-identical with the legacy operator.
    fn hash_group(
        &mut self,
        plan: PlanId,
        t: ColTable,
        key: &[AttrId],
    ) -> Result<ColTable, ExecError> {
        let mut key_cols: Vec<usize> = Vec::with_capacity(key.len());
        for &a in key {
            key_cols.push(self.attr_col(plan, "HashGroup", &t, a)?);
        }
        let (chunks, batches) = run_morsels(self.pool, t.num_rows(), self.morsel, &|range| {
            let mut index: FxHashMap<Vec<i64>, usize> = FxHashMap::default();
            let mut blocks: Vec<(Vec<i64>, Vec<u32>)> = Vec::new();
            for r in range {
                let k: Vec<i64> = key_cols.iter().map(|&c| t.cols[c][r]).collect();
                match index.entry(k.clone()) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(blocks.len());
                        blocks.push((k, vec![r as u32]));
                    }
                    std::collections::hash_map::Entry::Occupied(e) => {
                        blocks[*e.get()].1.push(r as u32);
                    }
                }
            }
            blocks
        });
        let mut index: FxHashMap<Vec<i64>, usize> = FxHashMap::default();
        let mut blocks: Vec<Vec<u32>> = Vec::new();
        for chunk in chunks {
            for (k, rows) in chunk {
                match index.entry(k) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(blocks.len());
                        blocks.push(rows);
                    }
                    std::collections::hash_map::Entry::Occupied(e) => {
                        blocks[*e.get()].extend(rows);
                    }
                }
            }
        }
        let idx: Vec<u32> = scramble_order(blocks.len())
            .into_iter()
            .flat_map(|b| blocks[b].to_vec())
            .collect();
        let (out, gb) = gather_par(self.pool, self.morsel, &t, &idx);
        self.stats
            .record("HashGroup", batches + gb, out.num_rows() as u64);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scramble_matches_the_legacy_reverse_interleave() {
        // Legacy: reverse [0..5] = [4,3,2,1,0]; evens then odds of the
        // reversed list = [4,2,0] ++ [3,1].
        assert_eq!(scramble_order(5), vec![4, 2, 0, 3, 1]);
        assert_eq!(scramble_order(0), Vec::<usize>::new());
        assert_eq!(scramble_order(1), vec![0]);
        assert_eq!(scramble_order(2), vec![1, 0]);
    }

    #[test]
    fn merge_sorted_runs_is_a_stable_sort() {
        let col: Vec<i64> = vec![3, 1, 2, 1, 3, 0, 2, 1];
        let cols: Vec<&[i64]> = vec![&col];
        // Two runs, each sorted by (key, index).
        let mut r1: Vec<u32> = vec![0, 1, 2, 3];
        let mut r2: Vec<u32> = vec![4, 5, 6, 7];
        r1.sort_unstable_by(|&a, &b| cmp_rows(&cols, a, b).then(a.cmp(&b)));
        r2.sort_unstable_by(|&a, &b| cmp_rows(&cols, a, b).then(a.cmp(&b)));
        let merged = merge_sorted_runs(&cols, vec![r1, r2]);
        let mut expect: Vec<u32> = (0..8).collect();
        expect.sort_by(|&a, &b| cmp_rows(&cols, a, b).then(a.cmp(&b)));
        assert_eq!(merged, expect);
    }

    #[test]
    fn head_blocks_split_on_any_column_change() {
        let a: Vec<i64> = vec![1, 1, 2, 2, 2, 3];
        let b: Vec<i64> = vec![0, 0, 0, 1, 1, 1];
        let blocks = head_blocks(&[&a, &b], 6);
        assert_eq!(blocks, vec![0..2, 2..3, 3..5, 5..6]);
        assert!(head_blocks(&[&a[..0]], 0).is_empty());
    }
}
