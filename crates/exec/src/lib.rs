//! Morsel-driven vectorized execution for the order-framework planner.
//!
//! The DP plan generator (`ofw-plangen`) produces physical plans whose
//! quality claims — interesting orders exploited, aggregates pushed
//! below joins, partial sorts instead of full ones — were until now
//! only checked symbolically. This crate *runs* those plans:
//!
//! * [`batch`] — the columnar [`ColTable`] representation, including
//!   the weight/accumulator columns that make eager partial aggregation
//!   compose through joins, and the physical property checks
//!   (`satisfies_ordering`/`grouping`/`head_tail`) the harness asserts
//!   on every intermediate.
//! * [`engine`] — one vectorized operator per [`PlanOp`] variant,
//!   morsel-parallel on any [`OrderedExecutor`](ofw_common::OrderedExecutor)
//!   with fixed-size morsels merged in index order, so output is
//!   **byte-identical at any thread count**.
//! * [`mod@reference`] — the canonical left-deep, root-only-aggregation
//!   reference plan and the multiset [`result_signature`] the
//!   differential correctness harness compares across the DP plan, the
//!   reference plan and all three order-oracle arms.
//!
//! [`PlanOp`]: ofw_plangen::PlanOp

pub mod batch;
pub mod engine;
pub mod reference;

pub use batch::{columns_from_tables, ColRef, ColTable};
pub use engine::{
    execute_plan, execute_serial, ExecError, ExecOptions, ExecStats, OpStat, MORSEL_ROWS,
};
pub use reference::{reference_plan, result_signature};
