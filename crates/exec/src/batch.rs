//! Columnar batches: the executor's table representation.
//!
//! A [`ColTable`] is a set of parallel `i64` column vectors with a
//! schema of [`ColRef`]s. Besides plain attribute columns it carries the
//! executor's aggregate bookkeeping:
//!
//! * a **weight** column — how many logical tuples each physical row
//!   represents (materialized only once a partial aggregate collapses
//!   rows; an absent column means every weight is 1);
//! * **accumulator** columns, one per aggregate call — the partial
//!   per-call fold over the logical tuples the row represents
//!   (materialized by an eager partial aggregate, finalized by the
//!   final one).
//!
//! The invariant that makes eager aggregation compose through joins:
//! for a physical row `r` with weight `w`, `Acc(i)[r]` is the call-`i`
//! fold over *all* `w` logical tuples `r` stands for. A join of rows
//! with weights `w_l`, `w_r` represents `w_l · w_r` logical tuples, so
//! the output weight multiplies and `sum` accumulators scale by the
//! partner side's weight (`min`/`max` pass through; `count` needs no
//! accumulator at all — its value *is* the weight).
//!
//! Attribute columns always survive an aggregate as first-row-per-group
//! representatives, mirroring the legacy tuple executor byte for byte;
//! weight and accumulator columns are appended after them.

use ofw_catalog::AttrId;

/// A column reference: what a [`ColTable`] column holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ColRef {
    /// A query attribute's values.
    Attr(AttrId),
    /// Logical tuples represented per row (absent column ⇒ all 1).
    Weight,
    /// Partial accumulator of aggregate call `i` (index into
    /// `Query::aggregates`).
    Acc(usize),
}

/// A columnar table: schema plus parallel column vectors. `PartialEq`
/// compares schema and columns — *byte identity*, the relation the
/// cross-thread determinism tests assert.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ColTable {
    /// What each column holds, in column order.
    pub schema: Vec<ColRef>,
    /// Column vectors, parallel to `schema`, all the same length.
    pub cols: Vec<Vec<i64>>,
    rows: usize,
}

impl ColTable {
    /// Builds a table from a schema and matching columns.
    pub fn new(schema: Vec<ColRef>, cols: Vec<Vec<i64>>) -> Self {
        assert_eq!(schema.len(), cols.len(), "schema/column arity mismatch");
        let rows = cols.first().map_or(0, Vec::len);
        for c in &cols {
            assert_eq!(c.len(), rows, "ragged columns");
        }
        ColTable { schema, cols, rows }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Column index of `what`, if present.
    pub fn col_index(&self, what: ColRef) -> Option<usize> {
        self.schema.iter().position(|&c| c == what)
    }

    /// The column holding `what`, if present.
    pub fn col(&self, what: ColRef) -> Option<&[i64]> {
        self.col_index(what).map(|i| self.cols[i].as_slice())
    }

    /// The attribute ids of the attribute columns, in column order.
    pub fn attr_ids(&self) -> Vec<AttrId> {
        self.schema
            .iter()
            .filter_map(|c| match c {
                ColRef::Attr(a) => Some(*a),
                _ => None,
            })
            .collect()
    }

    /// The weight of row `r` (1 when no weight column exists).
    pub fn weight(&self, r: usize) -> i64 {
        self.col(ColRef::Weight).map_or(1, |w| w[r])
    }

    /// Gathers rows by index into a new table (serial; the engine's
    /// morsel-parallel gather concatenates per-morsel results of this).
    pub fn gather(&self, idx: &[usize]) -> ColTable {
        let cols = self
            .cols
            .iter()
            .map(|c| idx.iter().map(|&i| c[i]).collect())
            .collect();
        ColTable {
            schema: self.schema.clone(),
            cols,
            rows: idx.len(),
        }
    }

    /// Projects the attribute columns into the legacy row-major
    /// [`Table`](ofw_plangen::Table) — the shape the tuple-at-a-time
    /// oracle produces, for byte-for-byte comparison.
    pub fn attr_table(&self) -> ofw_plangen::Table {
        let keep: Vec<usize> = self
            .schema
            .iter()
            .enumerate()
            .filter_map(|(i, c)| matches!(c, ColRef::Attr(_)).then_some(i))
            .collect();
        let attrs = self.attr_ids();
        let rows = (0..self.rows)
            .map(|r| keep.iter().map(|&c| self.cols[c][r]).collect())
            .collect();
        ofw_plangen::Table { attrs, rows }
    }

    fn attr_cols(&self, attrs: &[AttrId]) -> Vec<&[i64]> {
        attrs
            .iter()
            .map(|&a| {
                self.col(ColRef::Attr(a)).unwrap_or_else(|| {
                    panic!("attribute {a:?} not in batch schema {:?}", self.schema)
                })
            })
            .collect()
    }

    /// Does the physical row sequence satisfy the logical ordering
    /// `attrs` (lexicographically non-decreasing)? The §2 satisfaction
    /// condition, evaluated directly on the columns.
    pub fn satisfies_ordering(&self, attrs: &[AttrId]) -> bool {
        let cols = self.attr_cols(attrs);
        (1..self.rows).all(|r| {
            cols.iter()
                .map(|c| c[r - 1].cmp(&c[r]))
                .find(|o| !o.is_eq())
                .unwrap_or(std::cmp::Ordering::Equal)
                .is_le()
        })
    }

    /// Does the physical row sequence satisfy the logical *grouping*
    /// over `attrs` — all rows equal on `attrs` consecutive? The
    /// VLDB'04 grouping-satisfaction condition.
    pub fn satisfies_grouping(&self, attrs: &[AttrId]) -> bool {
        let cols = self.attr_cols(attrs);
        let key = |r: usize| -> Vec<i64> { cols.iter().map(|c| c[r]).collect() };
        let mut seen: std::collections::HashSet<Vec<i64>> = std::collections::HashSet::new();
        let mut prev: Option<Vec<i64>> = None;
        for r in 0..self.rows {
            let k = key(r);
            if prev.as_ref() == Some(&k) {
                continue;
            }
            if !seen.insert(k.clone()) {
                return false; // the group resumed after a break
            }
            prev = Some(k);
        }
        true
    }

    /// Does the row sequence satisfy the *head/tail pair* — equal-`head`
    /// rows consecutive and sorted by `tail` within each run?
    pub fn satisfies_head_tail(&self, head: &[AttrId], tail: &[AttrId]) -> bool {
        if !self.satisfies_grouping(head) {
            return false;
        }
        let hcols = self.attr_cols(head);
        let tcols = self.attr_cols(tail);
        (1..self.rows).all(|r| {
            let same_group = hcols.iter().all(|c| c[r - 1] == c[r]);
            if !same_group {
                return true; // the tail only constrains within a group
            }
            tcols
                .iter()
                .map(|c| c[r - 1].cmp(&c[r]))
                .find(|o| !o.is_eq())
                .unwrap_or(std::cmp::Ordering::Equal)
                .is_le()
        })
    }
}

/// Converts legacy row-major [`Table`](ofw_plangen::Table)s (as produced
/// by [`synthetic_data`](ofw_plangen::synthetic_data)) into the
/// column-major base data the engine scans, one `Vec` of columns per
/// query relation in the relation's catalog attribute order.
pub fn columns_from_tables(tables: &[ofw_plangen::Table]) -> Vec<Vec<Vec<i64>>> {
    tables
        .iter()
        .map(|t| {
            (0..t.attrs.len())
                .map(|c| t.rows.iter().map(|r| r[c]).collect())
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);

    fn table(rows: &[[i64; 2]]) -> ColTable {
        ColTable::new(
            vec![ColRef::Attr(A), ColRef::Attr(B)],
            vec![
                rows.iter().map(|r| r[0]).collect(),
                rows.iter().map(|r| r[1]).collect(),
            ],
        )
    }

    #[test]
    fn property_checks_match_the_legacy_semantics() {
        let t = table(&[[1, 5], [1, 7], [2, 0]]);
        assert!(t.satisfies_ordering(&[A]));
        assert!(t.satisfies_ordering(&[A, B]));
        assert!(!t.satisfies_ordering(&[B]));
        assert!(t.satisfies_ordering(&[]));

        let grouped = table(&[[2, 0], [2, 1], [1, 0], [3, 0]]);
        assert!(grouped.satisfies_grouping(&[A]));
        assert!(!grouped.satisfies_ordering(&[A]), "grouped ≠ sorted");
        let broken = table(&[[2, 0], [1, 0], [2, 1]]);
        assert!(!broken.satisfies_grouping(&[A]));

        let ht = table(&[[2, 0], [2, 1], [1, 3], [1, 9]]);
        assert!(ht.satisfies_head_tail(&[A], &[B]));
        assert!(!table(&[[2, 1], [2, 0]]).satisfies_head_tail(&[A], &[B]));
    }

    #[test]
    fn weight_defaults_to_one_and_reads_the_column() {
        let mut t = table(&[[1, 5], [2, 7]]);
        assert_eq!(t.weight(0), 1);
        t.schema.push(ColRef::Weight);
        t.cols.push(vec![3, 4]);
        assert_eq!(t.weight(1), 4);
        assert_eq!(t.col(ColRef::Weight), Some(&[3i64, 4][..]));
        assert_eq!(t.col(ColRef::Acc(0)), None);
    }

    #[test]
    fn gather_and_attr_projection_round_trip() {
        let mut t = table(&[[1, 5], [2, 7], [3, 9]]);
        t.schema.push(ColRef::Acc(1));
        t.cols.push(vec![10, 20, 30]);
        let g = t.gather(&[2, 0]);
        assert_eq!(g.num_rows(), 2);
        assert_eq!(g.cols[0], vec![3, 1]);
        assert_eq!(g.cols[2], vec![30, 10]);
        let legacy = g.attr_table();
        assert_eq!(legacy.attrs, vec![A, B]);
        assert_eq!(legacy.rows, vec![vec![3, 9], vec![1, 5]]);
    }

    #[test]
    fn columns_from_tables_transposes() {
        let t = ofw_plangen::Table {
            attrs: vec![A, B],
            rows: vec![vec![1, 2], vec![3, 4]],
        };
        let cols = columns_from_tables(&[t]);
        assert_eq!(cols, vec![vec![vec![1, 3], vec![2, 4]]]);
    }
}
