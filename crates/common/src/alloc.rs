//! A counting global allocator (feature `count-allocs`).
//!
//! [`CountingAlloc`] wraps [`System`] and counts every allocation and
//! allocated byte in relaxed atomics — two uncontended fetch-adds per
//! allocation, cheap enough to leave on for benchmark binaries. The
//! `ofw-bench` crate installs it as the `#[global_allocator]` so every
//! `BENCH_*.json` row can carry an `allocs` column: a deterministic
//! allocation-pressure proxy that the trend gate tracks alongside plan
//! and probe counts, catching allocation regressions that wall-clock
//! noise would hide.
//!
//! Counts are process-global and monotone; callers measure a region by
//! differencing [`allocation_count`] snapshots. Deallocations are not
//! tracked — the column measures allocator traffic, not live footprint
//! (that is [`crate::mem::MemoryMeter`]'s job).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts allocations.
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: ofw_common::alloc::CountingAlloc = ofw_common::alloc::CountingAlloc;
/// ```
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Allocations made by the process so far (monotone).
pub fn allocation_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Bytes requested from the allocator so far (monotone; reallocs count
/// their full new size).
pub fn allocated_bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone() {
        // Without the `#[global_allocator]` installed the counters stay
        // at whatever they were — this only checks the accessors and
        // that manual accounting is visible.
        let a0 = allocation_count();
        let b0 = allocated_bytes();
        ALLOCS.fetch_add(3, Ordering::Relaxed);
        BYTES.fetch_add(128, Ordering::Relaxed);
        assert!(allocation_count() >= a0 + 3);
        assert!(allocated_bytes() >= b0 + 128);
    }
}
