//! Generic value interning.
//!
//! The paper's precomputation step (§5.5) replaces "every occurrence of an
//! interesting order or functional dependency … by a handle" so that
//! comparisons run in constant time. [`Interner`] is that mechanism: it
//! assigns dense `u32` handles to values in first-seen order and supports
//! O(1) handle → value and (expected) O(1) value → handle lookups.

use crate::hash::FxHashMap;
use std::hash::Hash;

/// Interns values of type `T`, handing out dense `u32` handles.
#[derive(Clone, Debug)]
pub struct Interner<T> {
    values: Vec<T>,
    index: FxHashMap<T, u32>,
}

impl<T: Clone + Eq + Hash> Default for Interner<T> {
    fn default() -> Self {
        Interner {
            values: Vec::new(),
            index: FxHashMap::default(),
        }
    }
}

impl<T: Clone + Eq + Hash> Interner<T> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `value`, returning its handle (existing or new).
    pub fn intern(&mut self, value: T) -> u32 {
        if let Some(&h) = self.index.get(&value) {
            return h;
        }
        let h = u32::try_from(self.values.len()).expect("interner overflow");
        self.values.push(value.clone());
        self.index.insert(value, h);
        h
    }

    /// Looks up the handle for `value` without interning.
    pub fn get(&self, value: &T) -> Option<u32> {
        self.index.get(value).copied()
    }

    /// Resolves a handle back to its value.
    #[inline]
    pub fn resolve(&self, handle: u32) -> &T {
        &self.values[handle as usize]
    }

    /// Number of interned values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates `(handle, value)` pairs in handle order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.values.iter().enumerate().map(|(i, v)| (i as u32, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i: Interner<String> = Interner::new();
        let a = i.intern("a".to_string());
        let b = i.intern("b".to_string());
        let a2 = i.intern("a".to_string());
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut i: Interner<Vec<u32>> = Interner::new();
        let h = i.intern(vec![1, 2, 3]);
        assert_eq!(i.resolve(h), &vec![1, 2, 3]);
        assert_eq!(i.get(&vec![1, 2, 3]), Some(h));
        assert_eq!(i.get(&vec![9]), None);
    }

    #[test]
    fn handles_are_dense_and_ordered() {
        let mut i: Interner<u64> = Interner::new();
        for v in 0..100u64 {
            assert_eq!(i.intern(v * 10), v as u32);
        }
        let pairs: Vec<(u32, u64)> = i.iter().map(|(h, &v)| (h, v)).collect();
        assert_eq!(pairs.len(), 100);
        assert_eq!(pairs[7], (7, 70));
    }
}
